"""Shared fixtures: small deterministic clusters and building blocks."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.config import ClusterConfig, testing_config
from repro.common.ids import UniqueIDGenerator
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.core import Cluster


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(1234)


@pytest.fixture
def np_rng(rng):
    """Shared numpy generator, seeded from the deterministic fixture so
    every test's randomness is replayable from one place (no bare
    ``np.random.default_rng(<literal>)`` in test bodies — see
    docs/testing.md and tests/common/test_rng_hygiene.py)."""
    import numpy as np

    return np.random.default_rng(rng.spawn("numpy-tests").seed)


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def small_config() -> ClusterConfig:
    return testing_config(capacity_bytes=32 * MiB, seed=99)


@pytest.fixture
def cluster(small_config) -> Cluster:
    """A 2-node disaggregated cluster with batched uniqueness checks."""
    return Cluster(small_config, n_nodes=2, check_remote_uniqueness=False)


@pytest.fixture
def cluster_paper_mode(small_config) -> Cluster:
    """A 2-node cluster with the paper's per-create uniqueness RPCs."""
    return Cluster(small_config, n_nodes=2, check_remote_uniqueness=True)


@pytest.fixture
def ids(rng) -> UniqueIDGenerator:
    return UniqueIDGenerator(rng.spawn("test-ids"))


@pytest.fixture
def cluster_factory(small_config):
    """Fresh clusters on demand — for hypothesis tests, which must not
    share function-scoped state across examples."""

    def make() -> Cluster:
        return Cluster(small_config, n_nodes=2, check_remote_uniqueness=False)

    return make
