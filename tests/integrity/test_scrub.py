"""The anti-entropy scrubber: detect, quarantine, repair, re-replicate."""

from __future__ import annotations

import pytest

from repro.common.errors import ObjectCorruptedError, ObjectStoreError
from repro.scrub import Scrubber


def _flip_payload_bit(store, oid, byte_offset=0, bit=0):
    entry = store.table.lookup(oid)
    store.region.view(entry.payload_offset + byte_offset, 1)[0] ^= 1 << bit


class TestScrubber:
    def test_clean_store_scrubs_clean(self, cluster3):
        client = cluster3.client("node0")
        ids = cluster3.new_object_ids(4)
        for oid in ids:
            client.put_bytes(oid, b"ok" * 512)
        report = Scrubber(cluster3.store("node0")).run()
        assert report.scanned == 4
        assert report.ok == 4
        assert report.corrupted == report.repaired == report.quarantined == 0

    def test_bitflip_detected_and_repaired_from_replica(self, cluster3):
        client = cluster3.client("node0")
        oid = cluster3.new_object_id()
        payload = b"precious" * 500
        client.put_bytes(oid, payload, replicas=2)
        store = cluster3.store("node0")
        _flip_payload_bit(store, oid, byte_offset=123, bit=6)
        report = Scrubber(store).run()
        assert report.corrupted == 1
        assert report.repaired == 1
        assert report.quarantined == 0
        entry = store.get_sealed_entry(oid)  # quarantine was lifted
        assert store.verify_object(entry) is None
        assert bytes(store.local_buffer(entry).view()) == payload

    def test_unreplicated_corruption_stays_quarantined(self, cluster3):
        client = cluster3.client("node0")
        oid = cluster3.new_object_id()
        client.put_bytes(oid, b"lonely" * 100)  # single copy
        store = cluster3.store("node0")
        _flip_payload_bit(store, oid)
        report = Scrubber(store).run()
        assert report.corrupted == 1
        assert report.repaired == 0
        assert report.quarantined == 1
        with pytest.raises(ObjectCorruptedError):
            store.get_sealed_entry(oid)
        # A second pass neither crashes nor double-counts repairs.
        again = Scrubber(store).run()
        assert again.corrupted == 1
        assert again.repaired == 0

    def test_corrupt_replica_repairs_from_home(self, cluster3):
        client = cluster3.client("node0")
        oid = cluster3.new_object_id()
        payload = b"homeward" * 256
        client.put_bytes(oid, payload, replicas=2)
        (holder,) = cluster3.store("node0").replica_locations(oid)
        replica_store = cluster3.store(holder)
        _flip_payload_bit(replica_store, oid, byte_offset=3)
        report = Scrubber(replica_store).run()
        assert report.repaired == 1
        entry = replica_store.get_sealed_entry(oid)
        assert bytes(replica_store.local_buffer(entry).view()) == payload

    def test_restores_replication_factor_after_losing_a_replica(self, cluster3):
        client = cluster3.client("node0")
        oid = cluster3.new_object_id()
        client.put_bytes(oid, b"copyme" * 64, replicas=2)
        store = cluster3.store("node0")
        (holder,) = store.replica_locations(oid)
        # The holder loses its copy and the home loses its book-keeping —
        # the double erosion a crash-recover cycle produces.
        cluster3.store(holder).drop_replicas([oid])
        store.record_replicas(oid, ())
        report = Scrubber(store, replication_target=1).run()
        assert report.re_replicated == 1
        assert len(store.replica_locations(oid)) == 1
        new_holder = store.replica_locations(oid)[0]
        assert cluster3.store(new_holder).is_replica(oid)

    def test_cross_check_rediscovers_replicas_after_restart(self, cluster3):
        client = cluster3.client("node0")
        ids = cluster3.new_object_ids(3)
        for oid in ids:
            client.put_bytes(oid, b"re" * 512, replicas=2)
        cluster3.node("node0").server.shutdown()
        cluster3.recover_node("node0")  # replica map is process state: gone
        store = cluster3.store("node0")
        assert all(store.replica_locations(oid) == () for oid in ids)
        report = Scrubber(store, replication_target=1).run()
        # The Lookup cross-check found the surviving copies: no duplicate
        # replicas were pushed, and the map is truthful again.
        assert report.re_replicated == 0
        assert all(len(store.replica_locations(oid)) == 1 for oid in ids)
        assert store.counters.get("scrub_replicas_rediscovered") == 3

    def test_scrub_requires_integrity_headers(self, make_store):
        bare = make_store(integrity_headers=False, verify_remote_reads=False)
        with pytest.raises(ObjectStoreError, match="integrity_headers"):
            Scrubber(bare)

    def test_report_is_deterministic(self, cluster3):
        client = cluster3.client("node0")
        ids = cluster3.new_object_ids(5)
        for oid in ids:
            client.put_bytes(oid, b"det" * 100, replicas=2)
        store = cluster3.store("node0")
        _flip_payload_bit(store, ids[2], byte_offset=1, bit=1)
        first = Scrubber(store, replication_target=1).run()
        assert first.repaired == 1
        # State is healthy now; repeated scrubs converge to identical,
        # all-clean reports.
        second = Scrubber(store, replication_target=1).run()
        third = Scrubber(store, replication_target=1).run()
        assert second == third
        assert second.ok == 5
