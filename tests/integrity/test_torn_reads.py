"""Torn reads: fabric reads of seal-in-progress objects must fail typed.

The fabric path bypasses the metadata plane entirely, so nothing stops a
remote reader from pointing its aperture at an object whose producer is
still writing. Pre-validation of the in-region header (seal flag checked
*before* the copy, generation re-checked *after*) turns that silent
partial-payload read into a typed :class:`StaleDescriptorError`.
"""

from __future__ import annotations

import pytest

from repro.common.errors import StaleDescriptorError
from repro.memory.layout import HEADER_SIZE
from repro.plasma.buffer import RemoteBufferSource, RemoteReadIntegrity


def _source_for(cluster, reader_node: str, home_node: str, entry, generation=None):
    """A remote buffer source aimed straight at *entry* on *home_node* —
    the raw aperture a reader holds, bypassing lookup."""
    home = cluster.store(home_node)
    handle = cluster.store(reader_node).peer(home_node)
    integrity = RemoteReadIntegrity(
        object_id=entry.object_id.binary(),
        generation=entry.generation if generation is None else generation,
        header_size=HEADER_SIZE,
        payload_crc=entry.payload_crc,
    )
    offset = entry.payload_offset + home._exposed_offset  # noqa: SLF001
    return RemoteBufferSource(handle.remote_region, offset, integrity)


class TestTornReads:
    def test_unsealed_object_fails_validation_not_partial_bytes(self, cluster3):
        home = cluster3.store("node0")
        oid = cluster3.new_object_id()
        entry = home.create_object_unchecked(oid, 4096)
        home.local_buffer(entry).write(b"h" * 2048)  # seal in progress
        source = _source_for(cluster3, "node2", "node0", entry)
        out = bytearray(4096)
        with pytest.raises(StaleDescriptorError, match="seal"):
            source.timed_read(0, 4096, out)
        # The guard fired before the copy: no partial payload escaped.
        assert bytes(out) == bytes(4096)

    def test_sealed_object_reads_clean_through_same_path(self, cluster3):
        home = cluster3.store("node0")
        oid = cluster3.new_object_id()
        entry = home.create_object_unchecked(oid, 1024)
        home.local_buffer(entry).write(b"k" * 1024)
        entry = home.seal_object(oid)
        source = _source_for(cluster3, "node2", "node0", entry)
        out = bytearray(1024)
        source.timed_read(0, 1024, out)
        assert bytes(out) == b"k" * 1024

    def test_retired_object_fails_validation(self, cluster3):
        home = cluster3.store("node0")
        oid = cluster3.new_object_id()
        entry = home.create_object_unchecked(oid, 512)
        home.local_buffer(entry).write(b"r" * 512)
        entry = home.seal_object(oid)
        source = _source_for(cluster3, "node2", "node0", entry)
        home.delete_object(oid)  # header retired before the extent is freed
        with pytest.raises(StaleDescriptorError):
            source.timed_read(0, 512, bytearray(512))

    def test_wrong_generation_fails_validation(self, cluster3):
        home = cluster3.store("node0")
        oid = cluster3.new_object_id()
        entry = home.create_object_unchecked(oid, 512)
        home.local_buffer(entry).write(b"g" * 512)
        entry = home.seal_object(oid)
        source = _source_for(
            cluster3, "node2", "node0", entry, generation=entry.generation + 5
        )
        with pytest.raises(StaleDescriptorError, match="no longer matches"):
            source.timed_read(0, 512, bytearray(512))
