"""The acceptance drill, end to end and replayed.

One seeded scenario exercises the whole integrity story: a chaos plan
crashes a node mid-workload and flips a bit in its surviving region;
peer reads fail typed (checksum-verified fabric reads catch the flip,
lookups fail over to replicas); the node restarts and rebuilds its table
and free list from the region's headers, recovering the corrupt object
quarantined; the scrubber repairs it from a replica and reconciles the
replication factor. Run twice with the same seed, the event traces are
identical line for line.
"""

from __future__ import annotations

from repro.chaos import BitFlip, FaultPlan, NodeCrash
from repro.common.config import ClusterConfig
from repro.common.errors import ObjectCorruptedError, ObjectUnavailableError
from repro.common.units import MiB
from repro.core import Cluster
from repro.scrub import Scrubber

N_OBJECTS = 6
PAYLOAD = bytes(range(256)) * 16  # 4 KiB, non-trivial CRC


def run_scenario(seed: int) -> list[str]:
    """The full crash -> corrupt -> fail-typed -> recover -> scrub story;
    returns a line-oriented event trace for replay comparison."""
    trace: list[str] = []
    cfg = ClusterConfig(seed=seed).with_store(
        capacity_bytes=32 * MiB, verify_checksum_on_read=True
    )
    cluster = Cluster(
        cfg,
        n_nodes=3,
        check_remote_uniqueness=False,
        enable_lookup_cache=True,
        fault_plan=FaultPlan(),
    )
    producer = cluster.client("node0")
    consumer = cluster.client("node2")
    ids = cluster.new_object_ids(N_OBJECTS)
    for oid in ids:
        producer.put_bytes(oid, PAYLOAD, replicas=2)
    # Warm the consumer's descriptors so post-crash reads take the fabric
    # path (the asymmetry: the region outlives the metadata plane).
    for oid in ids:
        assert consumer.get_bytes(oid) == PAYLOAD

    # The victim must be an object whose replica is NOT on the consumer's
    # node, so the consumer's cached descriptor points at node0 and its
    # outage-time read really crosses the fabric into the corrupt bytes.
    victims = [
        oid
        for oid in ids
        if cluster.store("node0").replica_locations(oid) == ("node1",)
    ]
    assert victims, "replica placement left no node1-replicated object"
    victim = victims[0]
    descriptor = cluster.store("node0").lookup_descriptor(victim)
    fault_ns = cluster.clock.now_ns + 1_000_000
    cluster.chaos.inject(
        NodeCrash(at_ns=fault_ns, node="node0"),
        BitFlip(at_ns=fault_ns, node="node0", offset=descriptor["offset"] + 9, bit=2),
    )
    cluster.clock.advance(2_000_000)
    cluster.chaos.poll()
    trace.extend(cluster.chaos.timeline())

    # Peer reads during the outage fail *typed*, never return garbage:
    # the victim's cached descriptor still reaches its (corrupt) bytes
    # over the fabric, and the checksum-verified read rejects them.
    for oid in ids:
        try:
            data = consumer.get_bytes(oid)
            outcome = "ok" if bytes(data) == PAYLOAD else "GARBAGE"
        except ObjectCorruptedError:
            outcome = "corrupted(typed)"
        except ObjectUnavailableError:
            outcome = "unavailable(typed)"
        trace.append(f"outage read {ids.index(oid)}: {outcome}")
    assert any("corrupted(typed)" in line for line in trace)
    assert not any("GARBAGE" in line for line in trace)

    # Restart: rebuild from headers; the flipped object comes back
    # quarantined instead of silently wrong.
    report = cluster.recover_node("node0")
    trace.append(
        f"recovered={report.recovered} quarantined={report.quarantined} "
        f"candidates={report.candidates}"
    )
    assert report.recovered == N_OBJECTS
    assert report.quarantined == 1

    # Anti-entropy: repair from a replica, reconcile replica book-keeping.
    store = cluster.store("node0")
    scrub = Scrubber(store, replication_target=1).run()
    trace.extend(scrub.describe().splitlines())
    assert scrub.repaired == 1
    assert scrub.quarantined == 0
    assert all(len(store.replica_locations(oid)) == 1 for oid in ids)

    # End state: every object, the ex-victim included, reads correctly
    # from every vantage point.
    reborn = cluster.client("node0", "reborn")
    for oid in ids:
        assert bytes(reborn.get_bytes(oid)) == PAYLOAD
        assert bytes(consumer.get_bytes(oid)) == PAYLOAD
    trace.append("end state verified")
    return trace


class TestCrashRecoveryEndToEnd:
    def test_full_story_and_identical_replay(self):
        first = run_scenario(seed=1234)
        second = run_scenario(seed=1234)
        assert first == second
        assert first[-1] == "end state verified"

    def test_different_seed_still_converges(self):
        trace = run_scenario(seed=77)
        assert trace[-1] == "end state verified"
