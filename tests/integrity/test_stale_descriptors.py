"""Stale cached descriptors: generation mismatch as the backstop
invalidation signal (satellite regression for lost NotifyDeleted).

The lookup cache is normally kept honest by NotifyDeleted pushes. When
that push is lost — blackholed RPC window, crashed notifier — the cached
descriptor silently outlives the object. These tests pin the backstop:
the validated fabric read detects the generation/seal mismatch in the
in-region header, evicts the cache entry, re-looks-up once, and either
retries transparently (object re-created) or surfaces a typed error
(object gone for good). No garbage bytes in either case.
"""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan, RpcBlackhole
from repro.common.config import testing_config as make_testing_config
from repro.common.errors import ObjectNotFoundError, StaleDescriptorError
from repro.common.units import MiB
from repro.core import Cluster


@pytest.fixture
def cached_cluster():
    """2-node cluster: lookup cache + deletion notifications on, plus a
    chaos runtime so tests can blackhole the notification channel."""
    return Cluster(
        make_testing_config(capacity_bytes=32 * MiB, seed=99),
        n_nodes=2,
        check_remote_uniqueness=False,
        enable_lookup_cache=True,
        fault_plan=FaultPlan(),
    )


def _blackhole_notifications(cluster, duration_ns=50_000_000):
    """Swallow node0 -> node1 RPCs (NotifyDeleted included) for a window
    starting now."""
    cluster.chaos.inject(
        RpcBlackhole(
            at_ns=cluster.clock.now_ns,
            src="node0",
            dst="node1",
            duration_ns=duration_ns,
        )
    )
    cluster.chaos.poll()
    return duration_ns


class TestStaleDescriptors:
    def test_lost_notify_deleted_surfaces_typed_and_evicts_cache(
        self, cached_cluster
    ):
        cluster = cached_cluster
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"original" * 100)
        assert consumer.get_bytes(oid) == b"original" * 100  # caches descriptor
        store1 = cluster.store("node1")
        assert store1.lookup_cache.get(oid) is not None

        window = _blackhole_notifications(cluster)
        producer.delete(oid)  # NotifyDeleted to node1 is swallowed
        assert store1.lookup_cache.get(oid) is not None  # cache is now wrong
        cluster.clock.advance(window + 1)
        cluster.chaos.poll()

        with pytest.raises(StaleDescriptorError):
            consumer.get_bytes(oid)
        # Generation mismatch evicted the lying entry (satellite b)...
        assert store1.lookup_cache.get(oid) is None
        assert store1.counters.get("stale_descriptor_refreshes") >= 1
        # ...so the next request resolves cleanly to not-found.
        with pytest.raises(ObjectNotFoundError):
            consumer.get_bytes(oid)

    def test_recreated_object_is_retried_transparently(self, cached_cluster):
        cluster = cached_cluster
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"A" * 4096)
        assert consumer.get_bytes(oid) == b"A" * 4096

        window = _blackhole_notifications(cluster)
        producer.delete(oid)
        producer.put_bytes(oid, b"B" * 4096)  # same id, new generation
        cluster.clock.advance(window + 1)
        cluster.chaos.poll()

        # The cached descriptor points at the old incarnation; the validated
        # read detects the mismatch, re-looks-up and retries — one call, the
        # new bytes, no error.
        assert consumer.get_bytes(oid) == b"B" * 4096
        assert cluster.store("node1").counters.get("stale_descriptor_refreshes") >= 1

    def test_notify_deleted_still_wins_when_delivered(self, cached_cluster):
        cluster = cached_cluster
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"x" * 256)
        consumer.get_bytes(oid)
        store1 = cluster.store("node1")
        assert store1.lookup_cache.get(oid) is not None
        producer.delete(oid)  # notification delivered normally
        assert store1.lookup_cache.get(oid) is None
        with pytest.raises(ObjectNotFoundError):
            consumer.get_bytes(oid)
