"""Sealed-object headers: layout, lifecycle, verification, quarantine."""

from __future__ import annotations

import pytest

from repro.common.checksum import crc32c
from repro.common.errors import ObjectCorruptedError, ObjectStoreError
from repro.common.ids import ObjectID
from repro.memory.layout import (
    FLAG_QUARANTINED,
    FLAG_SEALED,
    HEADER_MAGIC,
    HEADER_SIZE,
    MAX_METADATA_BYTES,
    ObjectHeader,
)

from tests.integrity.conftest import put_sealed


class TestHeaderCodec:
    def test_roundtrip_preserves_every_field(self):
        header = ObjectHeader(
            object_id=bytes(range(20)),
            generation=7,
            data_size=4096,
            meta_size=12,
            flags=FLAG_SEALED,
            payload_crc=0xDEADBEEF,
            meta_crc=0x1234,
            sealed_at_s=1_700_000_000,
        )
        raw = header.pack()
        assert len(raw) == HEADER_SIZE
        assert raw.startswith(HEADER_MAGIC)
        assert ObjectHeader.unpack(raw) == header

    def test_unpack_rejects_corruption(self):
        raw = bytearray(
            ObjectHeader(object_id=b"x" * 20, generation=1, data_size=64).pack()
        )
        assert ObjectHeader.unpack(bytes(raw)) is not None
        for corrupt_at in (0, 10, 30, HEADER_SIZE - 1):
            flipped = bytearray(raw)
            flipped[corrupt_at] ^= 0x40
            assert ObjectHeader.unpack(bytes(flipped)) is None

    def test_extent_covers_header_payload_and_metadata(self):
        header = ObjectHeader(
            object_id=b"x" * 20, generation=1, data_size=100, meta_size=10
        )
        assert header.extent_bytes == HEADER_SIZE + 110


class TestHeaderLifecycle:
    def test_create_writes_unsealed_header_before_payload(self, store):
        oid = ObjectID.from_int(1)
        entry = store.create_object_unchecked(oid, 256)
        assert entry.payload_offset == entry.allocation.offset + HEADER_SIZE
        header = ObjectHeader.unpack(
            store.region.read(entry.allocation.offset, HEADER_SIZE)
        )
        assert header is not None
        assert header.object_id == oid.binary()
        assert not header.sealed
        assert header.generation == entry.generation

    def test_seal_stamps_checksum_then_flag(self, store):
        oid = ObjectID.from_int(2)
        payload = bytes(range(256)) * 4
        entry = put_sealed(store, oid, payload, metadata=b"meta")
        header = ObjectHeader.unpack(
            store.region.read(entry.allocation.offset, HEADER_SIZE)
        )
        assert header.sealed
        assert header.payload_crc == crc32c(payload) == entry.payload_crc
        assert header.meta_size == 4
        # Metadata is persisted in-region right behind the payload.
        assert (
            store.region.read(entry.payload_offset + entry.data_size, 4) == b"meta"
        )

    def test_retire_bumps_generation_and_clears_seal_before_free(self, store):
        oid = ObjectID.from_int(3)
        entry = put_sealed(store, oid, b"z" * 128)
        offset, old_gen = entry.allocation.offset, entry.generation
        store.delete_object(oid)
        header = ObjectHeader.unpack(store.region.read(offset, HEADER_SIZE))
        assert header is not None
        assert not header.sealed  # satellite (a): retired before the free
        assert header.generation > old_gen

    def test_generations_are_monotonic(self, store):
        generations = []
        for i in range(4):
            oid = ObjectID.from_int(10 + i)
            generations.append(put_sealed(store, oid, b"p" * 64).generation)
        assert generations == sorted(generations)
        assert len(set(generations)) == len(generations)

    def test_oversized_metadata_is_rejected(self, store):
        with pytest.raises(ValueError, match="metadata"):
            store.create_object_unchecked(
                ObjectID.from_int(4), 64, b"m" * (MAX_METADATA_BYTES + 1)
            )

    def test_descriptor_carries_integrity_fields(self, store):
        oid = ObjectID.from_int(5)
        entry = put_sealed(store, oid, b"d" * 512)
        descriptor = store.lookup_descriptor(oid)
        assert descriptor["offset"] == entry.payload_offset
        assert descriptor["generation"] == entry.generation
        assert descriptor["header_size"] == HEADER_SIZE
        assert descriptor["payload_crc"] == entry.payload_crc

    def test_headers_off_keeps_legacy_layout(self, make_store):
        store = make_store(integrity_headers=False, verify_remote_reads=False)
        oid = ObjectID.from_int(6)
        entry = put_sealed(store, oid, b"q" * 64)
        assert entry.header_size == 0
        assert entry.payload_offset == entry.allocation.offset


class TestVerifyQuarantineRepair:
    def test_verify_detects_payload_bitflip(self, store):
        oid = ObjectID.from_int(20)
        entry = put_sealed(store, oid, b"v" * 1024)
        assert store.verify_object(entry) is None
        store.region.view(entry.payload_offset + 100, 1)[0] ^= 0x01
        assert store.verify_object(entry) == "payload checksum mismatch"

    def test_verify_detects_metadata_corruption(self, store):
        oid = ObjectID.from_int(21)
        entry = put_sealed(store, oid, b"v" * 64, metadata=b"metadata")
        store.region.view(entry.payload_offset + entry.data_size, 1)[0] ^= 0x01
        assert store.verify_object(entry) == "metadata checksum mismatch"

    def test_verify_detects_smashed_header(self, store):
        oid = ObjectID.from_int(22)
        entry = put_sealed(store, oid, b"v" * 64)
        store.region.view(entry.allocation.offset, 4)[:] = b"JUNK"
        assert "header unreadable" in store.verify_object(entry)

    def test_quarantine_blocks_reads_and_lookups(self, store):
        oid = ObjectID.from_int(23)
        entry = put_sealed(store, oid, b"v" * 64)
        store.quarantine_object(oid)
        with pytest.raises(ObjectCorruptedError):
            store.get_sealed_entry(oid)
        assert store.lookup_descriptor(oid) is None
        header = ObjectHeader.unpack(
            store.region.read(entry.allocation.offset, HEADER_SIZE)
        )
        assert header.flags == FLAG_SEALED | FLAG_QUARANTINED

    def test_repair_restores_payload_and_lifts_quarantine(self, store):
        oid = ObjectID.from_int(24)
        payload = b"good bytes" * 10
        entry = put_sealed(store, oid, payload)
        store.region.view(entry.payload_offset, 4)[:] = b"BAD!"
        store.quarantine_object(oid)
        store.repair_object(oid, payload)
        assert store.verify_object(store.get_sealed_entry(oid)) is None
        buf = store.local_buffer(store.get_sealed_entry(oid))
        assert bytes(buf.view()) == payload

    def test_repair_rejects_wrong_size(self, store):
        oid = ObjectID.from_int(25)
        put_sealed(store, oid, b"v" * 64)
        with pytest.raises(ObjectStoreError, match="repair payload"):
            store.repair_object(oid, b"short")
