"""Fixtures for the integrity & recovery suite.

The standalone fixtures deliberately share one endpoint/region across
store instances: the region is the *surviving* artifact of a crash, so
"build a second store over the same region" is the restart model.
"""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.config import LocalMemoryConfig, StoreConfig, testing_config
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.core import Cluster
from repro.memory.host import HostMemory
from repro.plasma import PlasmaStore
from repro.thymesisflow.endpoint import ThymesisEndpoint


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def endpoint(clock):
    mem = HostMemory(16 * MiB, node="n0")
    return ThymesisEndpoint(
        "n0", mem, clock, LocalMemoryConfig(jitter_sigma=0.0), DeterministicRng(4)
    )


@pytest.fixture
def make_store(clock, endpoint):
    """Build (and rebuild) stores over the shared region — each call models
    a process (re)start against the same disaggregated memory."""

    def make(**overrides) -> PlasmaStore:
        cfg = StoreConfig(capacity_bytes=16 * MiB, **overrides)
        return PlasmaStore("store0", endpoint, endpoint.memory.whole(), cfg, clock)

    return make


@pytest.fixture
def store(make_store):
    return make_store()


@pytest.fixture
def cluster3():
    return Cluster(
        testing_config(capacity_bytes=32 * MiB, seed=99),
        n_nodes=3,
        check_remote_uniqueness=False,
    )


def put_sealed(store, oid, payload: bytes, metadata: bytes = b""):
    """Create + write + seal directly against the store (no client layer)."""
    entry = store.create_object_unchecked(oid, len(payload), metadata)
    store.local_buffer(entry).write(payload)
    return store.seal_object(oid)
