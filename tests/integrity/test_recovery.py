"""Restart recovery: rebuilding a store from its region's headers."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ObjectCorruptedError,
    ObjectStoreError,
    ObjectUnavailableError,
)
from repro.common.ids import ObjectID

from tests.integrity.conftest import put_sealed


class TestRegionScanRecovery:
    def test_sealed_objects_survive_a_restart(self, make_store):
        store = make_store()
        payloads = {}
        for i in range(5):
            oid = ObjectID.from_int(i + 1)
            payloads[oid] = bytes([i]) * (512 + 64 * i)
            put_sealed(store, oid, payloads[oid], metadata=b"m%d" % i)
        # The process dies; the region survives; a fresh store scans it.
        recovered = make_store()
        report = recovered.recover_from_region()
        assert report.recovered == 5
        assert report.quarantined == 0
        for oid, payload in payloads.items():
            entry = recovered.get_sealed_entry(oid)
            assert bytes(recovered.local_buffer(entry).view()) == payload
            assert entry.metadata == b"m%d" % (int.from_bytes(oid.binary(), "big") - 1)

    def test_deleted_and_unsealed_extents_recover_as_free_space(self, make_store):
        store = make_store()
        keep = ObjectID.from_int(1)
        gone = ObjectID.from_int(2)
        torn = ObjectID.from_int(3)
        put_sealed(store, keep, b"k" * 256)
        put_sealed(store, gone, b"g" * 256)
        store.delete_object(gone)  # retired header
        store.create_object_unchecked(torn, 256)  # never sealed
        recovered = make_store()
        report = recovered.recover_from_region()
        assert report.recovered == 1
        assert recovered.table.lookup(gone) is None
        assert recovered.table.lookup(torn) is None
        # The reclaimed space is genuinely allocatable again.
        refill = ObjectID.from_int(9)
        put_sealed(recovered, refill, b"r" * 1024)

    def test_corrupt_payload_recovers_quarantined(self, make_store):
        store = make_store()
        oid = ObjectID.from_int(1)
        entry = put_sealed(store, oid, b"c" * 512)
        store.region.view(entry.payload_offset + 7, 1)[0] ^= 0x10
        recovered = make_store()
        report = recovered.recover_from_region()
        assert report.recovered == 1
        assert report.quarantined == 1
        with pytest.raises(ObjectCorruptedError):
            recovered.get_sealed_entry(oid)
        assert recovered.lookup_descriptor(oid) is None

    def test_generation_counter_resumes_past_recovered_max(self, make_store):
        store = make_store()
        last = None
        for i in range(3):
            last = put_sealed(store, ObjectID.from_int(i + 1), b"x" * 64)
        recovered = make_store()
        recovered.recover_from_region()
        fresh = recovered.create_object_unchecked(ObjectID.from_int(50), 64)
        assert fresh.generation > last.generation

    def test_recovery_requires_headers_and_an_empty_table(self, make_store):
        bare = make_store(integrity_headers=False, verify_remote_reads=False)
        with pytest.raises(ObjectStoreError, match="integrity_headers"):
            bare.recover_from_region()
        busy = make_store()
        put_sealed(busy, ObjectID.from_int(1), b"x" * 64)
        with pytest.raises(ObjectStoreError, match="empty"):
            busy.recover_from_region()


class TestClusterNodeRecovery:
    def test_recover_node_restores_service_and_objects(self, cluster3):
        producer = cluster3.client("node0")
        consumer = cluster3.client("node2")
        ids = cluster3.new_object_ids(8)
        for i, oid in enumerate(ids):
            producer.put_bytes(oid, bytes([i]) * 2048)
        cluster3.node("node0").server.shutdown()  # the process dies
        with pytest.raises(ObjectUnavailableError):
            consumer.get([ids[0]])
        report = cluster3.recover_node("node0")
        assert report.recovered == 8
        # Remote reads work again...
        for i, oid in enumerate(ids):
            assert consumer.get_bytes(oid) == bytes([i]) * 2048
        # ...and so do local reads and brand-new puts on the recovered node.
        reborn = cluster3.client("node0", "reborn")
        assert reborn.get_bytes(ids[3]) == bytes([3]) * 2048
        extra = cluster3.new_object_id()
        reborn.put_bytes(extra, b"fresh" * 100)
        assert consumer.get_bytes(extra) == b"fresh" * 100
