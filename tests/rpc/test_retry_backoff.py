"""Channel resilience: exponential backoff, deadlines, breaker gating,
chaos-driven transport silence — and the accounting behind all of it."""

import pytest

from repro.chaos import ChaosRuntime, FaultPlan, NodeCrash, RpcBlackhole
from repro.common.clock import SimClock
from repro.common.config import ChaosConfig, HealthConfig, RpcConfig
from repro.common.errors import RpcStatusError
from repro.common.rng import DeterministicRng
from repro.core.health import BreakerState, CircuitBreaker
from repro.rpc import Channel, RpcServer, Service, StatusCode, rpc_method
from repro.rpc.codec import encode_message


class PingService(Service):
    SERVICE_NAME = "test.Ping"

    def __init__(self):
        self.calls = 0

    @rpc_method
    def Ping(self, request: dict) -> dict:
        self.calls += 1
        return {"pong": True}


def make_channel(clock=None, seed=7, server=None, **overrides):
    clock = clock or SimClock()
    if server is None:
        server = RpcServer("peer")
        server.add_service(PingService())
    defaults = dict(
        jitter_sigma=0.0, retry_backoff_jitter_sigma=0.0, max_retries=2
    )
    defaults.update(overrides)
    config = RpcConfig(**defaults)
    channel = Channel("me", server, clock, config, DeterministicRng(seed))
    return channel, server, clock, config


def expected_failed_call_ns(config, request: dict | None = None) -> float:
    """Simulated time a fully failed unary call costs with zero jitter:
    every attempt charges a round trip (+ request marshalling), every gap
    charges the exponential backoff."""
    wire = len(encode_message(request or {}))
    attempts = 1 + config.max_retries
    cost = attempts * (config.round_trip_ns + wire * config.per_byte_ns)
    for retry in range(config.max_retries):
        cost += min(
            config.retry_initial_backoff_ns
            * config.retry_backoff_multiplier**retry,
            config.retry_max_backoff_ns,
        )
    return cost


class TestBackoffAccounting:
    def test_counters_on_exhausted_retries(self):
        channel, _, _, _ = make_channel(inject_failure_rate=1.0, max_retries=2)
        with pytest.raises(RpcStatusError) as exc:
            channel.unary_call("test.Ping", "Ping")
        assert exc.value.code is StatusCode.UNAVAILABLE
        assert "3 attempts" in str(exc.value)
        assert channel.counters.get("attempts_failed") == 3
        assert channel.counters.get("retries") == 2
        assert channel.counters.get("calls_failed") == 1
        assert channel.counters.get("calls") == 0  # nothing dispatched

    def test_each_attempt_and_backoff_charged_exactly(self):
        channel, _, clock, config = make_channel(
            inject_failure_rate=1.0, max_retries=3
        )
        with pytest.raises(RpcStatusError):
            channel.unary_call("test.Ping", "Ping")
        # Each clock.advance truncates to whole ns — one ns slack per charge.
        assert clock.now_ns == pytest.approx(
            expected_failed_call_ns(config), abs=2 * (1 + config.max_retries)
        )

    def test_backoff_grows_then_caps(self):
        channel, _, clock, config = make_channel(
            inject_failure_rate=1.0,
            max_retries=6,
            retry_initial_backoff_ns=1_000.0,
            retry_backoff_multiplier=10.0,
            retry_max_backoff_ns=50_000.0,
        )
        with pytest.raises(RpcStatusError):
            channel.unary_call("test.Ping", "Ping")
        # 1k + 10k + 50k(cap) + 50k + 50k + 50k of backoff.
        assert clock.now_ns == pytest.approx(
            expected_failed_call_ns(config), abs=2 * (1 + config.max_retries)
        )

    def test_success_path_draws_no_backoff_rng(self):
        # Two channels, same seed: one plain call each; then one channel
        # makes a failing call. The first calls must have consumed identical
        # randomness (backoff jitter only triggers on retries).
        a, _, clock_a, _ = make_channel(seed=11, jitter_sigma=0.25)
        b, _, clock_b, _ = make_channel(seed=11, jitter_sigma=0.25)
        a.unary_call("test.Ping", "Ping")
        b.unary_call("test.Ping", "Ping")
        assert clock_a.now_ns == clock_b.now_ns

    def test_same_seed_same_outcome_under_faults(self):
        def run():
            channel, server, clock, _ = make_channel(
                seed=5, inject_failure_rate=0.4, max_retries=4
            )
            failures = 0
            for _ in range(50):
                try:
                    channel.unary_call("test.Ping", "Ping")
                except RpcStatusError:
                    failures += 1
            return clock.now_ns, failures, channel.counters.snapshot()

        assert run() == run()


class TestDeadlines:
    def test_deadline_bounds_a_blackholed_call(self):
        clock = SimClock()
        plan = FaultPlan([RpcBlackhole(at_ns=0, duration_ns=10**12)])
        chaos = ChaosRuntime(plan, clock, ChaosConfig())
        server = RpcServer("peer")
        server.add_service(PingService())
        config = RpcConfig(jitter_sigma=0.0, retry_backoff_jitter_sigma=0.0)
        channel = Channel(
            "me", server, clock, config, DeterministicRng(1), chaos=chaos
        )
        deadline = 5_000_000.0
        with pytest.raises(RpcStatusError) as exc:
            channel.unary_call("test.Ping", "Ping", deadline_ns=deadline)
        assert exc.value.code is StatusCode.DEADLINE_EXCEEDED
        assert clock.now_ns == pytest.approx(deadline)  # charged, capped
        assert channel.counters.get("deadline_exceeded") == 1

    def test_default_deadline_from_config(self):
        channel, _, clock, _ = make_channel(
            inject_failure_rate=1.0,
            max_retries=10_000,
            default_deadline_ns=2_000_000.0,
        )
        with pytest.raises(RpcStatusError) as exc:
            channel.unary_call("test.Ping", "Ping")
        assert exc.value.code is StatusCode.DEADLINE_EXCEEDED
        assert clock.now_ns == pytest.approx(2_000_000.0)

    def test_fast_call_unaffected_by_deadline(self):
        channel, server, _, _ = make_channel()
        response = channel.unary_call(
            "test.Ping", "Ping", deadline_ns=50_000_000.0
        )
        assert response == {"pong": True}

    def test_blackholed_attempt_waits_connect_timeout_without_deadline(self):
        clock = SimClock()
        chaos_cfg = ChaosConfig(blackhole_timeout_ns=1_000_000.0)
        plan = FaultPlan([RpcBlackhole(at_ns=0, duration_ns=10**12)])
        chaos = ChaosRuntime(plan, clock, chaos_cfg)
        server = RpcServer("peer")
        server.add_service(PingService())
        config = RpcConfig(
            jitter_sigma=0.0,
            retry_backoff_jitter_sigma=0.0,
            max_retries=2,
            retry_initial_backoff_ns=0.0,
        )
        channel = Channel(
            "me", server, clock, config, DeterministicRng(1), chaos=chaos
        )
        with pytest.raises(RpcStatusError) as exc:
            channel.unary_call("test.Ping", "Ping")
        assert exc.value.code is StatusCode.UNAVAILABLE
        assert "no response" in str(exc.value)
        assert clock.now_ns == pytest.approx(3 * 1_000_000.0)


class TestServerUnavailableRetry:
    def test_dead_server_is_retried_then_surfaces(self):
        channel, server, _, _ = make_channel()
        server.shutdown()
        with pytest.raises(RpcStatusError) as exc:
            channel.unary_call("test.Ping", "Ping")
        assert exc.value.code is StatusCode.UNAVAILABLE
        assert channel.counters.get("attempts_failed") == 3

    def test_server_back_mid_retry_succeeds(self):
        class FlakyServer(RpcServer):
            def __init__(self):
                super().__init__("peer")
                self.dispatches = 0

            def dispatch(self, service, method, request):
                self.dispatches += 1
                if self.dispatches == 1:
                    return StatusCode.UNAVAILABLE, None, "starting up"
                return super().dispatch(service, method, request)

        server = FlakyServer()
        server.add_service(PingService())
        channel, _, _, _ = make_channel(server=server)
        assert channel.unary_call("test.Ping", "Ping") == {"pong": True}
        assert channel.counters.get("retries") == 1


class TestBreakerGating:
    def make_gated(self, clock=None, **overrides):
        clock = clock or SimClock()
        server = RpcServer("peer")
        server.add_service(PingService())
        hcfg = HealthConfig(breaker_failure_threshold=2)
        breaker = CircuitBreaker(clock, hcfg, name="me->peer")
        defaults = dict(
            jitter_sigma=0.0, retry_backoff_jitter_sigma=0.0, max_retries=0
        )
        defaults.update(overrides)
        channel = Channel(
            "me",
            server,
            clock,
            RpcConfig(**defaults),
            DeterministicRng(3),
            breaker=breaker,
        )
        return channel, server, breaker, clock

    def test_open_breaker_fails_fast(self):
        channel, server, breaker, clock = self.make_gated()
        server.shutdown()
        for _ in range(2):
            with pytest.raises(RpcStatusError):
                channel.unary_call("test.Ping", "Ping")
        assert breaker.state is BreakerState.OPEN
        t0 = clock.now_ns
        with pytest.raises(RpcStatusError, match="circuit breaker open"):
            channel.unary_call("test.Ping", "Ping")
        assert clock.now_ns - t0 == pytest.approx(breaker.fail_fast_cost_ns)
        assert channel.counters.get("breaker_rejections") == 1

    def test_probe_after_reset_closes_on_recovery(self):
        channel, server, breaker, clock = self.make_gated()
        server.shutdown()
        for _ in range(2):
            with pytest.raises(RpcStatusError):
                channel.unary_call("test.Ping", "Ping")
        server.restart()
        clock.advance(HealthConfig().breaker_reset_timeout_ns)
        assert channel.unary_call("test.Ping", "Ping") == {"pong": True}
        assert breaker.state is BreakerState.CLOSED

    def test_application_errors_count_as_peer_alive(self):
        channel, server, breaker, _ = self.make_gated()
        for _ in range(5):
            with pytest.raises(RpcStatusError) as exc:
                channel.unary_call("test.Ping", "Missing")
            assert exc.value.code is StatusCode.UNIMPLEMENTED
        # The peer answered every time — never trip on its answers.
        assert breaker.state is BreakerState.CLOSED


class TestStreamFaultPath:
    def test_stream_establishment_failures_retry_and_surface(self):
        channel, server, clock, config = make_channel(
            inject_failure_rate=1.0, max_retries=2
        )
        with pytest.raises(RpcStatusError) as exc:
            channel.stream_call("test.Ping", "Ping", [{}, {}, {}])
        assert exc.value.code is StatusCode.UNAVAILABLE
        assert "3 attempts" in str(exc.value)
        assert channel.counters.get("attempts_failed") == 3
        assert channel.counters.get("calls") == 0
        # Each wasted attempt charges one round trip plus backoff gaps.
        assert clock.now_ns >= 3 * config.round_trip_ns

    def test_stream_handler_untouched_by_failed_establishment(self):
        clock = SimClock()
        server = RpcServer("peer")
        svc = PingService()
        server.add_service(svc)
        channel, _, _, _ = make_channel(
            clock=clock, server=server, inject_failure_rate=1.0, max_retries=1
        )
        with pytest.raises(RpcStatusError):
            channel.stream_call("test.Ping", "Ping", [{}] * 4)
        assert svc.calls == 0

    def test_stream_retries_mask_transient_faults(self):
        server = RpcServer("peer")
        svc = PingService()
        server.add_service(svc)
        channel, _, _, _ = make_channel(
            server=server, seed=2, inject_failure_rate=0.5, max_retries=8
        )
        for _ in range(10):
            responses = channel.stream_call("test.Ping", "Ping", [{}, {}])
            assert responses == [{"pong": True}, {"pong": True}]
        assert svc.calls == 20

    def test_stream_respects_deadline(self):
        channel, _, clock, _ = make_channel(
            inject_failure_rate=1.0,
            max_retries=10_000,
            default_deadline_ns=3_000_000.0,
        )
        with pytest.raises(RpcStatusError) as exc:
            channel.stream_call("test.Ping", "Ping", [{}])
        assert exc.value.code is StatusCode.DEADLINE_EXCEEDED
        assert clock.now_ns == pytest.approx(3_000_000.0)

    def test_stream_breaker_gated(self):
        clock = SimClock()
        server = RpcServer("peer")
        server.add_service(PingService())
        breaker = CircuitBreaker(
            clock, HealthConfig(breaker_failure_threshold=1), name="me->peer"
        )
        channel = Channel(
            "me",
            server,
            clock,
            RpcConfig(jitter_sigma=0.0, max_retries=0),
            DeterministicRng(4),
            breaker=breaker,
        )
        server.shutdown()
        with pytest.raises(RpcStatusError):
            channel.stream_call("test.Ping", "Ping", [{}])
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(RpcStatusError, match="circuit breaker open"):
            channel.stream_call("test.Ping", "Ping", [{}])
