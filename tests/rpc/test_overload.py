"""Overload control units: OverloadModel, RetryBudget, DeadlineBudget,
server admission gate, and the channel-side shed/budget behaviour."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import OverloadConfig, RpcConfig
from repro.common.errors import ServerOverloadedError
from repro.common.rng import DeterministicRng
from repro.rpc import Channel, RpcServer, Service, StatusCode, rpc_method
from repro.rpc.overload import DeadlineBudget, OverloadModel, RetryBudget

MS = 1_000_000


class EchoService(Service):
    SERVICE_NAME = "test.Echo"

    @rpc_method
    def Echo(self, request: dict) -> dict:
        return {"echo": request.get("msg", "")}


def make_model(clock, rate=100.0, depth=4, discipline="fifo", shed=True):
    config = OverloadConfig(
        service_rate_ops_per_s=rate,
        queue_depth=depth,
        queue_discipline=discipline,
        shed_expired=shed,
    )
    return OverloadModel(clock, config, name="node-t")


class TestOverloadModel:
    def test_inactive_model_admits_for_free(self):
        clock = SimClock()
        model = OverloadModel(clock, None)
        model.set_service_rate(0.0)
        decision = model.admit(clock.now_ns)
        assert decision.admitted and decision.delay_ns == 0
        assert model.counters.get("admitted") == 0  # fast path, no stats
        assert not model.active

    def test_admission_pushes_backlog_one_service_time(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0)  # 10 ms service time
        assert model.admit(clock.now_ns).admitted
        assert model.backlog_ns() == pytest.approx(10 * MS)
        second = model.admit(clock.now_ns)
        assert second.admitted
        # FIFO: the second arrival waits out the first's service time.
        assert second.delay_ns == pytest.approx(10 * MS)
        assert model.queue_len() == 2

    def test_lifo_waits_at_most_one_service_time(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0, discipline="lifo", depth=64)
        for _ in range(5):
            decision = model.admit(clock.now_ns)
        assert decision.admitted
        assert decision.delay_ns == pytest.approx(10 * MS)

    def test_queue_full_sheds_resource_exhausted(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0, depth=4)
        for _ in range(4):
            assert model.admit(clock.now_ns).admitted
        decision = model.admit(clock.now_ns)
        assert not decision.admitted
        assert decision.reason == "queue-full"
        assert model.counters.get("shed_queue_full") == 1
        # Shedding left the watermark untouched: rejection is cheap.
        assert model.queue_len() == 4

    def test_expired_budget_shed_before_servicing(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0)
        decision = model.admit(clock.now_ns, deadline_ns=0.0)
        assert not decision.admitted and decision.reason == "expired"

    def test_wont_finish_inside_budget_shed(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0)
        assert model.admit(clock.now_ns).admitted  # 10 ms backlog
        decision = model.admit(clock.now_ns, deadline_ns=15 * MS)
        assert not decision.admitted and decision.reason == "wont-finish"
        assert model.counters.get("shed_expired") == 1

    def test_shed_expired_off_admits_doomed_work(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0, shed=False)
        assert model.admit(clock.now_ns).admitted
        assert model.admit(clock.now_ns, deadline_ns=1.0).admitted

    def test_burst_injects_backlog_and_drains_with_time(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0)
        model.add_backlog(50 * MS)
        assert model.queue_len() == 5
        assert model.active
        clock.advance(60 * MS)
        assert model.queue_len() == 0
        assert model.backlog_ns() == 0.0

    def test_reset_forgets_queue(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0)
        model.add_backlog(50 * MS)
        model.reset()
        assert model.backlog_ns() == 0.0

    def test_depth_sampled_for_sheds_too(self):
        clock = SimClock()
        model = make_model(clock, rate=100.0, depth=2)
        for _ in range(3):
            model.admit(clock.now_ns)
        # 2 admits (depths 0, 1) + 1 shed that saw the full queue (2).
        assert model.queue_samples.count == 3
        assert model.queue_samples.max == 2

    def test_replays_identically(self):
        def run():
            clock = SimClock()
            model = make_model(clock, rate=250.0, depth=3)
            out = []
            for step in range(12):
                decision = model.admit(clock.now_ns, deadline_ns=9 * MS)
                out.append((decision.admitted, decision.delay_ns, decision.reason))
                clock.advance((step % 3) * MS)
            return out, sorted(model.counters.snapshot().items())

        assert run() == run()


class TestRetryBudget:
    def test_rate_zero_is_unlimited(self):
        budget = RetryBudget(SimClock(), 0.0, 10)
        assert not budget.enabled
        assert all(budget.try_spend() for _ in range(100))

    def test_burst_then_dry(self):
        budget = RetryBudget(SimClock(), 10.0, 3)
        assert [budget.try_spend() for _ in range(4)] == [True] * 3 + [False]

    def test_tokens_refill_on_sim_time(self):
        clock = SimClock()
        budget = RetryBudget(clock, 10.0, 3)  # 10 tokens/s
        for _ in range(3):
            budget.try_spend()
        assert not budget.try_spend()
        clock.advance(100 * MS)  # exactly one token accrues
        assert budget.try_spend()
        assert not budget.try_spend()


class TestDeadlineBudget:
    def test_budget_shrinks_with_sim_time(self):
        clock = SimClock()
        budget = DeadlineBudget(clock, 50 * MS)
        assert budget.enabled
        clock.advance(20 * MS)
        assert budget.remaining_ns() == pytest.approx(30 * MS)
        assert budget.kwargs() == {"deadline_ns": pytest.approx(30 * MS)}

    def test_spent_budget_clamps_to_fail_fast(self):
        clock = SimClock()
        budget = DeadlineBudget(clock, 5 * MS)
        clock.advance(20 * MS)
        # 0 would read as "no deadline" downstream; 1 ns fails fast.
        assert budget.kwargs() == {"deadline_ns": 1.0}

    def test_disabled_without_default_deadline(self):
        clock = SimClock()
        budget = DeadlineBudget(clock, 0.0)
        assert not budget.enabled
        assert budget.kwargs() == {}

    def test_for_stub_reads_channel_default(self):
        class FakeChannel:
            default_deadline_ns = 25 * MS

        class FakeStub:
            channel = FakeChannel()

        clock = SimClock()
        budget = DeadlineBudget.for_stub(FakeStub(), clock)
        assert budget.remaining_ns() == pytest.approx(25 * MS)
        assert DeadlineBudget.for_stub(object(), clock).enabled is False


def make_pair(clock, *, rate=0.0, depth=4, rpc=None):
    server = RpcServer("node-s")
    server.add_service(EchoService())
    server.clock = clock
    server.overload = OverloadModel(
        clock,
        OverloadConfig(service_rate_ops_per_s=rate, queue_depth=depth),
        name="node-s",
    )
    channel = Channel(
        "node-c",
        server,
        clock,
        rpc or RpcConfig(jitter_sigma=0.0),
        DeterministicRng(7),
    )
    return server, channel


class TestServerGate:
    def test_shed_returns_resource_exhausted_wire_status(self):
        clock = SimClock()
        server, _ = make_pair(clock, rate=100.0, depth=2)
        server.overload.add_backlog(100 * MS)
        status, _, detail = server.dispatch_wire("test.Echo", "Echo", b"\x00")
        assert status is StatusCode.RESOURCE_EXHAUSTED
        assert "queue full" in detail
        assert server.counters.get("calls_shed") == 1

    def test_queue_delay_lands_in_observed_latency(self):
        clock = SimClock()
        server, channel = make_pair(clock, rate=100.0, depth=64)
        t0 = clock.now_ns
        channel.unary_call("test.Echo", "Echo", {"msg": "a"})
        first = clock.now_ns - t0
        t1 = clock.now_ns
        channel.unary_call("test.Echo", "Echo", {"msg": "b"})
        # The second call queued behind the first's 10 ms service time.
        assert clock.now_ns - t1 > first

    def test_deadline_propagates_to_admission(self):
        clock = SimClock()
        server, channel = make_pair(clock, rate=100.0, depth=64)
        server.overload.add_backlog(50 * MS)
        # 20 ms deadline cannot cover 50 ms backlog: shed, not queued.
        with pytest.raises(ServerOverloadedError):
            channel.unary_call(
                "test.Echo", "Echo", {"msg": "x"}, deadline_ns=20 * MS
            )
        assert server.overload.counters.get("shed_expired") >= 1


class TestChannelSheds:
    def test_shed_raises_typed_error_after_retries(self):
        clock = SimClock()
        config = RpcConfig(jitter_sigma=0.0, max_retries=2)
        server, channel = make_pair(clock, rate=10.0, depth=1, rpc=config)
        server.overload.add_backlog(10_000 * MS)
        with pytest.raises(ServerOverloadedError):
            channel.unary_call("test.Echo", "Echo", {})
        # Every attempt was shed and counted.
        assert channel.counters.get("attempts_shed") == 3
        assert channel.counters.get("calls_failed") == 1

    def test_retry_budget_exhaustion_fails_fast(self):
        clock = SimClock()
        config = RpcConfig(
            jitter_sigma=0.0,
            max_retries=3,
            retry_budget_per_s=1.0,
            retry_budget_burst=2,
        )
        server, channel = make_pair(clock, rate=10.0, depth=1, rpc=config)
        server.overload.add_backlog(10_000 * MS)
        with pytest.raises(ServerOverloadedError):
            channel.unary_call("test.Echo", "Echo", {})
        # Budget of 2 allowed two retries; the third was suppressed.
        assert channel.counters.get("attempts_shed") == 3
        assert channel.counters.get("retries_suppressed") == 1
        with pytest.raises(ServerOverloadedError):
            channel.unary_call("test.Echo", "Echo", {})
        # Dry budget: the second call failed on its first shed.
        assert channel.counters.get("attempts_shed") == 4
        assert channel.counters.get("retries_suppressed") == 2

    def test_sheds_feed_the_breaker(self):
        from repro.common.config import HealthConfig
        from repro.core.health import BreakerState, CircuitBreaker

        clock = SimClock()
        server, _ = make_pair(clock, rate=10.0, depth=1)
        server.overload.add_backlog(10_000 * MS)
        breaker = CircuitBreaker(
            clock, HealthConfig(breaker_failure_threshold=2), "node-s"
        )
        channel = Channel(
            "node-c",
            server,
            clock,
            RpcConfig(jitter_sigma=0.0, max_retries=0),
            DeterministicRng(7),
            breaker=breaker,
        )
        for _ in range(2):
            with pytest.raises(ServerOverloadedError):
                channel.unary_call("test.Echo", "Echo", {})
        # Two consecutive sheds tripped the breaker: overload is a
        # first-class failure signal, not a silent retry storm.
        assert breaker.state is BreakerState.OPEN
        assert channel.counters.get("breaker_rejections") == 0
        with pytest.raises(Exception):
            channel.unary_call("test.Echo", "Echo", {})
        assert channel.counters.get("breaker_rejections") == 1

    def test_hedge_delay_needs_samples(self):
        clock = SimClock()
        config = RpcConfig(
            jitter_sigma=0.0, hedge_quantile=0.9, hedge_min_samples=3
        )
        server, channel = make_pair(clock, rpc=config)
        assert channel.hedge_delay_ns() is None
        for _ in range(3):
            channel.unary_call("test.Echo", "Echo", {})
        delay = channel.hedge_delay_ns()
        assert delay is not None and delay > 0

    def test_hedge_delay_disabled_by_default(self):
        clock = SimClock()
        server, channel = make_pair(clock)
        for _ in range(50):
            channel.unary_call("test.Echo", "Echo", {})
        assert channel.hedge_delay_ns() is None
