"""RpcServer dispatch, Channel unary calls, stubs, status mapping."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import RpcConfig
from repro.common.errors import (
    ObjectExistsError,
    ObjectNotFoundError,
    RpcError,
    RpcStatusError,
)
from repro.common.rng import DeterministicRng
from repro.rpc import Channel, RpcServer, Service, StatusCode, rpc_method


class EchoService(Service):
    SERVICE_NAME = "test.Echo"

    @rpc_method
    def Echo(self, request: dict) -> dict:
        return {"echo": request.get("msg", "")}

    @rpc_method
    def Fail(self, request: dict) -> dict:
        kind = request.get("kind")
        if kind == "not_found":
            raise ObjectNotFoundError("nope")
        if kind == "exists":
            raise ObjectExistsError("dup")
        if kind == "value":
            raise ValueError("bad arg")
        raise RuntimeError("boom")

    @rpc_method
    def ReturnsNone(self, request: dict):
        return None

    @rpc_method
    def ReturnsNonDict(self, request: dict):
        return [1, 2]

    def not_an_rpc(self, request: dict) -> dict:  # undecorated
        return {}


@pytest.fixture
def server():
    s = RpcServer("node-x")
    s.add_service(EchoService())
    return s


@pytest.fixture
def channel(server):
    return Channel(
        "node-y", server, SimClock(), RpcConfig(jitter_sigma=0.0), DeterministicRng(7)
    )


class TestServer:
    def test_duplicate_service_rejected(self, server):
        with pytest.raises(RpcError):
            server.add_service(EchoService())

    def test_service_without_methods_rejected(self):
        class Empty(Service):
            SERVICE_NAME = "test.Empty"

        with pytest.raises(RpcError):
            RpcServer("n").add_service(Empty())

    def test_dispatch_ok(self, server):
        status, response, _ = server.dispatch("test.Echo", "Echo", {"msg": "hi"})
        assert status is StatusCode.OK
        assert response == {"echo": "hi"}

    def test_unknown_service_unimplemented(self, server):
        status, _, detail = server.dispatch("test.Nope", "Echo", {})
        assert status is StatusCode.UNIMPLEMENTED
        assert "test.Nope" in detail

    def test_unknown_method_unimplemented(self, server):
        status, _, _ = server.dispatch("test.Echo", "Missing", {})
        assert status is StatusCode.UNIMPLEMENTED

    def test_undecorated_method_not_exposed(self, server):
        status, _, _ = server.dispatch("test.Echo", "not_an_rpc", {})
        assert status is StatusCode.UNIMPLEMENTED

    @pytest.mark.parametrize(
        "kind,code",
        [
            ("not_found", StatusCode.NOT_FOUND),
            ("exists", StatusCode.ALREADY_EXISTS),
            ("value", StatusCode.INVALID_ARGUMENT),
            ("other", StatusCode.INTERNAL),
        ],
    )
    def test_exception_to_status_mapping(self, server, kind, code):
        status, _, _ = server.dispatch("test.Echo", "Fail", {"kind": kind})
        assert status is code

    def test_none_response_becomes_empty_dict(self, server):
        status, response, _ = server.dispatch("test.Echo", "ReturnsNone", {})
        assert status is StatusCode.OK
        assert response == {}

    def test_non_dict_response_is_internal_error(self, server):
        status, _, _ = server.dispatch("test.Echo", "ReturnsNonDict", {})
        assert status is StatusCode.INTERNAL

    def test_counters(self, server):
        server.dispatch("test.Echo", "Echo", {})
        server.dispatch("test.Echo", "Fail", {"kind": "other"})
        server.dispatch("test.Nope", "x", {})
        assert server.counters.get("calls") == 3
        assert server.counters.get("calls_ok") == 1
        assert server.counters.get("calls_failed") == 1
        assert server.counters.get("calls_unimplemented") == 1

    def test_malformed_wire_request(self, server):
        status, _, _ = server.dispatch_wire("test.Echo", "Echo", b"\xff\xff")
        assert status is StatusCode.INVALID_ARGUMENT


class TestChannel:
    def test_unary_call_roundtrip(self, channel):
        assert channel.unary_call("test.Echo", "Echo", {"msg": "yo"}) == {
            "echo": "yo"
        }

    def test_error_status_raises(self, channel):
        with pytest.raises(RpcStatusError) as excinfo:
            channel.unary_call("test.Echo", "Fail", {"kind": "not_found"})
        assert excinfo.value.code is StatusCode.NOT_FOUND

    def test_call_charges_round_trip(self, channel):
        clock_before = channel._clock.now_ns  # noqa: SLF001
        channel.unary_call("test.Echo", "Echo", {"msg": "x"})
        elapsed = channel._clock.now_ns - clock_before  # noqa: SLF001
        assert elapsed >= RpcConfig().round_trip_ns

    def test_larger_messages_cost_more(self, channel):
        c0 = channel._clock.now_ns  # noqa: SLF001
        channel.unary_call("test.Echo", "Echo", {"msg": "x"})
        small = channel._clock.now_ns - c0  # noqa: SLF001
        c0 = channel._clock.now_ns  # noqa: SLF001
        channel.unary_call("test.Echo", "Echo", {"msg": "x" * 100_000})
        large = channel._clock.now_ns - c0  # noqa: SLF001
        assert large > small

    def test_failed_call_still_charged(self, channel):
        c0 = channel._clock.now_ns  # noqa: SLF001
        with pytest.raises(RpcStatusError):
            channel.unary_call("test.Echo", "Fail", {"kind": "exists"})
        assert channel._clock.now_ns > c0  # noqa: SLF001

    def test_closed_channel_rejects_calls(self, channel):
        channel.close()
        with pytest.raises(RpcError):
            channel.unary_call("test.Echo", "Echo", {})

    def test_counters(self, channel):
        channel.unary_call("test.Echo", "Echo", {"msg": "a"})
        with pytest.raises(RpcStatusError):
            channel.unary_call("test.Echo", "Fail", {"kind": "value"})
        assert channel.counters.get("calls") == 2
        assert channel.counters.get("calls_failed") == 1
        assert channel.counters.get("bytes_sent") > 0


class TestStub:
    def test_stub_methods_call_through(self, channel):
        stub = channel.stub("test.Echo")
        assert stub.Echo({"msg": "stubbed"}) == {"echo": "stubbed"}

    def test_stub_with_no_request(self, channel):
        stub = channel.stub("test.Echo")
        assert stub.ReturnsNone() == {}

    def test_stub_unknown_method_raises_on_call(self, channel):
        stub = channel.stub("test.Echo")
        with pytest.raises(RpcStatusError) as excinfo:
            stub.DoesNotExist({})
        assert excinfo.value.code is StatusCode.UNIMPLEMENTED

    def test_private_attribute_access_raises(self, channel):
        stub = channel.stub("test.Echo")
        with pytest.raises(AttributeError):
            _ = stub._private
