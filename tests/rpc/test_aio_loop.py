"""EventLoop scheduling semantics: seeded tie-breaking, sleeps, futures,
gather/race composition, and bit-identical re-runs."""

import pytest

from repro.common.clock import SimClock
from repro.common.rng import DeterministicRng
from repro.rpc.aio import EventLoop, EventLoopError, Future, Sleep


def make_loop(seed: int = 7) -> EventLoop:
    return EventLoop(SimClock(), DeterministicRng(seed))


def sleeper(log, name, delta_ns, loop):
    yield Sleep(delta_ns)
    log.append((name, loop.now_ns))
    return name


class TestScheduling:
    def test_sleep_orders_by_wake_time(self):
        loop = make_loop()
        log = []
        loop.spawn(sleeper(log, "late", 2_000, loop))
        loop.spawn(sleeper(log, "early", 1_000, loop))
        loop.drain()
        assert log == [("early", 1_000), ("late", 2_000)]

    def test_clock_advances_to_wake_times_only(self):
        loop = make_loop()
        loop.spawn(sleeper([], "a", 5_000, loop))
        loop.drain()
        assert loop.now_ns == 5_000

    def test_run_until_advances_to_deadline(self):
        loop = make_loop()
        log = []
        loop.spawn(sleeper(log, "a", 1_000, loop))
        loop.run_until(10_000)
        assert log == [("a", 1_000)]
        assert loop.now_ns == 10_000

    def test_run_until_leaves_future_events_pending(self):
        loop = make_loop()
        log = []
        loop.spawn(sleeper(log, "far", 50_000, loop))
        loop.run_until(10_000)
        assert log == []
        assert loop.pending() == 1
        loop.drain()
        assert log == [("far", 50_000)]

    def test_past_due_events_run_at_current_time(self):
        # A handler that advances the clock beyond another event's wake time
        # must not rewind time; the late event runs at "now".
        loop = make_loop()
        log = []

        def greedy():
            yield Sleep(100)
            loop.clock.advance(10_000)  # inline model cost overshoots

        loop.spawn(greedy())
        loop.spawn(sleeper(log, "b", 200, loop))
        loop.drain()
        assert log and log[0][1] >= 200

    def test_spawn_returns_task_with_result(self):
        loop = make_loop()

        def work():
            yield Sleep(10)
            return 42

        task = loop.spawn(work())
        assert loop.run_until_complete(task) == 42

    def test_task_exception_delivered_via_future(self):
        loop = make_loop()

        def boom():
            yield Sleep(1)
            raise ValueError("kaput")

        task = loop.spawn(boom())
        with pytest.raises(ValueError, match="kaput"):
            loop.run_until_complete(task)

    def test_deadlock_detected(self):
        loop = make_loop()
        fut = Future(loop)
        with pytest.raises(EventLoopError, match="deadlock"):
            loop.run_until_complete(fut)

    def test_yielding_garbage_is_an_error(self):
        loop = make_loop()

        def bad():
            yield "not awaitable"

        loop.spawn(bad())
        with pytest.raises(EventLoopError, match="may only yield"):
            loop.drain()


class TestFutures:
    def test_await_future_resumes_with_value(self):
        loop = make_loop()
        fut = Future(loop)

        def waiter():
            value = yield fut
            return value * 2

        def resolver():
            yield Sleep(500)
            fut.set_result(21)

        task = loop.spawn(waiter())
        loop.spawn(resolver())
        assert loop.run_until_complete(task) == 42

    def test_await_resolved_future_continues_inline(self):
        loop = make_loop()

        def waiter():
            value = yield loop.completed(7)
            return value

        task = loop.spawn(waiter())
        assert loop.run_until_complete(task) == 7

    def test_future_exception_propagates_into_task(self):
        loop = make_loop()
        fut = Future(loop)

        def waiter():
            try:
                yield fut
            except RuntimeError:
                return "caught"
            return "missed"

        task = loop.spawn(waiter())
        fut.set_exception(RuntimeError("x"))
        assert loop.run_until_complete(task) == "caught"

    def test_double_resolve_rejected(self):
        loop = make_loop()
        fut = Future(loop)
        fut.set_result(1)
        with pytest.raises(EventLoopError):
            fut.set_result(2)

    def test_await_task_awaits_its_future(self):
        loop = make_loop()

        def child():
            yield Sleep(100)
            return "child-done"

        def parent():
            result = yield loop.spawn(child())
            return result

        task = loop.spawn(parent())
        assert loop.run_until_complete(task) == "child-done"


class TestComposition:
    def test_gather_preserves_input_order(self):
        loop = make_loop()
        tasks = [loop.spawn(sleeper([], f"t{i}", 1_000 - i * 100, loop))
                 for i in range(5)]
        results = loop.run_until_complete(loop.gather(tasks))
        assert results == ["t0", "t1", "t2", "t3", "t4"]

    def test_gather_captures_exceptions_as_values(self):
        loop = make_loop()

        def ok():
            yield Sleep(1)
            return "fine"

        def bad():
            yield Sleep(2)
            raise ValueError("nope")

        results = loop.run_until_complete(
            loop.gather([loop.spawn(ok()), loop.spawn(bad())]))
        assert results[0] == "fine"
        assert isinstance(results[1], ValueError)

    def test_gather_empty(self):
        loop = make_loop()
        assert loop.run_until_complete(loop.gather([])) == []

    def test_race_returns_first_winner(self):
        loop = make_loop()
        slow = loop.spawn(sleeper([], "slow", 10_000, loop))
        fast = loop.spawn(sleeper([], "fast", 1_000, loop))
        index, value = loop.run_until_complete(loop.race([slow, fast]))
        assert (index, value) == (1, "fast")
        loop.drain()  # the loser finishes harmlessly

    def test_race_needs_entries(self):
        loop = make_loop()
        with pytest.raises(EventLoopError):
            loop.race([])


class TestDeterminism:
    @staticmethod
    def _run(seed: int):
        loop = make_loop(seed)
        rng = DeterministicRng(seed).spawn("schedule")
        log = []

        def job(i):
            # Several tasks share wake instants on purpose: tie-breaks decide.
            for _ in range(3):
                yield Sleep(rng.integer(0, 5) * 100)
            log.append((i, loop.now_ns))

        for i in range(20):
            loop.spawn(job(i))
        loop.drain()
        return log, loop.now_ns

    def test_same_seed_same_interleaving(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_different_interleaving(self):
        # Not guaranteed in principle, but with 20 tasks x 3 sleeps the
        # probability of a collision is negligible; a failure here means the
        # tie-rank stream is not actually seeded.
        assert self._run(11)[0] != self._run(12)[0]

    def test_tie_break_is_seeded_not_fifo(self):
        # Two events at the same instant: order must be reproducible.
        first = []
        for _ in range(2):
            loop = make_loop(3)
            log = []
            for name in ("a", "b", "c", "d"):
                loop.spawn(sleeper(log, name, 1_000, loop))
            loop.drain()
            first.append([name for name, _ in log])
        assert first[0] == first[1]
