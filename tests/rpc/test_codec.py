"""Wire codec: exhaustive round-trips + malformed-input rejection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rpc.codec import MessageError, decode_message, encode_message


class TestRoundTrips:
    def test_empty_message(self):
        assert decode_message(encode_message({})) == {}

    def test_scalars(self):
        msg = {
            "none": None,
            "t": True,
            "f": False,
            "int": 42,
            "neg": -7,
            "big": 2**62,
            "float": 3.14159,
            "bytes": b"\x00\xff raw",
            "str": "unicode ✓ text",
        }
        assert decode_message(encode_message(msg)) == msg

    def test_nested_structures(self):
        msg = {
            "list": [1, "two", b"three", None, True],
            "dict": {"inner": {"deep": [1, 2, 3]}},
            "descriptors": [
                {"object_id": b"x" * 20, "offset": 4096, "data_size": 1000},
                {"object_id": b"y" * 20, "offset": 8192, "data_size": 2000},
            ],
        }
        assert decode_message(encode_message(msg)) == msg

    def test_empty_containers(self):
        msg = {"l": [], "d": {}, "s": "", "b": b""}
        assert decode_message(encode_message(msg)) == msg

    def test_int_boundaries(self):
        for v in (0, 1, -1, 127, 128, 2**63 - 1, -(2**63)):
            assert decode_message(encode_message({"v": v}))["v"] == v

    def test_deterministic_encoding(self):
        msg = {"a": 1, "b": [b"x" * 20]}
        assert encode_message(msg) == encode_message(msg)

    def test_bytearray_and_memoryview_become_bytes(self):
        msg = {"ba": bytearray(b"abc"), "mv": memoryview(b"def")}
        out = decode_message(encode_message(msg))
        assert out == {"ba": b"abc", "mv": b"def"}

    def test_tuple_becomes_list(self):
        assert decode_message(encode_message({"t": (1, 2)}))["t"] == [1, 2]

    @settings(max_examples=200)
    @given(
        st.dictionaries(
            st.text(max_size=20),
            st.recursive(
                st.one_of(
                    st.none(),
                    st.booleans(),
                    st.integers(-(2**63), 2**63 - 1),
                    st.floats(allow_nan=False),
                    st.binary(max_size=64),
                    st.text(max_size=64),
                ),
                lambda inner: st.one_of(
                    st.lists(inner, max_size=5),
                    st.dictionaries(st.text(max_size=10), inner, max_size=5),
                ),
                max_leaves=20,
            ),
            max_size=8,
        )
    )
    def test_roundtrip_property(self, msg):
        assert decode_message(encode_message(msg)) == msg


class TestRejection:
    def test_non_dict_message_rejected_on_encode(self):
        with pytest.raises(MessageError):
            encode_message([1, 2, 3])  # type: ignore[arg-type]

    def test_unsupported_type_rejected(self):
        with pytest.raises(MessageError):
            encode_message({"x": object()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(MessageError):
            encode_message({1: "x"})  # type: ignore[dict-item]

    def test_int_out_of_range_rejected(self):
        with pytest.raises(MessageError):
            encode_message({"x": 2**64})

    def test_excessive_nesting_rejected(self):
        msg: dict = {"x": None}
        for _ in range(20):
            msg = {"n": msg}
        with pytest.raises(MessageError):
            encode_message(msg)

    def test_truncated_wire_rejected(self):
        wire = encode_message({"k": b"0123456789"})
        with pytest.raises(MessageError):
            decode_message(wire[:-3])

    def test_trailing_bytes_rejected(self):
        wire = encode_message({"k": 1})
        with pytest.raises(MessageError):
            decode_message(wire + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(MessageError):
            decode_message(b"\x63")

    def test_non_dict_top_level_rejected(self):
        # Tag 3 (int) zigzag-encoded 0 -> not a dict at top level.
        with pytest.raises(MessageError):
            decode_message(b"\x03\x00")

    def test_empty_wire_rejected(self):
        with pytest.raises(MessageError):
            decode_message(b"")
