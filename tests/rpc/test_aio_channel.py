"""AsyncChannel: pipelined unary tasks, coalesced batches, and the
buffered-deadline fail-fast regression (doomed wire messages must not ship)."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import RpcConfig
from repro.common.errors import RpcStatusError
from repro.common.rng import DeterministicRng
from repro.rpc import RpcServer, Service, StatusCode, rpc_method
from repro.rpc.aio import AsyncChannel, EventLoop, Sleep


class DirService(Service):
    """An object_ids-shaped service mimicking the store directory RPCs."""

    SERVICE_NAME = "test.Dir"

    def __init__(self, known=()):
        self.known = {bytes(k) for k in known}
        self.lookups = 0

    @rpc_method
    def Lookup(self, request: dict) -> dict:
        self.lookups += 1
        found = [{"object_id": oid, "offset": 0, "data_size": 1}
                 for oid in request["object_ids"] if bytes(oid) in self.known]
        return {"found": found, "store": "node-x"}

    @rpc_method
    def Contains(self, request: dict) -> dict:
        return {"present": [bytes(o) in self.known for o in request["object_ids"]]}

    @rpc_method
    def AddRef(self, request: dict) -> dict:
        return {}

    @rpc_method
    def Echo(self, request: dict) -> dict:
        return {"echo": request.get("msg", "")}


@pytest.fixture
def world():
    clock = SimClock()
    rng = DeterministicRng(7)
    loop = EventLoop(clock, rng)
    service = DirService(known=[b"obj-1", b"obj-2"])
    server = RpcServer("node-x")
    server.add_service(service)

    def channel(**cfg):
        return AsyncChannel(
            "node-y", server, clock, RpcConfig(jitter_sigma=0.0, **cfg),
            rng, loop=loop)

    return clock, loop, service, channel


class TestUnaryTask:
    def test_roundtrip_matches_sync_response(self, world):
        _, loop, _, make = world
        ch = make()
        task = loop.spawn(ch.unary_task("test.Dir", "Echo", {"msg": "hi"}))
        assert loop.run_until_complete(task) == {"echo": "hi"}

    def test_concurrent_calls_overlap_in_simulated_time(self, world):
        clock, loop, _, make = world
        ch = make()
        t0 = clock.now_ns
        ch.unary_call("test.Dir", "Echo", {"msg": "x"})
        serial = clock.now_ns - t0

        t0 = clock.now_ns
        tasks = [loop.spawn(ch.unary_task("test.Dir", "Echo", {"msg": "x"}))
                 for _ in range(4)]
        loop.run_until_complete(loop.gather(tasks))
        concurrent = clock.now_ns - t0
        # Four pipelined calls must cost far less than four serial calls.
        assert concurrent < 2 * serial
        assert ch.aio_counters["in_flight_peak"] == 4

    def test_deadline_exceeded_raises(self, world):
        _, loop, _, make = world
        ch = make()
        task = loop.spawn(ch.unary_task(
            "test.Dir", "Echo", {"msg": "x"}, deadline_ns=1_000.0))
        with pytest.raises(RpcStatusError) as excinfo:
            loop.run_until_complete(task)
        assert excinfo.value.code is StatusCode.DEADLINE_EXCEEDED

    def test_transient_failures_are_retried(self, world):
        _, loop, _, make = world
        ch = make(inject_failure_rate=0.45, max_retries=4)
        results = []
        for i in range(10):
            task = loop.spawn(ch.unary_task("test.Dir", "Echo", {"msg": str(i)}))
            results.append(loop.run_until_complete(task))
        assert all(r["echo"] == str(i) for i, r in enumerate(results))
        assert ch.counters.get("retries") > 0

    def test_error_status_raises_same_as_sync(self, world):
        _, loop, _, make = world
        ch = make()
        task = loop.spawn(ch.unary_task("test.Dir", "Missing", {}))
        with pytest.raises(RpcStatusError) as excinfo:
            loop.run_until_complete(task)
        assert excinfo.value.code is StatusCode.UNIMPLEMENTED


class TestCoalescing:
    def test_window_merges_submissions_into_one_wire_message(self, world):
        _, loop, service, make = world
        ch = make(batch_window_ns=100_000.0, max_batch=64)
        futs = [ch.batched_call("test.Dir", "Lookup", [b"obj-1"]),
                ch.batched_call("test.Dir", "Lookup", [b"obj-2"]),
                ch.batched_call("test.Dir", "Lookup", [b"obj-9"])]
        results = loop.run_until_complete(loop.gather(futs))
        assert service.lookups == 1
        assert ch.aio_counters["batches_sent"] == 1
        assert ch.aio_counters["batched_ids"] == 3
        # Each submitter sees only its own slice of the merged response.
        assert [d["object_id"] for d in results[0]["found"]] == [b"obj-1"]
        assert [d["object_id"] for d in results[1]["found"]] == [b"obj-2"]
        assert results[2]["found"] == []

    def test_contains_splits_positionally(self, world):
        _, loop, _, make = world
        ch = make(batch_window_ns=50_000.0)
        futs = [ch.batched_call("test.Dir", "Contains", [b"obj-1", b"nope"]),
                ch.batched_call("test.Dir", "Contains", [b"obj-2"])]
        results = loop.run_until_complete(loop.gather(futs))
        assert results[0]["present"] == [True, False]
        assert results[1]["present"] == [True]

    def test_max_batch_flushes_immediately(self, world):
        _, loop, service, make = world
        ch = make(batch_window_ns=10_000_000.0, max_batch=2)
        futs = [ch.batched_call("test.Dir", "Lookup", [b"obj-1"]),
                ch.batched_call("test.Dir", "Lookup", [b"obj-2"])]
        # max_batch hit: the flush happened without waiting out the window.
        loop.run_until_complete(loop.gather(futs))
        assert service.lookups == 1
        assert loop.now_ns < 10_000_000

    def test_zero_window_dispatches_per_submission(self, world):
        _, loop, service, make = world
        ch = make(batch_window_ns=0.0)
        futs = [ch.batched_call("test.Dir", "Lookup", [b"obj-1"]),
                ch.batched_call("test.Dir", "Lookup", [b"obj-2"])]
        loop.run_until_complete(loop.gather(futs))
        assert service.lookups == 2

    def test_unbatchable_method_rejected(self, world):
        _, _, _, make = world
        with pytest.raises(ValueError):
            make().batched_call("test.Dir", "Echo", [b"x"])

    def test_wire_failure_fans_out_to_all_entries(self, world):
        _, loop, _, make = world
        ch = make(batch_window_ns=50_000.0, inject_failure_rate=1.0,
                  max_retries=0)
        futs = [ch.batched_call("test.Dir", "Lookup", [b"obj-1"]),
                ch.batched_call("test.Dir", "Lookup", [b"obj-2"])]
        results = loop.run_until_complete(loop.gather(futs))
        assert all(isinstance(r, RpcStatusError) for r in results)
        assert all(r.code is StatusCode.UNAVAILABLE for r in results)


class TestBufferedDeadlineFailFast:
    """Regression (satellite fix): a deadline that expires while the request
    sits in the coalescing buffer must fail fast — no doomed wire message,
    no retry-budget spend."""

    def test_expired_entry_never_dispatched(self, world):
        _, loop, service, make = world
        ch = make(batch_window_ns=200_000.0, max_batch=64,
                  retry_budget_per_s=1.0, retry_budget_burst=1)
        # Budget smaller than the batch window: it expires in the buffer.
        doomed = ch.batched_call("test.Dir", "Lookup", [b"obj-1"],
                                 deadline_ns=50_000.0)
        live = ch.batched_call("test.Dir", "Lookup", [b"obj-2"])
        results = loop.run_until_complete(loop.gather([doomed, live]))
        assert isinstance(results[0], RpcStatusError)
        assert results[0].code is StatusCode.DEADLINE_EXCEEDED
        assert "failed fast" in str(results[0])
        # The surviving entry still shipped — in a single wire message that
        # excludes the expired one.
        assert service.lookups == 1
        assert [d["object_id"] for d in results[1]["found"]] == [b"obj-2"]
        assert ch.aio_counters["batch_expired"] == 1
        # No retry token was burned on the doomed request.
        assert ch.counters.get("retries_suppressed") == 0
        assert ch.retry_budget.try_spend()

    def test_whole_batch_expired_sends_nothing(self, world):
        _, loop, service, make = world
        ch = make(batch_window_ns=500_000.0, max_batch=64)
        futs = [ch.batched_call("test.Dir", "Lookup", [b"obj-1"],
                                deadline_ns=10_000.0),
                ch.batched_call("test.Dir", "Lookup", [b"obj-2"],
                                deadline_ns=20_000.0)]
        results = loop.run_until_complete(loop.gather(futs))
        assert all(r.code is StatusCode.DEADLINE_EXCEEDED for r in results)
        assert service.lookups == 0
        assert ch.aio_counters["batches_sent"] == 0
        assert ch.aio_counters["batch_expired"] == 2

    def test_deadline_with_headroom_survives_the_window(self, world):
        _, loop, service, make = world
        ch = make(batch_window_ns=50_000.0, max_batch=64)
        fut = ch.batched_call("test.Dir", "Lookup", [b"obj-1"],
                              deadline_ns=50_000_000.0)
        result = loop.run_until_complete(fut)
        assert [d["object_id"] for d in result["found"]] == [b"obj-1"]
        assert service.lookups == 1


class TestStreamingPull:
    def test_task_form_interleaves_with_other_tasks(self):
        # Use a stub region: what matters here is that the task yields
        # between chunks so another task can run mid-transfer.
        from repro.rpc.aio.streaming import stream_pull, stream_pull_task

        class Region:
            def __init__(self, payload, clock):
                self.payload = payload
                self.clock = clock

            def view(self, offset, size):
                return memoryview(self.payload)[offset:offset + size]

            def charge_read(self, size):
                self.clock.advance(size * 10)

        clock = SimClock()
        loop = EventLoop(clock, DeterministicRng(3))
        payload = bytes(range(256)) * 16  # 4096 B
        region = Region(payload, clock)

        assert stream_pull(region, 0, len(payload), chunk_bytes=1024) == payload

        marks = []

        def pull():
            data = yield from stream_pull_task(
                region, 0, len(payload), chunk_bytes=1024)
            return data

        def observer():
            for _ in range(3):
                yield Sleep(5_000)
                marks.append(clock.now_ns)

        task = loop.spawn(pull())
        loop.spawn(observer())
        assert loop.run_until_complete(task) == payload
        pull_done_ns = clock.now_ns
        loop.drain()
        # The observer got scheduler slots while the pull was in progress.
        assert marks and marks[0] < pull_done_ns
