"""Codec robustness: arbitrary bytes must never crash the decoder."""

from hypothesis import given, settings, strategies as st

from repro.rpc.codec import MessageError, decode_message, encode_message


@settings(max_examples=500)
@given(st.binary(max_size=200))
def test_decode_arbitrary_bytes_never_crashes(data):
    """Any input either decodes to a dict or raises MessageError — no other
    exception type, no hang, no partial state."""
    try:
        result = decode_message(data)
    except MessageError:
        return
    assert isinstance(result, dict)
    # Anything that decodes must re-encode and decode to the same value
    # (canonicalisation may differ, the value may not).
    assert decode_message(encode_message(result)) == result


@settings(max_examples=200)
@given(st.binary(max_size=100), st.integers(0, 99))
def test_bit_flips_in_valid_messages_are_contained(payload, position):
    """Corrupting a valid wire message never crashes the decoder with
    anything but MessageError (or yields some other valid message — both
    are acceptable for a codec without checksums, which mirrors protobuf)."""
    wire = bytearray(encode_message({"key": payload, "n": 42}))
    wire[position % len(wire)] ^= 0xFF
    try:
        result = decode_message(bytes(wire))
    except MessageError:
        return
    assert isinstance(result, dict)
