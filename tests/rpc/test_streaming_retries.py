"""Streaming calls and fault-injection/retry behaviour of the channel."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import RpcConfig
from repro.common.errors import RpcStatusError
from repro.common.rng import DeterministicRng
from repro.rpc import Channel, RpcServer, Service, StatusCode, rpc_method


class CounterService(Service):
    SERVICE_NAME = "test.Counter"

    def __init__(self):
        self.calls = 0

    @rpc_method
    def Bump(self, request: dict) -> dict:
        self.calls += 1
        return {"value": request.get("by", 1) * 2}

    @rpc_method
    def FailOn(self, request: dict) -> dict:
        if request.get("boom"):
            raise ValueError("requested failure")
        return {"ok": True}


def make_channel(**cfg_kwargs):
    service = CounterService()
    server = RpcServer("srv")
    server.add_service(service)
    clock = SimClock()
    channel = Channel(
        "cli",
        server,
        clock,
        RpcConfig(jitter_sigma=0.0, **cfg_kwargs),
        DeterministicRng(21),
    )
    return service, clock, channel


class TestStreaming:
    def test_stream_returns_one_response_per_request(self):
        service, _, channel = make_channel()
        responses = channel.stream_call(
            "test.Counter", "Bump", [{"by": i} for i in range(10)]
        )
        assert [r["value"] for r in responses] == [i * 2 for i in range(10)]
        assert service.calls == 10

    def test_empty_stream_is_free(self):
        _, clock, channel = make_channel()
        assert channel.stream_call("test.Counter", "Bump", []) == []
        assert clock.now_ns == 0

    def test_stream_pays_one_round_trip(self):
        _, clock, channel = make_channel()
        channel.stream_call("test.Counter", "Bump", [{"by": 1}] * 100)
        one_stream = clock.now_ns
        # 100 unary calls pay 100 round trips.
        _, clock2, channel2 = make_channel()
        for _ in range(100):
            channel2.unary_call("test.Counter", "Bump", {"by": 1})
        assert clock2.now_ns > 50 * one_stream

    def test_stream_per_message_cost_scales(self):
        _, clock, channel = make_channel()
        channel.stream_call("test.Counter", "Bump", [{"by": 1}] * 10)
        ten = clock.now_ns
        channel.stream_call("test.Counter", "Bump", [{"by": 1}] * 1000)
        thousand = clock.now_ns - ten
        assert thousand > ten  # per-message term visible

    def test_stream_aborts_on_first_error(self):
        service, _, channel = make_channel()
        requests = [{"boom": False}, {"boom": True}, {"boom": False}]
        with pytest.raises(RpcStatusError) as excinfo:
            channel.stream_call("test.Counter", "FailOn", requests)
        assert excinfo.value.code is StatusCode.INVALID_ARGUMENT
        assert service.calls == 0  # FailOn doesn't bump; Bump untouched

    def test_stream_on_closed_channel(self):
        _, _, channel = make_channel()
        channel.close()
        from repro.common.errors import RpcError

        with pytest.raises(RpcError):
            channel.stream_call("test.Counter", "Bump", [{}])


class TestFaultInjectionAndRetries:
    def test_zero_rate_never_fails(self):
        _, _, channel = make_channel(inject_failure_rate=0.0)
        for _ in range(100):
            channel.unary_call("test.Counter", "Bump", {"by": 1})

    def test_retries_mask_transient_faults(self):
        service, _, channel = make_channel(
            inject_failure_rate=0.3, max_retries=10
        )
        for _ in range(50):
            response = channel.unary_call("test.Counter", "Bump", {"by": 3})
            assert response["value"] == 6
        assert channel.counters.get("retries") > 0
        assert service.calls == 50

    def test_exhausted_retries_surface_unavailable(self):
        _, _, channel = make_channel(inject_failure_rate=1.0, max_retries=2)
        with pytest.raises(RpcStatusError) as excinfo:
            channel.unary_call("test.Counter", "Bump", {})
        assert excinfo.value.code is StatusCode.UNAVAILABLE
        assert "3 attempts" in excinfo.value.detail
        assert channel.counters.get("attempts_failed") == 3

    def test_each_failed_attempt_is_charged(self):
        _, clock, channel = make_channel(inject_failure_rate=1.0, max_retries=4)
        with pytest.raises(RpcStatusError):
            channel.unary_call("test.Counter", "Bump", {})
        # 5 attempts x ~2.3 ms round trip.
        assert clock.now_ns >= 5 * RpcConfig().round_trip_ns * 0.9

    def test_no_retries_configured(self):
        _, _, channel = make_channel(inject_failure_rate=1.0, max_retries=0)
        with pytest.raises(RpcStatusError):
            channel.unary_call("test.Counter", "Bump", {})
        assert channel.counters.get("attempts_failed") == 1

    def test_cluster_survives_flaky_network(self):
        """End to end: a cluster configured with a lossy RPC layer still
        serves remote objects (retries under the hood)."""
        import dataclasses

        from repro.common.config import testing_config as make_testing_config
        from repro.common.units import MiB
        from repro.core import Cluster

        base = make_testing_config(capacity_bytes=32 * MiB, seed=13)
        cfg = dataclasses.replace(
            base,
            rpc=dataclasses.replace(
                base.rpc, inject_failure_rate=0.25, max_retries=8
            ),
        )
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        p = cluster.client("node0")
        c = cluster.client("node1")
        for oid in cluster.new_object_ids(20):
            p.put_bytes(oid, b"resilient")
            assert c.get_bytes(oid) == b"resilient"
