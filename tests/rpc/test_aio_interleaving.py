"""Interleaving determinism for the async event-loop RPC core.

The property the whole async plane stands on: a schedule of concurrent
tasks is a pure function of its seed. For each seed we spawn a few
hundred randomly-parameterized multi-get / put / delete / invalidate
tasks at random issue offsets — genuinely overlapping in simulated time,
coalescing into shared batches, racing hedges — and record every
completion as ``(timestamp_ns, tag, payload digest)``. Running the
identical schedule against a fresh cluster must reproduce that log bit
for bit: same interleaving, same nanosecond timestamps, same bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.common.config import testing_config as small_cluster_config
from repro.common.errors import ReproError
from repro.common.ids import ObjectID
from repro.common.rng import DeterministicRng, derive_seed
from repro.common.units import MiB
from repro.core import Cluster
from repro.rpc.aio.loop import Sleep

import pytest

SEEDS = (1, 2, 3, 4, 5)
N_OPS = 200

#: Issue offsets densely packed so many tasks are in flight at once.
_MAX_OFFSET_NS = 3_000_000
_SIZES = (64, 512, 2048, 8192)


def _payload(obj: int, size: int) -> bytes:
    return bytes([(obj * 31 + i) % 251 for i in range(size)])


def _digest(value) -> str:
    h = hashlib.sha256()
    if isinstance(value, (list, tuple)):
        for item in value:
            h.update(b"\x00" if item is None else b"\x01" + item)
    elif value is not None:
        h.update(value)
    return h.hexdigest()[:16]


def _build_cluster() -> Cluster:
    cfg = small_cluster_config(capacity_bytes=32 * MiB, seed=7)
    cfg = replace(
        cfg,
        rpc=replace(
            cfg.rpc,
            batch_window_ns=100_000.0,
            max_batch=8,
            hedge_stagger_ns=2_000_000.0,
        ),
    )
    cluster = Cluster(
        cfg,
        n_nodes=3,
        check_remote_uniqueness=False,
        placement=True,
        enable_lookup_cache=True,
    )
    cluster.set_rpc_mode("async")
    return cluster


def run_schedule(seed: int) -> list[tuple[int, str, str]]:
    """One full concurrent schedule; returns the completion log."""
    cluster = _build_cluster()
    loop = cluster.loop
    clock = cluster.clock
    rng = DeterministicRng(derive_seed(seed, "aio-interleaving"))
    clients = [cluster.client(f"node{i}", client_name=f"c{i}") for i in range(3)]
    log: list[tuple[int, str, str]] = []

    next_obj = 0
    known: list[int] = []

    def record(tag: str, outcome: str) -> None:
        log.append((clock.now_ns, tag, outcome))

    def driver(delay_ns: int, tag: str, factory):
        yield Sleep(delay_ns)
        try:
            result = yield from factory()
        except ReproError as exc:
            record(tag, f"error:{type(exc).__name__}")
            return
        record(tag, _digest(result))

    def put_factory(client, obj: int, size: int, repl: int):
        def factory():
            yield from client.put_bytes_task(
                ObjectID.from_int(obj), _payload(obj, size), replicas=repl
            )
            return _payload(obj, size)

        return factory

    def mget_factory(client, objs: list[int]):
        def factory():
            out = yield from client.multi_get_task(
                [ObjectID.from_int(o) for o in objs], allow_missing=True
            )
            return out

        return factory

    def delete_factory(client, obj: int):
        def factory():
            yield from client.delete_task(ObjectID.from_int(obj))
            return b"deleted:%d" % obj

        return factory

    def invalidate_factory(node: str, obj: int):
        # Spurious cache invalidation: drop the node's cached descriptor
        # for a (possibly live) object. The next resolution must simply
        # re-run the lookup path — never change what bytes come back.
        def factory():
            store = cluster.store(node)
            dropped = False
            if store.lookup_cache is not None:
                dropped = store.lookup_cache.invalidate(ObjectID.from_int(obj))
            return b"invalidated" if dropped else b"miss"
            yield  # pragma: no cover - makes this a generator

        return factory

    for index in range(N_OPS):
        delay = int(rng.integer(0, _MAX_OFFSET_NS))
        node = int(rng.integer(0, 3))
        client = clients[node]
        kind = int(rng.integer(0, 100))
        if kind < 35 or not known:  # put
            obj = next_obj
            next_obj += 1
            known.append(obj)
            size = int(rng.choice(list(_SIZES)))
            repl = 1 + int(rng.integer(0, 2))
            factory = put_factory(client, obj, size, repl)
            tag = f"{index}:put:{obj}"
        elif kind < 75:  # multi_get, duplicates and misses included
            count = 1 + int(rng.integer(0, 5))
            objs = [int(rng.choice(known)) for _ in range(count)]
            if rng.integer(0, 4) == 0:
                objs[0] = next_obj + 1000  # guaranteed miss
            factory = mget_factory(client, objs)
            tag = f"{index}:mget:{','.join(map(str, objs))}"
        elif kind < 88:  # delete
            obj = int(rng.choice(known))
            known.remove(obj)
            factory = delete_factory(client, obj)
            tag = f"{index}:del:{obj}"
        else:  # invalidate
            obj = int(rng.choice(known))
            factory = invalidate_factory(f"node{node}", obj)
            tag = f"{index}:inv:{obj}"
        loop.spawn(driver(delay, tag, factory), name=tag)

    loop.drain()
    record("end", str(clock.now_ns))
    return log


@pytest.mark.parametrize("seed", SEEDS)
def test_schedule_replays_bit_identically(seed):
    first = run_schedule(seed)
    second = run_schedule(seed)
    assert first == second
    assert len(first) == N_OPS + 1


def test_distinct_seeds_produce_distinct_interleavings():
    assert run_schedule(1) != run_schedule(2)


def test_schedules_actually_overlap():
    """The property is vacuous if tasks serialize; require real overlap."""
    cluster = _build_cluster()
    loop = cluster.loop
    client = cluster.client("node0", client_name="c0")
    oids = [ObjectID.from_int(1000 + i) for i in range(8)]
    for oid in oids:
        client.put_bytes(oid, b"z" * 1024, replicas=1)
    reader = cluster.client("node1", client_name="c1")
    tasks = [
        loop.spawn(
            reader.multi_get_task([oid], allow_missing=True), name=f"g{i}"
        )
        for i, oid in enumerate(oids)
    ]
    loop.drain()
    assert all(t.future.result() == [b"z" * 1024] for t in tasks)
    peak = max(
        ch.aio_counters["in_flight_peak"]
        for node in cluster.node_names()
        for ch in cluster.node(node).channels.values()
    )
    assert peak >= 2
