"""`python -m repro trace` and the `metrics --out` file path."""

import json

from repro.cli import main


class TestTraceCommand:
    def test_writes_chrome_trace_and_prints_attribution(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--objects", "4", "--rounds", "1", "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["args"]["trace_id"]
            assert event["args"]["span_id"]
        text = capsys.readouterr().out
        assert "components sum exactly: True" in text
        assert "put" in text

    def test_snapshot_and_flight_outputs(self, tmp_path, capsys):
        snap_path = tmp_path / "snap.json"
        flight_path = tmp_path / "flight.json"
        rc = main([
            "trace", "--objects", "3", "--rounds", "1",
            "--out", str(tmp_path / "trace.json"),
            "--snapshot", str(snap_path),
            "--flight", str(flight_path),
        ])
        assert rc == 0
        snap = json.loads(snap_path.read_text(encoding="utf-8"))
        assert snap["schema_version"] == 1
        assert snap["traces"]
        flight = json.loads(flight_path.read_text(encoding="utf-8"))
        assert flight["nodes"]

    def test_artifacts_are_deterministic(self, tmp_path):
        paths = []
        for label in ("a", "b"):
            out = tmp_path / f"trace_{label}.json"
            assert main([
                "trace", "--objects", "3", "--rounds", "1", "--out", str(out),
            ]) == 0
            paths.append(out)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_sample_rate_zero_still_exact(self, tmp_path, capsys):
        rc = main([
            "trace", "--objects", "3", "--rounds", "1",
            "--sample-rate", "0.0", "--out", str(tmp_path / "t.json"),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "components sum exactly: True" in text


class TestMetricsOut:
    def test_scrape_to_file(self, tmp_path, capsys):
        out = tmp_path / "scrape.txt"
        rc = main([
            "metrics", "--objects", "6", "--rounds", "1", "--out", str(out),
        ])
        assert rc == 0
        text = out.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert any(
            line.startswith("repro_") for line in text.splitlines()
        )
        assert f"wrote {out}" in capsys.readouterr().out

    def test_json_snapshot_to_file(self, tmp_path):
        out = tmp_path / "snap.json"
        rc = main([
            "metrics", "--objects", "6", "--rounds", "1",
            "--json", "--out", str(out),
        ])
        assert rc == 0
        snapshot = json.loads(out.read_text(encoding="utf-8"))
        assert snapshot
