"""Integration tests: Cluster(metrics=True) produces a merged scrape that
covers every instrumented subsystem."""

import pytest

from repro.common.errors import ObjectStoreError
from repro.core.cluster import Cluster
from repro.obs.export import Telemetry

MiB = 1024 * 1024


def _run_workload(cluster: Cluster) -> None:
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oids = cluster.new_object_ids(6)
    for i, oid in enumerate(oids):
        producer.put_bytes(oid, bytes([i % 251]) * 8192)
    for oid in oids:
        [buf] = consumer.get([oid])
        buf.read_all()
        consumer.release(oid)
    cluster.health_tick()


class TestClusterMetrics:
    def test_scrape_covers_subsystems(self):
        cluster = Cluster(
            n_nodes=2, check_remote_uniqueness=False, enable_lookup_cache=True,
            metrics=True,
        )
        _run_workload(cluster)
        scrape = cluster.metrics().prometheus()
        prefixes = {
            line.split("{")[0].removeprefix("repro_").split("_")[0]
            for line in scrape.splitlines()
            if line and not line.startswith("#")
        }
        for subsystem in (
            "plasma", "rpc", "thymesisflow", "allocator", "ipc", "health", "cache",
        ):
            assert subsystem in prefixes, f"missing {subsystem}: {sorted(prefixes)}"

    def test_latency_quantiles_present(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False, metrics=True)
        _run_workload(cluster)
        scrape = cluster.metrics().prometheus()
        for family in (
            "repro_plasma_get_latency_ns",
            "repro_plasma_create_latency_ns",
            "repro_rpc_client_latency_ns",
            "repro_rpc_server_latency_ns",
            "repro_thymesisflow_read_latency_ns",
        ):
            assert f'{family}{{' in scrape, family
        assert 'quantile="0.95"' in scrape

    def test_metrics_returns_telemetry(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False, metrics=True)
        telemetry = cluster.metrics()
        assert isinstance(telemetry, Telemetry)
        assert set(telemetry.nodes()) == {"node0", "node1", "fabric"}
        assert cluster.registry("node0").node == "node0"

    def test_metrics_requires_flag(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False)
        with pytest.raises(ObjectStoreError, match="metrics=True"):
            cluster.metrics()

    def test_fabric_registry_owns_link_latency(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False, metrics=True)
        _run_workload(cluster)
        fabric = cluster.registry("fabric")
        names = {f["name"] for f in fabric.collect()}
        assert "thymesisflow_read_latency_ns" in names

    def test_gauges_sample_live_state(self):
        cluster = Cluster(
            n_nodes=2, check_remote_uniqueness=False, enable_lookup_cache=True,
            metrics=True,
        )
        _run_workload(cluster)
        snap = cluster.registry("node0").snapshot()
        by_name = {f["name"]: f for f in snap["families"]}
        util = by_name["allocator_utilization"]["series"][0]["value"]
        assert util > 0.0
        assert "cache_entries" in by_name

    def test_recover_node_rebinds_store_metrics(self):
        """After crash+recover, the fresh store's counters are scraped under
        the same families — the dead store's group is replaced."""
        cluster = Cluster(
            n_nodes=3, check_remote_uniqueness=False, metrics=True,
        )
        _run_workload(cluster)
        # recover_node models a store-process restart over the surviving
        # region; no explicit crash step is needed to exercise the rebind.
        cluster.recover_node("node0")
        producer = cluster.client("node0")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"y" * 4096)
        snap = cluster.registry("node0").snapshot()
        by_name = {f["name"]: f for f in snap["families"]}
        creates = sum(
            s["value"] for s in by_name["plasma_objects_created"]["series"]
        )
        # Only the post-recovery create is visible: rebind replaced the
        # pre-crash group rather than double-counting.
        assert creates == 1.0

    def test_disabled_cluster_has_no_registries(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False)
        store = cluster.store("node0")
        assert store._m_create is None
        assert store._m_seal is None
