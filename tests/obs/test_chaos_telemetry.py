"""Seeded chaos runs must surface resilience events in the metrics scrape:
breaker-open and deadline-exceeded counts appear in the telemetry excerpt
that `python -m repro chaos` prints."""

import re

from repro.cli import main

# Seed 11's random fault plan (3 nodes, 10 objects, 2 replicas) crashes
# enough peers to open breakers and blow RPC deadlines — verified stable
# because the whole run lives on the simulated clock.
ARGS = ["chaos", "--nodes", "3", "--seed", "11", "--objects", "10",
        "--replicas", "2"]


class TestChaosTelemetry:
    def test_breaker_and_deadline_counts_in_scrape(self, capsys):
        assert main(list(ARGS)) == 0
        out = capsys.readouterr().out
        assert "telemetry (metrics scrape excerpts):" in out

        opens = re.findall(r"repro_rpc_breaker_opens\{[^}]*\} (\d+)", out)
        assert opens, "no breaker-open series in the scrape excerpt"
        assert any(int(v) > 0 for v in opens)

        deadlines = re.findall(
            r"repro_rpc_client_deadline_exceeded\{[^}]*\} (\d+)", out
        )
        assert deadlines, "no deadline-exceeded series in the scrape excerpt"
        assert any(int(v) > 0 for v in deadlines)

    def test_telemetry_lines_carry_node_and_peer_labels(self, capsys):
        assert main(list(ARGS)) == 0
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines()
            if l.strip().startswith("repro_rpc_breaker_opens")
        )
        assert 'node="' in line and 'peer="' in line

    def test_replay_is_deterministic_including_telemetry(self, capsys):
        """The chaos command replays itself and diffs everything it printed
        — including the telemetry excerpt — so a nondeterministic metric
        would flip this line to 'no' and exit nonzero."""
        assert main(list(ARGS)) == 0
        out = capsys.readouterr().out
        assert "replay with same seed identical: yes" in out
