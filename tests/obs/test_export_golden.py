"""Golden-file test of the Prometheus exposition output, plus histogram
edge cases and the cross-node Telemetry views."""

from pathlib import Path

import pytest

from repro.obs.export import Telemetry, render_prometheus
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).with_name("golden_scrape.txt")


def _build_registries() -> list[MetricsRegistry]:
    """Two per-node registries exercising every rendering feature: label
    escaping, summary quantiles, bucketed histograms, an empty family, a
    single-sample family, and cross-registry merging of one family."""
    n0 = MetricsRegistry(node="node0")
    n1 = MetricsRegistry(node="node1")

    calls = n0.counter("rpc_calls", "Completed RPC calls.", labels=("peer",))
    calls.labels(peer="node1").inc(5)
    # One family spanning both registries: exactly one HELP/TYPE header.
    n1.counter("rpc_calls", "Completed RPC calls.", labels=("peer",)).labels(
        peer="node0"
    ).inc(2)

    weird = n0.gauge("escape_check", 'Help with \\ and a "quote".', labels=("path",))
    weird.labels(path='C:\\data\n"x"').set(1)

    latency = n0.histogram(
        "get_latency_ns", "Get latency in simulated ns.", labels=("store",)
    )
    child = latency.labels(store="node0")
    for v in (100.0, 200.0, 300.0, 400.0, 1000.0):
        child.observe(v)
    latency.labels(store="empty")  # registered but never observed
    single = latency.labels(store="single")
    single.observe(250.0)

    n1.histogram(
        "queue_depth", "Bucketed histogram.", buckets=(1.0, 5.0)
    ).labels().observe(3.0)
    return [n0, n1]


class TestGoldenScrape:
    def test_matches_golden_file(self):
        scrape = render_prometheus(_build_registries())
        assert scrape == GOLDEN.read_text(encoding="utf-8")

    def test_one_header_per_family_across_registries(self):
        scrape = render_prometheus(_build_registries())
        assert scrape.count("# TYPE repro_rpc_calls counter") == 1
        assert scrape.count("# HELP repro_rpc_calls ") == 1

    def test_label_escaping(self):
        scrape = render_prometheus(_build_registries())
        assert 'path="C:\\\\data\\n\\"x\\""' in scrape

    def test_summary_quantiles_and_max(self):
        scrape = render_prometheus(_build_registries())
        assert (
            'repro_get_latency_ns{node="node0",quantile="0.5",store="node0"} 300'
            in scrape
        )
        assert 'repro_get_latency_ns_max{node="node0",store="node0"} 1000' in scrape

    def test_empty_family_renders_zero_count_no_quantiles(self):
        scrape = render_prometheus(_build_registries())
        assert 'repro_get_latency_ns_count{node="node0",store="empty"} 0' in scrape
        assert 'quantile="0.5",store="empty"' not in scrape
        assert 'repro_get_latency_ns_max{node="node0",store="empty"}' not in scrape

    def test_single_sample_quantiles_collapse(self):
        scrape = render_prometheus(_build_registries())
        for q in ("0.5", "0.95", "0.99"):
            assert (
                f'repro_get_latency_ns{{node="node0",quantile="{q}",store="single"}} 250'
                in scrape
            )

    def test_bucketed_histogram_cumulative(self):
        scrape = render_prometheus(_build_registries())
        assert "# TYPE repro_queue_depth histogram" in scrape
        assert 'repro_queue_depth_bucket{le="1",node="node1"} 0' in scrape
        assert 'repro_queue_depth_bucket{le="5",node="node1"} 1' in scrape
        assert 'repro_queue_depth_bucket{le="+Inf",node="node1"} 1' in scrape

    def test_empty_registries_render_empty(self):
        assert render_prometheus([]) == ""
        assert render_prometheus([MetricsRegistry()]) == ""


class TestTelemetry:
    def test_merged_counters_sum_across_nodes(self):
        telemetry = Telemetry(
            {r.node: r for r in _build_registries()}
        )
        merged = telemetry.merged()
        assert merged["counters"]["rpc_calls"] == 7.0

    def test_merged_histogram_quantiles_are_exact(self):
        """Merging concatenates raw per-node samples, so merged quantiles
        equal quantiles over the union — not an approximation."""
        n0 = MetricsRegistry(node="n0")
        n1 = MetricsRegistry(node="n1")
        a = n0.histogram("lat", labels=()).labels()
        b = n1.histogram("lat", labels=()).labels()
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (4.0, 5.0):
            b.observe(v)
        merged = Telemetry({"n0": n0, "n1": n1}).merged()
        entry = merged["histograms"]["lat"]
        assert entry["count"] == 5
        assert entry["quantiles"]["0.5"] == pytest.approx(3.0)
        assert entry["max"] == 5.0

    def test_top_latency_orders_by_total(self):
        registries = {r.node: r for r in _build_registries()}
        rows = Telemetry(registries).top_latency(k=3)
        assert rows[0]["family"] == "get_latency_ns"
        assert rows[0]["labels"] == {"store": "node0"}
        totals = [row["total_ns"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        # Empty series never appear.
        assert all(row["count"] > 0 for row in rows)

    def test_format_top_mentions_quantile_columns(self):
        table = Telemetry({r.node: r for r in _build_registries()}).format_top(2)
        assert "p50_us" in table and "p99_us" in table

    def test_snapshot_is_per_node(self):
        telemetry = Telemetry({r.node: r for r in _build_registries()})
        snap = telemetry.snapshot()
        assert set(snap) == {"node0", "node1"}
        assert snap["node0"]["node"] == "node0"
