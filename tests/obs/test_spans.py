"""The span-tracing plane: attribution, sampling, flight rings, export.

The heart of the contract is the attribution invariant: every applied
clock advance while a root span is open lands in exactly one component
bucket, so the buckets sum to the root's observed duration to the
nanosecond — not approximately, by construction.
"""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.rng import DeterministicRng
from repro.obs.spans import (
    BASE_COMPONENTS,
    COMPONENTS,
    NULL_SPAN_SINK,
    FlightRecorder,
    NullSpanSink,
    SpanConfig,
    SpanSink,
)


def make_sink(**cfg) -> tuple[SimClock, SpanSink]:
    clock = SimClock()
    sink = SpanSink(
        clock, DeterministicRng(7).spawn("obs", "spans"), SpanConfig(**cfg)
    )
    return clock, sink


def build_reference_tree(sink: SpanSink, clock: SimClock) -> None:
    """One op with queueing, service, a fabric hop, and client residual."""
    with sink.span("op", "get", node="workload", tenant="t0"):
        with sink.span("rpc", "StoreService.Get", node="node0", rid=42):
            with sink.span("queue", "wait", node="node0"):
                clock.advance(1_000)
            with sink.span("rpc.server", "StoreService.Get", node="node0"):
                clock.advance(2_000)
        with sink.span("fabric", "stream_read", node="node0->node1", bytes=4096):
            clock.advance(500)
        clock.advance(250)


class TestAttribution:
    def test_components_sum_exactly_to_root_duration(self):
        clock, sink = make_sink()
        build_reference_tree(sink, clock)
        [trace] = sink.traces()
        assert trace["duration_ns"] == 3_750
        assert trace["components_ns"] == {
            "cache": 0,
            "client": 250,
            "fabric": 500,
            "hedge": 0,
            "queue": 1_000,
            "retry": 0,
            "service": 2_000,
        }
        assert sum(trace["components_ns"].values()) == trace["duration_ns"]

    def test_advance_outside_any_span_is_not_charged(self):
        clock, sink = make_sink()
        clock.advance(99_999)
        with sink.span("op", "noop", node="n"):
            clock.advance(10)
        [trace] = sink.traces()
        assert trace["duration_ns"] == 10
        assert sum(trace["components_ns"].values()) == 10

    def test_unmapped_root_category_falls_back_to_client(self):
        clock, sink = make_sink()
        with sink.span("op", "think", node="n"):
            clock.advance(123)
        [trace] = sink.traces()
        assert trace["components_ns"]["client"] == 123

    def test_component_override_beats_innermost_span(self):
        clock, sink = make_sink()
        with sink.span("op", "get", node="n"):
            with sink.span("rpc.server", "Svc.Get", node="n"):
                clock.advance(100)
                with sink.component("retry"):
                    clock.advance(40)
        [trace] = sink.traces()
        assert trace["components_ns"]["service"] == 100
        assert trace["components_ns"]["retry"] == 40

    def test_unknown_component_rejected(self):
        _, sink = make_sink()
        with pytest.raises(ValueError):
            sink.component("gc-pause")

    def test_add_component_folds_pre_span_wait(self):
        clock, sink = make_sink()
        with sink.span("op", "get", node="n") as root:
            clock.advance(10)
        root.add_component("queue", 990)
        [trace] = sink.traces()
        # The trace holds the components dict by reference, so the
        # post-close fold is visible in the export too.
        assert trace["components_ns"]["queue"] == 990
        assert sum(trace["components_ns"].values()) == 1_000

    def test_add_component_on_child_span_rejected(self):
        clock, sink = make_sink()
        with sink.span("op", "get", node="n"):
            with sink.span("rpc", "Svc.Get", node="n") as child:
                with pytest.raises(ValueError):
                    child.add_component("queue", 1)


class TestSampling:
    def test_head_rate_zero_discards_but_still_counts(self):
        # Descending durations: later ops are never "slowest so far", so
        # with head sampling off they must be discarded — yet every root
        # still lands in the counters and the attribution tables.
        clock, sink = make_sink(sample_rate=0.0, tail_percentile=0.99)
        for i in range(10):
            with sink.span("op", "get", node="n"):
                clock.advance(100 * (10 - i))
        stats = sink.sampling_stats()
        assert stats["roots"] == 10
        assert stats["kept_head"] == 0
        assert stats["discarded"] > 0
        assert stats["kept_head"] + stats["kept_tail"] + stats["discarded"] == 10

    def test_errors_are_tail_kept_despite_rate_zero(self):
        clock, sink = make_sink(sample_rate=0.0)
        with pytest.raises(RuntimeError):
            with sink.span("op", "get", node="n"):
                clock.advance(10)
                raise RuntimeError("boom")
        [trace] = sink.traces()
        assert trace["status"] == "error:RuntimeError"
        assert sink.sampling_stats()["kept_tail"] == 1

    def test_slowest_percentile_tail_kept(self):
        clock, sink = make_sink(sample_rate=0.0, tail_percentile=0.5)
        for i in range(10):
            with sink.span("op", "get", node="n"):
                clock.advance(100 * (10 - i))
        kept = sink.sampling_stats()["kept_tail"]
        assert 0 < kept < 10
        # The slowest op of the run is always among the retained traces.
        assert any(t["duration_ns"] == 1_000 for t in sink.traces())

    def test_max_traces_zero_overflows_to_counter(self):
        clock, sink = make_sink(max_traces=0)
        with sink.span("op", "get", node="n"):
            clock.advance(10)
        assert sink.traces() == []
        assert sink.sampling_stats()["traces_overflowed"] == 1
        # The flight ring still saw the spans — that's the crash-dump path.
        assert len(sink.flight_recorder("n")) == 1

    def test_disabled_sink_hands_out_inert_spans(self):
        clock, sink = make_sink()
        sink.enabled = False
        with sink.span("op", "get", node="n") as sp:
            clock.advance(10)
        assert not sp.span_id
        assert sink.traces() == []
        assert sink.sampling_stats()["roots"] == 0


class TestFlightRecorder:
    def test_ring_evicts_oldest_and_counts_drops(self):
        ring = FlightRecorder(capacity=3)
        for i in range(5):
            ring.record(i)
        assert ring.events() == [2, 3, 4]
        assert ring.dropped == 2
        assert len(ring) == 3

    def test_per_node_rings_and_dump_shape(self):
        clock, sink = make_sink(flight_capacity=2)
        build_reference_tree(sink, clock)
        dump = sink.flight_dump()
        assert dump["schema_version"] == 1
        assert set(dump["nodes"]) == {"workload", "node0", "node0->node1"}
        node0 = dump["nodes"]["node0"]
        assert node0["capacity"] == 2
        # node0 closed three spans into a capacity-2 ring: one dropped.
        assert node0["dropped"] == 1
        assert [s["name"] for s in node0["spans"]] == [
            "StoreService.Get", "StoreService.Get",
        ]

    def test_dump_is_deterministic(self):
        def run() -> str:
            clock, sink = make_sink(flight_capacity=4)
            build_reference_tree(sink, clock)
            return json.dumps(sink.flight_dump(), sort_keys=True)

        assert run() == run()


# Generated once from build_reference_tree on a fresh sink; the export is
# a pure function of the span tree and simulated timestamps, so these
# bytes are the contract.
GOLDEN_CHROME = (
    '{"displayTimeUnit": "ms", "traceEvents": [{"args": {"parent_id": '
    '"s00000002", "span_id": "s00000003", "trace_id": "t000001"}, "cat": '
    '"queue", "dur": 1.0, "name": "wait", "ph": "X", "pid": "node0", "tid": '
    '"queue", "ts": 0.0}, {"args": {"parent_id": "s00000002", "span_id": '
    '"s00000004", "trace_id": "t000001"}, "cat": "rpc.server", "dur": 2.0, '
    '"name": "StoreService.Get", "ph": "X", "pid": "node0", "tid": '
    '"rpc.server", "ts": 1.0}, {"args": {"parent_id": "s00000001", "rid": 42, '
    '"span_id": "s00000002", "trace_id": "t000001"}, "cat": "rpc", "dur": '
    '3.0, "name": "StoreService.Get", "ph": "X", "pid": "node0", "tid": '
    '"rpc", "ts": 0.0}, {"args": {"bytes": 4096, "parent_id": "s00000001", '
    '"span_id": "s00000005", "trace_id": "t000001"}, "cat": "fabric", "dur": '
    '0.5, "name": "stream_read", "ph": "X", "pid": "node0->node1", "tid": '
    '"fabric", "ts": 3.0}, {"args": {"span_id": "s00000001", "tenant": "t0", '
    '"trace_id": "t000001"}, "cat": "op", "dur": 3.75, "name": "get", "ph": '
    '"X", "pid": "workload", "tid": "op", "ts": 0.0}]}\n'
)


class TestExport:
    def test_chrome_trace_golden_bytes(self, tmp_path):
        clock, sink = make_sink()
        build_reference_tree(sink, clock)
        path = tmp_path / "trace.json"
        sink.write_chrome_trace(path)
        assert path.read_text(encoding="utf-8") == GOLDEN_CHROME

    def test_snapshot_shape(self):
        clock, sink = make_sink()
        build_reference_tree(sink, clock)
        snap = sink.snapshot()
        assert snap["schema_version"] == 1
        [trace] = snap["traces"]
        assert trace["name"] == "get"
        assert len(trace["spans"]) == 5
        assert sum(trace["components_ns"].values()) == trace["duration_ns"]

    def test_null_sink_is_inert_and_exportable(self):
        sink = NullSpanSink()
        assert sink is not NULL_SPAN_SINK  # separate instances both fine
        with sink.span("op", "get", node="n") as sp:
            sp.annotate(ignored=True)
        with sink.component("retry"):
            pass
        assert sink.traces() == []
        assert sink.to_chrome_trace() == {
            "traceEvents": [], "displayTimeUnit": "ms",
        }
        assert sink.flight_dump()["nodes"] == {}


class TestClockNeutrality:
    def test_tracing_never_advances_the_clock(self):
        clock, sink = make_sink()
        before = clock.now_ns
        with sink.span("op", "get", node="n"):
            pass
        assert clock.now_ns == before
        assert sink.traces()[0]["duration_ns"] == 0

    def test_components_cover_exactly_the_base_set(self):
        # "pipeline" is materialize-on-charge: a run that never pins it
        # keeps exactly the base buckets, so pre-async traces replay
        # byte-identical.
        clock, sink = make_sink()
        with sink.span("op", "get", node="n"):
            clock.advance(1)
        assert set(sink.traces()[0]["components_ns"]) == set(BASE_COMPONENTS)

    def test_pipeline_component_materializes_on_charge(self):
        assert "pipeline" in COMPONENTS
        clock, sink = make_sink()
        with sink.span("op", "mget", node="n") as root:
            with sink.component("pipeline"):
                clock.advance(7)
            clock.advance(3)
        buckets = sink.traces()[0]["components_ns"]
        assert buckets["pipeline"] == 7
        assert sum(buckets.values()) == root.duration_ns
