"""Correlation-id propagation: unit tests for CorrelationContext plus an
end-to-end check that a single remote Get carries one request id through
the client span, the RPC client/server spans, and the deferred fabric
read."""

from repro.common.trace import Tracer
from repro.core.cluster import Cluster
from repro.obs.correlation import CorrelationContext


class TestCorrelationContext:
    def test_mint_is_sequential_and_deterministic(self):
        ctx = CorrelationContext()
        assert ctx.mint() == "req-000001"
        assert ctx.mint() == "req-000002"
        assert CorrelationContext(prefix="op").mint() == "op-000001"

    def test_begin_end_stack(self):
        ctx = CorrelationContext()
        assert ctx.current is None
        rid = ctx.begin()
        assert ctx.current == rid
        inner = ctx.begin("custom")
        assert inner == "custom"
        assert ctx.current == "custom"
        ctx.end()
        assert ctx.current == rid
        ctx.end()
        assert ctx.current is None

    def test_operation_context_manager(self):
        ctx = CorrelationContext()
        with ctx.operation() as rid:
            assert ctx.current == rid
        assert ctx.current is None

    def test_resumed_reenters_existing_id(self):
        """A deferred completion (fabric read) re-enters the scope of the
        request that created the buffer, not a fresh id."""
        ctx = CorrelationContext()
        with ctx.operation() as rid:
            pass
        with ctx.resumed(rid):
            assert ctx.current == rid
        assert ctx.current is None


class TestEndToEndCorrelation:
    def _rids_by_event(self, tracer):
        out = {}
        for ev in tracer.events():
            rid = ev.args.get("rid")
            if rid is not None:
                out.setdefault((ev.category, ev.name), set()).add(rid)
        return out

    def test_remote_get_spans_one_request_id(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False)
        tracer = Tracer(cluster.clock)
        cluster.attach_tracer(tracer)
        producer = cluster.client("node0")
        consumer = cluster.client("node1")

        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"x" * 4096)
        [buf] = consumer.get([oid])
        assert buf is not None
        buf.read_all()  # deferred fabric transfer happens here
        consumer.release(oid)

        by_event = self._rids_by_event(tracer)
        get_rids = by_event[("client", "get")]
        assert len(get_rids) == 1
        (rid,) = get_rids
        # The same id must appear on the RPC client span, the server-side
        # dispatch span, and the fabric read that completed the buffer.
        assert rid in by_event[("rpc", "plasma.StoreService.Lookup")]
        assert rid in by_event[("rpc.server", "plasma.StoreService.Lookup")]
        assert rid in by_event[("fabric", "read")]

    def test_distinct_operations_get_distinct_ids(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False)
        tracer = Tracer(cluster.clock)
        cluster.attach_tracer(tracer)
        producer = cluster.client("node0")
        consumer = cluster.client("node1")

        oids = cluster.new_object_ids(3)
        for i, oid in enumerate(oids):
            producer.put_bytes(oid, bytes([i]) * 1024)
        for oid in oids:
            [buf] = consumer.get([oid])
            buf.read_all()
            consumer.release(oid)

        rids = {
            ev.args["rid"]
            for ev in tracer.events()
            if ev.category == "client" and "rid" in ev.args
        }
        # 3 puts + 3 gets, each its own operation.
        assert len(rids) == 6

    def test_no_tracer_no_metrics_means_no_correlation(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False)
        assert cluster.correlation is None

    def test_metrics_only_cluster_still_mints_ids(self):
        cluster = Cluster(n_nodes=2, check_remote_uniqueness=False, metrics=True)
        assert isinstance(cluster.correlation, CorrelationContext)
