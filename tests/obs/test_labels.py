"""group_by_label / Telemetry.by_label: slicing metrics by one label."""

from repro.obs import MetricsRegistry, Telemetry, group_by_label


def _registry(node: str) -> MetricsRegistry:
    registry = MetricsRegistry(node=node)
    ops = registry.counter("ops_total", "ops", labels=("tenant", "kind"))
    ops.labels(tenant="a", kind="read").inc(3)
    ops.labels(tenant="b", kind="read").inc(1)
    lat = registry.histogram("latency_ns", "latency", labels=("tenant",))
    lat.labels(tenant="a").observe(100)
    lat.labels(tenant="a").observe(300)
    inflight = registry.gauge("inflight", "gauge", labels=("tenant",))
    inflight.labels(tenant="b").inc(2)
    registry.counter("untagged_total", "no labels").labels().inc(9)
    return registry


class TestGroupByLabel:
    def test_counters_sum_per_label_value(self):
        grouped = group_by_label([_registry("n0")], "tenant")
        assert grouped["a"]["counters"]["ops_total"] == 3
        assert grouped["b"]["counters"]["ops_total"] == 1
        assert grouped["b"]["gauges"]["inflight"] == 2

    def test_series_without_the_label_are_skipped(self):
        grouped = group_by_label([_registry("n0")], "tenant")
        for slot in grouped.values():
            assert "untagged_total" not in slot["counters"]

    def test_histograms_merge_with_exact_quantiles(self):
        grouped = group_by_label([_registry("n0")], "tenant")
        hist = grouped["a"]["histograms"]["latency_ns"]
        assert hist["count"] == 2
        assert hist["sum"] == 400
        assert hist["max"] == 300
        assert hist["quantiles"]["0.5"] <= 300

    def test_aggregates_across_registries(self):
        grouped = group_by_label([_registry("n0"), _registry("n1")], "tenant")
        assert grouped["a"]["counters"]["ops_total"] == 6
        assert grouped["a"]["histograms"]["latency_ns"]["count"] == 4

    def test_unknown_label_gives_empty_result(self):
        assert group_by_label([_registry("n0")], "zone") == {}


class TestTelemetryByLabel:
    def test_by_label_delegates(self):
        telemetry = Telemetry({"n0": _registry("n0"), "n1": _registry("n1")})
        grouped = telemetry.by_label("tenant")
        assert set(grouped) == {"a", "b"}
        assert grouped["a"]["counters"]["ops_total"] == 6
