"""Unit tests for the metrics registry, instruments, and group binding."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    CounterGroup,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounterGroup:
    def test_inc_and_get(self):
        group = CounterGroup()
        group.inc("gets")
        group.inc("gets", 4)
        assert group.get("gets") == 5
        assert group.get("absent") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CounterGroup().inc("x", -1)

    def test_snapshot_is_copy(self):
        group = CounterGroup()
        group.inc("a")
        snap = group.snapshot()
        snap["a"] = 99
        assert group.get("a") == 1


class TestFamilies:
    def test_counter_child_accumulates(self):
        registry = MetricsRegistry()
        family = registry.counter("rpc_calls", "calls", labels=("peer",))
        family.labels(peer="n1").inc()
        family.labels(peer="n1").inc(2)
        family.labels(peer="n2").inc()
        assert family.labels(peer="n1").value == 3
        assert family.labels(peer="n2").value == 1

    def test_counter_rejects_negative(self):
        child = MetricsRegistry().counter("c").labels()
        with pytest.raises(ValueError):
            child.inc(-1)

    def test_gauge_set_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth").labels()
        gauge.set(4)
        assert gauge.value == 4
        state = {"v": 7.0}
        gauge.set_function(lambda: state["v"])
        assert gauge.value == 7.0
        state["v"] = 9.0
        assert gauge.value == 9.0
        gauge.set(1)  # direct set replaces the callback
        assert gauge.value == 1

    def test_histogram_exact_quantiles(self):
        hist = MetricsRegistry().histogram("lat_ns").labels()
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.sum == pytest.approx(5050.0)
        assert hist.max == 100.0
        q = hist.quantiles()
        assert q["0.5"] == pytest.approx(50.5)
        assert q["0.95"] == pytest.approx(95.05)
        assert q["0.99"] == pytest.approx(99.01)

    def test_label_names_validated(self):
        family = MetricsRegistry().counter("c", labels=("peer",))
        with pytest.raises(ValueError):
            family.labels(host="x")
        with pytest.raises(ValueError):
            family.labels()

    def test_same_name_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("c", "help", labels=("x",))
        b = registry.counter("c", "ignored", labels=("x",))
        assert a is b

    def test_same_name_conflicting_kind_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")
        with pytest.raises(ValueError):
            registry.counter("c", labels=("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok", labels=("bad-label",))


class TestGroupBinding:
    def test_group_exports_prefixed_families(self):
        registry = MetricsRegistry(node="n0")
        group = CounterGroup()
        group.inc("gets_local", 3)
        registry.register_group(group, "plasma", store="n0")
        [family] = [
            f for f in registry.collect() if f["name"] == "plasma_gets_local"
        ]
        assert family["type"] == "counter"
        assert family["series"] == [
            {"labels": {"node": "n0", "store": "n0"}, "value": 3.0}
        ]

    def test_route_redirects_key_prefixes(self):
        registry = MetricsRegistry()
        group = CounterGroup()
        group.inc("scrub_passes")
        group.inc("lookup_cache_hits", 2)
        group.inc("gets_local", 5)
        registry.register_group(
            group,
            "plasma",
            route={"scrub_": "scrub_", "lookup_cache_": "cache_"},
            store="n0",
        )
        names = {f["name"] for f in registry.collect()}
        assert names == {"scrub_passes", "cache_hits", "plasma_gets_local"}

    def test_rebind_replaces_old_group(self):
        """The store-restart path: a recovered store re-binds a fresh
        CounterGroup under the same prefix+labels and the dead one stops
        being scraped."""
        registry = MetricsRegistry()
        old = CounterGroup()
        old.inc("gets_local", 100)
        registry.register_group(old, "plasma", store="n0")
        new = CounterGroup()
        new.inc("gets_local", 1)
        registry.register_group(new, "plasma", store="n0")
        [family] = [
            f for f in registry.collect() if f["name"] == "plasma_gets_local"
        ]
        assert family["series"][0]["value"] == 1.0

    def test_live_group_reflects_later_increments(self):
        registry = MetricsRegistry()
        group = CounterGroup()
        registry.register_group(group, "ipc")
        group.inc("requests", 7)
        [family] = [f for f in registry.collect() if f["name"] == "ipc_requests"]
        assert family["series"][0]["value"] == 7.0


class TestCollect:
    def test_node_label_injected(self):
        registry = MetricsRegistry(node="node3")
        registry.counter("c", labels=("peer",)).labels(peer="x").inc()
        [family] = registry.collect()
        assert family["series"][0]["labels"] == {"node": "node3", "peer": "x"}

    def test_histogram_payload(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(10.0, 100.0)).labels()
        hist.observe(5)
        hist.observe(50)
        hist.observe(500)
        [family] = registry.collect()
        payload = family["series"][0]["histogram"]
        assert payload["count"] == 3
        assert payload["sum"] == 555.0
        assert payload["max"] == 500.0
        assert payload["buckets"] == [[10.0, 1], [100.0, 2]]

    def test_empty_histogram_has_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("h").labels()
        [family] = registry.collect()
        payload = family["series"][0]["histogram"]
        assert payload["count"] == 0
        assert payload["quantiles"] == {}
        assert "max" not in payload

    def test_snapshot_shape(self):
        registry = MetricsRegistry(node="n0")
        registry.counter("c").labels().inc()
        snap = registry.snapshot()
        assert snap["node"] == "n0"
        assert snap["families"][0]["name"] == "c"


class TestNullRegistry:
    def test_everything_is_noop(self):
        registry = NullMetricsRegistry()
        assert registry.enabled is False
        child = registry.counter("c", labels=("x",)).labels(x="1")
        child.inc()
        child.inc(-5)  # even invalid calls are absorbed
        registry.gauge("g").labels().set_function(lambda: 1 / 0)
        registry.histogram("h").labels().observe(1)
        registry.register_group(CounterGroup(), "p")
        assert registry.collect() == []
        assert registry.prometheus() == ""
        assert registry.snapshot()["families"] == []

    def test_components_skip_disabled_registry(self):
        """attach_metrics guards on registry.enabled: binding to the null
        registry leaves instrument handles None (the zero-overhead path)."""
        from repro.common.clock import SimClock
        from repro.common.config import HealthConfig
        from repro.core.health import CircuitBreaker

        breaker = CircuitBreaker(SimClock(), HealthConfig(), name="x")
        breaker.attach_metrics(NULL_REGISTRY, peer="p")
        assert NULL_REGISTRY.collect() == []
