"""`python -m repro metrics` — the observability CLI smoke path."""

import json

from repro.cli import main


class TestMetricsCommand:
    def test_scrape_covers_subsystems(self, capsys):
        assert main(["metrics", "--nodes", "3", "--objects", "10"]) == 0
        out = capsys.readouterr().out
        prefixes = {
            line.split("{")[0].removeprefix("repro_").split("_")[0]
            for line in out.splitlines()
            if line.startswith("repro_")
        }
        for subsystem in (
            "plasma", "rpc", "thymesisflow", "allocator", "health", "cache",
        ):
            assert subsystem in prefixes, f"missing {subsystem}: {sorted(prefixes)}"

    def test_scrape_has_quantiles_and_top_table(self, capsys):
        assert main(["metrics", "--objects", "8", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        for q in ("0.5", "0.95", "0.99"):
            assert f'quantile="{q}"' in out
        assert "p50_us" in out
        assert "top" in out

    def test_scrape_lines_are_well_formed(self, capsys):
        assert main(["metrics", "--objects", "6"]) == 0
        out = capsys.readouterr().out
        sample_lines = [l for l in out.splitlines() if l.startswith("repro_")]
        assert len(sample_lines) > 50
        for line in sample_lines:
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels
            float(value)  # every exposition value parses as a number

    def test_json_snapshot(self, capsys):
        assert main(["metrics", "--objects", "6", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert "node0" in doc
        families = {f["name"] for f in doc["node0"]["families"]}
        assert "plasma_get_latency_ns" in families

    def test_deterministic_across_runs(self, capsys):
        assert main(["metrics", "--objects", "6", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["metrics", "--objects", "6", "--seed", "3"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_rejects_single_node(self, capsys):
        assert main(["metrics", "--nodes", "1"]) == 2
