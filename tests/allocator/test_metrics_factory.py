"""Fragmentation metrics and the allocator factory."""

import pytest

from repro.allocator import (
    ALLOCATOR_NAMES,
    BuddyAllocator,
    DlMallocAllocator,
    FirstFitAllocator,
    create_allocator,
    fragmentation_report,
)


class TestFactory:
    def test_names_map_to_classes(self):
        assert isinstance(create_allocator("first_fit", 1024), FirstFitAllocator)
        assert isinstance(create_allocator("dlmalloc", 1024), DlMallocAllocator)
        assert isinstance(create_allocator("buddy", 1024), BuddyAllocator)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown allocator"):
            create_allocator("tcmalloc", 1024)

    def test_names_tuple_is_complete(self):
        for name in ALLOCATOR_NAMES:
            create_allocator(name, 4096)

    def test_alignment_forwarded(self):
        a = create_allocator("first_fit", 4096, alignment=256)
        assert a.allocate(1).padded_size == 256


class TestFragmentationReport:
    def test_pristine_allocator_has_no_fragmentation(self):
        a = create_allocator("first_fit", 1 << 16)
        r = fragmentation_report("first_fit", a)
        assert r.external_fragmentation == 0.0
        assert r.internal_fragmentation == 0.0
        assert r.free_bytes == r.capacity

    def test_checkerboard_shows_external_fragmentation(self):
        a = create_allocator("first_fit", 1024)
        xs = [a.allocate(64) for _ in range(16)]
        for x in xs[::2]:
            a.free(x.offset)
        r = fragmentation_report("first_fit", a)
        assert r.external_fragmentation > 0.8
        assert r.num_free_blocks == 8

    def test_buddy_shows_internal_fragmentation(self):
        a = create_allocator("buddy", 1 << 16)
        a.allocate(65)  # reserved 128 -> ~49% padding
        r = fragmentation_report("buddy", a)
        assert r.internal_fragmentation > 0.4

    def test_format_row_mentions_name(self):
        a = create_allocator("dlmalloc", 4096)
        assert "dlmalloc" in fragmentation_report("dlmalloc", a).format_row()

    def test_full_allocator(self):
        a = create_allocator("first_fit", 4096)
        a.allocate(4096)
        r = fragmentation_report("first_fit", a)
        assert r.external_fragmentation == 0.0  # no free space at all
        assert r.used_bytes == 4096
