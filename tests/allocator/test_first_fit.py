"""FirstFitAllocator — the paper's replacement allocator."""

import pytest

from repro.allocator import FirstFitAllocator
from repro.common.errors import AllocationError, OutOfMemoryError


def make(capacity=1 << 16, alignment=64):
    return FirstFitAllocator(capacity, alignment)


class TestBasics:
    def test_allocates_from_start(self):
        a = make()
        alloc = a.allocate(100)
        assert alloc.offset == 0
        assert alloc.size == 100
        assert alloc.padded_size == 128  # aligned to 64

    def test_sequential_allocations_are_disjoint(self):
        a = make()
        x = a.allocate(100)
        y = a.allocate(200)
        assert y.offset >= x.end

    def test_free_and_reuse(self):
        a = make()
        x = a.allocate(1024)
        a.free(x.offset)
        y = a.allocate(1024)
        assert y.offset == x.offset

    def test_double_free_rejected(self):
        a = make()
        x = a.allocate(64)
        a.free(x.offset)
        with pytest.raises(AllocationError):
            a.free(x.offset)

    def test_free_unknown_offset_rejected(self):
        with pytest.raises(AllocationError):
            make().free(12345)

    def test_non_positive_size_rejected(self):
        with pytest.raises(AllocationError):
            make().allocate(0)
        with pytest.raises(AllocationError):
            make().allocate(-5)

    def test_oom_reports_sizes(self):
        a = make(capacity=1024)
        a.allocate(512)
        with pytest.raises(OutOfMemoryError) as excinfo:
            a.allocate(1024)
        assert excinfo.value.requested == 1024
        assert excinfo.value.largest_free == 512
        assert a.stats().failed_allocs == 1

    def test_full_capacity_allocatable(self):
        a = make(capacity=4096)
        alloc = a.allocate(4096)
        assert alloc.padded_size == 4096
        assert a.free_bytes == 0


class TestPlacementPolicy:
    def test_picks_smallest_adequate_block(self):
        """The ordered-map lookup lands on the smallest block that fits."""
        a = make(capacity=64 * 64)
        blocks = [a.allocate(64) for _ in range(10)]
        # Free two gaps: one of 1 block, one of 3 blocks.
        a.free(blocks[2].offset)  # 64-byte hole
        a.free(blocks[5].offset)
        a.free(blocks[6].offset)
        a.free(blocks[7].offset)  # 192-byte hole
        got = a.allocate(64)
        assert got.offset == blocks[2].offset

    def test_splits_larger_block(self):
        a = make(capacity=4096)
        a.allocate(4096 - 128)
        # Remaining 128 serves two 64-byte requests.
        x = a.allocate(64)
        y = a.allocate(64)
        assert {x.padded_size, y.padded_size} == {64}
        assert a.free_bytes == 0


class TestCoalescing:
    def test_adjacent_frees_merge(self):
        a = make()
        xs = [a.allocate(64) for _ in range(4)]
        for x in xs:
            a.free(x.offset)
        assert a.num_free_blocks == 1
        assert a.largest_free == a.capacity

    def test_middle_free_bridges(self):
        a = make(capacity=3 * 64)
        x, y, z = (a.allocate(64) for _ in range(3))
        a.free(x.offset)
        a.free(z.offset)
        assert a.num_free_blocks == 2
        a.free(y.offset)
        assert a.num_free_blocks == 1

    def test_fragmentation_prevents_large_alloc_until_coalesce(self):
        a = make(capacity=1024)
        xs = [a.allocate(64) for _ in range(16)]
        for x in xs[::2]:
            a.free(x.offset)
        assert a.free_bytes == 512
        with pytest.raises(OutOfMemoryError):
            a.allocate(512)
        stats = a.stats()
        assert stats.external_fragmentation > 0.5
        for x in xs[1::2]:
            a.free(x.offset)
        assert a.allocate(1024).offset == 0


class TestAccounting:
    def test_stats_track_everything(self):
        a = make()
        x = a.allocate(100)
        a.allocate(200)
        a.free(x.offset)
        s = a.stats()
        assert s.total_allocs == 2
        assert s.total_frees == 1
        assert s.num_allocations == 1
        assert s.used_bytes == 256
        assert s.capacity == a.capacity
        assert 0.0 <= s.utilization <= 1.0

    def test_audit_passes_through_a_workout(self):
        a = make()
        live = []
        for i in range(50):
            live.append(a.allocate(64 + i * 13))
            if i % 3 == 0 and live:
                a.free(live.pop(0).offset)
            a.audit()

    def test_free_blocks_listing_ordered(self):
        a = make()
        x = a.allocate(64)
        a.allocate(64)
        a.free(x.offset)
        blocks = a.free_blocks()
        assert blocks == sorted(blocks)
        assert blocks[0] == (0, 64)

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            FirstFitAllocator(1024, alignment=24)
        with pytest.raises(ValueError):
            FirstFitAllocator(0)
