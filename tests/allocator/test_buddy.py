"""BuddyAllocator — power-of-two extension for the allocator ablation."""

import pytest

from repro.allocator import BuddyAllocator
from repro.common.errors import OutOfMemoryError


def make(capacity=1 << 16):
    return BuddyAllocator(capacity, 64)


class TestRounding:
    def test_rounds_to_power_of_two(self):
        a = make()
        alloc = a.allocate(100)
        assert alloc.padded_size == 128
        alloc2 = a.allocate(129)
        assert alloc2.padded_size == 256

    def test_minimum_block(self):
        a = make()
        assert a.allocate(1).padded_size == 64

    def test_internal_fragmentation_is_bounded_2x(self):
        a = make()
        for size in (65, 100, 1000, 5000):
            alloc = a.allocate(size)
            assert alloc.padded_size < 2 * max(size, 64)
            a.free(alloc.offset)

    def test_non_pow2_capacity_manages_prefix(self):
        a = BuddyAllocator(100_000, 64)  # not a power of two
        assert a.unmanaged_bytes == 100_000 - 65536
        assert a.allocate(65536).padded_size == 65536
        with pytest.raises(OutOfMemoryError):
            a.allocate(64)


class TestBuddyMerging:
    def test_buddies_coalesce_on_free(self):
        a = make(capacity=1024)
        x = a.allocate(512)
        y = a.allocate(512)
        a.free(x.offset)
        a.free(y.offset)
        assert a.largest_free == 1024
        assert a.num_free_blocks == 1

    def test_non_buddies_do_not_merge(self):
        a = make(capacity=1024)
        blocks = [a.allocate(256) for _ in range(4)]
        # Free blocks 1 and 2: adjacent but NOT buddies (different parents).
        a.free(blocks[1].offset)
        a.free(blocks[2].offset)
        assert a.largest_free == 256
        assert a.num_free_blocks == 2

    def test_cascading_merge(self):
        a = make(capacity=1024)
        blocks = [a.allocate(64) for _ in range(16)]
        for b in blocks:
            a.free(b.offset)
        assert a.largest_free == 1024

    def test_split_produces_usable_halves(self):
        a = make(capacity=1024)
        x = a.allocate(512)
        y = a.allocate(256)
        z = a.allocate(256)
        assert {x.offset, y.offset, z.offset} == {0, 512, 768}


class TestLimitsAndAccounting:
    def test_oversize_request_fails(self):
        a = make(capacity=1024)
        with pytest.raises(OutOfMemoryError):
            a.allocate(2048)

    def test_oom_when_full(self):
        a = make(capacity=1024)
        a.allocate(1024)
        with pytest.raises(OutOfMemoryError):
            a.allocate(64)

    def test_audit_through_workout(self):
        a = make()
        live = []
        for i in range(100):
            try:
                live.append(a.allocate(1 + (i * 97) % 4000))
            except OutOfMemoryError:
                # Capacity pressure is a legitimate outcome; keep churning.
                a.free(live.pop(0).offset)
            if i % 4 == 0 and live:
                a.free(live.pop(0).offset)
            a.audit()
        for alloc in live:
            a.free(alloc.offset)
        a.audit()
        assert a.largest_free == 1 << 16

    def test_deterministic_placement(self):
        """min() choice over free sets gives reproducible layouts."""
        layouts = []
        for _ in range(2):
            a = make()
            allocs = [a.allocate(200) for _ in range(5)]
            a.free(allocs[2].offset)
            allocs.append(a.allocate(100))
            layouts.append([x.offset for x in allocs])
        assert layouts[0] == layouts[1]
