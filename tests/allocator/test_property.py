"""Property-based trace replay over all three allocators.

Any random alloc/free trace must preserve the core invariants on every
allocator: disjoint live blocks, in-bounds, conservation of accounting,
and audits passing throughout.
"""

from hypothesis import given, settings, strategies as st

from repro.allocator import BuddyAllocator, DlMallocAllocator, FirstFitAllocator
from repro.common.errors import OutOfMemoryError

CAPACITY = 1 << 16

allocator_cls = st.sampled_from([FirstFitAllocator, DlMallocAllocator, BuddyAllocator])

# A trace step: positive = allocate that size; negative = free the n-th
# oldest live allocation (modulo live count).
trace = st.lists(
    st.one_of(
        st.integers(1, 8192),
        st.integers(-20, -1),
    ),
    min_size=1,
    max_size=80,
)


@settings(max_examples=150, deadline=None)
@given(allocator_cls, trace)
def test_invariants_hold_through_any_trace(cls, steps):
    alloc = cls(CAPACITY, 64)
    live = []
    for step in steps:
        if step > 0:
            try:
                a = alloc.allocate(step)
            except OutOfMemoryError:
                continue
            assert a.padded_size >= step
            assert 0 <= a.offset and a.end <= CAPACITY
            live.append(a)
        elif live:
            victim = live.pop(abs(step) % len(live))
            alloc.free(victim.offset)
        # Invariants after every step.
        alloc.audit()
        listed = alloc.live_allocations()
        assert len(listed) == len(live)
        assert alloc.used_bytes == sum(a.padded_size for a in live)
        assert alloc.used_bytes + alloc.free_bytes == CAPACITY
        # Disjointness of live blocks.
        spans = sorted((a.offset, a.end) for a in listed)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2


@settings(max_examples=60, deadline=None)
@given(allocator_cls, trace)
def test_free_everything_restores_full_capacity(cls, steps):
    alloc = cls(CAPACITY, 64)
    live = []
    for step in steps:
        if step > 0:
            try:
                live.append(alloc.allocate(step))
            except OutOfMemoryError:
                pass
        elif live:
            alloc.free(live.pop(abs(step) % len(live)).offset)
    for a in live:
        alloc.free(a.offset)
    alloc.audit()
    assert alloc.used_bytes == 0
    assert alloc.num_allocations == 0
    # After freeing everything, one maximal region must be allocatable.
    managed = CAPACITY - getattr(alloc, "unmanaged_bytes", 0)
    big = alloc.allocate(managed)
    assert big.offset == 0


@settings(max_examples=60, deadline=None)
@given(trace)
def test_first_fit_and_dlmalloc_never_lose_bytes(steps):
    """Replaying the same trace through both non-buddy allocators conserves
    byte accounting identically (placements may differ)."""
    ff = FirstFitAllocator(CAPACITY, 64)
    dl = DlMallocAllocator(CAPACITY, 64)
    live_ff, live_dl = [], []
    for step in steps:
        if step > 0:
            try:
                a1 = ff.allocate(step)
            except OutOfMemoryError:
                a1 = None
            try:
                a2 = dl.allocate(step)
            except OutOfMemoryError:
                a2 = None
            if a1:
                live_ff.append(a1)
            if a2:
                live_dl.append(a2)
        else:
            if live_ff:
                ff.free(live_ff.pop(abs(step) % len(live_ff)).offset)
            if live_dl:
                dl.free(live_dl.pop(abs(step) % len(live_dl)).offset)
    assert ff.used_bytes + ff.free_bytes == CAPACITY
    assert dl.used_bytes + dl.free_bytes == CAPACITY
