"""Property-based allocator tests on seeded random traces.

Complements the hypothesis suite in ``test_property.py``: these drive
long random alloc/free sequences from the shared deterministic ``rng``
fixture (replayable by seed, per docs/testing.md) and focus on the
three invariants the simtest oracle leans on — no extent overlap,
free-list coalescing, and utilization-gauge accounting.
"""

import pytest

from repro.allocator import ALLOCATOR_NAMES, create_allocator
from repro.common.errors import OutOfMemoryError

CAPACITY = 1 << 18
ALIGNMENT = 64


def _random_trace(allocator, rng, steps=400, max_size=8192):
    """Drive random allocs/frees; yields after every step."""
    live = []
    for _ in range(steps):
        if not live or rng.integer(0, 100) < 60:
            try:
                allocation = allocator.allocate(rng.integer(1, max_size + 1))
            except OutOfMemoryError:
                continue
            live.append(allocation)
        else:
            victim = live.pop(rng.integer(0, len(live)))
            allocator.free(victim.offset)
        yield live


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
def test_no_extent_overlap_on_random_trace(name, rng):
    allocator = create_allocator(name, CAPACITY, ALIGNMENT)
    stream = rng.spawn("alloc-overlap", name)
    for live in _random_trace(allocator, stream):
        allocator.audit()  # raises on overlap / out-of-bounds / double-free
        spans = sorted((a.offset, a.end) for a in live)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start, f"{name}: live extents overlap"


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
def test_utilization_gauge_matches_extent_sums(name, rng):
    allocator = create_allocator(name, CAPACITY, ALIGNMENT)
    stream = rng.spawn("alloc-accounting", name)
    for live in _random_trace(allocator, stream, steps=250):
        stats = allocator.stats()
        expected = sum(a.padded_size for a in live)
        assert allocator.used_bytes == expected
        assert stats.used_bytes == expected
        assert stats.used_bytes + stats.free_bytes == stats.capacity == CAPACITY
        assert stats.utilization == pytest.approx(expected / CAPACITY)
        assert stats.num_allocations == len(live)


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
def test_free_list_coalesces_back_to_one_block(name, rng):
    """Freeing everything — in random order — must merge neighbours back
    into a single maximal free region (buddy: full cascade of merges)."""
    allocator = create_allocator(name, CAPACITY, ALIGNMENT)
    stream = rng.spawn("alloc-coalesce", name)
    live = []
    for _ in range(120):
        try:
            live.append(allocator.allocate(stream.integer(1, 4097)))
        except OutOfMemoryError:
            break
    stream.shuffle(live)
    for allocation in live:
        allocator.free(allocation.offset)
    allocator.audit()
    stats = allocator.stats()
    assert stats.used_bytes == 0
    assert stats.num_allocations == 0
    if name == "dlmalloc":
        # dlmalloc parks small frees in bins and only consolidates under
        # pressure; coalescing is proven by the full-capacity allocation
        # succeeding (it forces the consolidation path).
        whole = allocator.allocate(CAPACITY)
        assert whole.offset == 0
    else:
        assert stats.largest_free == stats.free_bytes, (
            f"{name}: free space fragmented after freeing everything "
            f"(largest={stats.largest_free}, free={stats.free_bytes})"
        )


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
def test_interleaved_free_coalesces_neighbours(name, rng):
    """Freeing adjacent blocks must merge them: allocate the whole region
    as equal chunks, free them all, and expect one free block (modulo
    buddy's power-of-two bookkeeping, which still reports a maximal
    largest_free)."""
    allocator = create_allocator(name, CAPACITY, ALIGNMENT)
    chunk = 1024
    live = []
    while True:
        try:
            live.append(allocator.allocate(chunk))
        except OutOfMemoryError:
            break
    order = list(range(len(live)))
    stream = rng.spawn("alloc-neighbours", name)
    stream.shuffle(order)
    for index in order:
        allocator.free(live[index].offset)
        allocator.audit()
    stats = allocator.stats()
    if name == "dlmalloc":
        assert allocator.allocate(CAPACITY).offset == 0
    else:
        assert stats.largest_free == stats.free_bytes
    if name == "first_fit":
        assert stats.num_free_blocks == 1
