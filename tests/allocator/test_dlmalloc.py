"""DlMallocAllocator — the binned baseline Plasma originally uses."""

import pytest

from repro.allocator import DlMallocAllocator
from repro.common.errors import OutOfMemoryError


def make(capacity=1 << 16):
    return DlMallocAllocator(capacity, 64)


class TestSmallBins:
    def test_small_free_parks_in_bin(self):
        a = make()
        x = a.allocate(100)  # padded 128 -> small
        a.free(x.offset)
        assert a.binned_bytes == 128
        # Same-size alloc reuses the binned block without touching the pool.
        y = a.allocate(100)
        assert y.offset == x.offset
        assert a.binned_bytes == 0

    def test_bins_are_exact_size_classes(self):
        a = make()
        x = a.allocate(64)
        a.free(x.offset)
        # A differently-binned size does not reuse it.
        y = a.allocate(128 + 1)
        assert y.offset != x.offset

    def test_lifo_reuse_order(self):
        a = make()
        x = a.allocate(64)
        y = a.allocate(64)
        a.free(x.offset)
        a.free(y.offset)
        assert a.allocate(64).offset == y.offset  # most recently freed first


class TestLargePath:
    def test_large_requests_bypass_bins(self):
        a = make()
        x = a.allocate(8192)
        a.free(x.offset)
        assert a.binned_bytes == 0
        assert a.num_free_blocks == 1  # coalesced back

    def test_large_free_coalesces(self):
        a = make()
        xs = [a.allocate(8192) for _ in range(4)]
        for x in xs:
            a.free(x.offset)
        assert a.largest_free == a.capacity


class TestBinConsolidation:
    def test_pressure_flushes_bins(self):
        a = make(capacity=4096)
        xs = [a.allocate(64) for _ in range(64)]  # fill completely
        for x in xs:
            a.free(x.offset)
        assert a.binned_bytes == 4096
        # Pool is empty but bins hold everything: a big request must trigger
        # consolidation and then succeed.
        big = a.allocate(4096)
        assert big.padded_size == 4096
        assert a.binned_bytes == 0

    def test_oom_after_consolidation(self):
        a = make(capacity=1024)
        a.allocate(1024)
        with pytest.raises(OutOfMemoryError):
            a.allocate(64)


class TestAccounting:
    def test_audit_through_mixed_workload(self):
        a = make()
        live = []
        for i in range(80):
            size = 64 if i % 2 else 5000
            try:
                live.append(a.allocate(size))
            except OutOfMemoryError:
                a.free(live.pop(0).offset)
            if i % 3 == 0 and live:
                a.free(live.pop(0).offset)
            a.audit()
        for alloc in live:
            a.free(alloc.offset)
        a.audit()
        assert a.used_bytes == 0

    def test_free_bytes_includes_binned(self):
        a = make()
        x = a.allocate(64)
        used_before = a.used_bytes
        a.free(x.offset)
        assert a.used_bytes == used_before - 64
        assert a.free_bytes == a.capacity
