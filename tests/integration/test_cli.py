"""CLI smoke/behaviour tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_spec_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--spec", "9"])

    def test_ablation_kind_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "6.50 GiB/s" in out
        assert "5.75 GiB/s" in out
        assert "subsystems" in out

    def test_demo(self, capsys):
        assert main(["demo", "--size-mib", "4"]) == 0
        out = capsys.readouterr().out
        assert "remote retrieval" in out
        assert "GiB/s" in out

    def test_demo_multinode(self, capsys):
        assert main(["demo", "--nodes", "3", "--size-mib", "2"]) == 0
        assert "committed" in capsys.readouterr().out

    def test_demo_with_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "demo.trace.json"
        assert main(["demo", "--size-mib", "2", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace spans" in out
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        categories = {e["cat"] for e in doc["traceEvents"]}
        assert {"rpc", "store"} <= categories

    def test_bench_single_spec(self, capsys):
        assert main(["bench", "--spec", "6", "--reps", "3"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "Fig 6" in out
        assert "Fig 7" in out
        assert "Create/write/seal" in out

    def test_ablation_allocator(self, capsys):
        assert main(["ablation", "allocator"]) == 0
        out = capsys.readouterr().out
        for name in ("first_fit", "dlmalloc", "buddy"):
            assert name in out

    def test_ablation_sharing(self, capsys):
        assert main(["ablation", "sharing"]) == 0
        out = capsys.readouterr().out
        for label in ("rpc", "dmsg", "hashmap", "scale-out"):
            assert label in out

    def test_ablation_cache(self, capsys):
        assert main(["ablation", "cache"]) == 0
        out = capsys.readouterr().out
        assert "no cache" in out
