"""Model-based stateful testing of the distributed store.

A hypothesis state machine drives a 2-node cluster through arbitrary
interleavings of create/write/seal/get/release/delete from producers and
consumers on both nodes, against an explicit model. The model encodes the
system's *real* contract, including the paper's acknowledged hazard
(§IV-A2): without distributed usage sharing, a home store cannot see remote
holds, so deletion under a remote hold succeeds and the holder is left with
a dangling record — the machine checks exactly that behaviour, not a
sanitised version of it.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.common.config import testing_config as make_testing_config
from repro.common.errors import (
    ObjectExistsError,
    ObjectInUseError,
    ObjectNotFoundError,
    ObjectStoreError,
)
from repro.common.ids import ObjectID
from repro.common.units import MiB
from repro.core import Cluster


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = Cluster(
            make_testing_config(capacity_bytes=8 * MiB, seed=1),
            n_nodes=2,
            check_remote_uniqueness=True,
        )
        self.nodes = self.cluster.node_names()
        self.producers = {
            n: self.cluster.client(n, f"prod@{n}") for n in self.nodes
        }
        self.consumers = {
            n: self.cluster.client(n, f"cons@{n}") for n in self.nodes
        }
        self.counter = 0
        # oid -> {home, payload, deleted}
        self.objects: dict[ObjectID, dict] = {}
        # (node, oid) -> live buffer holds by that node's consumer
        self.holds: dict[tuple[str, ObjectID], int] = {}

    ids = Bundle("ids")

    def _holds(self, node: str, oid: ObjectID) -> int:
        return self.holds.get((node, oid), 0)

    # -- rules -----------------------------------------------------------------

    @rule(
        target=ids,
        node_idx=st.integers(0, 1),
        size=st.integers(1, 4096),
        fill=st.integers(0, 255),
    )
    def put_object(self, node_idx, size, fill):
        node = self.nodes[node_idx]
        self.counter += 1
        oid = ObjectID.from_int(self.counter)
        payload = bytes([fill]) * size
        self.producers[node].put_bytes(oid, payload)
        self.objects[oid] = {"home": node, "payload": payload, "deleted": False}
        return oid

    @rule(oid=ids, node_idx=st.integers(0, 1))
    def get_object(self, node_idx, oid):
        node = self.nodes[node_idx]
        consumer = self.consumers[node]
        entry = self.objects[oid]
        if not entry["deleted"]:
            buf = consumer.get_one(oid)
            # Live objects must read back exactly.
            assert buf.read_all() == entry["payload"]
            self.holds[(node, oid)] = self._holds(node, oid) + 1
            return
        # Deleted object. If this node still holds a dangling remote record
        # (only possible off-home), the get "succeeds" against freed memory
        # — the documented hazard; contents are undefined. Otherwise it is a
        # clean not-found.
        dangling = node != entry["home"] and self._holds(node, oid) > 0
        if dangling:
            consumer.get_one(oid)
            self.holds[(node, oid)] += 1
        else:
            try:
                consumer.get([oid])
            except ObjectNotFoundError:
                return
            raise AssertionError(f"deleted {oid!r} retrievable without a record")

    @rule(oid=ids, node_idx=st.integers(0, 1))
    def release_hold(self, node_idx, oid):
        node = self.nodes[node_idx]
        held = self._holds(node, oid)
        if held == 0:
            try:
                self.consumers[node].release(oid)
            except ObjectStoreError:
                return
            raise AssertionError("release without a hold succeeded")
        self.consumers[node].release(oid)
        self.holds[(node, oid)] = held - 1

    @rule(oid=ids)
    def delete_object(self, oid):
        entry = self.objects[oid]
        home = entry["home"]
        producer = self.producers[home]
        if entry["deleted"]:
            try:
                producer.delete(oid)
            except ObjectNotFoundError:
                return
            raise AssertionError("double delete succeeded")
        if self._holds(home, oid) > 0:
            # Local holds are visible to the home store and block deletion.
            try:
                producer.delete(oid)
            except ObjectInUseError:
                return
            raise AssertionError("delete of a locally-held object succeeded")
        # No local holds. Remote holds (if any) are invisible without usage
        # sharing, so deletion succeeds regardless — the hazard.
        producer.delete(oid)
        entry["deleted"] = True

    @rule(oid=ids, node_idx=st.integers(0, 1), size=st.integers(1, 1024))
    def duplicate_id_rejected(self, oid, node_idx, size):
        entry = self.objects[oid]
        if entry["deleted"]:
            return  # a deleted id is legitimately reusable
        node = self.nodes[node_idx]
        try:
            self.producers[node].create(oid, size)
        except ObjectExistsError:
            return
        raise AssertionError("duplicate id accepted")

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def allocators_are_sound(self):
        for name in self.nodes:
            self.cluster.store(name).allocator.audit()

    @invariant()
    def object_counts_match_model(self):
        live_model = sum(1 for e in self.objects.values() if not e["deleted"])
        live_real = sum(
            self.cluster.store(name).object_count() for name in self.nodes
        )
        assert live_real == live_model

    @invariant()
    def home_refcounts_match_local_holds(self):
        for oid, entry in self.objects.items():
            if entry["deleted"]:
                continue
            table_entry = self.cluster.store(entry["home"]).table.get(oid)
            assert table_entry.ref_count == self._holds(entry["home"], oid)
            # Without usage sharing the home NEVER sees remote holds.
            assert table_entry.remote_ref_count == 0

    @invariant()
    def live_contents_always_intact(self):
        for oid, entry in self.objects.items():
            if entry["deleted"]:
                continue
            store = self.cluster.store(entry["home"])
            table_entry = store.get_sealed_entry(oid)
            view = store.local_buffer(table_entry).view()
            assert bytes(view) == entry["payload"]


StoreMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestStatefulStore = StoreMachine.TestCase
