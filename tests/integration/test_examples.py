"""Every example script must run to completion through the public API."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "wide_dependency_shuffle.py",
        "genomics_pipeline.py",
        "producer_consumer_pipeline.py",
    } <= names
