"""Failure injection and the hazards the paper's design is built around.

Two classes of scenario:

* **Coherency hazards** — demonstrating WHY the framework communicates via
  RPC instead of writing into remote disaggregated memory (Fig 3b), end to
  end through the fabric.
* **Failure injection** — RPC-level faults (peer errors, lost objects
  between lookup and pin) surfacing as clean framework exceptions, never
  corruption or hangs.
"""

from __future__ import annotations

import pytest

from repro.common.config import testing_config as make_testing_config
from repro.common.errors import ObjectNotFoundError, RpcStatusError
from repro.common.units import MiB
from repro.core import Cluster
from repro.rpc.service import Service, rpc_method
from repro.rpc.status import StatusCode


@pytest.fixture
def cluster():
    return Cluster(
        make_testing_config(capacity_bytes=32 * MiB, seed=31),
        n_nodes=2,
        check_remote_uniqueness=False,
    )


class TestCoherencyHazardEndToEnd:
    def test_remote_write_is_a_trap_the_framework_avoids(self, cluster):
        """If a peer DID write into remote disaggregated memory (the
        approach §IV-A2 rejects), the home node could keep reading its
        stale cache. The framework therefore never issues remote writes on
        any metadata path — asserted by fabric write counters staying zero
        through a full workload."""
        p = cluster.client("node0")
        c = cluster.client("node1")
        ids = cluster.new_object_ids(10)
        for oid in ids:
            p.put_bytes(oid, b"clean" * 100)
        for oid in ids:
            assert c.get_bytes(oid) == b"clean" * 100
        link = cluster.fabric.link_between("node0", "node1")
        assert link.counters.get("write_bytes") == 0
        assert link.counters.get("read_bytes") > 0

    def test_manual_remote_write_demonstrates_the_staleness(self, cluster):
        """Drive the trap deliberately through the fabric API: home reads
        its own exposed memory, remote overwrites it, home still sees the
        old bytes until invalidation."""
        home_ep = cluster.node("node0").endpoint
        region = home_ep.exposed
        abs_base = region.absolute(0)
        home_ep.local_write(abs_base, b"HOME-VALUE")
        remote_window = cluster.store("node1").peer("node0").remote_region
        stale = remote_window.write(0, b"PEER-WRITE")
        assert stale == 10
        out = bytearray(10)
        home_ep.local_read(abs_base, 10, out=out)
        assert bytes(out) == b"HOME-VALUE"  # the hazard, reproduced
        home_ep.invalidate_exposed(0, 10)
        out2 = bytearray(10)
        home_ep.local_read(abs_base, 10, out=out2)
        assert bytes(out2) == b"PEER-WRITE"  # the kernel-module fix


class _FlakyService(Service):
    """A peer stand-in whose Lookup always fails — wire-level fault."""

    SERVICE_NAME = "plasma.StoreService"

    @rpc_method
    def Lookup(self, request: dict) -> dict:
        raise RuntimeError("injected peer crash")

    @rpc_method
    def Contains(self, request: dict) -> dict:
        raise RuntimeError("injected peer crash")


class TestFailureInjection:
    def test_peer_handler_crash_surfaces_as_internal_status(self, cluster):
        from repro.rpc.server import RpcServer
        from repro.rpc.channel import Channel
        from repro.common.clock import SimClock
        from repro.common.config import RpcConfig
        from repro.common.rng import DeterministicRng

        bad_server = RpcServer("bad-node")
        bad_server.add_service(_FlakyService())
        channel = Channel(
            "probe", bad_server, SimClock(), RpcConfig(), DeterministicRng(1)
        )
        with pytest.raises(RpcStatusError) as excinfo:
            channel.stub("plasma.StoreService").Lookup({"object_ids": [b"x" * 20]})
        assert excinfo.value.code is StatusCode.INTERNAL
        assert "injected peer crash" in excinfo.value.detail

    def test_object_vanishing_between_lookup_and_pin(self, cluster):
        """share_usage pins via AddRef after Lookup; if the object is
        deleted in between, the client sees a clean not-found."""
        cfg = make_testing_config(capacity_bytes=32 * MiB, seed=77)
        cl = Cluster(cfg, n_nodes=2, share_usage=True, check_remote_uniqueness=False)
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"now-you-see-me")

        # Sabotage: intercept node1's AddRef path by deleting the object
        # right after the descriptor is cached but before pinning. We
        # emulate the race by pre-resolving the record, deleting at home,
        # then getting (which pins from the stale record).
        store1 = cl.store("node1")
        records = store1._rpc_lookup([oid], {})  # noqa: SLF001 — test taps the seam
        assert records == []  # resolved
        p.delete(oid)
        with pytest.raises(ObjectNotFoundError):
            c.get([oid])

    def test_store_survives_failed_creates(self, cluster):
        """OOM on create must not leak table entries or allocator bytes."""
        from repro.common.errors import OutOfMemoryError

        p = cluster.client("node0")
        store = cluster.store("node0")
        pinned = cluster.new_object_ids(
            store.capacity_bytes // (4 * MiB)
        )
        for oid in pinned:
            p.put_bytes(oid, bytes(4 * MiB - 4096))
            p.get_one(oid)
        used = store.used_bytes
        count = store.object_count()
        for _ in range(5):
            with pytest.raises(OutOfMemoryError):
                p.create(cluster.new_object_id(), 8 * MiB)
        assert store.used_bytes == used
        assert store.object_count() == count
        store.allocator.audit()

    def test_rpc_error_counters_recorded(self, cluster):
        c1_channel = cluster.node("node1").channels["node0"]
        with pytest.raises(RpcStatusError):
            c1_channel.stub("plasma.StoreService").Lookup({"object_ids": []})
        assert c1_channel.counters.get("calls_failed") == 1

    def test_unknown_object_error_names_count(self, cluster):
        c = cluster.client("node1")
        missing = cluster.new_object_ids(3)
        with pytest.raises(ObjectNotFoundError, match="3 object"):
            c.get(missing)
