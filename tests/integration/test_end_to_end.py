"""End-to-end scenarios exercising the whole stack through the public API."""

import numpy as np
import pytest

from repro import Cluster, ObjectID, ScaleOutCluster
from repro.common.config import testing_config as make_testing_config
from repro.common.units import MiB


@pytest.fixture
def cfg():
    return make_testing_config(capacity_bytes=48 * MiB, seed=2022)


class TestProducerConsumerPipeline:
    def test_notification_driven_pipeline(self, cfg):
        """Producer commits partitions; a consumer on another node discovers
        them via seal notifications and reduces them."""
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        feed = cluster.store("node0").subscribe()

        expected_total = 0
        for i in range(10):
            data = np.full(1000, i, dtype=np.uint8)
            expected_total += int(data.sum())
            producer.put_bytes(ObjectID.from_name(f"part/{i}"), data)

        total = 0
        consumed = 0
        while consumed < 10:
            note = feed.pop()
            assert note is not None
            payload = consumer.get_bytes(note.object_id)
            total += int(np.frombuffer(payload, dtype=np.uint8).sum())
            consumed += 1
        assert total == expected_total

    def test_numpy_arrays_roundtrip_via_views(self, cfg):
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        matrix = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        oid = cluster.new_object_id()
        producer.put_bytes(oid, matrix.tobytes())
        buf = consumer.get_one(oid)
        # Zero-copy: interpret the remote buffer view directly.
        remote_matrix = np.frombuffer(buf.view(), dtype=np.float64).reshape(64, 64)
        assert np.array_equal(remote_matrix, matrix)
        consumer.release(oid)


class TestWideDependency:
    def test_shuffle_style_exchange(self, cfg):
        """Every node produces a partition; every node consumes all
        partitions (the wide-dependency pattern of §V-B)."""
        cluster = Cluster(cfg, n_nodes=3, check_remote_uniqueness=False)
        clients = {n: cluster.client(n) for n in cluster.node_names()}
        for i, name in enumerate(cluster.node_names()):
            clients[name].put_bytes(
                ObjectID.from_name(f"shuffle/{name}"),
                np.full(10_000, i, dtype=np.uint8),
            )
        for name, client in clients.items():
            gathered = []
            for src in cluster.node_names():
                data = client.get_bytes(ObjectID.from_name(f"shuffle/{src}"))
                gathered.append(np.frombuffer(data, dtype=np.uint8))
            stacked = np.concatenate(gathered)
            assert stacked.sum() == 10_000 * (0 + 1 + 2)

    def test_remote_traffic_never_touches_lan(self, cfg):
        """In the disaggregated design, payloads move over the fabric; the
        LAN carries only RPC metadata (which our RPC model accounts
        separately), unlike the scale-out baseline."""
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, bytes(4 * MiB))
        c.get_bytes(oid)
        link = cluster.fabric.link_between("node0", "node1")
        assert link.counters.get("read_bytes") >= 4 * MiB


class TestDisaggregationVsScaleOut:
    def test_disaggregated_beats_scaleout_on_first_touch(self, cfg):
        """The headline comparison: one-shot remote consumption of a large
        object is several times faster via the fabric than via LAN copy."""
        size = 16 * MiB

        dis = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        p, c = dis.client("node0"), dis.client("node1")
        oid = dis.new_object_id()
        p.put_bytes(oid, bytes(size))
        t0 = dis.clock.now_ns
        c.get_bytes(oid)
        dis_ns = dis.clock.now_ns - t0

        so = ScaleOutCluster(cfg, n_nodes=2)
        p2, c2 = so.client("node0"), so.client("node1")
        oid2 = so.new_object_id()
        p2.put_bytes(oid2, bytes(size))
        t0 = so.clock.now_ns
        c2.get_bytes(oid2)
        so_ns = so.clock.now_ns - t0

        assert dis_ns < so_ns / 2  # fabric >> LAN for bulk first touch

    def test_scaleout_replica_wins_on_rereads(self, cfg):
        """Honest flip side: after replication, the baseline reads locally;
        disaggregation keeps paying the fabric on every read."""
        size = 16 * MiB
        reads = 5

        dis = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        p, c = dis.client("node0"), dis.client("node1")
        oid = dis.new_object_id()
        p.put_bytes(oid, bytes(size))
        c.get_bytes(oid)  # warm (lookup amortised? no cache -> still RPC)
        t0 = dis.clock.now_ns
        for _ in range(reads):
            c.get_bytes(oid)
        dis_ns = dis.clock.now_ns - t0

        so = ScaleOutCluster(cfg, n_nodes=2)
        p2, c2 = so.client("node0"), so.client("node1")
        oid2 = so.new_object_id()
        p2.put_bytes(oid2, bytes(size))
        c2.get_bytes(oid2)  # replicate once
        t0 = so.clock.now_ns
        for _ in range(reads):
            c2.get_bytes(oid2)
        so_ns = so.clock.now_ns - t0

        assert so_ns < dis_ns  # replica locality wins on repeats


class TestCapacityStory:
    def test_remote_consumption_does_not_consume_local_capacity(self, cfg):
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        p = cluster.client("node0")
        c = cluster.client("node1")
        ids = cluster.new_object_ids(8)
        for oid in ids:
            p.put_bytes(oid, bytes(MiB))
        used_before = cluster.store("node1").used_bytes
        for oid in ids:
            c.get_bytes(oid)
        assert cluster.store("node1").used_bytes == used_before

    def test_scaleout_consumes_local_capacity(self, cfg):
        so = ScaleOutCluster(cfg, n_nodes=2)
        p = so.client("node0")
        c = so.client("node1")
        ids = so.new_object_ids(8)
        for oid in ids:
            p.put_bytes(oid, bytes(MiB))
        used_before = so.store("node1").used_bytes
        for oid in ids:
            c.get_bytes(oid)
        assert so.store("node1").used_bytes >= used_before + 8 * MiB
