"""The paper's concurrency design, exercised with real threads.

§IV-A2: the store main thread and the gRPC server thread share the object
identifier map; a mutex guards it. These tests run a producer thread (the
"main thread" path) against concurrent RPC dispatch threads (the "gRPC
server" path) on the same store and assert nothing corrupts.

Timing note: the SimClock is not part of what is asserted here (wall-clock
concurrency and simulated time are orthogonal); these tests are about
mutual exclusion and state integrity.
"""

from __future__ import annotations

import threading

import pytest

from repro.common.config import testing_config as make_testing_config
from repro.common.ids import ObjectID
from repro.common.units import MiB
from repro.core import Cluster


@pytest.fixture
def cluster():
    return Cluster(
        make_testing_config(capacity_bytes=48 * MiB, seed=5),
        n_nodes=2,
        check_remote_uniqueness=False,
    )


def test_producer_vs_rpc_lookup_threads(cluster):
    """One thread creates/seals objects on node0 while four threads hammer
    node0's RPC service with Lookup/Contains, exactly the contention the
    mutex exists for."""
    store0 = cluster.store("node0")
    server0 = cluster.node("node0").server
    producer = cluster.client("node0", "threaded-producer")
    n_objects = 300
    errors: list[Exception] = []
    produced: list[ObjectID] = []
    stop = threading.Event()

    def produce():
        try:
            for i in range(n_objects):
                oid = ObjectID.from_int(i)
                producer.put_bytes(oid, b"t" * 64)
                produced.append(oid)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            stop.set()

    def rpc_hammer():
        try:
            while not stop.is_set() or len(produced) < n_objects:
                upto = len(produced)
                if upto == 0:
                    continue
                ids = [produced[j].binary() for j in range(max(0, upto - 20), upto)]
                if not ids:
                    continue
                status, response, _ = server0.dispatch(
                    "plasma.StoreService", "Lookup", {"object_ids": ids}
                )
                assert status.name == "OK"
                for descriptor in response["found"]:
                    assert descriptor["data_size"] == 64
                if stop.is_set():
                    break
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=produce)]
    threads += [threading.Thread(target=rpc_hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert store0.object_count() == n_objects
    # Every sealed object resolvable afterwards.
    status, response, _ = server0.dispatch(
        "plasma.StoreService",
        "Lookup",
        {"object_ids": [oid.binary() for oid in produced]},
    )
    assert len(response["found"]) == n_objects


def test_concurrent_refcount_churn_via_rpc(cluster):
    """AddRef/ReleaseRef from many threads must balance exactly."""
    p = cluster.client("node0")
    oid = cluster.new_object_id()
    p.put_bytes(oid, b"contended")
    server0 = cluster.node("node0").server
    errors: list[Exception] = []

    def churn():
        try:
            for _ in range(500):
                status, _, detail = server0.dispatch(
                    "plasma.StoreService", "AddRef", {"object_ids": [oid.binary()]}
                )
                assert status.name == "OK", detail
                status, _, detail = server0.dispatch(
                    "plasma.StoreService",
                    "ReleaseRef",
                    {"object_ids": [oid.binary()]},
                )
                assert status.name == "OK", detail
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=churn) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert cluster.store("node0").table.get(oid).remote_ref_count == 0


def test_concurrent_creates_from_two_nodes_with_uniqueness(cluster):
    """Two stores creating disjoint id ranges concurrently (each create
    RPC-checks the peer) must not deadlock or interleave wrongly.

    The uniqueness check deliberately runs outside the table mutex — this
    test is the regression guard for that deadlock.
    """
    cl = Cluster(
        make_testing_config(capacity_bytes=48 * MiB, seed=6),
        n_nodes=2,
        check_remote_uniqueness=True,
    )
    errors: list[Exception] = []

    def produce(node: str, base: int):
        try:
            client = cl.client(node)
            for i in range(100):
                client.put_bytes(ObjectID.from_int(base + i), b"c" * 32)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    t0 = threading.Thread(target=produce, args=("node0", 0))
    t1 = threading.Thread(target=produce, args=("node1", 10_000))
    t0.start()
    t1.start()
    t0.join(timeout=120)
    t1.join(timeout=120)
    assert not t0.is_alive() and not t1.is_alive(), "deadlock between stores"
    assert not errors
    assert cl.store("node0").object_count() == 100
    assert cl.store("node1").object_count() == 100
