"""End-to-end overload control: deadline propagation across forwarded
hops, expired-work shedding, and hedged reads — all on the sim clock."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import testing_config as _testing_config
from repro.common.errors import ObjectUnavailableError
from repro.common.units import MiB
from repro.core import Cluster

MS = 1_000_000


def make_cluster(n_nodes=3, *, rpc_overrides=None):
    config = _testing_config(capacity_bytes=32 * MiB, seed=99)
    rpc = replace(config.rpc, jitter_sigma=0.0, **(rpc_overrides or {}))
    config = replace(config, rpc=rpc)
    return Cluster(config, n_nodes=n_nodes, check_remote_uniqueness=False)


def spy_deadlines(server, seen):
    """Record the deadline each dispatched method arrived with."""
    orig = server.dispatch_wire

    def spy(service, method, wire, correlation_id=None, deadline_ns=None):
        seen.append((method, deadline_ns))
        return orig(
            service,
            method,
            wire,
            correlation_id=correlation_id,
            deadline_ns=deadline_ns,
        )

    server.dispatch_wire = spy


class TestDeadlinePropagation:
    def test_budget_shrinks_across_forwarded_hops(self):
        """PlacedSeal runs on whatever the PlacedCreate hop left of the
        operation's deadline budget — not on a fresh per-call deadline."""
        cl = make_cluster(2, rpc_overrides={"default_deadline_ns": 50 * MS})
        seen = []
        spy_deadlines(cl.node("node1").server, seen)
        oid = cl.new_object_id()
        assert cl.store("node0").forward_put(oid, b"x" * 1024, b"", "node1")
        deadlines = dict(
            (m, d) for m, d in seen if m in ("PlacedCreate", "PlacedSeal")
        )
        assert set(deadlines) == {"PlacedCreate", "PlacedSeal"}
        assert deadlines["PlacedCreate"] is not None
        assert deadlines["PlacedSeal"] is not None
        # The first hop and the fabric write spent real sim time, so the
        # seal hop arrived with strictly less budget.
        assert 0 < deadlines["PlacedSeal"] < deadlines["PlacedCreate"]

    def test_no_default_deadline_means_no_propagation(self):
        cl = make_cluster(2)
        seen = []
        spy_deadlines(cl.node("node1").server, seen)
        oid = cl.new_object_id()
        assert cl.store("node0").forward_put(oid, b"y" * 64, b"", "node1")
        assert all(d is None for _, d in seen)


class TestExpiredWorkShed:
    def test_backlogged_server_sheds_doomed_reads(self):
        """A deadline that cannot cover the server's backlog is refused at
        admission instead of queued — the caller sees the typed outage."""
        cl = make_cluster(2, rpc_overrides={"default_deadline_ns": 20 * MS})
        producer = cl.client("node0")
        reader = cl.client("node1")
        oid = cl.new_object_id()
        producer.put_bytes(oid, b"stale-by-arrival")
        model = cl.node("node0").server.overload
        model.set_service_rate(100.0)
        model.add_backlog(50 * MS)
        with pytest.raises(ObjectUnavailableError):
            reader.get([oid])
        assert model.counters.get("shed_expired") >= 1
        assert cl.store("node1").counters.get("lookups_shed") >= 1
        # Drain the backlog: the same read now clears admission.
        cl.clock.advance(60 * MS)
        assert reader.get_bytes(oid) == b"stale-by-arrival"


def warm_hedge_samples(cl, reader_node, holder_node, n=3):
    """Seed the reader->holder channel's latency estimator with healthy
    round trips so hedge_delay_ns() has enough samples."""
    producer = cl.client(holder_node)
    reader = cl.client(reader_node)
    for i in range(n):
        oid = cl.new_object_id()
        producer.put_bytes(oid, b"warm%d" % i)
        assert reader.get_bytes(oid) == b"warm%d" % i


class TestHedgedReads:
    def make(self):
        return make_cluster(
            3, rpc_overrides={"hedge_quantile": 0.95, "hedge_min_samples": 3}
        )

    def test_hedge_wins_against_a_slow_holder(self):
        """The first probed peer is slow (sheds under the hedge clamp);
        the sweep hedges to the next holder, which answers — a hedge win,
        and the slow peer is never marked unreachable."""
        cl = self.make()
        warm_hedge_samples(cl, "node1", "node0")
        target = cl.new_object_id()
        cl.client("node2").put_bytes(target, b"hedged-payload")
        # node0 (probed first, non-final) now takes 10 ms per op — far
        # beyond the microsecond-scale hedge clamp learned while healthy.
        cl.node("node0").server.overload.set_service_rate(100.0)
        reader = cl.client("node1")
        assert reader.get_bytes(target) == b"hedged-payload"
        counters = cl.store("node1").counters
        assert counters.get("lookup_hedges_fired") >= 1
        assert counters.get("lookup_hedge_wins") >= 1
        assert counters.get("lookup_hedge_losses") == 0

    def test_hedge_loses_and_retries_with_full_deadline(self):
        """The hedged peer was the only holder: the clamped probe fails,
        every other peer comes up empty, and the sweep retries the slow
        peer with the full deadline — availability is preserved."""
        cl = self.make()
        warm_hedge_samples(cl, "node1", "node0")
        target = cl.new_object_id()
        cl.client("node0").put_bytes(target, b"only-copy")
        cl.node("node0").server.overload.set_service_rate(100.0)
        reader = cl.client("node1")
        assert reader.get_bytes(target) == b"only-copy"
        counters = cl.store("node1").counters
        assert counters.get("lookup_hedges_fired") >= 1
        assert counters.get("lookup_hedge_losses") >= 1
        assert counters.get("lookup_hedge_wins") == 0

    def test_hedged_run_replays_byte_identical(self):
        """The whole hedged-read schedule is deterministic: same seed,
        same counters, same final clock."""

        def run():
            cl = self.make()
            warm_hedge_samples(cl, "node1", "node0")
            target = cl.new_object_id()
            cl.client("node2").put_bytes(target, b"replay")
            cl.node("node0").server.overload.set_service_rate(100.0)
            payload = cl.client("node1").get_bytes(target)
            return (
                bytes(payload),
                sorted(cl.store("node1").counters.snapshot().items()),
                sorted(
                    cl.node("node0").server.overload.counters.snapshot().items()
                ),
                cl.clock.now_ns,
            )

        assert run() == run()
