"""Scale-out baseline: fetch-by-copy semantics and its pathologies."""

import pytest

from repro.baseline import ScaleOutCluster
from repro.common.errors import ObjectNotFoundError
from repro.common.units import MiB, gib_per_s


@pytest.fixture
def so_cluster(small_config):
    return ScaleOutCluster(small_config, n_nodes=2)


class TestBasics:
    def test_local_get(self, so_cluster):
        p = so_cluster.client("node0")
        oid = so_cluster.new_object_id()
        p.put_bytes(oid, b"local-path")
        assert p.get_bytes(oid) == b"local-path"

    def test_remote_get_copies_and_serves(self, so_cluster):
        p = so_cluster.client("node0")
        c = so_cluster.client("node1")
        oid = so_cluster.new_object_id()
        p.put_bytes(oid, b"copied-over-lan")
        assert c.get_bytes(oid) == b"copied-over-lan"

    def test_missing_raises(self, so_cluster):
        c = so_cluster.client("node1")
        with pytest.raises(ObjectNotFoundError):
            c.get([so_cluster.new_object_id()])

    def test_single_node_rejected(self, small_config):
        with pytest.raises(ValueError):
            ScaleOutCluster(small_config, n_nodes=1)


class TestReplication:
    def test_fetch_materialises_local_replica(self, so_cluster):
        p = so_cluster.client("node0")
        c = so_cluster.client("node1")
        oid = so_cluster.new_object_id()
        p.put_bytes(oid, b"replica")
        c.get_bytes(oid)
        # The object now exists on BOTH nodes — duplicated data.
        assert so_cluster.store("node0").contains(oid)
        assert so_cluster.store("node1").contains(oid)

    def test_second_get_hits_replica_without_lan(self, so_cluster):
        p = so_cluster.client("node0")
        c = so_cluster.client("node1")
        oid = so_cluster.new_object_id()
        p.put_bytes(oid, bytes(MiB))
        c.get_bytes(oid)
        fetched_before = so_cluster.store("node1").counters.get("remote_fetches")
        c.get_bytes(oid)
        assert (
            so_cluster.store("node1").counters.get("remote_fetches")
            == fetched_before
        )

    def test_replication_thrashes_local_memory(self, so_cluster):
        """Pulling remote data evicts resident local objects — the paper's
        Fig 1a critique."""
        p0 = so_cluster.client("node0")
        c1 = so_cluster.client("node1")
        p1 = so_cluster.client("node1")
        capacity = so_cluster.store("node1").capacity_bytes
        # Fill node1 with its own objects.
        own = so_cluster.new_object_ids(capacity // MiB)
        for oid in own:
            p1.put_bytes(oid, bytes(MiB))
        # Now pull a large remote working set through node1.
        remote_ids = so_cluster.new_object_ids(8)
        for oid in remote_ids:
            p0.put_bytes(oid, bytes(MiB))
        for oid in remote_ids:
            c1.get_bytes(oid)
        evicted = so_cluster.store("node1").counters.get("objects_evicted")
        assert evicted >= 8  # resident data was thrashed


class TestTiming:
    def test_remote_get_is_lan_bandwidth_bound(self, so_cluster):
        p = so_cluster.client("node0")
        c = so_cluster.client("node1")
        oid = so_cluster.new_object_id()
        p.put_bytes(oid, bytes(8 * MiB))
        before = so_cluster.clock.now_ns
        c.get([oid])
        elapsed = so_cluster.clock.now_ns - before
        effective = gib_per_s(8 * MiB, elapsed)
        lan_rate = so_cluster.config.lan.bandwidth_bps / (1 << 30)
        assert effective < lan_rate  # slower than raw LAN (copy + RPC)

    def test_lan_bytes_counted(self, so_cluster):
        p = so_cluster.client("node0")
        c = so_cluster.client("node1")
        oid = so_cluster.new_object_id()
        p.put_bytes(oid, bytes(MiB))
        c.get_bytes(oid)
        assert so_cluster.network.counters.get("bytes_transferred") >= MiB
