"""CircuitBreaker state machine and heartbeat failure detection."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import HealthConfig
from repro.core.health import BreakerState, CircuitBreaker, HealthMonitor


@pytest.fixture
def hcfg():
    return HealthConfig(
        heartbeat_interval_ns=1_000_000,
        suspicion_timeout_ns=5_000_000,
        breaker_failure_threshold=3,
        breaker_reset_timeout_ns=10_000_000,
        breaker_half_open_probes=1,
    )


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, hcfg):
        breaker = CircuitBreaker(SimClock(), hcfg)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_keep_it_closed(self, hcfg):
        breaker = CircuitBreaker(SimClock(), hcfg)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_opens_at_threshold_and_rejects(self, hcfg):
        breaker = CircuitBreaker(SimClock(), hcfg)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.counters.get("opens") == 1
        assert breaker.counters.get("rejected") == 1
        assert breaker.fail_fast_cost_ns == hcfg.breaker_fail_fast_ns

    def test_half_open_after_reset_timeout(self, hcfg):
        clock = SimClock()
        breaker = CircuitBreaker(clock, hcfg)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(hcfg.breaker_reset_timeout_ns)
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # only one probe admitted
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self, hcfg):
        clock = SimClock()
        breaker = CircuitBreaker(clock, hcfg)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(hcfg.breaker_reset_timeout_ns)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()  # reset timer restarted
        assert breaker.counters.get("opens") == 2


class TestHealthMonitorUnit:
    class AliveStub:
        def __init__(self):
            self.calls = 0

        def Heartbeat(self, request):
            self.calls += 1
            return {}

    def test_tick_respects_interval(self, hcfg):
        clock = SimClock()
        monitor = HealthMonitor("n0", clock, hcfg)
        stub = self.AliveStub()
        monitor.add_peer("n1", stub, CircuitBreaker(clock, hcfg))
        assert monitor.tick() == {"n1": True}
        assert monitor.tick() == {}  # interval not elapsed
        clock.advance(hcfg.heartbeat_interval_ns)
        assert monitor.tick() == {"n1": True}
        assert stub.calls == 2

    def test_duplicate_peer_rejected(self, hcfg):
        clock = SimClock()
        monitor = HealthMonitor("n0", clock, hcfg)
        monitor.add_peer("n1", self.AliveStub(), CircuitBreaker(clock, hcfg))
        with pytest.raises(ValueError):
            monitor.add_peer("n1", self.AliveStub(), CircuitBreaker(clock, hcfg))

    def test_never_probed_peer_is_not_suspect(self, hcfg):
        clock = SimClock()
        monitor = HealthMonitor("n0", clock, hcfg)
        monitor.add_peer("n1", self.AliveStub(), CircuitBreaker(clock, hcfg))
        clock.advance(10 * hcfg.suspicion_timeout_ns)
        assert not monitor.is_suspect("n1")


class TestHealthInCluster:
    def test_crashed_peer_becomes_suspect(self, cluster):
        cluster.node("node1").server.shutdown()
        monitor = cluster.monitor("node0")
        cfg = cluster.config.health
        probed = cluster.health_tick()
        assert probed["node0"] == {"node1": False}
        assert probed["node1"] == {"node0": True}
        # Silence past the suspicion timeout flips the verdict.
        assert not monitor.is_suspect("node1")
        cluster.clock.advance(cfg.suspicion_timeout_ns + 1)
        assert monitor.is_suspect("node1")
        assert monitor.suspects() == ["node1"]

    def test_recovered_peer_is_cleared(self, cluster):
        cfg = cluster.config.health
        cluster.node("node1").server.shutdown()
        cluster.health_tick()
        cluster.clock.advance(cfg.suspicion_timeout_ns + 1)
        assert cluster.monitor("node0").is_suspect("node1")
        cluster.node("node1").server.restart()
        cluster.health_tick()  # interval elapsed; fresh ack
        assert not cluster.monitor("node0").is_suspect("node1")

    def test_snapshot_shape(self, cluster):
        cluster.health_tick()
        snap = cluster.health_snapshot()
        view = snap["node0"]["node1"]
        assert view["breaker"] == "closed"
        assert view["suspect"] is False
        assert view["heartbeats_sent"] == 1
        assert view["heartbeats_missed"] == 0
        assert view["last_ack_ns"] is not None

    def test_heartbeats_cost_simulated_time(self, cluster):
        t0 = cluster.clock.now_ns
        cluster.health_tick()
        assert cluster.clock.now_ns > t0
