"""Node-failure resilience, allow-missing gets, cross-node subscriptions."""

import pytest

from repro.common.errors import ObjectNotFoundError
from repro.common.units import MiB


class TestNodeFailure:
    def test_down_peer_objects_become_unreachable(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"orphaned")
        cluster.node("node0").server.shutdown()
        with pytest.raises(ObjectNotFoundError):
            c.get([oid])
        assert cluster.store("node1").counters.get("peers_unavailable") >= 1

    def test_cluster_keeps_serving_survivors(self, small_config):
        from repro.core import Cluster

        cl = Cluster(small_config, n_nodes=3, check_remote_uniqueness=False)
        p1 = cl.client("node1")
        c2 = cl.client("node2")
        oid = cl.new_object_id()
        p1.put_bytes(oid, b"alive")
        cl.node("node0").server.shutdown()
        # node2 can still resolve node1's object (lookups skip node0).
        assert c2.get_bytes(oid) == b"alive"

    def test_creates_proceed_on_surviving_quorum(self, cluster_paper_mode):
        cluster_paper_mode.node("node1").server.shutdown()
        p = cluster_paper_mode.client("node0")
        oid = cluster_paper_mode.new_object_id()
        p.put_bytes(oid, b"created-during-outage")  # Contains check skips node1
        assert cluster_paper_mode.store("node0").contains(oid)

    def test_restart_restores_service(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"back-online")
        server = cluster.node("node0").server
        server.shutdown()
        with pytest.raises(ObjectNotFoundError):
            c.get([oid])
        server.restart()
        assert c.get_bytes(oid) == b"back-online"

    def test_exposed_memory_outlives_the_store_process(self, cluster):
        """The disaggregation-specific property: a peer that already holds
        a descriptor can keep reading the dead store's memory over the
        fabric."""
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"survives-process-death")
        buf = c.get_one(oid)  # descriptor resolved while node0 was alive
        cluster.node("node0").server.shutdown()
        assert buf.read_all() == b"survives-process-death"


class TestAllowMissing:
    def test_local_missing_yields_none(self, cluster):
        p = cluster.client("node0")
        have = cluster.new_object_id()
        p.put_bytes(have, b"present")
        missing = cluster.new_object_id()
        c = cluster.client("node0")
        results = c.get([have, missing, have], allow_missing=True)
        assert results[1] is None
        assert results[0].read_all() == b"present"
        assert results[2].read_all() == b"present"
        c.release(have)
        c.release(have)

    def test_remote_missing_yields_none(self, cluster):
        c = cluster.client("node1")
        results = c.get([cluster.new_object_id()], allow_missing=True)
        assert results == [None]

    def test_unsealed_counts_as_missing(self, cluster):
        p = cluster.client("node0")
        oid = cluster.new_object_id()
        p.create(oid, 8)  # never sealed
        c = cluster.client("node0")
        assert c.get([oid], allow_missing=True) == [None]

    def test_no_references_leak_for_missing(self, cluster):
        c = cluster.client("node1")
        c.get([cluster.new_object_id()], allow_missing=True)
        assert c.held_ids() == []

    def test_default_still_raises(self, cluster):
        c = cluster.client("node1")
        with pytest.raises(ObjectNotFoundError):
            c.get([cluster.new_object_id()])


class TestRemoteSubscription:
    def test_cross_node_notification_relay(self, cluster):
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        feed = consumer.subscribe_remote("node0")
        assert feed.home == "node0"
        assert feed.poll() == []
        ids = cluster.new_object_ids(3)
        for oid in ids:
            producer.put_bytes(oid, b"announced")
        notes = feed.poll()
        assert [n.object_id for n in notes] == ids
        assert all(not n.deleted for n in notes)

    def test_deletions_flow_through(self, cluster):
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        feed = consumer.subscribe_remote("node0")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"brief")
        producer.delete(oid)
        notes = feed.poll()
        assert [n.deleted for n in notes] == [False, True]

    def test_polls_are_incremental(self, cluster):
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        feed = consumer.subscribe_remote("node0")
        producer.put_bytes(cluster.new_object_id(), b"one")
        assert len(feed.poll()) == 1
        assert feed.poll() == []
        producer.put_bytes(cluster.new_object_id(), b"two")
        assert len(feed.poll()) == 1

    def test_independent_subscriptions(self, cluster):
        producer = cluster.client("node0")
        c1 = cluster.client("node1")
        feed_a = c1.subscribe_remote("node0")
        feed_b = c1.subscribe_remote("node0")
        producer.put_bytes(cluster.new_object_id(), b"fanout")
        assert len(feed_a.poll()) == 1
        assert len(feed_b.poll()) == 1  # both feeds saw it

    def test_unknown_subscription_rejected(self, cluster):
        from repro.common.errors import RpcStatusError

        stub = cluster.store("node1").peer("node0").stub
        with pytest.raises(RpcStatusError):
            stub.PollNotifications({"subscription": 999})

    def test_each_poll_costs_one_rpc(self, cluster):
        consumer = cluster.client("node1")
        feed = consumer.subscribe_remote("node0")
        before = cluster.clock.now_ns
        feed.poll()
        elapsed_ms = (cluster.clock.now_ns - before) / 1e6
        assert 1.0 < elapsed_ms < 5.0  # a gRPC round trip
