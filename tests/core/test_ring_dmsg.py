"""SPSC rings and the dmsg transport (§IV-A2 approach 2)."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig, LocalMemoryConfig, testing_config as make_testing_config
from repro.common.errors import ObjectStoreError, RpcStatusError
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.core import Cluster
from repro.core.ring import HEADER_BYTES, RingReader, RingWriter, ring_bytes
from repro.thymesisflow import ThymesisFabric


@pytest.fixture
def ring_pair():
    """A writer on node 'home' and a remote reader on node 'peer'."""
    fab = ThymesisFabric(
        SimClock(),
        FabricLinkConfig(jitter_sigma=0.0),
        LocalMemoryConfig(jitter_sigma=0.0),
        DeterministicRng(17),
    )
    home = fab.add_node("home", 2 * MiB)
    peer = fab.add_node("peer", 2 * MiB)
    region = home.expose(0, MiB)
    peer.expose(0, MiB)
    fab.connect("home", "peer")
    size = ring_bytes(4096)
    writer = RingWriter(home, home.memory.region(region.absolute(0), size))
    remote = fab.map_remote("peer", "home")
    reader = RingReader(remote, 0, size)
    return fab, writer, reader


class TestRing:
    def test_empty_poll(self, ring_pair):
        _, _, reader = ring_pair
        assert reader.poll() == []
        assert reader.polls == 1

    def test_publish_poll_roundtrip(self, ring_pair):
        _, writer, reader = ring_pair
        writer.publish(b"first")
        writer.publish(b"second message")
        assert reader.poll() == [b"first", b"second message"]
        assert reader.poll() == []
        assert reader.messages == 2

    def test_binary_payloads(self, ring_pair):
        _, writer, reader = ring_pair
        blob = bytes(range(256)) * 4
        writer.publish(blob)
        assert reader.poll() == [blob]

    def test_wraparound(self, ring_pair):
        _, writer, reader = ring_pair
        # Capacity is 4096; pump enough traffic to wrap several times,
        # draining as we go (sync protocol keeps the reader caught up).
        for i in range(40):
            payload = bytes([i]) * 500
            writer.publish(payload)
            assert reader.poll() == [payload]

    def test_message_spanning_the_wrap_point(self, ring_pair):
        _, writer, reader = ring_pair
        writer.publish(b"x" * 3000)
        assert reader.poll() == [b"x" * 3000]
        writer.publish(b"y" * 3000)  # wraps mid-message
        assert reader.poll() == [b"y" * 3000]

    def test_oversized_message_rejected(self, ring_pair):
        _, writer, _ = ring_pair
        with pytest.raises(ObjectStoreError):
            writer.publish(b"z" * 5000)

    def test_overrun_detected(self, ring_pair):
        _, writer, reader = ring_pair
        for _ in range(5):
            writer.publish(b"a" * 1000)  # 5 x 1004 > 4096 unread
        with pytest.raises(ObjectStoreError, match="lost messages"):
            reader.poll()

    def test_reads_charge_fabric_time(self, ring_pair):
        fab, writer, reader = ring_pair
        writer.publish(b"bytes")
        before = fab.clock.now_ns
        reader.poll()
        # At least one single-access (head) plus payload reads.
        assert fab.clock.now_ns - before >= 1000

    def test_ring_bytes_validation(self):
        with pytest.raises(ValueError):
            ring_bytes(2)
        assert ring_bytes(100) == HEADER_BYTES + 100

    def test_no_remote_writes_ever(self, ring_pair):
        """The whole point of the design: the link's write counter stays 0."""
        fab, writer, reader = ring_pair
        for _ in range(10):
            writer.publish(b"only-local-writes")
            reader.poll()
        link = fab.link_between("home", "peer")
        assert link.counters.get("write_bytes") == 0


class TestDmsgCluster:
    @pytest.fixture
    def cluster(self):
        return Cluster(
            make_testing_config(capacity_bytes=32 * MiB, seed=3),
            n_nodes=2,
            sharing="dmsg",
            check_remote_uniqueness=False,
        )

    def test_remote_get_over_rings(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"ring-delivered")
        assert c.get_bytes(oid) == b"ring-delivered"

    def test_latency_is_microseconds_not_milliseconds(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"fast-path")
        t0 = cluster.clock.now_ns
        c.get_one(oid)
        elapsed_us = (cluster.clock.now_ns - t0) / 1e3
        assert elapsed_us < 300  # vs ~2400 us over gRPC

    def test_usage_sharing_works_over_dmsg(self):
        """Unlike the one-way hashmap, dmsg is bidirectional — the
        eviction-feedback extension composes with it."""
        cl = Cluster(
            make_testing_config(capacity_bytes=32 * MiB, seed=4),
            n_nodes=2,
            sharing="dmsg",
            share_usage=True,
            check_remote_uniqueness=False,
        )
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"pinned-via-rings")
        c.get_one(oid)
        assert cl.store("node0").table.get(oid).remote_ref_count == 1

    def test_uniqueness_enforced_over_dmsg(self):
        from repro.common.errors import ObjectExistsError

        cl = Cluster(
            make_testing_config(capacity_bytes=32 * MiB, seed=5),
            n_nodes=2,
            sharing="dmsg",
            check_remote_uniqueness=True,
        )
        p = cl.client("node0")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"mine")
        with pytest.raises(ObjectExistsError):
            cl.client("node1").create(oid, 4)

    def test_error_statuses_cross_the_rings(self, cluster):
        stub = cluster.node("node1").channels["node0"].stub(
            "plasma.StoreService"
        )
        with pytest.raises(RpcStatusError):
            stub.Lookup({"object_ids": []})

    def test_three_node_dmsg_mesh(self):
        cl = Cluster(
            make_testing_config(capacity_bytes=32 * MiB, seed=6),
            n_nodes=3,
            sharing="dmsg",
            check_remote_uniqueness=False,
        )
        p = cl.client("node2")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"meshy")
        for reader in ("node0", "node1"):
            assert cl.client(reader).get_bytes(oid) == b"meshy"

    def test_fabric_never_sees_metadata_writes(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        ids = cluster.new_object_ids(5)
        for oid in ids:
            p.put_bytes(oid, b"w" * 100)
        for oid in ids:
            c.get_bytes(oid)
        link = cluster.fabric.link_between("node0", "node1")
        assert link.counters.get("write_bytes") == 0
