"""Cluster wiring and the StoreService RPC surface."""

import pytest

from repro.common.errors import RpcStatusError
from repro.core import Cluster
from repro.rpc.status import StatusCode


class TestClusterConstruction:
    def test_default_two_nodes(self, small_config):
        cl = Cluster(small_config)
        assert cl.node_names() == ["node0", "node1"]

    def test_custom_names(self, small_config):
        cl = Cluster(small_config, node_names=["alpha", "beta", "gamma"])
        assert cl.node_names() == ["alpha", "beta", "gamma"]
        assert cl.store("alpha").peers() == ["beta", "gamma"]

    def test_duplicate_names_rejected(self, small_config):
        with pytest.raises(ValueError):
            Cluster(small_config, node_names=["x", "x"])

    def test_single_node_rejected(self, small_config):
        with pytest.raises(ValueError):
            Cluster(small_config, n_nodes=1)

    def test_unknown_node_lookup(self, cluster):
        with pytest.raises(KeyError):
            cluster.node("node99")

    def test_full_mesh_links(self, small_config):
        cl = Cluster(small_config, n_nodes=4)
        assert len(cl.fabric.links()) == 6  # C(4,2)

    def test_exposed_region_hosts_store(self, cluster):
        for name in cluster.node_names():
            store = cluster.store(name)
            assert store.endpoint.has_exposed
            assert store.region.size == store.capacity_bytes

    def test_id_stream_is_deterministic(self, small_config):
        a = Cluster(small_config)
        b = Cluster(small_config)
        assert a.new_object_ids(5) == b.new_object_ids(5)

    def test_client_names_unique(self, cluster):
        c1 = cluster.client("node0")
        c2 = cluster.client("node0")
        assert c1.name != c2.name

    def test_stats_snapshot(self, cluster):
        p = cluster.client("node0")
        p.put_bytes(cluster.new_object_id(), b"counted")
        stats = cluster.stats()
        assert stats["node0"]["objects"] == 1
        assert stats["node0"]["used_bytes"] > 0
        assert stats["node1"]["objects"] == 0

    def test_repr(self, cluster):
        assert "node0" in repr(cluster)


class TestStoreServiceRpc:
    """Exercise the service through a real channel, as a peer would."""

    def _stub(self, cluster, from_node="node1", to_node="node0"):
        return cluster.node(from_node).channels[to_node].stub(
            "plasma.StoreService"
        )

    def test_lookup_returns_descriptors(self, cluster):
        p = cluster.client("node0")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"descriptor-me")
        stub = self._stub(cluster)
        response = stub.Lookup({"object_ids": [oid.binary()]})
        assert response["store"] == "node0"
        (descriptor,) = response["found"]
        assert descriptor["object_id"] == oid.binary()
        assert descriptor["data_size"] == 13
        assert descriptor["sealed"] is True

    def test_lookup_omits_unknown_and_unsealed(self, cluster):
        p = cluster.client("node0")
        sealed, unsealed = cluster.new_object_ids(2)
        p.put_bytes(sealed, b"yes")
        p.create(unsealed, 4)
        stub = self._stub(cluster)
        response = stub.Lookup(
            {
                "object_ids": [
                    sealed.binary(),
                    unsealed.binary(),
                    cluster.new_object_id().binary(),
                ]
            }
        )
        assert len(response["found"]) == 1

    def test_contains_orders_match_request(self, cluster):
        p = cluster.client("node0")
        known = cluster.new_object_id()
        p.put_bytes(known, b"here")
        unknown = cluster.new_object_id()
        stub = self._stub(cluster)
        response = stub.Contains(
            {"object_ids": [unknown.binary(), known.binary()]}
        )
        assert response["present"] == [False, True]

    def test_addref_releaseref_roundtrip(self, cluster):
        p = cluster.client("node0")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"ref-me")
        stub = self._stub(cluster)
        stub.AddRef({"object_ids": [oid.binary()]})
        entry = cluster.store("node0").table.get(oid)
        assert entry.remote_ref_count == 1
        stub.ReleaseRef({"object_ids": [oid.binary()]})
        assert entry.remote_ref_count == 0

    def test_addref_unknown_object_is_not_found(self, cluster):
        stub = self._stub(cluster)
        with pytest.raises(RpcStatusError) as excinfo:
            stub.AddRef({"object_ids": [cluster.new_object_id().binary()]})
        assert excinfo.value.code is StatusCode.NOT_FOUND

    def test_empty_id_list_is_invalid_argument(self, cluster):
        stub = self._stub(cluster)
        with pytest.raises(RpcStatusError) as excinfo:
            stub.Lookup({"object_ids": []})
        assert excinfo.value.code is StatusCode.INVALID_ARGUMENT

    def test_malformed_id_is_invalid_argument(self, cluster):
        stub = self._stub(cluster)
        with pytest.raises(RpcStatusError) as excinfo:
            stub.Lookup({"object_ids": [b"short"]})
        assert excinfo.value.code is StatusCode.INVALID_ARGUMENT

    def test_stats_method(self, cluster):
        p = cluster.client("node0")
        p.put_bytes(cluster.new_object_id(), b"counted")
        stub = self._stub(cluster)
        response = stub.Stats({})
        assert response["objects"] == 1
        assert response["node"] == "node0"
        assert response["capacity_bytes"] > 0
