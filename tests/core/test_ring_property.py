"""Property-based testing of the disaggregated-memory rings."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig, LocalMemoryConfig
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.core.ring import RingReader, RingWriter, ring_bytes
from repro.thymesisflow import ThymesisFabric


def make_pair(capacity=2048):
    fab = ThymesisFabric(
        SimClock(),
        FabricLinkConfig(jitter_sigma=0.0),
        LocalMemoryConfig(jitter_sigma=0.0),
        DeterministicRng(23),
    )
    home = fab.add_node("home", MiB)
    peer = fab.add_node("peer", MiB)
    region = home.expose(0, MiB)
    peer.expose(0, MiB)
    fab.connect("home", "peer")
    size = ring_bytes(capacity)
    writer = RingWriter(home, home.memory.region(region.absolute(0), size))
    reader = RingReader(fab.map_remote("peer", "home"), 0, size)
    return writer, reader


# Interleavings: each step either publishes a message (bytes) or polls.
steps = st.lists(
    st.one_of(
        st.binary(min_size=0, max_size=300),
        st.just("POLL"),
    ),
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(steps)
def test_ring_delivers_exactly_once_in_order(sequence):
    """Under any publish/poll interleaving that respects the capacity bound,
    the reader sees exactly the published messages, in order, once."""
    writer, reader = make_pair(capacity=2048)
    pending: list[bytes] = []  # published but not yet polled
    delivered: list[bytes] = []
    expected: list[bytes] = []
    for step in sequence:
        if step == "POLL":
            delivered.extend(reader.poll())
            pending.clear()
        else:
            frame_size = 4 + len(step)
            outstanding = sum(4 + len(m) for m in pending)
            if outstanding + frame_size > 2048:
                # Would overrun the unread window; the protocol layer
                # would have polled first — do that.
                delivered.extend(reader.poll())
                pending.clear()
            writer.publish(step)
            pending.append(bytes(step))
            expected.append(bytes(step))
    delivered.extend(reader.poll())
    assert delivered == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=30))
def test_ring_head_is_monotone_and_byte_exact(messages):
    writer, reader = make_pair(capacity=4096)
    total = 0
    last_head = 0
    for message in messages:
        head = writer.publish(message)
        total += 4 + len(message)
        assert head == total
        assert head > last_head
        last_head = head
        assert reader.poll() == [message]
        assert reader.tail == head
