"""multi_get/multi_put and the cluster rpc_mode switch.

Covers the client-visible face of the async RPC core: batched multi-object
operations in both modes, mode-flip validation, coalesced lookups on the
wire, and the sync/async equivalence of results.
"""

import pytest

from repro.common.config import testing_config as small_cluster_config
from repro.common.errors import ObjectNotFoundError, ObjectStoreError
from repro.common.units import MiB
from repro.core import Cluster


def make_cluster(mode: str = "sync", *, n_nodes: int = 2, placement: bool = False,
                 **cfg_over) -> Cluster:
    from dataclasses import replace

    cfg = small_cluster_config(capacity_bytes=32 * MiB, seed=99)
    if cfg_over:
        cfg = replace(cfg, rpc=replace(cfg.rpc, **cfg_over))
    cluster = Cluster(
        cfg, n_nodes=n_nodes, check_remote_uniqueness=False, placement=placement
    )
    if mode != "sync":
        cluster.set_rpc_mode(mode)
    return cluster


def seed_objects(cluster, n: int = 6):
    """Spread *n* objects across the first two nodes; returns (ids, payloads)."""
    p0 = cluster.client("node0")
    p1 = cluster.client("node1")
    ids = cluster.new_object_ids(n)
    payloads = [bytes([i]) * (64 + i) for i in range(n)]
    for i, (oid, payload) in enumerate(zip(ids, payloads)):
        (p0 if i % 2 == 0 else p1).put_bytes(oid, payload)
    return ids, payloads


class TestSyncMultiGet:
    def test_returns_payloads_in_order(self):
        cluster = make_cluster("sync")
        ids, payloads = seed_objects(cluster)
        out = cluster.client("node0").multi_get(ids)
        assert out == payloads

    def test_missing_positions_come_back_none(self):
        cluster = make_cluster("sync")
        ids, payloads = seed_objects(cluster, 2)
        ghost = cluster.new_object_id()
        out = cluster.client("node1").multi_get([ids[0], ghost, ids[1]])
        assert out == [payloads[0], None, payloads[1]]

    def test_allow_missing_false_raises(self):
        cluster = make_cluster("sync")
        with pytest.raises(ObjectNotFoundError):
            cluster.client("node0").multi_get(
                [cluster.new_object_id()], allow_missing=False
            )

    def test_no_references_left_held(self):
        cluster = make_cluster("sync")
        ids, _ = seed_objects(cluster)
        client = cluster.client("node1")
        client.multi_get(ids)
        assert client.held_ids() == []

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_duplicate_ids_in_one_call(self, mode):
        # Found by the simtest concurrency profile: duplicate ids resolve
        # to one shared buffer handle, and releasing the first slot's
        # reference must not invalidate the second slot's read.
        cluster = make_cluster(mode)
        ids, payloads = seed_objects(cluster, 2)
        client = cluster.client("node1")
        out = client.multi_get([ids[0], ids[1], ids[0], ids[0]])
        assert out == [payloads[0], payloads[1], payloads[0], payloads[0]]
        assert client.held_ids() == []


class TestRpcModeSwitch:
    def test_default_mode_is_sync(self):
        assert make_cluster().rpc_mode == "sync"

    def test_flip_to_async_and_back(self):
        cluster = make_cluster()
        cluster.set_rpc_mode("async")
        assert cluster.rpc_mode == "async"
        assert cluster.store("node0").rpc_async
        cluster.set_rpc_mode("sync")
        assert not cluster.store("node0").rpc_async

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_cluster().set_rpc_mode("turbo")

    def test_dmsg_sharing_rejected(self):
        cfg = small_cluster_config(capacity_bytes=32 * MiB, seed=99)
        cluster = Cluster(
            cfg, n_nodes=2, check_remote_uniqueness=False, sharing="dmsg"
        )
        with pytest.raises(ObjectStoreError):
            cluster.set_rpc_mode("async")


class TestAsyncMultiGet:
    def test_matches_sync_results(self):
        sync_cluster = make_cluster("sync")
        ids_s, _ = seed_objects(sync_cluster)
        expected = sync_cluster.client("node0").multi_get(ids_s)

        async_cluster = make_cluster("async")
        ids_a, _ = seed_objects(async_cluster)
        got = async_cluster.client("node0").multi_get(ids_a)
        assert got == expected

    def test_remote_lookups_coalesce_into_one_wire_batch(self):
        cluster = make_cluster("async", batch_window_ns=100_000.0)
        p1 = cluster.client("node1")
        ids = cluster.new_object_ids(8)
        for oid in ids:
            p1.put_bytes(oid, b"far away")
        consumer = cluster.client("node0")
        before = cluster.store("node0").counters.get("lookup_rpcs")
        out = consumer.multi_get(ids)
        assert all(o == b"far away" for o in out)
        assert cluster.store("node0").counters.get("lookup_rpcs") - before == 1
        channel = cluster.node("node0").channels["node1"]
        assert channel.aio_counters["batches_sent"] >= 1

    def test_async_delete_then_multi_get_sees_none(self):
        cluster = make_cluster("async")
        ids, payloads = seed_objects(cluster, 4)
        owner = cluster.client("node0")
        owner.delete(ids[0])  # node0-homed object
        out = cluster.client("node1").multi_get(ids)
        assert out == [None] + payloads[1:]

    def test_run_twice_is_deterministic(self):
        def run():
            cluster = make_cluster("async", batch_window_ns=50_000.0)
            ids, _ = seed_objects(cluster)
            out = cluster.client("node0").multi_get(ids)
            return out, cluster.clock.now_ns

        assert run() == run()


class TestAsyncMultiPut:
    def test_roundtrip_across_nodes(self):
        cluster = make_cluster("async")
        writer = cluster.client("node0")
        ids = cluster.new_object_ids(5)
        items = [(oid, bytes([i + 1]) * 128) for i, oid in enumerate(ids)]
        assert writer.multi_put(items) == ids
        out = cluster.client("node1").multi_get(ids)
        assert out == [payload for _, payload in items]

    def test_placement_routes_forwarded_creates(self):
        cluster = make_cluster("async", n_nodes=3, placement=True)
        writer = cluster.client("node0")
        ids = cluster.new_object_ids(12)
        items = [(oid, b"p" * 256) for oid in ids]
        writer.multi_put(items)
        assert writer.counters.get("puts_forwarded") > 0
        out = cluster.client("node2").multi_get(ids)
        assert all(o == b"p" * 256 for o in out)

    def test_sync_multi_put_uses_batch_path(self):
        cluster = make_cluster("sync")
        writer = cluster.client("node0")
        ids = cluster.new_object_ids(3)
        writer.multi_put([(oid, b"s" * 32) for oid in ids])
        assert cluster.client("node1").multi_get(ids) == [b"s" * 32] * 3
