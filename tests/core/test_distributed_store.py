"""DisaggregatedStore/Client: remote retrieval, uniqueness, transparency."""

import pytest

from repro.common.errors import ObjectExistsError, ObjectNotFoundError
from repro.common.units import KiB, MiB


class TestRemoteRetrieval:
    def test_remote_get_returns_correct_bytes(self, cluster):
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        oid = cluster.new_object_id()
        payload = bytes(range(256)) * 16
        producer.put_bytes(oid, payload)
        buf = consumer.get_one(oid)
        assert buf.is_remote
        assert buf.location == "remote:node0"
        assert buf.read_all() == payload

    def test_local_get_prefers_local(self, cluster):
        producer = cluster.client("node0")
        consumer = cluster.client("node0")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"nearby")
        buf = consumer.get_one(oid)
        assert not buf.is_remote

    def test_mixed_batch_resolves_both_ways(self, cluster):
        p0 = cluster.client("node0")
        p1 = cluster.client("node1")
        c = cluster.client("node0")
        local_oid, remote_oid = cluster.new_object_ids(2)
        p0.put_bytes(local_oid, b"local")
        p1.put_bytes(remote_oid, b"remote")
        bufs = c.get([remote_oid, local_oid])
        assert [b.is_remote for b in bufs] == [True, False]
        assert bufs[0].read_all() == b"remote"
        assert bufs[1].read_all() == b"local"

    def test_missing_everywhere_raises(self, cluster):
        c = cluster.client("node0")
        with pytest.raises(ObjectNotFoundError):
            c.get([cluster.new_object_id()])

    def test_unsealed_remote_object_not_visible(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.create(oid, 16)
        with pytest.raises(ObjectNotFoundError):
            c.get([oid])
        p.seal(oid)
        assert c.get_one(oid).read_all() == bytes(16)

    def test_one_lookup_rpc_per_batch(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        ids = cluster.new_object_ids(20)
        for oid in ids:
            p.put_bytes(oid, b"batched")
        before = cluster.store("node1").counters.get("lookup_rpcs")
        c.get(ids)
        after = cluster.store("node1").counters.get("lookup_rpcs")
        assert after - before == 1

    def test_remote_get_latency_is_rpc_dominated(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"x" * KiB)
        before = cluster.clock.now_ns
        c.get([oid])
        elapsed_ms = (cluster.clock.now_ns - before) / 1e6
        assert 1.0 < elapsed_ms < 6.0  # gRPC round trip, Fig 6's remote band

    def test_remote_read_throughput_near_fabric_rate(self, cluster):
        from repro.common.units import gib_per_s

        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, bytes(8 * MiB))
        buf = c.get_one(oid)
        before = cluster.clock.now_ns
        buf.read_all()
        rate = gib_per_s(8 * MiB, cluster.clock.now_ns - before)
        assert rate == pytest.approx(5.75, rel=0.1)


class TestIdentifierUniqueness:
    def test_duplicate_across_stores_rejected(self, cluster_paper_mode):
        p0 = cluster_paper_mode.client("node0")
        p1 = cluster_paper_mode.client("node1")
        oid = cluster_paper_mode.new_object_id()
        p0.put_bytes(oid, b"first")
        with pytest.raises(ObjectExistsError):
            p1.create(oid, 8)

    def test_unsealed_ids_are_reserved_too(self, cluster_paper_mode):
        p0 = cluster_paper_mode.client("node0")
        p1 = cluster_paper_mode.client("node1")
        oid = cluster_paper_mode.new_object_id()
        p0.create(oid, 8)  # not sealed
        with pytest.raises(ObjectExistsError):
            p1.create(oid, 8)

    def test_reserve_ids_batch_check(self, cluster_paper_mode):
        p0 = cluster_paper_mode.client("node0")
        oid = cluster_paper_mode.new_object_id()
        p0.put_bytes(oid, b"taken")
        store1 = cluster_paper_mode.store("node1")
        with pytest.raises(ObjectExistsError):
            store1.reserve_ids([cluster_paper_mode.new_object_id(), oid])

    def test_put_batch_uses_single_contains_rpc(self, cluster_paper_mode):
        p = cluster_paper_mode.client("node0")
        server1 = cluster_paper_mode.node("node1").server
        before = server1.counters.get("calls")
        p.put_batch([(oid, b"bulk") for oid in cluster_paper_mode.new_object_ids(10)])
        after = server1.counters.get("calls")
        assert after - before == 1


class TestCrossNodeReferences:
    def test_remote_release_drops_record(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"ref")
        c.get_one(oid)
        store1 = cluster.store("node1")
        assert store1.remote_record(oid) is not None
        c.release(oid)
        assert store1.remote_record(oid) is None

    def test_double_hold_single_record(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"rr")
        c.get_one(oid)
        c.get_one(oid)
        record = cluster.store("node1").remote_record(oid)
        assert record.local_refs == 2
        c.release(oid)
        assert record.local_refs == 1
        c.release(oid)
        assert cluster.store("node1").remote_record(oid) is None

    def test_without_usage_sharing_home_is_blind(self, cluster):
        """The paper's acknowledged gap: remote use is invisible at home."""
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"invisible")
        c.get_one(oid)
        entry = cluster.store("node0").table.get(oid)
        assert entry.remote_ref_count == 0  # home store has no idea
        assert entry.evictable  # ...so it could evict under pressure


class TestClientTransparency:
    def test_same_api_for_local_and_remote(self, cluster):
        """The client code below never mentions placement — the framework's
        headline property."""
        p0 = cluster.client("node0")
        p1 = cluster.client("node1")
        consumer = cluster.client("node0")
        ids = cluster.new_object_ids(4)
        for i, oid in enumerate(ids):
            producer = p0 if i % 2 == 0 else p1
            producer.put_bytes(oid, f"part-{i}".encode())
        parts = [consumer.get_bytes(oid) for oid in ids]
        assert parts == [b"part-0", b"part-1", b"part-2", b"part-3"]

    def test_get_bytes_releases_remote_too(self, cluster):
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, b"cleanup")
        assert c.get_bytes(oid) == b"cleanup"
        assert c.held_ids() == []
        assert cluster.store("node1").remote_record(oid) is None
