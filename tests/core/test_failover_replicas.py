"""Opt-in replication and failover reads when a home store dies."""

import pytest

from repro.common.config import testing_config as make_testing_config
from repro.common.errors import (
    ObjectNotFoundError,
    ObjectStoreError,
    ObjectUnavailableError,
)
from repro.common.units import MiB
from repro.core import Cluster


@pytest.fixture
def cluster3():
    config = make_testing_config(capacity_bytes=32 * MiB, seed=99)
    return Cluster(config, n_nodes=3, check_remote_uniqueness=False)


class TestReplication:
    def test_put_bytes_with_replicas_pushes_a_copy(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        payload = b"replicated payload" * 100
        client.put_bytes(oid, payload, replicas=2)
        assert cluster.store("node0").replica_locations(oid) == ("node1",)
        assert cluster.store("node1").is_replica(oid)
        assert cluster.store("node0").counters.get("replicas_created") == 1
        assert cluster.store("node1").counters.get("replicas_held") == 1
        # The replica is a faithful, locally sealed copy.
        reader = cluster.client("node1")
        assert reader.get_bytes(oid) == payload

    def test_replica_payload_pulled_over_fabric(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        link = cluster.fabric.link_between("node1", "node0")
        read0 = link.counters.get("read_bytes")
        client.put_bytes(oid, b"x" * 4096, replicas=2)
        assert link.counters.get("read_bytes") - read0 >= 4096

    def test_put_batch_replicates_every_object(self, cluster):
        client = cluster.client("node0")
        ids = cluster.new_object_ids(4)
        client.put_batch([(oid, b"v" * 64) for oid in ids], replicas=2)
        store1 = cluster.store("node1")
        assert all(store1.is_replica(oid) for oid in ids)

    def test_replica_count_validation(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        with pytest.raises(ValueError, match="replicas"):
            client.put_bytes(oid, b"x", replicas=0)
        with pytest.raises(ValueError, match="peers"):
            client.put_bytes(oid, b"x", replicas=3)  # only one peer

    def test_peer_choice_is_deterministic(self, cluster3):
        oid = cluster3.new_object_id()
        client = cluster3.client("node0")
        client.put_bytes(oid, b"d" * 128, replicas=2)
        first = cluster3.store("node0").replica_locations(oid)
        # A second replica must land on the remaining peer, not repeat.
        second = cluster3.store("node0").replicate_object(oid)
        assert second not in first
        assert set(cluster3.store("node0").replica_locations(oid)) == {
            "node1",
            "node2",
        }
        with pytest.raises(ObjectStoreError, match="no peer left"):
            cluster3.store("node0").replicate_object(oid)

    def test_replication_degrades_when_target_is_down(self, cluster):
        cluster.node("node1").server.shutdown()
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        client.put_bytes(oid, b"lonely" * 10, replicas=2)  # must not raise
        store0 = cluster.store("node0")
        assert store0.replica_locations(oid) == ()
        assert store0.counters.get("replicas_skipped") == 1
        assert client.get_bytes(oid) == b"lonely" * 10  # local copy fine


class TestFailoverReads:
    def test_reader_fails_over_to_the_replica(self, cluster3):
        producer = cluster3.client("node0")
        oid = cluster3.new_object_id()
        payload = bytes(range(256)) * 16
        producer.put_bytes(oid, payload)
        # Pin the replica on node2 so the reader (node1) must resolve it
        # by RPC lookup, not from its own table.
        assert cluster3.store("node0").replicate_object(oid, "node2") == "node2"
        cluster3.node("node0").server.shutdown()
        reader = cluster3.client("node1")
        assert reader.get_bytes(oid) == payload
        assert cluster3.store("node1").counters.get("peers_unavailable") >= 1

    def test_unreplicated_object_raises_typed_unavailable(self, cluster):
        producer = cluster.client("node0")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"single copy")  # replicas=1
        cluster.node("node0").server.shutdown()
        reader = cluster.client("node1")
        with pytest.raises(ObjectUnavailableError) as exc:
            reader.get_bytes(oid)
        assert exc.value.unreachable_peers == ("node0",)

    def test_unavailable_is_a_not_found_subtype(self, cluster):
        # Existing callers that catch ObjectNotFoundError keep working.
        assert issubclass(ObjectUnavailableError, ObjectNotFoundError)

    def test_reads_recover_after_restart(self, cluster):
        producer = cluster.client("node0")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"back soon")
        cluster.node("node0").server.shutdown()
        reader = cluster.client("node1")
        with pytest.raises(ObjectUnavailableError):
            reader.get_bytes(oid)
        cluster.node("node0").server.restart()
        assert reader.get_bytes(oid) == b"back soon"


class TestReplicaLifecycle:
    def test_delete_drops_remote_replicas(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        client.put_bytes(oid, b"ephemeral" * 8, replicas=2)
        assert cluster.store("node1").is_replica(oid)
        client.delete(oid)
        store1 = cluster.store("node1")
        assert not store1.is_replica(oid)
        assert store1.counters.get("replicas_dropped") == 1
        with cluster.store("node1").table.lock:
            assert store1.table.lookup(oid) is None

    def test_in_use_replica_survives_drop(self, cluster):
        producer = cluster.client("node0")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"pinned" * 20, replicas=2)
        reader = cluster.client("node1")
        [buffer] = reader.get([oid])  # local replica, ref held
        producer.delete(oid)
        store1 = cluster.store("node1")
        assert store1.is_replica(oid)  # still readable by its holder
        assert buffer.read_all() == b"pinned" * 20
        reader.release(oid)

    def test_delete_tolerates_dead_replica_holder(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        client.put_bytes(oid, b"zz" * 32, replicas=2)
        cluster.node("node1").server.shutdown()
        client.delete(oid)  # DropReplica is best-effort
        with cluster.store("node0").table.lock:
            assert cluster.store("node0").table.lookup(oid) is None
