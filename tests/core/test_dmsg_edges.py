"""DmsgChannel edge behaviour not covered by the happy-path suite."""

import pytest

from repro.common.config import testing_config as make_testing_config
from repro.common.errors import RpcError
from repro.common.units import MiB
from repro.core import Cluster


@pytest.fixture
def dmsg_cluster():
    return Cluster(
        make_testing_config(capacity_bytes=16 * MiB, seed=55),
        n_nodes=2,
        sharing="dmsg",
        check_remote_uniqueness=False,
    )


def test_closed_channel_rejects_calls(dmsg_cluster):
    channel = dmsg_cluster.node("node1").channels["node0"]
    channel.close()
    with pytest.raises(RpcError, match="closed"):
        channel.unary_call("plasma.StoreService", "Stats", {})


def test_counters_track_ring_traffic(dmsg_cluster):
    channel = dmsg_cluster.node("node1").channels["node0"]
    channel.unary_call("plasma.StoreService", "Stats", {})
    assert channel.counters.get("calls") == 1
    assert channel.counters.get("bytes_sent") > 0
    assert channel.counters.get("bytes_received") > 0


def test_failed_call_counted(dmsg_cluster):
    from repro.common.errors import RpcStatusError

    channel = dmsg_cluster.node("node1").channels["node0"]
    with pytest.raises(RpcStatusError):
        channel.unary_call("plasma.StoreService", "Lookup", {"object_ids": []})
    assert channel.counters.get("calls_failed") == 1


def test_poll_delay_charged_twice_per_call(dmsg_cluster):
    """Request leg + response leg each wait ~poll_interval/2 on average."""
    channel = dmsg_cluster.node("node1").channels["node0"]
    clock = dmsg_cluster.clock
    costs = []
    for _ in range(50):
        t0 = clock.now_ns
        channel.unary_call("plasma.StoreService", "Stats", {})
        costs.append(clock.now_ns - t0)
    mean_us = sum(costs) / len(costs) / 1e3
    poll_us = dmsg_cluster.config.dmsg.poll_interval_ns / 1e3
    # Two half-interval waits plus ring/fabric costs: same order as one
    # full poll interval, three orders below the gRPC round trip.
    assert poll_us * 0.5 < mean_us < poll_us * 10
    assert mean_us < 100  # << 2300 us


def test_large_metadata_fits_rings(dmsg_cluster):
    """A batched Lookup for many ids must fit the default 1 MiB rings."""
    p = dmsg_cluster.client("node0")
    ids = dmsg_cluster.new_object_ids(500)
    for oid in ids:
        p.put_bytes(oid, b"x")
    c = dmsg_cluster.client("node1")
    bufs = c.get(ids)
    assert len(bufs) == 500
    for oid in ids:
        c.release(oid)
