"""DisaggregatedHashMap: home-side directory + remote timed reader."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig, LocalMemoryConfig
from repro.common.errors import ObjectStoreError
from repro.common.ids import ObjectID
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.core.sharing import (
    BUCKET_SIZE,
    DisaggregatedHashMap,
    RemoteHashMapReader,
    directory_bytes,
)
from repro.thymesisflow import ThymesisFabric


def oid(i):
    return ObjectID.from_int(i)


@pytest.fixture
def home_map():
    fab = ThymesisFabric(
        SimClock(), FabricLinkConfig(), LocalMemoryConfig(), DeterministicRng(9)
    )
    ep = fab.add_node("home", 2 * MiB)
    region = ep.expose(0, 2 * MiB)
    return DisaggregatedHashMap(region.subregion(0, directory_bytes(128)), 128)


class TestHomeSide:
    def test_insert_lookup_remove(self, home_map):
        home_map.insert(oid(1), offset=4096, data_size=100)
        assert home_map.local_lookup(oid(1)) == (4096, 100)
        assert home_map.remove(oid(1))
        assert home_map.local_lookup(oid(1)) is None
        assert not home_map.remove(oid(1))

    def test_duplicate_insert_rejected(self, home_map):
        home_map.insert(oid(1), 0, 1)
        with pytest.raises(ObjectStoreError):
            home_map.insert(oid(1), 0, 1)

    def test_collision_chain_via_linear_probing(self, home_map):
        # Many ids in a 128-bucket table force probe chains.
        for i in range(100):
            home_map.insert(oid(i), i * 64, i + 1)
        for i in range(100):
            assert home_map.local_lookup(oid(i)) == (i * 64, i + 1)

    def test_full_table_rejected(self):
        fab = ThymesisFabric(
            SimClock(), FabricLinkConfig(), LocalMemoryConfig(), DeterministicRng(9)
        )
        ep = fab.add_node("h", MiB)
        region = ep.expose(0, MiB)
        small = DisaggregatedHashMap(region.subregion(0, directory_bytes(4)), 4)
        for i in range(4):
            small.insert(oid(i), 0, 1)
        with pytest.raises(ObjectStoreError):
            small.insert(oid(99), 0, 1)

    def test_tombstones_allow_reuse_and_continue_probes(self, home_map):
        for i in range(20):
            home_map.insert(oid(i), i, 1)
        home_map.remove(oid(7))
        # Later entries in the same probe chains stay findable.
        for i in range(20):
            if i != 7:
                assert home_map.local_lookup(oid(i)) is not None
        home_map.insert(oid(100), 5, 5)
        assert home_map.local_lookup(oid(100)) == (5, 5)

    def test_load_factor_and_count(self, home_map):
        assert home_map.count == 0
        home_map.insert(oid(1), 0, 1)
        assert home_map.count == 1
        assert home_map.load_factor == pytest.approx(1 / 128)

    def test_region_too_small_rejected(self, home_map):
        fab = ThymesisFabric(
            SimClock(), FabricLinkConfig(), LocalMemoryConfig(), DeterministicRng(9)
        )
        ep = fab.add_node("h2", MiB)
        region = ep.expose(0, 100)
        with pytest.raises(ObjectStoreError):
            DisaggregatedHashMap(region, 128)


class TestRemoteReader:
    @pytest.fixture
    def pair(self):
        fab = ThymesisFabric(
            SimClock(),
            FabricLinkConfig(jitter_sigma=0.0),
            LocalMemoryConfig(jitter_sigma=0.0),
            DeterministicRng(9),
        )
        home = fab.add_node("home", 2 * MiB)
        reader_node = fab.add_node("reader", 2 * MiB)
        reader_node.expose(0, MiB)
        region = home.expose(0, 2 * MiB)
        fab.connect("home", "reader")
        hm = DisaggregatedHashMap(region.subregion(0, directory_bytes(64)), 64)
        rr = fab.map_remote("reader", "home")
        return fab, hm, RemoteHashMapReader(rr, 0, 64)

    def test_remote_lookup_finds_entries(self, pair):
        _, hm, reader = pair
        hm.insert(oid(5), 12345, 678)
        assert reader.lookup(oid(5)) == (12345, 678)

    def test_remote_lookup_miss(self, pair):
        _, hm, reader = pair
        hm.insert(oid(5), 1, 1)
        assert reader.lookup(oid(6)) is None

    def test_each_probe_costs_a_fabric_round_trip(self, pair):
        fab, hm, reader = pair
        hm.insert(oid(5), 1, 1)
        before = fab.clock.now_ns
        reader.lookup(oid(5))
        elapsed = fab.clock.now_ns - before
        added = FabricLinkConfig().added_latency_ns
        assert elapsed >= added * 0.9
        assert reader.probes >= 1

    def test_reader_sees_home_updates_coherently(self, pair):
        """Fig 3a: home-side inserts are immediately visible remotely."""
        _, hm, reader = pair
        assert reader.lookup(oid(1)) is None
        hm.insert(oid(1), 7, 7)
        assert reader.lookup(oid(1)) == (7, 7)
        hm.remove(oid(1))
        assert reader.lookup(oid(1)) is None


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(0, 10_000), max_size=40))
def test_directory_matches_dict_model(keys):
    fab = ThymesisFabric(
        SimClock(), FabricLinkConfig(), LocalMemoryConfig(), DeterministicRng(9)
    )
    ep = fab.add_node("h", MiB)
    region = ep.expose(0, MiB)
    hm = DisaggregatedHashMap(region.subregion(0, directory_bytes(128)), 128)
    model = {}
    for k in keys:
        hm.insert(oid(k), k * 2, k + 1)
        model[k] = (k * 2, k + 1)
    for k in list(model)[::2]:
        hm.remove(oid(k))
        del model[k]
    for k in range(0, 10_000, 97):
        assert hm.local_lookup(oid(k)) == model.get(k)
    assert hm.count == len(model)


def test_bucket_size_is_one_cache_line():
    assert BUCKET_SIZE == 64
    assert directory_bytes(10) == 640
