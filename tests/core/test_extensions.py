"""The paper's future-work extensions: usage sharing, lookup cache,
hashmap sharing, multi-node."""

import pytest

from repro.common.errors import ObjectNotFoundError
from repro.common.units import MiB
from repro.core import Cluster


@pytest.fixture
def sharing_cluster(small_config):
    return Cluster(
        small_config, n_nodes=2, share_usage=True, check_remote_uniqueness=False
    )


@pytest.fixture
def caching_cluster(small_config):
    return Cluster(
        small_config,
        n_nodes=2,
        enable_lookup_cache=True,
        check_remote_uniqueness=False,
    )


class TestUsageSharing:
    """AddRef/ReleaseRef RPCs close the eviction gap of §IV-A2."""

    def test_remote_use_pins_at_home(self, sharing_cluster):
        cl = sharing_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"pinned-remotely")
        c.get_one(oid)
        entry = cl.store("node0").table.get(oid)
        assert entry.remote_ref_count == 1
        assert not entry.evictable

    def test_release_unpins(self, sharing_cluster):
        cl = sharing_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"transient")
        c.get_one(oid)
        c.release(oid)
        entry = cl.store("node0").table.get(oid)
        assert entry.remote_ref_count == 0
        assert entry.evictable

    def test_double_hold_pins_once(self, sharing_cluster):
        cl = sharing_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"dedup")
        c.get_one(oid)
        c.get_one(oid)
        assert cl.store("node0").table.get(oid).remote_ref_count == 1
        c.release(oid)
        assert cl.store("node0").table.get(oid).remote_ref_count == 1
        c.release(oid)
        assert cl.store("node0").table.get(oid).remote_ref_count == 0

    def test_pinned_object_survives_home_pressure(self, sharing_cluster):
        cl = sharing_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        payload = bytes(MiB)
        p.put_bytes(oid, payload)
        buf = c.get_one(oid)
        # Hammer the home store far past capacity.
        capacity = cl.store("node0").capacity_bytes
        for extra in cl.new_object_ids(capacity // MiB + 4):
            p.put_bytes(extra, bytes(MiB))
        assert cl.store("node0").contains(oid)
        assert buf.read_all() == payload  # no corruption

    def test_unpinned_object_evicted_under_same_pressure(self, cluster):
        """Contrast case: without sharing, the home store evicts it."""
        p = cluster.client("node0")
        c = cluster.client("node1")
        oid = cluster.new_object_id()
        p.put_bytes(oid, bytes(MiB))
        c.get_one(oid)  # remote reader holds it, home can't tell
        capacity = cluster.store("node0").capacity_bytes
        for extra in cluster.new_object_ids(capacity // MiB + 4):
            p.put_bytes(extra, bytes(MiB))
        assert not cluster.store("node0").contains(oid)  # the hazard


class TestLookupCache:
    def test_repeated_get_skips_rpc(self, caching_cluster):
        cl = caching_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"cache-me")
        store1 = cl.store("node1")
        c.get_one(oid)
        c.release(oid)
        rpcs_after_first = store1.counters.get("lookup_rpcs")
        c.get_one(oid)
        c.release(oid)
        assert store1.counters.get("lookup_rpcs") == rpcs_after_first
        assert store1.lookup_cache.hits >= 1

    def test_cached_get_is_much_faster(self, caching_cluster):
        cl = caching_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"speed")
        t0 = cl.clock.now_ns
        c.get_one(oid)
        cold = cl.clock.now_ns - t0
        c.release(oid)
        t0 = cl.clock.now_ns
        c.get_one(oid)
        warm = cl.clock.now_ns - t0
        assert warm < cold / 5  # no gRPC round trip

    def test_delete_invalidates_peer_caches(self, caching_cluster):
        cl = caching_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"volatile")
        c.get_one(oid)
        c.release(oid)
        assert oid in cl.store("node1").lookup_cache
        p.delete(oid)
        assert oid not in cl.store("node1").lookup_cache
        with pytest.raises(ObjectNotFoundError):
            c.get([oid])

    def test_eviction_invalidates_peer_caches(self, caching_cluster):
        cl = caching_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, bytes(MiB))
        c.get_one(oid)
        c.release(oid)
        capacity = cl.store("node0").capacity_bytes
        for extra in cl.new_object_ids(capacity // MiB + 4):
            p.put_bytes(extra, bytes(MiB))
        assert oid not in cl.store("node1").lookup_cache

    def test_cache_stats(self, caching_cluster):
        cache = caching_cluster.store("node1").lookup_cache
        assert cache.hit_rate == 0.0
        assert len(cache) == 0


class TestHashmapSharing:
    @pytest.fixture
    def hm_cluster(self, small_config):
        return Cluster(
            small_config,
            n_nodes=2,
            sharing="hashmap",
            check_remote_uniqueness=False,
        )

    def test_remote_get_without_any_rpc(self, hm_cluster):
        cl = hm_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"via-directory")
        server0 = cl.node("node0").server
        calls_before = server0.counters.get("calls")
        buf = c.get_one(oid)
        assert buf.read_all() == b"via-directory"
        assert server0.counters.get("calls") == calls_before  # zero RPCs

    def test_directory_lookup_is_microseconds(self, hm_cluster):
        cl = hm_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"fast")
        t0 = cl.clock.now_ns
        c.get_one(oid)
        elapsed_us = (cl.clock.now_ns - t0) / 1e3
        assert elapsed_us < 200  # vs ~2400 us for the gRPC path

    def test_deleted_object_disappears_from_directory(self, hm_cluster):
        cl = hm_cluster
        p = cl.client("node0")
        c = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"temp")
        p.delete(oid)
        with pytest.raises(ObjectNotFoundError):
            c.get([oid])

    def test_usage_sharing_incompatible_with_hashmap(self, small_config):
        """The one-way directory cannot feed back usage — the paper's core
        argument for RPC."""
        with pytest.raises(ValueError, match="usage sharing"):
            Cluster(small_config, n_nodes=2, sharing="hashmap", share_usage=True)


class TestHybridSharing:
    """Paper §V-B: 'A hybrid system that combines disaggregated memory hash
    map look-up with messaging could yield more favorable results.'"""

    @pytest.fixture
    def hybrid(self, small_config):
        return Cluster(
            small_config,
            n_nodes=2,
            sharing="hybrid",
            share_usage=True,
            check_remote_uniqueness=False,
        )

    def test_lookup_via_directory_feedback_via_rings(self, hybrid):
        p = hybrid.client("node0")
        c = hybrid.client("node1")
        oid = hybrid.new_object_id()
        p.put_bytes(oid, b"best-of-both")
        t0 = hybrid.clock.now_ns
        buf = c.get_one(oid)
        elapsed_us = (hybrid.clock.now_ns - t0) / 1e3
        assert buf.read_all() == b"best-of-both"
        # Microsecond metadata plane...
        assert elapsed_us < 300
        # ...AND the object is pinned at home (which pure hashmap cannot do).
        assert hybrid.store("node0").table.get(oid).remote_ref_count == 1

    def test_pinned_object_survives_pressure(self, hybrid):
        p = hybrid.client("node0")
        c = hybrid.client("node1")
        oid = hybrid.new_object_id()
        p.put_bytes(oid, bytes(MiB))
        buf = c.get_one(oid)
        capacity = hybrid.store("node0").capacity_bytes
        for extra in hybrid.new_object_ids(capacity // MiB + 4):
            p.put_bytes(extra, bytes(MiB))
        assert hybrid.store("node0").contains(oid)
        assert buf.read_all() == bytes(MiB)

    def test_no_grpc_calls_anywhere(self, hybrid):
        p = hybrid.client("node0")
        c = hybrid.client("node1")
        oid = hybrid.new_object_id()
        p.put_bytes(oid, b"ringy")
        c.get_one(oid)
        c.release(oid)
        # The channels are DmsgChannels; the RpcServer is only reached via
        # ring frames, and the LAN-model gRPC path is never charged: remote
        # get latency stayed in the microsecond band (asserted above) and
        # peers communicated — verify stubs are dmsg-backed.
        from repro.core.dmsg import DmsgChannel

        for node in hybrid.node_names():
            for channel in hybrid.node(node).channels.values():
                assert isinstance(channel, DmsgChannel)


class TestMultiNode:
    @pytest.mark.parametrize("n_nodes", [3, 4, 6])
    def test_any_node_reads_any_node(self, small_config, n_nodes):
        cl = Cluster(small_config, n_nodes=n_nodes, check_remote_uniqueness=False)
        clients = {name: cl.client(name) for name in cl.node_names()}
        ids = {}
        for i, name in enumerate(cl.node_names()):
            oid = cl.new_object_id()
            clients[name].put_bytes(oid, f"home-{name}".encode())
            ids[name] = oid
        for reader_name, reader in clients.items():
            for home_name, oid in ids.items():
                data = reader.get_bytes(oid)
                assert data == f"home-{home_name}".encode()

    def test_lookup_stops_at_first_claiming_peer(self, small_config):
        cl = Cluster(small_config, n_nodes=4, check_remote_uniqueness=False)
        p = cl.client("node1")
        oid = cl.new_object_id()
        p.put_bytes(oid, b"somewhere")
        c = cl.client("node0")
        c.get_one(oid)
        # node0 asked node1 first (sorted order) and stopped there.
        assert cl.node("node2").server.counters.get("calls") == 0
        assert cl.node("node3").server.counters.get("calls") == 0

    def test_uniqueness_enforced_across_all_nodes(self, small_config):
        from repro.common.errors import ObjectExistsError

        cl = Cluster(small_config, n_nodes=3, check_remote_uniqueness=True)
        p2 = cl.client("node2")
        oid = cl.new_object_id()
        p2.put_bytes(oid, b"taken")
        p0 = cl.client("node0")
        with pytest.raises(ObjectExistsError):
            p0.create(oid, 8)
