"""Placement-routed creates: ring routing, forwarding, and degradation."""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan
from repro.chaos.plan import NodeCrash
from repro.common.config import testing_config as make_testing_config
from repro.common.errors import ObjectExistsError, ObjectStoreError
from repro.common.units import MiB
from repro.core import Cluster

PAYLOAD = bytes(range(256)) * 16  # 4 KiB


@pytest.fixture
def pcluster():
    return Cluster(
        make_testing_config(capacity_bytes=32 * MiB, seed=42),
        node_names=["node0", "node1", "node2", "node3"],
        placement=True,
    )


class TestRoutedCreate:
    def test_objects_land_on_their_ring_home(self, pcluster):
        client = pcluster.client("node0")
        ring = pcluster.placement_ring()
        for oid in pcluster.new_object_ids(32):
            client.put_bytes(oid, PAYLOAD)
            home = ring.home(oid)
            assert pcluster.store(home).contains(oid), (
                f"{oid!r} should live on its ring home {home}"
            )

    def test_put_batch_routes_per_object(self, pcluster):
        client = pcluster.client("node2")
        ids = pcluster.new_object_ids(24)
        client.put_batch([(oid, PAYLOAD) for oid in ids])
        ring = pcluster.placement_ring()
        homes = set()
        for oid in ids:
            home = ring.home(oid)
            homes.add(home)
            assert pcluster.store(home).contains(oid)
        assert len(homes) > 1, "ids should hash to several homes"

    def test_forwarded_object_readable_everywhere(self, pcluster):
        producer = pcluster.client("node0")
        ids = pcluster.new_object_ids(12)
        for oid in ids:
            producer.put_bytes(oid, PAYLOAD)
        for reader_node in pcluster.node_names():
            reader = pcluster.client(reader_node)
            for oid in ids:
                assert bytes(reader.get_bytes(oid)) == PAYLOAD

    def test_duplicate_forwarded_create_raises_exists(self, pcluster):
        client = pcluster.client("node0")
        ring = pcluster.placement_ring()
        oid = next(
            o for o in pcluster.new_object_ids(32)
            if ring.home(o) != "node0"
        )
        client.put_bytes(oid, PAYLOAD)
        with pytest.raises(ObjectExistsError):
            client.put_bytes(oid, PAYLOAD)

    def test_forwarded_create_counted(self, pcluster):
        client = pcluster.client("node0")
        ring = pcluster.placement_ring()
        remote_ids = [
            o for o in pcluster.new_object_ids(40)
            if ring.home(o) != "node0"
        ]
        for oid in remote_ids:
            client.put_bytes(oid, PAYLOAD)
        store = pcluster.store("node0")
        assert store.counters.get("placed_creates_forwarded") == len(remote_ids)
        assert client.counters.get("puts_forwarded") == len(remote_ids)

    def test_replicated_forwarded_put(self, pcluster):
        client = pcluster.client("node0")
        ring = pcluster.placement_ring()
        oid = next(
            o for o in pcluster.new_object_ids(32)
            if ring.home(o) != "node0"
        )
        client.put_bytes(oid, PAYLOAD, replicas=2)
        home = ring.home(oid)
        assert len(pcluster.store(home).replica_locations(oid)) == 1


class TestDegradedRouting:
    def test_unreachable_home_falls_back_to_local_create(self):
        cluster = Cluster(
            make_testing_config(capacity_bytes=32 * MiB, seed=42),
            node_names=["node0", "node1", "node2", "node3"],
            placement=True,
            fault_plan=FaultPlan(),
        )
        client = cluster.client("node0")
        ring = cluster.placement_ring()
        oid = next(
            o for o in cluster.new_object_ids(64) if ring.home(o) == "node1"
        )
        cluster.chaos.inject(
            NodeCrash(at_ns=cluster.clock.now_ns + 1, node="node1")
        )
        cluster.clock.advance(2)
        client.put_bytes(oid, PAYLOAD)
        # The object exists locally, readable, and the fallback was counted.
        assert cluster.store("node0").contains(oid)
        assert bytes(client.get_bytes(oid)) == PAYLOAD
        assert client.counters.get("puts_forward_fallback") == 1
        assert cluster.store("node0").counters.get("placed_creates_fallback") == 1

    def test_placement_requires_rpc_sharing(self):
        with pytest.raises(ValueError, match="sharing='rpc'"):
            Cluster(
                make_testing_config(seed=1),
                n_nodes=2,
                sharing="dmsg",
                placement=True,
            )

    def test_placement_accessors_raise_when_disabled(self):
        cluster = Cluster(make_testing_config(seed=1), n_nodes=2)
        assert not cluster.placement_enabled
        with pytest.raises(ObjectStoreError, match="placement"):
            cluster.membership
        with pytest.raises(ObjectStoreError, match="placement"):
            cluster.placement_ring()
        assert cluster.store("node0").placement_home(
            cluster.new_object_id()
        ) is None
