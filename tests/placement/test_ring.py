"""Unit tests for the consistent-hash placement ring."""

from __future__ import annotations

import pytest

from repro.common.errors import PlacementError
from repro.common.ids import UniqueIDGenerator
from repro.common.rng import DeterministicRng
from repro.placement import HashRing, Membership, capacity_derate


@pytest.fixture
def ids():
    return UniqueIDGenerator(DeterministicRng(31337).spawn("ring-ids"))


def make_ids(ids, n):
    return ids.take(n)


class TestHashRing:
    def test_deterministic_across_instances(self, ids):
        a = HashRing({"n0": 1.0, "n1": 1.0, "n2": 1.0})
        b = HashRing({"n2": 1.0, "n0": 1.0, "n1": 1.0})  # insertion order differs
        for oid in make_ids(ids, 200):
            assert a.home(oid) == b.home(oid)

    def test_all_members_receive_objects(self, ids):
        ring = HashRing({f"n{i}": 1.0 for i in range(4)})
        homes = {ring.home(oid) for oid in make_ids(ids, 400)}
        assert homes == {"n0", "n1", "n2", "n3"}

    def test_ownership_share_sums_to_one(self):
        ring = HashRing({"a": 1.0, "b": 1.0, "c": 2.0})
        assert sum(ring.ownership_share().values()) == pytest.approx(1.0)

    def test_weighted_member_owns_proportionally_more(self):
        ring = HashRing({"small": 1.0, "big": 3.0}, vnodes=128)
        shares = ring.ownership_share()
        assert shares["big"] > 2.0 * shares["small"]
        assert ring.vnode_count("big") == 3 * ring.vnode_count("small")

    def test_member_removal_moves_only_its_objects(self, ids):
        before = HashRing({"n0": 1.0, "n1": 1.0, "n2": 1.0, "n3": 1.0})
        after = HashRing({"n0": 1.0, "n1": 1.0, "n2": 1.0})
        moved = stayed = 0
        for oid in make_ids(ids, 500):
            old = before.home(oid)
            new = after.home(oid)
            if old == "n3":
                moved += 1
                assert new != "n3"
            else:
                # Consistent hashing: survivors keep their objects.
                assert new == old
                stayed += 1
        assert moved > 0 and stayed > 0

    def test_preference_is_distinct_and_starts_at_home(self, ids):
        ring = HashRing({f"n{i}": 1.0 for i in range(4)})
        for oid in make_ids(ids, 50):
            pref = ring.preference(oid, 3)
            assert len(pref) == 3
            assert len(set(pref)) == 3
            assert pref[0] == ring.home(oid)

    def test_empty_ring_raises(self, ids):
        ring = HashRing({})
        with pytest.raises(PlacementError):
            ring.home(make_ids(ids, 1)[0])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            HashRing({"n0": 0.0})

    def test_imbalance_reasonable_with_default_vnodes(self):
        ring = HashRing({f"n{i}": 1.0 for i in range(8)})
        assert 1.0 <= ring.imbalance() < 2.0

    def test_from_view_uses_only_active_members(self):
        membership = Membership(["n0", "n1", "n2"])
        membership.drain("n1")
        ring = HashRing.from_view(membership.view())
        assert ring.members() == ["n0", "n2"]


class TestCapacityDerate:
    def test_below_watermark_is_identity(self):
        for u in (0.0, 0.3, 0.85):
            assert capacity_derate(u) == 1.0

    def test_ramps_to_min_factor_at_full(self):
        assert capacity_derate(1.0) == pytest.approx(0.05)
        assert capacity_derate(2.0) == pytest.approx(0.05)  # clamped

    def test_monotone_above_watermark(self):
        samples = [capacity_derate(0.85 + i * 0.01) for i in range(16)]
        assert samples == sorted(samples, reverse=True)

    def test_full_member_keeps_minimal_arc(self):
        ring = HashRing(
            {"full": 1.0, "empty": 1.0},
            vnodes=64,
            utilization={"full": 1.0},
        )
        shares = ring.ownership_share()
        assert 0.0 < shares["full"] < shares["empty"]
        assert ring.effective_weight("full") == pytest.approx(0.05)
