"""Elastic membership end to end: join, drain, remove, crash reconcile."""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan
from repro.chaos.plan import NodeCrash, NodeRestart
from repro.common.config import testing_config as make_testing_config
from repro.common.errors import PlacementError
from repro.common.units import MiB
from repro.core import Cluster
from repro.placement import NodeStatus

PAYLOAD = b"\xabelastic" * 512  # 4 KiB


def make_cluster(n=3, seed=23, **kwargs):
    return Cluster(
        make_testing_config(capacity_bytes=32 * MiB, seed=seed),
        node_names=[f"node{i}" for i in range(n)],
        placement=True,
        **kwargs,
    )


def seed_objects(cluster, n):
    client = cluster.client("node0")
    ids = cluster.new_object_ids(n)
    client.put_batch([(oid, PAYLOAD) for oid in ids])
    return ids


def assert_all_readable(cluster, ids, node="node0"):
    reader = cluster.client(node)
    for oid in ids:
        assert bytes(reader.get_bytes(oid)) == PAYLOAD


class TestAddNode:
    def test_join_bumps_epoch_and_routes_creates(self):
        cluster = make_cluster(3)
        ids = seed_objects(cluster, 30)
        cluster.add_node("node3")
        assert cluster.membership.epoch == 2
        assert "node3" in cluster.placement_ring().members()
        # Enough new creates must land on the joiner.
        new_ids = seed_objects(cluster, 40)
        assert cluster.store("node3").object_count() > 0
        assert_all_readable(cluster, ids + new_ids)
        assert_all_readable(cluster, ids + new_ids, node="node3")

    def test_rebalance_fills_the_joiner(self):
        cluster = make_cluster(3)
        ids = seed_objects(cluster, 60)
        cluster.add_node("node3")
        report = cluster.rebalancer.run_until_converged()
        assert report.converged
        assert report.moved_objects > 0
        assert cluster.store("node3").object_count() > 0
        assert cluster.rebalancer.misplaced_bytes() == 0
        assert_all_readable(cluster, ids, node="node3")

    def test_duplicate_join_rejected(self):
        cluster = make_cluster(2)
        with pytest.raises(ValueError, match="already has a node"):
            cluster.add_node("node1")


class TestDrainAndRemove:
    def test_drain_excludes_from_ring_but_keeps_reads(self):
        cluster = make_cluster(3)
        ids = seed_objects(cluster, 30)
        held_before = cluster.store("node1").object_count()
        assert held_before > 0
        cluster.drain_node("node1")
        assert "node1" not in cluster.placement_ring().members()
        assert cluster.membership.status("node1") is NodeStatus.DRAINING
        # Objects have not moved yet; everything still readable.
        assert cluster.store("node1").object_count() == held_before
        assert_all_readable(cluster, ids, node="node2")
        # New creates avoid the draining node.
        new_ids = seed_objects(cluster, 20)
        assert cluster.store("node1").object_count() == held_before
        assert_all_readable(cluster, new_ids)

    def test_remove_requires_drain_and_empty(self):
        cluster = make_cluster(3)
        seed_objects(cluster, 30)
        with pytest.raises(PlacementError, match="ACTIVE"):
            cluster.remove_node("node1")
        cluster.drain_node("node1")
        with pytest.raises(PlacementError, match="still holds"):
            cluster.remove_node("node1")

    def test_full_scale_down_lifecycle(self):
        cluster = make_cluster(4)
        ids = seed_objects(cluster, 50)
        cluster.drain_node("node2")
        report = cluster.rebalancer.run_until_converged()
        assert report.converged
        assert cluster.store("node2").object_count() == 0
        cluster.remove_node("node2")
        assert cluster.node_names() == ["node0", "node1", "node3"]
        assert "node2" not in cluster.membership.names()
        for node in cluster.node_names():
            assert "node2" not in cluster.store(node).peers()
            assert_all_readable(cluster, ids, node=node)
        # The departed name is gone from everyone's failure detector too.
        for node in cluster.node_names():
            monitor = cluster.monitor(node)
            assert "node2" not in monitor.peers()


class TestCrashReconcile:
    def advance_past_suspicion(self, cluster, rounds=8):
        timeout = cluster.config.health.suspicion_timeout_ns
        for _ in range(rounds):
            cluster.clock.advance(timeout / 4)
            cluster.health_tick()

    def test_suspected_node_marked_down_and_unplaced(self):
        cluster = make_cluster(3, fault_plan=FaultPlan())
        ids = seed_objects(cluster, 24)
        cluster.health_tick()  # a pre-crash ack anchors the silence window
        cluster.chaos.inject(
            NodeCrash(at_ns=cluster.clock.now_ns + 1, node="node2")
        )
        self.advance_past_suspicion(cluster)
        assert cluster.membership.status("node2") is NodeStatus.DOWN
        assert "node2" not in cluster.placement_ring().members()
        assert cluster.membership.epoch >= 2
        # Peers' stores learned the new view over RPC.
        assert cluster.store("node0").topology_epoch == cluster.membership.epoch
        assert cluster.store("node1").topology_epoch == cluster.membership.epoch
        # New creates route around the dead node.
        new_ids = seed_objects(cluster, 16)
        for oid in new_ids:
            assert cluster.placement_ring().home(oid) != "node2"
        del ids  # reads of node2-homed objects would need replicas

    def test_recover_reactivates_and_catches_up(self):
        cluster = make_cluster(3, fault_plan=FaultPlan())
        seed_objects(cluster, 24)
        cluster.health_tick()  # a pre-crash ack anchors the silence window
        cluster.chaos.inject(
            NodeCrash(at_ns=cluster.clock.now_ns + 1, node="node2")
        )
        self.advance_past_suspicion(cluster)
        down_epoch = cluster.membership.epoch
        assert cluster.membership.status("node2") is NodeStatus.DOWN
        # The process comes back (chaos un-crashes the server), then the
        # store rebuilds from headers and rejoins the topology.
        cluster.chaos.inject(
            NodeRestart(at_ns=cluster.clock.now_ns + 1, node="node2")
        )
        cluster.clock.advance(2)
        cluster.chaos.poll()
        cluster.recover_node("node2")
        assert cluster.membership.status("node2") is NodeStatus.ACTIVE
        assert cluster.membership.epoch == down_epoch + 1
        # The recovered store pulled/installed a current view.
        assert cluster.store("node2").topology_epoch == cluster.membership.epoch
        assert "node2" in cluster.placement_ring().members()
