"""Crash-mid-migration: the prepare/commit split keeps every copy safe.

The destination dies after MigratePrepare (payload pulled, header written
*unsealed*) but before MigrateCommit. The contract:

* the migration reports ``aborted`` — no exception escapes;
* the source copy is still the published one and reads fine;
* the destination's half-copy is invisible (unsealed) and restart
  recovery reclaims it — the scrubber finds no orphan;
* the whole scenario is bit-deterministic: the same seed replays to the
  same simulated timestamps and counters.
"""

from __future__ import annotations

from repro.chaos import FaultPlan
from repro.chaos.plan import NodeCrash, NodeRestart
from repro.common.config import testing_config as make_testing_config
from repro.common.units import MiB
from repro.core import Cluster
from repro.scrub import Scrubber

PAYLOAD = b"\x5amid-flight" * 372  # ~4 KiB
SEED = 97


def run_scenario() -> list[str]:
    """One full crash-mid-migration drill; returns its replay fingerprint."""
    trace: list[str] = []
    cluster = Cluster(
        make_testing_config(capacity_bytes=32 * MiB, seed=SEED),
        node_names=["node0", "node1", "node2"],
        placement=True,
        fault_plan=FaultPlan(),
    )
    ring = cluster.placement_ring()
    oid = next(
        o for o in cluster.new_object_ids(128) if ring.home(o) == "node0"
    )
    cluster.client("node0").put_bytes(oid, PAYLOAD)
    src = cluster.store("node0")
    dst = cluster.store("node1")

    # The destination dies one simulated nanosecond after the migration
    # starts: MigratePrepare (dispatched at t0) lands, the commit attempt
    # finds the server down.
    t0 = cluster.clock.now_ns
    cluster.chaos.inject(NodeCrash(at_ns=t0 + 1, node="node1"))
    result = cluster.migration_engine.migrate(src, "node1", oid)
    trace.append(f"migrate status={result.status} moved={result.bytes_moved}")
    assert result.status == "aborted"
    assert cluster.migration_engine.counters.get("migrations_aborted") == 1

    # Source copy survives, published, readable from a third party.
    assert src.contains(oid)
    assert bytes(cluster.client("node2").get_bytes(oid)) == PAYLOAD
    # The half-pulled destination copy is unsealed: invisible to Lookup.
    assert dst.lookup_descriptor(oid) is None
    trace.append(f"post-crash src_objects={src.object_count()}")

    # Restart the destination process and rebuild its store from headers:
    # the unsealed extent is not a recoverable object, so it is reclaimed.
    cluster.chaos.inject(
        NodeRestart(at_ns=cluster.clock.now_ns + 1, node="node1")
    )
    cluster.clock.advance(2)
    cluster.chaos.poll()
    report = cluster.recover_node("node1")
    recovered_dst = cluster.store("node1")
    trace.append(
        f"recovery recovered={report.recovered} "
        f"quarantined={report.quarantined}"
    )
    assert report.recovered == 0 and report.quarantined == 0
    assert not recovered_dst.contains(oid)
    assert recovered_dst.used_bytes == 0

    # No orphans anywhere: both stores scrub clean.
    for store in (src, recovered_dst):
        scrub = Scrubber(store).run()
        assert scrub.corrupted == 0 and scrub.quarantined == 0
        trace.append(f"scrub {store.name}: {scrub.describe().splitlines()[0]}")

    # A re-driven migration (the rebalancer's retry) now completes.
    retry = cluster.migration_engine.migrate(src, "node1", oid)
    assert retry.status == "migrated"
    assert not src.contains(oid)
    assert bytes(cluster.client("node2").get_bytes(oid)) == PAYLOAD
    trace.append(f"retry status={retry.status} moved={retry.bytes_moved}")

    trace.append(f"final_t={cluster.clock.now_ns}")
    trace.append(f"engine={sorted(cluster.migration_engine.counters.snapshot().items())}")
    for name in cluster.node_names():
        trace.append(
            f"{name} counters={sorted(cluster.store(name).counters.snapshot().items())}"
        )
    return trace


class TestCrashMidMigration:
    def test_source_survives_and_destination_reclaims(self):
        run_scenario()  # all safety asserts live inside

    def test_replay_is_bit_identical(self):
        assert run_scenario() == run_scenario()
