"""Unit tests for membership lifecycle, epochs and the wire format."""

from __future__ import annotations

import pytest

from repro.common.errors import PlacementError
from repro.placement import Membership, NodeStatus, TopologyView


class TestMembership:
    def test_starts_at_epoch_one_all_active(self):
        m = Membership(["a", "b"])
        view = m.view()
        assert view.epoch == 1
        assert view.placeable_names() == ["a", "b"]

    def test_every_transition_bumps_epoch_once(self):
        m = Membership(["a", "b"])
        assert m.join("c").epoch == 2
        assert m.drain("c").epoch == 3
        assert m.mark_down("b").epoch == 4
        assert m.reactivate("b").epoch == 5
        assert m.remove("c").epoch == 6

    def test_utilization_refresh_does_not_bump_epoch(self):
        m = Membership(["a", "b"])
        m.update_utilization({"a": 0.5, "unknown": 0.9})
        assert m.epoch == 1
        assert m.view().members["a"].utilization == 0.5

    def test_draining_member_is_readable_not_placeable(self):
        m = Membership(["a", "b", "c"])
        m.drain("b")
        view = m.view()
        assert view.placeable_names() == ["a", "c"]
        assert view.readable_names() == ["a", "b", "c"]

    def test_down_member_is_neither(self):
        m = Membership(["a", "b", "c"])
        m.mark_down("b")
        view = m.view()
        assert view.placeable_names() == ["a", "c"]
        assert view.readable_names() == ["a", "c"]

    def test_idempotent_transitions_do_not_bump(self):
        m = Membership(["a", "b"])
        m.mark_down("b")
        epoch = m.epoch
        assert m.mark_down("b").epoch == epoch
        assert m.reactivate("a").epoch == epoch

    def test_bad_transitions_raise(self):
        m = Membership(["a", "b"])
        with pytest.raises(PlacementError):
            m.remove("a")  # ACTIVE; must drain first
        with pytest.raises(PlacementError):
            m.join("a")  # already a member
        with pytest.raises(PlacementError):
            m.drain("ghost")
        m.drain("b")
        with pytest.raises(PlacementError):
            m.drain("b")  # already draining

    def test_cannot_remove_last_member(self):
        m = Membership(["only", "other"])
        m.drain("other")
        m.remove("other")
        m.drain("only")
        with pytest.raises(PlacementError):
            m.remove("only")
        # The failed remove must not have emptied the record.
        assert m.names() == ["only"]

    def test_reconcile_batches_suspects_into_one_epoch(self):
        m = Membership(["a", "b", "c", "d"])
        view = m.reconcile(["b", "c"])
        assert view is not None and view.epoch == 2
        assert view.status("b") is NodeStatus.DOWN
        assert view.status("c") is NodeStatus.DOWN
        # Re-reporting the same suspects changes nothing.
        assert m.reconcile(["b", "c"]) is None
        assert m.epoch == 2


class TestWireFormat:
    def test_round_trip(self):
        m = Membership(["a", "b"])
        m.join("c", weight=2.5)
        m.drain("b")
        m.update_utilization({"a": 0.25})
        view = m.view()
        decoded = TopologyView.from_wire(view.to_wire())
        assert decoded.epoch == view.epoch
        assert decoded.names() == view.names()
        for name in view.names():
            assert decoded.members[name] == view.members[name]

    def test_wire_uses_codec_friendly_types(self):
        wire = Membership(["a"]).view().to_wire()
        assert isinstance(wire["epoch"], int)
        for member in wire["members"]:
            assert isinstance(member["name"], str)
            assert isinstance(member["status"], str)
            assert isinstance(member["weight"], float)
