"""Lookup-cache satellite: epoch stamping, node purges, eviction stats."""

from __future__ import annotations

from repro.common.ids import UniqueIDGenerator
from repro.common.rng import DeterministicRng
from repro.core.lookup_cache import LookupCache
from repro.core.remote import RemoteObjectRecord


def make_record(oid, home="node1"):
    return RemoteObjectRecord(
        object_id=oid, home=home, offset=0, data_size=64
    )


def make_ids(n):
    return UniqueIDGenerator(DeterministicRng(77).spawn("cache-ids")).take(n)


class TestEpochInvalidation:
    def test_entry_from_older_epoch_is_lazy_miss(self):
        cache = LookupCache()
        oid = make_ids(1)[0]
        cache.put(make_record(oid))
        assert cache.get(oid) is not None
        cache.set_epoch(2)
        assert cache.get(oid) is None
        assert cache.invalidations == 1
        assert oid not in cache

    def test_entry_stamped_after_epoch_change_survives(self):
        cache = LookupCache()
        cache.set_epoch(3)
        oid = make_ids(1)[0]
        cache.put(make_record(oid))
        cache.set_epoch(3)  # same epoch re-install: no-op
        assert cache.get(oid) is not None

    def test_epoch_is_monotonic(self):
        cache = LookupCache()
        cache.set_epoch(5)
        cache.set_epoch(3)  # stale view must not roll the stamp back
        assert cache.epoch == 5


class TestInvalidateNode:
    def test_purges_only_that_home(self):
        cache = LookupCache()
        ids = make_ids(6)
        for oid in ids[:4]:
            cache.put(make_record(oid, home="leaving"))
        for oid in ids[4:]:
            cache.put(make_record(oid, home="staying"))
        assert cache.invalidate_node("leaving") == 4
        assert cache.invalidations == 4
        assert len(cache) == 2
        for oid in ids[4:]:
            assert cache.get(oid) is not None

    def test_unknown_node_is_noop(self):
        cache = LookupCache()
        assert cache.invalidate_node("ghost") == 0
        assert cache.invalidations == 0


class TestEvictionStats:
    def test_lru_eviction_counted(self):
        cache = LookupCache(max_entries=3)
        ids = make_ids(5)
        for oid in ids:
            cache.put(make_record(oid))
        assert cache.evictions == 2
        assert len(cache) == 3
        # Oldest two went; newest three remain.
        assert ids[0] not in cache and ids[1] not in cache
        for oid in ids[2:]:
            assert oid in cache

    def test_get_refreshes_recency(self):
        cache = LookupCache(max_entries=2)
        a, b, c = make_ids(3)
        cache.put(make_record(a))
        cache.put(make_record(b))
        assert cache.get(a) is not None  # a becomes most-recent
        cache.put(make_record(c))  # evicts b, not a
        assert a in cache and b not in cache and c in cache
        assert cache.evictions == 1
