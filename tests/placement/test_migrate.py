"""Live-migration mechanics: pull protocol, retire-before-free, deferral."""

from __future__ import annotations

import pytest

from repro.common.config import testing_config as make_testing_config
from repro.common.units import MiB
from repro.core import Cluster

PAYLOAD = b"migrate-me" * 400  # ~4 KB


@pytest.fixture
def pcluster():
    return Cluster(
        make_testing_config(capacity_bytes=32 * MiB, seed=11),
        node_names=["node0", "node1", "node2"],
        placement=True,
        enable_lookup_cache=True,
    )


def put_on(cluster, node, payload=PAYLOAD):
    """Create an object that lives on *node* (route through the ring)."""
    ring = cluster.placement_ring()
    oid = next(
        o for o in cluster.new_object_ids(128) if ring.home(o) == node
    )
    cluster.client(node).put_bytes(oid, payload)
    return oid


class TestMigrate:
    def test_moves_object_and_retires_source(self, pcluster):
        oid = put_on(pcluster, "node0")
        engine = pcluster.migration_engine
        result = engine.migrate(pcluster.store("node0"), "node1", oid)
        assert result.status == "migrated"
        assert result.bytes_moved == len(PAYLOAD)
        assert result.source_retired
        assert not pcluster.store("node0").contains(oid)
        assert pcluster.store("node1").contains(oid)
        assert bytes(pcluster.client("node2").get_bytes(oid)) == PAYLOAD
        assert engine.counters.get("migrations_completed") == 1
        assert engine.counters.get("migration_bytes_moved") == len(PAYLOAD)

    def test_destination_copy_gets_fresh_generation(self, pcluster):
        oid = put_on(pcluster, "node0")
        src = pcluster.store("node0").lookup_descriptor(oid)
        pcluster.migration_engine.migrate(pcluster.store("node0"), "node1", oid)
        dst = pcluster.store("node1").lookup_descriptor(oid)
        assert dst is not None
        assert dst["generation"] >= 1
        assert dst["data_size"] == src["data_size"]

    def test_vanished_source_object_aborts(self, pcluster):
        oid = put_on(pcluster, "node0")
        pcluster.client("node0").delete(oid)
        result = pcluster.migration_engine.migrate(
            pcluster.store("node0"), "node1", oid
        )
        assert result.status == "aborted"
        assert "no longer migratable" in result.detail

    def test_pinned_source_defers_retirement(self, pcluster):
        oid = put_on(pcluster, "node0")
        holder = pcluster.client("node0")
        buf = holder.get_one(oid)  # local reader pins the source copy
        result = pcluster.migration_engine.migrate(
            pcluster.store("node0"), "node1", oid
        )
        assert result.status == "migrated"
        assert not result.source_retired
        src = pcluster.store("node0")
        assert oid in src.deferred_retires()
        # The reader's bytes stay valid for the life of its handle.
        assert bytes(buf.read_all()) == PAYLOAD
        assert src.contains(oid)
        holder.release(oid)
        assert src.flush_deferred_retires() == 1
        assert not src.contains(oid)
        assert bytes(pcluster.client("node2").get_bytes(oid)) == PAYLOAD

    def test_cached_descriptor_never_served_after_migration(self, pcluster):
        oid = put_on(pcluster, "node0")
        reader = pcluster.client("node2")
        assert bytes(reader.get_bytes(oid)) == PAYLOAD  # caches node0 home
        cache = pcluster.store("node2").lookup_cache
        assert oid in cache
        pcluster.migration_engine.migrate(pcluster.store("node0"), "node1", oid)
        # Retirement broadcast NotifyDeleted, so the peer's cached
        # descriptor is gone before anyone can read through it; the re-read
        # re-looks-up and lands on node1.
        assert oid not in cache
        assert cache.invalidations >= 1
        assert bytes(reader.get_bytes(oid)) == PAYLOAD

    def test_replica_holder_promotion_counts_already_placed(self, pcluster):
        ring = pcluster.placement_ring()
        oid = next(
            o for o in pcluster.new_object_ids(128)
            if ring.home(o) == "node0"
        )
        pcluster.client("node0").put_bytes(oid, PAYLOAD, replicas=2)
        src = pcluster.store("node0")
        replica_holder = src.replica_locations(oid)[0]
        result = pcluster.migration_engine.migrate(src, replica_holder, oid)
        assert result.status == "already_placed"
        assert result.bytes_moved == 0
        assert not src.contains(oid)
        assert pcluster.store(replica_holder).contains(oid)
        assert not pcluster.store(replica_holder).is_replica(oid)
        assert bytes(pcluster.client("node2").get_bytes(oid)) == PAYLOAD
