"""Bench harness: specs, workloads, runner output sanity, reporting."""

import pytest

from repro.bench import (
    MicroBenchConfig,
    TABLE_I,
    format_fig6,
    format_fig7,
    format_table1,
    make_payloads,
    run_spec,
    spec_by_index,
)
from repro.bench.specs import PAPER_REPETITIONS, BenchmarkSpec
from repro.common.rng import DeterministicRng
from repro.common.units import KB


class TestSpecs:
    def test_table1_matches_paper(self):
        rows = [(s.index, s.num_objects, s.object_size_kb) for s in TABLE_I]
        assert rows == [
            (1, 1000, 1),
            (2, 500, 10),
            (3, 200, 100),
            (4, 100, 1000),
            (5, 50, 10_000),
            (6, 10, 100_000),
        ]

    def test_paper_repetitions(self):
        assert PAPER_REPETITIONS == 100

    def test_sizes_are_decimal_kb(self):
        assert spec_by_index(4).object_size_bytes == 1000 * KB

    def test_total_bytes(self):
        assert spec_by_index(1).total_bytes == 1000 * 1000
        assert spec_by_index(6).total_bytes == 10 * 100_000_000

    def test_unknown_index(self):
        with pytest.raises(KeyError):
            spec_by_index(7)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(0, 1, 1)
        with pytest.raises(ValueError):
            BenchmarkSpec(1, 0, 1)

    def test_str(self):
        assert "1000 x 1 kB" in str(spec_by_index(1))


class TestWorkload:
    def test_payload_sized_to_spec(self, rng):
        spec = spec_by_index(2)
        w = make_payloads(spec, rng)
        assert len(w.payload) == spec.object_size_bytes
        assert len(w.scratch) == spec.object_size_bytes

    def test_payload_deterministic(self):
        spec = spec_by_index(1)
        a = make_payloads(spec, DeterministicRng(5))
        b = make_payloads(spec, DeterministicRng(5))
        assert a.expected_bytes() == b.expected_bytes()

    def test_payload_is_random_not_constant(self, rng):
        w = make_payloads(spec_by_index(1), rng)
        assert len(set(w.expected_bytes())) > 100


class TestAccessSequences:
    def test_zipf_is_skewed(self):
        from repro.bench import zipf_access_sequence

        seq = zipf_access_sequence(DeterministicRng(5), 100, 5000, s=1.2)
        assert seq.min() >= 0 and seq.max() < 100
        counts = {}
        for idx in seq:
            counts[int(idx)] = counts.get(int(idx), 0) + 1
        # Rank 0 must dominate any tail object by a wide margin.
        assert counts.get(0, 0) > 10 * max(counts.get(i, 0) for i in range(90, 100))

    def test_uniform_is_flat(self):
        from repro.bench import uniform_access_sequence

        seq = uniform_access_sequence(DeterministicRng(5), 10, 10_000)
        counts = [int((seq == i).sum()) for i in range(10)]
        assert max(counts) < 1.3 * min(counts)

    def test_sequences_deterministic(self):
        from repro.bench import zipf_access_sequence

        a = zipf_access_sequence(DeterministicRng(1), 50, 100)
        b = zipf_access_sequence(DeterministicRng(1), 50, 100)
        assert (a == b).all()

    def test_validation(self):
        from repro.bench import uniform_access_sequence, zipf_access_sequence

        with pytest.raises(ValueError):
            zipf_access_sequence(DeterministicRng(1), 0, 10)
        with pytest.raises(ValueError):
            zipf_access_sequence(DeterministicRng(1), 10, 10, s=0)
        with pytest.raises(ValueError):
            uniform_access_sequence(DeterministicRng(1), 10, 0)


class TestMicroConfig:
    def test_auto_materialize_by_volume(self):
        cfg = MicroBenchConfig()
        assert cfg.resolve_materialize(spec_by_index(1)) is True
        assert cfg.resolve_materialize(spec_by_index(6)) is False

    def test_explicit_modes(self):
        assert MicroBenchConfig(materialize="always").resolve_materialize(
            spec_by_index(6)
        )
        assert not MicroBenchConfig(materialize="never").resolve_materialize(
            spec_by_index(1)
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            MicroBenchConfig(materialize="maybe").resolve_materialize(
                spec_by_index(1)
            )


class TestRunSpec:
    @pytest.fixture(scope="class")
    def result(self):
        return run_spec(spec_by_index(1), MicroBenchConfig(repetitions=8))

    def test_distribution_sizes(self, result):
        assert result.create_seal_ns.count == 8
        assert result.local.retrieve_ns.count == 8
        assert result.remote.read_gibps.count == 8

    def test_remote_retrieval_slower_than_local(self, result):
        assert result.remote.retrieve_ns.mean > 2 * result.local.retrieve_ns.mean

    def test_local_read_faster_than_remote(self, result):
        assert result.local.read_gibps.mean > result.remote.read_gibps.mean

    def test_reproducible_across_runs(self):
        a = run_spec(spec_by_index(1), MicroBenchConfig(repetitions=3))
        b = run_spec(spec_by_index(1), MicroBenchConfig(repetitions=3))
        assert a.local.retrieve_ns.samples == b.local.retrieve_ns.samples
        assert a.remote.read_gibps.samples == b.remote.read_gibps.samples

    def test_verification_catches_real_data(self):
        # verify_contents=True (default) reads back and compares on rep 0;
        # a passing run certifies the data plane end to end.
        run_spec(
            spec_by_index(1),
            MicroBenchConfig(repetitions=1, materialize="always"),
        )

    def test_paper_mode_per_create_rpc(self):
        r = run_spec(
            spec_by_index(6),
            MicroBenchConfig(repetitions=2, per_create_uniqueness_rpc=True),
        )
        # Each create now pays a Contains round trip: ~2.3 ms x 10 objects.
        assert r.create_seal_ns.mean > 10 * 2e6


class TestReporting:
    def test_table1_format(self):
        text = format_table1()
        assert "TABLE I" in text
        assert "100000" in text

    def test_fig6_fig7_render(self):
        results = [run_spec(spec_by_index(1), MicroBenchConfig(repetitions=3))]
        f6 = format_fig6(results)
        assert "retrieval latency" in f6
        assert "1.885" in f6  # paper anchor column
        f7 = format_fig7(results)
        assert "GiB/s" in f7
        assert "bench 1" in f7
