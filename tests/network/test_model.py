"""TransferModel cost arithmetic."""

import pytest

from repro.common.clock import NS_PER_S
from repro.common.rng import DeterministicRng
from repro.common.units import GiB
from repro.network.model import TransferModel


def make(latency=1000.0, bw=1 * GiB, sigma=0.0):
    return TransferModel(latency, bw, sigma, DeterministicRng(1))


class TestCost:
    def test_zero_bytes_costs_latency_only(self):
        assert make().cost_ns(0) == pytest.approx(1000.0)

    def test_bandwidth_term(self):
        m = make(latency=0.0)
        assert m.cost_ns(GiB) == pytest.approx(NS_PER_S)  # 1 GiB at 1 GiB/s

    def test_expected_cost_is_jitter_free(self):
        m = TransferModel(100.0, GiB, 0.5, DeterministicRng(1))
        assert m.expected_cost_ns(1024) == pytest.approx(100.0 + 1024 / GiB * NS_PER_S)

    def test_jitter_varies_but_centres_on_base(self):
        m = TransferModel(0.0, GiB, 0.2, DeterministicRng(3))
        costs = [m.cost_ns(GiB) for _ in range(500)]
        assert min(costs) < NS_PER_S < max(costs)
        costs.sort()
        assert costs[250] == pytest.approx(NS_PER_S, rel=0.1)

    def test_ns_per_byte(self):
        assert make(bw=2 * GiB).ns_per_byte == pytest.approx(NS_PER_S / (2 * GiB))


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make(latency=-1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            make(bw=0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            TransferModel(0, GiB, -0.1, DeterministicRng(1))

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make().cost_ns(-1)
        with pytest.raises(ValueError):
            make().expected_cost_ns(-1)
