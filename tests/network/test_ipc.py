"""IPC channel: the fitted Fig 6 local cost model."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import IpcConfig
from repro.common.rng import DeterministicRng
from repro.network.ipc import IpcChannel


def make(jitter=0.0, **kwargs):
    cfg = IpcConfig(jitter_sigma=jitter, **kwargs)
    clock = SimClock()
    return clock, IpcChannel(clock, cfg, DeterministicRng(2))


class TestCostModel:
    def test_fixed_plus_per_object(self):
        clock, ipc = make()
        cost = ipc.charge_request(nobjects=100)
        cfg = ipc.config
        assert cost == pytest.approx(
            cfg.request_overhead_ns + 100 * cfg.per_object_ns
        )
        assert clock.now_ns == round(cost)

    def test_fig6_local_anchor_1000_objects(self):
        _, ipc = make()
        cost = ipc.charge_request(nobjects=1000)
        assert cost / 1e6 == pytest.approx(1.885, rel=0.03)

    def test_fig6_local_anchor_10_objects(self):
        _, ipc = make()
        cost = ipc.charge_request(nobjects=10)
        assert cost / 1e6 == pytest.approx(0.075, rel=0.05)

    def test_zero_object_request_costs_overhead(self):
        _, ipc = make()
        assert ipc.charge_request() == pytest.approx(
            ipc.config.request_overhead_ns
        )

    def test_negative_rejected(self):
        _, ipc = make()
        with pytest.raises(ValueError):
            ipc.charge_request(nobjects=-1)
        with pytest.raises(ValueError):
            ipc.charge_request(nbytes=-1)

    def test_counters(self):
        _, ipc = make()
        ipc.charge_request(nobjects=3)
        ipc.charge_request(nobjects=2)
        assert ipc.counters.get("requests") == 2
        assert ipc.counters.get("objects_referenced") == 5

    def test_jitter_spreads_costs(self):
        _, ipc = make(jitter=0.2)
        costs = {round(ipc.charge_request(nobjects=10)) for _ in range(50)}
        assert len(costs) > 40
