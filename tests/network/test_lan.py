"""LAN model: host registry, connections, byte-counted timed transfers."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import LanConfig
from repro.common.errors import ConnectionClosedError, NetworkError
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.network.lan import Network


@pytest.fixture
def network():
    net = Network(SimClock(), LanConfig(jitter_sigma=0.0), DeterministicRng(5))
    net.register_host("a")
    net.register_host("b")
    return net


class TestTopology:
    def test_register_twice_rejected(self, network):
        with pytest.raises(NetworkError):
            network.register_host("a")

    def test_connect_unknown_host_rejected(self, network):
        with pytest.raises(NetworkError):
            network.connect("a", "zzz")

    def test_self_connection_rejected(self, network):
        with pytest.raises(NetworkError):
            network.connect("a", "a")

    def test_hosts_listing(self, network):
        assert network.hosts() == {"a", "b"}


class TestTransfer:
    def test_send_recv_roundtrip(self, network):
        conn = network.connect("a", "b")
        conn.send(b"hello")
        assert conn.peer.recv() == b"hello"
        assert conn.bytes_sent == 5
        assert conn.peer.bytes_received == 5

    def test_bidirectional(self, network):
        conn = network.connect("a", "b")
        conn.send(b"ping")
        conn.peer.send(b"pong")
        assert conn.recv() == b"pong"
        assert conn.peer.recv() == b"ping"

    def test_send_advances_clock_by_model(self, network):
        conn = network.connect("a", "b")
        cfg = network.config
        before = network.clock.now_ns
        conn.send(bytes(MiB))
        elapsed = network.clock.now_ns - before
        expected = cfg.round_trip_ns / 2 + MiB / cfg.bandwidth_bps * 1e9
        assert elapsed == pytest.approx(expected, rel=0.01)

    def test_fifo_ordering(self, network):
        conn = network.connect("a", "b")
        conn.send(b"1")
        conn.send(b"2")
        assert conn.peer.recv() == b"1"
        assert conn.peer.recv() == b"2"

    def test_recv_without_message_is_protocol_error(self, network):
        conn = network.connect("a", "b")
        with pytest.raises(NetworkError):
            conn.recv()

    def test_pending_count(self, network):
        conn = network.connect("a", "b")
        conn.send(b"x")
        conn.send(b"y")
        assert conn.peer.pending() == 2

    def test_network_counters(self, network):
        conn = network.connect("a", "b")
        conn.send(b"12345")
        assert network.counters.get("bytes_transferred") == 5
        assert network.counters.get("messages") == 1


class TestClose:
    def test_send_after_close_rejected(self, network):
        conn = network.connect("a", "b")
        conn.close()
        with pytest.raises(ConnectionClosedError):
            conn.send(b"x")

    def test_send_to_closed_peer_rejected(self, network):
        conn = network.connect("a", "b")
        conn.peer.close()
        with pytest.raises(ConnectionClosedError):
            conn.send(b"x")

    def test_recv_on_closed_empty_connection(self, network):
        conn = network.connect("a", "b")
        conn.close()
        with pytest.raises(ConnectionClosedError):
            conn.peer.recv()

    def test_endpoint_names(self, network):
        conn = network.connect("a", "b")
        assert (conn.local, conn.remote) == ("a", "b")
        assert (conn.peer.local, conn.peer.remote) == ("b", "a")
