"""FIFO and largest-first eviction policy variants + the factory."""

import pytest

from repro.allocator.base import Allocation
from repro.common.ids import ObjectID
from repro.plasma import (
    EVICTION_POLICIES,
    FifoEvictionPolicy,
    LargestFirstEvictionPolicy,
    LruEvictionPolicy,
    create_eviction_policy,
)
from repro.plasma.entry import ObjectEntry
from repro.plasma.table import ObjectTable


def oid(i):
    return ObjectID.from_int(i)


def build_table(specs):
    """specs: list of (index, size, created_at). Returns (table, entries)."""
    table = ObjectTable()
    entries = []
    offset = 0
    for i, size, created in specs:
        e = ObjectEntry(
            object_id=oid(i),
            allocation=Allocation(offset=offset, size=size, padded_size=size),
            data_size=size,
            created_at_ns=created,
        )
        table.insert(e)
        table.seal(e.object_id, 1)
        entries.append(e)
        offset += size
    return table, entries


class TestFactory:
    def test_all_names_construct(self):
        for name in EVICTION_POLICIES:
            policy = create_eviction_policy(name, 1000)
            assert policy.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            create_eviction_policy("clock", 1000)

    def test_config_plumbs_policy_into_store(self):
        from repro.common.config import testing_config as make_testing_config
        from repro.core import Cluster

        cfg = make_testing_config().with_store(eviction_policy="fifo")
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        assert cluster.store("node0")._eviction.name == "fifo"  # noqa: SLF001

    def test_config_rejects_unknown_policy(self):
        from repro.common.config import testing_config as make_testing_config

        with pytest.raises(ValueError):
            make_testing_config().with_store(eviction_policy="mru").validate()


class TestOrderings:
    def test_fifo_ignores_recency(self):
        table, entries = build_table(
            [(0, 100, 10), (1, 100, 20), (2, 100, 30)]
        )
        # Touch the oldest: LRU would now spare it, FIFO must not.
        table.add_ref(entries[0].object_id)
        table.release_ref(entries[0].object_id)
        fifo = FifoEvictionPolicy(300, batch_fraction=0.01)
        decision = fifo.plan(table, required_bytes=100)
        assert decision.victims[0] is entries[0]
        lru = LruEvictionPolicy(300, batch_fraction=0.01)
        assert lru.plan(table, required_bytes=100).victims[0] is entries[1]

    def test_largest_first_minimises_victim_count(self):
        table, entries = build_table(
            [(0, 100, 1), (1, 5000, 2), (2, 100, 3), (3, 900, 4)]
        )
        policy = LargestFirstEvictionPolicy(6100, batch_fraction=0.01)
        decision = policy.plan(table, required_bytes=4000)
        assert decision.victims == [entries[1]]
        assert decision.freed_bytes == 5000

    def test_largest_first_deterministic_tie_break(self):
        table, entries = build_table([(5, 100, 1), (3, 100, 2)])
        policy = LargestFirstEvictionPolicy(200, batch_fraction=0.01)
        decision = policy.plan(table, required_bytes=100)
        assert decision.victims[0].object_id == min(
            entries[0].object_id, entries[1].object_id
        )

    def test_all_policies_respect_pinning(self):
        table, entries = build_table([(0, 100, 1), (1, 100, 2)])
        table.add_ref(entries[0].object_id)
        for name in EVICTION_POLICIES:
            policy = create_eviction_policy(name, 200, batch_fraction=1.0)
            decision = policy.plan(table, required_bytes=100)
            assert entries[0] not in decision.victims

    def test_base_policy_is_abstract(self):
        from repro.plasma.eviction import EvictionPolicy

        policy = EvictionPolicy(100)
        with pytest.raises(NotImplementedError):
            policy.order([])


class TestEndToEndBehaviourDifference:
    def _run(self, policy_name: str) -> set:
        """Stream objects through a small store while repeatedly touching a
        hot object; return the ids that survived."""
        from repro.common.config import testing_config as make_testing_config
        from repro.common.units import MiB
        from repro.core import Cluster

        cfg = make_testing_config(seed=11).with_store(
            capacity_bytes=8 * MiB, eviction_policy=policy_name
        )
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        client = cluster.client("node0")
        hot = ObjectID.from_int(0)
        client.put_bytes(hot, bytes(MiB))
        for i in range(1, 20):
            client.put_bytes(ObjectID.from_int(i), bytes(MiB))
            if cluster.store("node0").contains(hot):
                # Keep the hot object recently used.
                client.get_one(hot)
                client.release(hot)
        return set(cluster.store("node0").table.ids())

    def test_lru_keeps_hot_object_fifo_drops_it(self):
        hot = ObjectID.from_int(0)
        assert hot in self._run("lru")
        assert hot not in self._run("fifo")
