"""Standalone single-node Plasma fixtures."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import IpcConfig, LocalMemoryConfig, StoreConfig
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.memory.host import HostMemory
from repro.network.ipc import IpcChannel
from repro.plasma import PlasmaClient, PlasmaStore
from repro.thymesisflow.endpoint import ThymesisEndpoint


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def endpoint(clock):
    mem = HostMemory(16 * MiB, node="n0")
    return ThymesisEndpoint(
        "n0", mem, clock, LocalMemoryConfig(jitter_sigma=0.0), DeterministicRng(4)
    )


@pytest.fixture
def store(clock, endpoint):
    return PlasmaStore(
        "store0",
        endpoint,
        endpoint.memory.whole(),
        StoreConfig(capacity_bytes=16 * MiB),
        clock,
    )


@pytest.fixture
def client(clock, store):
    ipc = IpcChannel(clock, IpcConfig(jitter_sigma=0.0), DeterministicRng(6))
    return PlasmaClient("c0", store, ipc)


@pytest.fixture
def second_client(clock, store):
    ipc = IpcChannel(clock, IpcConfig(jitter_sigma=0.0), DeterministicRng(7))
    return PlasmaClient("c1", store, ipc)
