"""PlasmaBuffer mechanics and LruEvictionPolicy planning."""

import pytest

from repro.allocator.base import Allocation
from repro.common.errors import ObjectStoreError
from repro.common.ids import ObjectID
from repro.plasma.entry import ObjectEntry
from repro.plasma.eviction import LruEvictionPolicy
from repro.plasma.table import ObjectTable


def oid(i):
    return ObjectID.from_int(i)


class TestBufferReads:
    def test_read_into_too_small_rejected(self, client):
        client.put_bytes(oid(1), b"0123456789")
        buf = client.get_one(oid(1))
        with pytest.raises(ObjectStoreError):
            buf.read_into(bytearray(5))

    def test_read_into_larger_buffer_fills_prefix(self, client):
        client.put_bytes(oid(1), b"abcde")
        buf = client.get_one(oid(1))
        out = bytearray(10)
        buf.read_into(out)
        assert bytes(out[:5]) == b"abcde"

    def test_charge_sequential_read_advances_clock_only(self, client, clock):
        client.put_bytes(oid(1), bytes(1 << 16))
        buf = client.get_one(oid(1))
        before = clock.now_ns
        buf.charge_sequential_read()
        assert clock.now_ns > before

    def test_len_nbytes_location(self, client):
        client.put_bytes(oid(1), b"sized")
        buf = client.get_one(oid(1))
        assert len(buf) == buf.nbytes == 5
        assert buf.location == "local:n0"
        assert not buf.is_remote
        assert "sealed" in repr(buf)

    def test_charge_sequential_write_requires_unsealed(self, client):
        buf = client.create(oid(1), 128)
        buf.charge_sequential_write()
        client.seal(oid(1))
        from repro.common.errors import ObjectSealedError

        with pytest.raises(ObjectSealedError):
            buf.charge_sequential_write()


def make_table(sizes, sealed=True):
    table = ObjectTable()
    entries = []
    offset = 0
    for i, size in enumerate(sizes):
        e = ObjectEntry(
            object_id=oid(i),
            allocation=Allocation(offset=offset, size=size, padded_size=size),
            data_size=size,
        )
        table.insert(e)
        if sealed:
            table.seal(e.object_id, 1)
        entries.append(e)
        offset += size
    return table, entries


class TestEvictionPolicy:
    def test_frees_at_least_requested(self):
        table, _ = make_table([1000] * 10)
        policy = LruEvictionPolicy(capacity_bytes=10_000, batch_fraction=0.2)
        decision = policy.plan(table, required_bytes=1500)
        assert decision.freed_bytes >= 1500

    def test_batch_fraction_rounds_up(self):
        table, _ = make_table([1000] * 10)
        policy = LruEvictionPolicy(capacity_bytes=10_000, batch_fraction=0.5)
        decision = policy.plan(table, required_bytes=100)
        assert decision.freed_bytes >= 5000  # half of capacity

    def test_lru_order_of_victims(self):
        table, entries = make_table([1000] * 5)
        # Touch entry 0: most recently used.
        table.add_ref(entries[0].object_id)
        table.release_ref(entries[0].object_id)
        policy = LruEvictionPolicy(capacity_bytes=5000, batch_fraction=0.01)
        decision = policy.plan(table, required_bytes=1000)
        assert decision.victims[0] is entries[1]

    def test_unsealed_never_chosen(self):
        table, _ = make_table([1000] * 3, sealed=False)
        policy = LruEvictionPolicy(capacity_bytes=3000)
        decision = policy.plan(table, required_bytes=1000)
        assert decision.victims == []
        assert decision.freed_bytes == 0

    def test_partial_when_insufficient(self):
        table, entries = make_table([1000] * 3)
        table.add_ref(entries[2].object_id)  # pin one
        policy = LruEvictionPolicy(capacity_bytes=3000, batch_fraction=1.0)
        decision = policy.plan(table, required_bytes=3000)
        assert decision.freed_bytes == 2000
        assert decision.victim_ids == [entries[0].object_id, entries[1].object_id]

    def test_validation(self):
        with pytest.raises(ValueError):
            LruEvictionPolicy(0)
        with pytest.raises(ValueError):
            LruEvictionPolicy(100, batch_fraction=0.0)
        table, _ = make_table([100])
        with pytest.raises(ValueError):
            LruEvictionPolicy(100).plan(table, required_bytes=0)
