"""PlasmaStore + PlasmaClient: the full single-node object lifecycle."""

import pytest

from repro.common.errors import (
    ObjectExistsError,
    ObjectNotFoundError,
    ObjectNotSealedError,
    ObjectSealedError,
    ObjectStoreError,
    OutOfMemoryError,
)
from repro.common.ids import ObjectID
from repro.common.units import MiB


def oid(i: int) -> ObjectID:
    return ObjectID.from_int(i)


class TestProducerPath:
    def test_create_write_seal_get(self, client):
        buf = client.create(oid(1), 11)
        buf.write(b"hello world")
        client.seal(oid(1))
        assert client.get_bytes(oid(1)) == b"hello world"

    def test_put_bytes_convenience(self, client):
        client.put_bytes(oid(1), b"payload")
        assert client.get_bytes(oid(1)) == b"payload"

    def test_create_duplicate_rejected(self, client):
        client.create(oid(1), 10)
        with pytest.raises(ObjectExistsError):
            client.create(oid(1), 10)

    def test_zero_size_rejected(self, client):
        with pytest.raises(ValueError):
            client.create(oid(1), 0)

    def test_unsealed_object_not_gettable(self, client, second_client):
        client.create(oid(1), 10)
        with pytest.raises(ObjectNotSealedError):
            second_client.get([oid(1)])

    def test_write_after_seal_rejected(self, client):
        buf = client.create(oid(1), 4)
        buf.write(b"data")
        client.seal(oid(1))
        with pytest.raises(ObjectSealedError):
            buf.write(b"more")

    def test_metadata_stored(self, client, store):
        client.create(oid(1), 8, metadata=b"schema-v1")
        assert store.get_sealed_entry if True else None
        entry = store.table.get(oid(1))
        assert entry.metadata == b"schema-v1"

    def test_partial_writes_at_offsets(self, client):
        buf = client.create(oid(1), 8)
        buf.write(b"abcd", offset=0)
        buf.write(b"efgh", offset=4)
        client.seal(oid(1))
        client.release(oid(1))
        assert client.get_bytes(oid(1)) == b"abcdefgh"

    def test_write_beyond_object_rejected(self, client):
        buf = client.create(oid(1), 8)
        with pytest.raises(ObjectStoreError):
            buf.write(b"123456789")


class TestConsumerPath:
    def test_get_missing_raises(self, client):
        with pytest.raises(ObjectNotFoundError):
            client.get([oid(404)])

    def test_batched_get_returns_in_request_order(self, client):
        for i in (3, 1, 2):
            client.put_bytes(oid(i), bytes([i]) * 4)
        bufs = client.get([oid(2), oid(3), oid(1)])
        assert [b.read_all()[0] for b in bufs] == [2, 3, 1]

    def test_get_charges_single_ipc_request(self, client, clock):
        for i in range(10):
            client.put_bytes(oid(i), b"x")
        before = clock.now_ns
        client.get([oid(i) for i in range(10)])
        elapsed = clock.now_ns - before
        cfg = client._ipc.config  # noqa: SLF001
        assert elapsed == pytest.approx(
            cfg.request_overhead_ns + 10 * cfg.per_object_ns, rel=0.01
        )

    def test_buffers_are_readonly_views(self, client):
        client.put_bytes(oid(1), b"lock")
        buf = client.get_one(oid(1))
        with pytest.raises(TypeError):
            buf.view()[0] = 0  # type: ignore[index]

    def test_two_clients_share_object(self, client, second_client):
        client.put_bytes(oid(1), b"shared")
        b1 = client.get_one(oid(1))
        b2 = second_client.get_one(oid(1))
        assert b1.read_all() == b2.read_all() == b"shared"

    def test_contains(self, client):
        assert not client.contains(oid(5))
        client.put_bytes(oid(5), b"z")
        assert client.contains(oid(5))

    def test_empty_get_is_free(self, client, clock):
        before = clock.now_ns
        assert client.get([]) == []
        assert clock.now_ns == before


class TestReferenceCounting:
    def test_release_without_hold_rejected(self, client):
        client.put_bytes(oid(1), b"a")
        with pytest.raises(ObjectStoreError):
            client.release(oid(1))

    def test_released_buffer_unusable(self, client):
        client.put_bytes(oid(1), b"abc")
        buf = client.get_one(oid(1))
        client.release(oid(1))
        assert buf.is_released
        with pytest.raises(ObjectStoreError):
            buf.read_all()

    def test_multiple_holds_release_lifo(self, client, store):
        client.put_bytes(oid(1), b"x")
        client.get_one(oid(1))
        client.get_one(oid(1))
        entry = store.table.get(oid(1))
        assert entry.ref_count == 2
        client.release(oid(1))
        assert entry.ref_count == 1
        client.release(oid(1))
        assert entry.ref_count == 0

    def test_release_all(self, client, store):
        for i in range(3):
            client.put_bytes(oid(i), b"y")
        client.get([oid(i) for i in range(3)])
        client.release_all()
        assert client.held_ids() == []
        for i in range(3):
            assert store.table.get(oid(i)).ref_count == 0


class TestDeletion:
    def test_delete_sealed_unreferenced(self, client, store):
        client.put_bytes(oid(1), b"gone")
        used = store.used_bytes
        client.delete(oid(1))
        assert not store.contains(oid(1))
        assert store.used_bytes < used

    def test_delete_unsealed_rejected(self, client):
        client.create(oid(1), 4)
        with pytest.raises(ObjectNotSealedError):
            client.delete(oid(1))

    def test_delete_in_use_rejected(self, client):
        client.put_bytes(oid(1), b"pinned")
        client.get_one(oid(1))
        from repro.common.errors import ObjectInUseError

        with pytest.raises(ObjectInUseError):
            client.delete(oid(1))


class TestEvictionUnderPressure:
    def test_lru_eviction_makes_room(self, client, store):
        # Fill the 16 MiB store with 1 MiB objects, then keep inserting.
        n_fit = store.capacity_bytes // MiB
        for i in range(n_fit + 4):
            client.put_bytes(oid(i), bytes(MiB))
        assert store.counters.get("objects_evicted") >= 4
        # Oldest objects went first.
        assert not store.contains(oid(0))
        assert store.contains(oid(n_fit + 3))

    def test_in_use_objects_survive_pressure(self, client, store):
        client.put_bytes(oid(0), bytes(MiB))
        pinned = client.get_one(oid(0))
        for i in range(1, store.capacity_bytes // MiB + 4):
            client.put_bytes(oid(i), bytes(MiB))
        assert store.contains(oid(0))
        assert pinned.read_all() == bytes(MiB)

    def test_oom_when_everything_pinned(self, client, store):
        n_fit = store.capacity_bytes // (4 * MiB)
        for i in range(n_fit):
            client.put_bytes(oid(i), bytes(4 * MiB - 4096))
            client.get_one(oid(i))  # hold a reference
        with pytest.raises(OutOfMemoryError):
            client.create(oid(999), 4 * MiB)

    def test_explicit_evict(self, client, store):
        for i in range(4):
            client.put_bytes(oid(i), bytes(MiB))
        freed = store.evict(2 * MiB)
        assert freed >= 2 * MiB
        assert store.object_count() < 4


class TestNotifications:
    def test_seal_notifies_subscribers(self, client, store):
        queue = store.subscribe()
        client.put_bytes(oid(1), b"announce")
        notes = queue.drain()
        assert len(notes) == 1
        assert notes[0].object_id == oid(1)
        assert notes[0].data_size == 8
        assert not notes[0].deleted

    def test_delete_notifies_with_flag(self, client, store):
        queue = store.subscribe()
        client.put_bytes(oid(1), b"x")
        client.delete(oid(1))
        notes = queue.drain()
        assert notes[-1].deleted

    def test_eviction_notifies(self, client, store):
        queue = store.subscribe()
        for i in range(store.capacity_bytes // MiB + 2):
            client.put_bytes(oid(i), bytes(MiB))
        assert any(n.deleted for n in queue.drain())

    def test_pop_and_len(self, client, store):
        queue = store.subscribe()
        assert queue.pop() is None
        client.put_bytes(oid(1), b"x")
        assert len(queue) == 1
        assert queue.pop().object_id == oid(1)
        assert not queue


class TestStoreIntrospection:
    def test_describe_all(self, client, store):
        client.put_bytes(oid(1), b"abc")
        client.create(oid(2), 5)
        descs = store.describe_all()
        assert len(descs) == 2
        sealed = {d["object_id"]: d["sealed"] for d in descs}
        assert sealed[oid(1).binary()] is True
        assert sealed[oid(2).binary()] is False

    def test_lookup_descriptor_only_sealed(self, client, store):
        client.create(oid(1), 5)
        assert store.lookup_descriptor(oid(1)) is None
        client.seal(oid(1))
        d = store.lookup_descriptor(oid(1))
        assert d["data_size"] == 5

    def test_repr_mentions_usage(self, client, store):
        client.put_bytes(oid(1), b"abc")
        assert "objects" in repr(store)
        assert repr(client).startswith("PlasmaClient")
