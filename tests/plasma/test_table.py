"""ObjectTable: lifecycle, references, LRU candidate ordering, mutex."""

import threading

import pytest

from repro.allocator.base import Allocation
from repro.common.errors import (
    ObjectExistsError,
    ObjectInUseError,
    ObjectNotFoundError,
    ObjectSealedError,
)
from repro.common.ids import ObjectID
from repro.plasma.entry import ObjectEntry, ObjectState
from repro.plasma.table import ObjectTable


def entry(i: int, size: int = 64) -> ObjectEntry:
    return ObjectEntry(
        object_id=ObjectID.from_int(i),
        allocation=Allocation(offset=i * 1024, size=size, padded_size=size),
        data_size=size,
    )


class TestLifecycle:
    def test_insert_get_remove(self):
        t = ObjectTable()
        e = entry(1)
        t.insert(e)
        assert t.get(e.object_id) is e
        assert t.contains(e.object_id)
        t.remove(e.object_id)
        assert not t.contains(e.object_id)

    def test_duplicate_insert_rejected(self):
        t = ObjectTable()
        t.insert(entry(1))
        with pytest.raises(ObjectExistsError):
            t.insert(entry(1))

    def test_get_missing_raises_lookup_returns_none(self):
        t = ObjectTable()
        with pytest.raises(ObjectNotFoundError):
            t.get(ObjectID.from_int(9))
        assert t.lookup(ObjectID.from_int(9)) is None

    def test_seal_transitions_state(self):
        t = ObjectTable()
        e = entry(1)
        t.insert(e)
        assert not e.is_sealed
        t.seal(e.object_id, sealed_at_ns=123)
        assert e.is_sealed
        assert e.sealed_at_ns == 123
        assert e.state is ObjectState.SEALED

    def test_double_seal_rejected(self):
        t = ObjectTable()
        e = entry(1)
        t.insert(e)
        t.seal(e.object_id, 1)
        with pytest.raises(ObjectSealedError):
            t.seal(e.object_id, 2)

    def test_remove_in_use_rejected(self):
        t = ObjectTable()
        e = entry(1)
        t.insert(e)
        t.add_ref(e.object_id)
        with pytest.raises(ObjectInUseError):
            t.remove(e.object_id)
        t.release_ref(e.object_id)
        t.remove(e.object_id)


class TestReferences:
    def test_local_and_remote_refs_tracked_separately(self):
        t = ObjectTable()
        e = entry(1)
        t.insert(e)
        t.add_ref(e.object_id)
        t.add_ref(e.object_id, remote=True)
        assert e.ref_count == 1
        assert e.remote_ref_count == 1
        assert e.total_refs == 2
        t.release_ref(e.object_id, remote=True)
        assert e.total_refs == 1

    def test_release_without_ref_rejected(self):
        t = ObjectTable()
        e = entry(1)
        t.insert(e)
        with pytest.raises(ObjectInUseError):
            t.release_ref(e.object_id)
        with pytest.raises(ObjectInUseError):
            t.release_ref(e.object_id, remote=True)

    def test_evictable_requires_sealed_and_unreferenced(self):
        t = ObjectTable()
        e = entry(1)
        t.insert(e)
        assert not e.evictable  # unsealed
        t.seal(e.object_id, 1)
        assert e.evictable
        t.add_ref(e.object_id)
        assert not e.evictable
        t.release_ref(e.object_id)
        t.add_ref(e.object_id, remote=True)
        assert not e.evictable  # remote use pins too


class TestLruOrdering:
    def test_candidates_in_lru_order(self):
        t = ObjectTable()
        entries = [entry(i) for i in range(5)]
        for e in entries:
            t.insert(e)
            t.seal(e.object_id, 1)
        # Touch entry 0 so it becomes most recently used.
        t.add_ref(entries[0].object_id)
        t.release_ref(entries[0].object_id)
        cands = t.eviction_candidates()
        assert cands[0] is entries[1]
        assert cands[-1] is entries[0]

    def test_in_use_entries_excluded(self):
        t = ObjectTable()
        entries = [entry(i) for i in range(3)]
        for e in entries:
            t.insert(e)
            t.seal(e.object_id, 1)
        t.add_ref(entries[1].object_id)
        cands = t.eviction_candidates()
        assert entries[1] not in cands
        assert len(cands) == 2


class TestIntrospection:
    def test_len_ids_iter(self):
        t = ObjectTable()
        for i in range(4):
            t.insert(entry(i))
        assert len(t) == 4
        assert len(t.ids()) == 4
        assert sum(1 for _ in t) == 4

    def test_sealed_bytes(self):
        t = ObjectTable()
        a, b = entry(1, 100), entry(2, 200)
        t.insert(a)
        t.insert(b)
        t.seal(a.object_id, 1)
        assert t.sealed_bytes() == 100

    def test_for_each(self):
        t = ObjectTable()
        for i in range(3):
            t.insert(entry(i))
        seen = []
        t.for_each(lambda e: seen.append(e.object_id))
        assert len(seen) == 3


class TestThreadSafety:
    def test_concurrent_inserts_and_refs(self):
        """Hammer the mutex from 8 threads; counts must come out exact."""
        t = ObjectTable()
        base = entry(0)
        t.insert(base)
        t.seal(base.object_id, 1)
        errors = []

        def worker(worker_id: int):
            try:
                for i in range(200):
                    t.add_ref(base.object_id)
                    t.release_ref(base.object_id)
                    oid = ObjectID.from_int(1 + worker_id * 1000 + i)
                    t.insert(
                        ObjectEntry(
                            object_id=oid,
                            allocation=Allocation(offset=0, size=1, padded_size=64),
                            data_size=1,
                        )
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert len(t) == 1 + 8 * 200
        assert base.ref_count == 0
