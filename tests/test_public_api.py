"""The top-level package surface: everything README/examples rely on."""

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_headline_types_present(self):
        assert repro.Cluster
        assert repro.ScaleOutCluster
        assert repro.DistributedDataset
        assert repro.ObjectID
        assert callable(repro.put_array) and callable(repro.get_table)

    def test_error_hierarchy(self):
        assert issubclass(repro.ObjectStoreError, repro.ReproError)
        assert issubclass(repro.ObjectNotFoundError, repro.ObjectStoreError)
        assert issubclass(repro.OutOfMemoryError, repro.ReproError)


class TestReadmeQuickstart:
    def test_readme_snippet_verbatim(self):
        """The exact code from README.md §Quickstart must work."""
        from repro import Cluster

        cluster = Cluster(n_nodes=2)
        producer = cluster.client("node0")
        consumer = cluster.client("node1")

        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"hello, disaggregated world")

        assert consumer.get_bytes(oid) == b"hello, disaggregated world"

    def test_module_docstring_snippet(self):
        """And the snippet in the package docstring."""
        assert "Cluster" in (repro.__doc__ or "")

    def test_default_cluster_is_paper_shaped(self):
        cluster = repro.Cluster()
        assert len(cluster.node_names()) == 2  # the paper's 2-node system
        for name in cluster.node_names():
            store = cluster.store(name)
            assert store.config.allocator == "first_fit"  # paper's allocator
            assert store.sharing == "rpc"  # paper's sharing choice


class TestSubpackageDocs:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.common",
            "repro.memory",
            "repro.allocator",
            "repro.network",
            "repro.rpc",
            "repro.thymesisflow",
            "repro.plasma",
            "repro.chaos",
            "repro.obs",
            "repro.core",
            "repro.baseline",
            "repro.columnar",
            "repro.dataset",
            "repro.bench",
            "repro.placement",
            "repro.simtest",
            "repro.workload",
        ],
    )
    def test_every_subpackage_documents_itself(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 100, (
            f"{module_name} lacks a substantive docstring"
        )
        for name in getattr(module, "__all__", []):
            assert getattr(module, name, None) is not None, (
                f"{module_name}.{name} in __all__ but missing"
            )
