"""Popularity models, including the dedupe contract with repro.bench.

The zipf/uniform implementations moved from ``repro.bench.workload`` to
``repro.workload.popularity``; the bench names are now thin re-exports.
The golden sequences below were captured from the *pre-refactor*
implementation, so any silent behavior change in the move fails here.
"""

import numpy as np
import pytest

import repro.bench.workload as bench_workload
from repro.common.rng import DeterministicRng
from repro.workload.popularity import (
    POPULARITY_MODELS,
    access_sequence_for,
    hotspot_access_sequence,
    uniform_access_sequence,
    zipf_access_sequence,
)

# Captured from repro.bench.workload before the move (seed 7, 50 objects,
# 16 accesses).
GOLDEN_ZIPF_7 = [6, 28, 14, 0, 1, 24, 0, 18, 16, 3, 1, 1, 0, 2, 3, 4]
GOLDEN_UNIFORM_7 = [43, 25, 36, 14, 1, 22, 28, 5, 32, 43, 46, 15, 26, 30, 38, 29]


class TestDedupeContract:
    def test_zipf_matches_pre_refactor_golden(self):
        seq = zipf_access_sequence(DeterministicRng(7), 50, 16, s=1.1)
        assert list(seq) == GOLDEN_ZIPF_7

    def test_uniform_matches_pre_refactor_golden(self):
        seq = uniform_access_sequence(DeterministicRng(7), 50, 16)
        assert list(seq) == GOLDEN_UNIFORM_7

    def test_bench_names_are_the_same_objects(self):
        assert bench_workload.zipf_access_sequence is zipf_access_sequence
        assert bench_workload.uniform_access_sequence is uniform_access_sequence

    @pytest.mark.parametrize("seed", [0, 1, 7, 123, 2022])
    def test_bench_and_workload_draws_identical(self, seed):
        old = bench_workload.zipf_access_sequence(
            DeterministicRng(seed), 200, 64, s=1.1
        )
        new = zipf_access_sequence(DeterministicRng(seed), 200, 64, s=1.1)
        assert np.array_equal(old, new)
        old_u = bench_workload.uniform_access_sequence(DeterministicRng(seed), 200, 64)
        new_u = uniform_access_sequence(DeterministicRng(seed), 200, 64)
        assert np.array_equal(old_u, new_u)


class TestModels:
    def test_zipf_is_skewed_toward_low_slots(self):
        seq = zipf_access_sequence(DeterministicRng(3), 100, 5000, s=1.2)
        # Slot 0 must dominate any mid-range slot under a zipfian law.
        counts = np.bincount(seq, minlength=100)
        assert counts[0] > 3 * counts[50]

    def test_uniform_covers_the_range(self):
        seq = uniform_access_sequence(DeterministicRng(3), 10, 2000)
        assert set(seq) == set(range(10))

    def test_hotspot_concentrates_on_hot_set(self):
        seq = hotspot_access_sequence(
            DeterministicRng(3), 100, 2000, hot_fraction=0.1, hot_weight=0.9
        )
        hot_hits = int(np.sum(seq < 10))
        assert 0.85 <= hot_hits / 2000 <= 0.95
        assert seq.min() >= 0 and seq.max() < 100

    def test_hotspot_degenerates_to_uniform_when_all_hot(self):
        a = hotspot_access_sequence(DeterministicRng(5), 8, 64, hot_fraction=1.0)
        b = uniform_access_sequence(DeterministicRng(5), 8, 64)
        assert np.array_equal(a, b)

    def test_dispatch_covers_every_model(self):
        for model in POPULARITY_MODELS:
            seq = access_sequence_for(model, DeterministicRng(9), 20, 30)
            assert len(seq) == 30
            assert seq.min() >= 0 and seq.max() < 20

    def test_dispatch_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            access_sequence_for("pareto", DeterministicRng(9), 20, 30)
