"""Scenario schema: round-trip, validation, and loader behavior."""

import json
import sys

import pytest

from repro.workload import Scenario, ScenarioError, load_scenario
from repro.workload.scenario import loads

from tests.workload.conftest import mini_obj


class TestRoundTrip:
    def test_from_obj_to_obj_round_trips(self):
        scenario = Scenario.from_obj(mini_obj())
        again = Scenario.from_obj(scenario.to_obj())
        assert again == scenario

    def test_dumps_loads_round_trips(self):
        scenario = Scenario.from_obj(mini_obj())
        assert loads(scenario.dumps()) == scenario

    def test_defaults_are_materialized_on_dump(self):
        obj = Scenario.from_obj(mini_obj()).to_obj()
        assert obj["schema_version"] == 1
        assert obj["cluster"]["replicas"] == 1
        assert obj["traffic"]["arrival"]["mode"] == "open"

    def test_with_seed(self):
        scenario = Scenario.from_obj(mini_obj())
        assert scenario.with_seed(99).seed == 99
        assert scenario.seed == 11  # frozen original untouched

    def test_load_scenario_from_file(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(mini_obj()), encoding="utf-8")
        assert load_scenario(path).name == "mini"

    def test_committed_scenarios_all_load(self):
        from pathlib import Path

        files = sorted(Path("benchmarks/scenarios").glob("*.json"))
        assert len(files) >= 3
        for path in files:
            scenario = load_scenario(path)
            assert scenario.name == path.stem


class TestRejection:
    def test_unknown_top_level_field(self):
        with pytest.raises(ScenarioError, match="unknown field"):
            Scenario.from_obj(mini_obj(bogus=1))

    def test_unknown_nested_field_names_the_path(self):
        obj = mini_obj()
        obj["traffic"]["arrival"]["warp_speed"] = True
        with pytest.raises(ScenarioError, match="arrival"):
            Scenario.from_obj(obj)

    def test_wrong_schema_version(self):
        with pytest.raises(ScenarioError, match="schema_version"):
            Scenario.from_obj(mini_obj(schema_version=99))

    def test_bad_name(self):
        with pytest.raises(ScenarioError, match="name"):
            Scenario.from_obj(mini_obj(name="Has Spaces!"))

    def test_duplicate_tenant_names(self):
        obj = mini_obj()
        obj["tenants"] = [{"name": "a"}, {"name": "a"}]
        with pytest.raises(ScenarioError, match="tenant"):
            Scenario.from_obj(obj)

    def test_single_node_cluster_rejected(self):
        obj = mini_obj()
        obj["cluster"]["nodes"] = 1
        with pytest.raises(ScenarioError):
            Scenario.from_obj(obj)

    def test_replicas_cannot_exceed_nodes(self):
        obj = mini_obj()
        obj["cluster"]["replicas"] = 5
        with pytest.raises(ScenarioError, match="replicas"):
            Scenario.from_obj(obj)

    def test_negative_rate_rejected(self):
        obj = mini_obj()
        obj["traffic"]["arrival"]["base_rate_ops_per_s"] = -1
        with pytest.raises(ScenarioError):
            Scenario.from_obj(obj)

    def test_bad_mix_kind_rejected(self):
        obj = mini_obj()
        obj["traffic"]["mix"] = {"read": 1, "teleport": 1}
        with pytest.raises(ScenarioError, match="mix"):
            Scenario.from_obj(obj)

    def test_bad_size_distribution(self):
        obj = mini_obj()
        obj["population"]["size"] = {"dist": "pareto"}
        with pytest.raises(ScenarioError, match="dist"):
            Scenario.from_obj(obj)

    def test_non_mapping_input(self):
        with pytest.raises(ScenarioError):
            Scenario.from_obj([1, 2, 3])


class TestFormats:
    def test_unknown_format_rejected(self):
        with pytest.raises(ScenarioError, match="format"):
            loads("{}", fmt="yaml")

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib is 3.11+")
    def test_toml_loads(self):
        text = """
name = "toml-mini"
seed = 5

[cluster]
nodes = 2

[population]
objects = 8

[traffic]
ops = 10
"""
        scenario = loads(text, fmt="toml")
        assert scenario.name == "toml-mini"
        assert scenario.cluster.n_nodes == 2

    @pytest.mark.skipif(sys.version_info >= (3, 11), reason="gating path")
    def test_toml_gated_below_311(self):
        with pytest.raises(ScenarioError, match="toml"):
            loads("name = 'x'", fmt="toml")
