"""Arrival processes on simulated time: open-loop curves and closed-loop
think time."""

import pytest

from repro.common.clock import NS_PER_S, SimClock
from repro.common.rng import DeterministicRng
from repro.workload.arrival import (
    closed_loop_next,
    diurnal_rate,
    open_loop_arrivals,
)


class TestOpenLoop:
    def test_count_monotone_and_integer(self):
        times = open_loop_arrivals(DeterministicRng(1), 500, 1000.0)
        assert len(times) == 500
        assert all(isinstance(t, int) for t in times)
        assert times == sorted(times)

    def test_flat_rate_matches_target(self):
        n = 4000
        times = open_loop_arrivals(DeterministicRng(2), n, 1000.0)
        measured = n / (times[-1] / NS_PER_S)
        assert measured == pytest.approx(1000.0, rel=0.1)

    def test_deterministic_per_seed(self):
        a = open_loop_arrivals(DeterministicRng(7), 200, 500.0, amplitude=0.5)
        b = open_loop_arrivals(DeterministicRng(7), 200, 500.0, amplitude=0.5)
        c = open_loop_arrivals(DeterministicRng(8), 200, 500.0, amplitude=0.5)
        assert a == b
        assert a != c

    def test_diurnal_curve_modulates_density(self):
        """With a strong diurnal swing, the peak half-period must hold
        visibly more arrivals than the trough half-period."""
        period = 2.0
        times = open_loop_arrivals(
            DeterministicRng(3), 3000, 1000.0, amplitude=0.9, period_s=period
        )
        # rate(t) = base * (1 + A sin(2πt/period)): first half-period is the
        # peak, second half the trough.
        def in_phase(t_ns, lo_frac, hi_frac):
            phase = (t_ns / NS_PER_S) % period / period
            return lo_frac <= phase < hi_frac

        peak = sum(1 for t in times if in_phase(t, 0.0, 0.5))
        trough = sum(1 for t in times if in_phase(t, 0.5, 1.0))
        assert peak > 2 * trough

    def test_start_offset(self):
        base = open_loop_arrivals(DeterministicRng(4), 50, 100.0)
        offset = open_loop_arrivals(DeterministicRng(4), 50, 100.0, start_ns=1000)
        assert offset == [t + 1000 for t in base]

    def test_amplitude_validated(self):
        with pytest.raises(ValueError):
            open_loop_arrivals(DeterministicRng(1), 10, 100.0, amplitude=1.5)
        with pytest.raises(ValueError):
            open_loop_arrivals(DeterministicRng(1), 10, 100.0, amplitude=-0.1)

    def test_arrivals_drive_a_sim_clock(self):
        clock = SimClock()
        for t in open_loop_arrivals(DeterministicRng(5), 20, 200.0):
            if clock.now_ns < t:
                clock.advance(t - clock.now_ns)
        assert clock.now_ns > 0


class TestDiurnalRate:
    def test_flat_when_amplitude_zero(self):
        assert diurnal_rate(0.3, 100.0, 0.0, 1.0) == 100.0

    def test_peaks_at_quarter_period(self):
        assert diurnal_rate(0.25, 100.0, 0.5, 1.0) == pytest.approx(150.0)
        assert diurnal_rate(0.75, 100.0, 0.5, 1.0) == pytest.approx(50.0)


class TestClosedLoop:
    def test_think_time_added(self):
        assert closed_loop_next(1_000_000, 100.0) == 1_000_000 + 100_000

    def test_zero_think_time(self):
        assert closed_loop_next(42, 0.0) == 42

    def test_closed_vs_open_loop_shape(self):
        """Sanity contrast: open-loop timestamps are fixed ahead of time;
        the closed-loop schedule depends only on completions + think time,
        so under an idle (instant-completion) model N clients with think
        time T issue at N/T ops/s regardless of any configured rate."""
        clock = SimClock()
        think_us = 100.0
        completions = []
        ready = [0] * 4  # four clients, all ready at t=0
        for _ in range(100):
            ready.sort()
            t = ready.pop(0)
            if clock.now_ns < t:
                clock.advance(t - clock.now_ns)
            completions.append(clock.now_ns)  # op completes instantly
            ready.append(closed_loop_next(clock.now_ns, think_us))
        rate = len(completions) / (clock.now_ns / NS_PER_S)
        # 4 clients / 100 us think time = 40k ops/s.
        assert rate == pytest.approx(40_000, rel=0.05)
