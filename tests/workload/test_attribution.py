"""Critical-path latency attribution through the workload runner.

The property under test is exactness: for every executed op, the
component buckets (queue, service, fabric, retry, hedge, client) sum to
the op's observed latency to the nanosecond, and the aggregated
``latency_attribution`` tables inherit that equality. Also pins the
BENCH byte-compatibility contract: artifacts without tracing are
unchanged, artifacts with tracing gain only the new section.
"""

from __future__ import annotations

import pytest

from repro.obs.spans import LEGACY_COMPONENTS
from repro.workload import Scenario, run_scenario
from repro.workload.report import build_workload_payload, dumps_bench
from repro.workload.scenario import TracingSpec

from tests.workload.conftest import mini_obj


def traced_obj(**overrides) -> dict:
    obj = mini_obj(**overrides)
    obj["tracing"] = {"enabled": True, "sample_rate": 1.0}
    return obj


@pytest.fixture()
def traced_scenario() -> Scenario:
    return Scenario.from_obj(traced_obj())


class TestExactness:
    def test_every_op_sums_to_observed_latency(self, traced_scenario):
        result, payload = run_scenario(traced_scenario)
        assert result.tracing_enabled
        assert result.attribution_exact
        assert payload["latency_attribution"]["exact"] is True

    def test_aggregate_tables_inherit_the_equality(self, traced_scenario):
        _, payload = run_scenario(traced_scenario)
        attribution = payload["latency_attribution"]
        for table in (attribution["by_kind"], attribution["by_tenant"]):
            assert table, "traced run produced an empty attribution table"
            for slot in table.values():
                # mini has no tiering block, so the report emits exactly
                # the pre-tier bucket set (the byte-compat contract).
                assert set(slot["components_ns"]) == set(LEGACY_COMPONENTS)
                assert (
                    sum(slot["components_ns"].values()) == slot["observed_ns"]
                )

    def test_kind_and_tenant_tables_agree_on_totals(self, traced_scenario):
        _, payload = run_scenario(traced_scenario)
        attribution = payload["latency_attribution"]
        by_kind = attribution["by_kind"]
        by_tenant = attribution["by_tenant"]
        assert sum(s["observed_ns"] for s in by_kind.values()) == sum(
            s["observed_ns"] for s in by_tenant.values()
        )
        assert sum(s["ops"] for s in by_kind.values()) == sum(
            s["ops"] for s in by_tenant.values()
        )

    def test_sampling_stats_account_for_every_root(self, traced_scenario):
        result, payload = run_scenario(traced_scenario)
        sampling = payload["latency_attribution"]["sampling"]
        assert sampling["roots"] > 0
        assert (
            sampling["kept_head"] + sampling["kept_tail"] + sampling["discarded"]
            == sampling["roots"]
        )

    def test_head_sampling_gates_retention_not_attribution(self):
        sampled = Scenario.from_obj(traced_obj())
        unsampled_obj = traced_obj()
        unsampled_obj["tracing"]["sample_rate"] = 0.0
        unsampled = Scenario.from_obj(unsampled_obj)
        _, full = run_scenario(sampled)
        _, none = run_scenario(unsampled)
        # Attribution is computed per executed op, before the keep/drop
        # decision — so the tables are identical at any sample rate.
        assert (
            full["latency_attribution"]["by_kind"]
            == none["latency_attribution"]["by_kind"]
        )
        assert (
            none["latency_attribution"]["sampling"]["kept_head"] == 0
        )


class TestByteCompatibility:
    def test_untraced_artifact_has_no_attribution_section(self, mini_scenario):
        result, payload = run_scenario(mini_scenario)
        assert not result.tracing_enabled
        assert "latency_attribution" not in payload

    def test_tracing_changes_nothing_but_the_new_section(self, mini_scenario):
        _, plain = run_scenario(mini_scenario)
        _, traced = run_scenario(Scenario.from_obj(traced_obj()))
        section = traced.pop("latency_attribution")
        assert section is not None
        assert dumps_bench(traced) == dumps_bench(plain)

    def test_disabled_tracing_block_matches_absent_block(self):
        disabled_obj = mini_obj()
        disabled_obj["tracing"] = {"enabled": False}
        _, disabled = run_scenario(Scenario.from_obj(disabled_obj))
        _, absent = run_scenario(Scenario.from_obj(mini_obj()))
        assert dumps_bench(disabled) == dumps_bench(absent)

    def test_traced_artifact_is_deterministic(self, traced_scenario):
        first = dumps_bench(run_scenario(traced_scenario)[1])
        second = dumps_bench(run_scenario(traced_scenario)[1])
        assert first == second


class TestResultSurface:
    def test_result_exposes_the_span_sink(self, traced_scenario):
        result, _ = run_scenario(traced_scenario)
        assert result.spans is not None
        traces = result.spans.traces()
        assert traces
        for trace in traces:
            # The runner folds an op's pre-dispatch backlog wait into the
            # queue bucket after the span closes, so the components cover
            # at least the span's own duration; the exact equality (against
            # issue-to-completion latency) is asserted per-op by the runner
            # itself and surfaced as ``attribution_exact``.
            assert (
                sum(trace["components_ns"].values()) >= trace["duration_ns"]
            )

    def test_payload_roundtrips_through_builder(self, traced_scenario):
        result, payload = run_scenario(traced_scenario)
        assert build_workload_payload(result) == payload


class TestTracingSpec:
    def test_defaults(self):
        spec = TracingSpec()
        assert spec.enabled and spec.sample_rate == 1.0

    def test_roundtrip(self):
        spec = TracingSpec.from_obj(
            {"enabled": True, "sample_rate": 0.25, "tail_percentile": 0.9,
             "flight_capacity": 64},
            "test.tracing",
        )
        assert TracingSpec.from_obj(spec.to_obj(), "test.tracing") == spec
