"""The `python -m repro workload` command."""

import json

import pytest

from repro.cli import main

from tests.workload.conftest import mini_obj


@pytest.fixture()
def scenario_file(tmp_path):
    path = tmp_path / "mini.json"
    path.write_text(json.dumps(mini_obj()), encoding="utf-8")
    return path


class TestRun:
    def test_run_writes_artifact(self, scenario_file, tmp_path, capsys):
        out = tmp_path / "out"
        rc = main([
            "workload", "--scenario", str(scenario_file), "--out", str(out),
        ])
        assert rc == 0
        artifact = out / "BENCH_workload_mini.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["scenario"] == "mini"
        assert "ops_per_s" in payload["sim"]
        captured = capsys.readouterr().out
        assert "mini" in captured
        assert "wrote" in captured

    def test_twice_flag_checks_determinism(self, scenario_file, tmp_path, capsys):
        rc = main([
            "workload", "--scenario", str(scenario_file),
            "--out", str(tmp_path / "out"), "--twice",
        ])
        assert rc == 0
        assert "byte-identical: yes" in capsys.readouterr().out

    def test_seed_override_lands_in_artifact(self, scenario_file, tmp_path):
        out = tmp_path / "out"
        assert main([
            "workload", "--scenario", str(scenario_file),
            "--out", str(out), "--seed", "99",
        ]) == 0
        payload = json.loads(
            (out / "BENCH_workload_mini.json").read_text(encoding="utf-8")
        )
        assert payload["seed"] == 99

    def test_json_mode_prints_the_payload(self, scenario_file, tmp_path, capsys):
        assert main([
            "workload", "--scenario", str(scenario_file),
            "--out", str(tmp_path), "--json",
        ]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["scenario"] == "mini"


class TestList:
    def test_lists_committed_scenarios(self, capsys):
        assert main(["workload", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("uniform-smoke", "zipfian-read-heavy",
                     "hotspot-multi-tenant", "diurnal-churn"):
            assert name in out

    def test_lists_custom_dir_and_flags_invalid(self, tmp_path, capsys):
        (tmp_path / "good.json").write_text(
            json.dumps(mini_obj(name="good")), encoding="utf-8"
        )
        (tmp_path / "bad.json").write_text("{\"nope\": 1}", encoding="utf-8")
        assert main(["workload", "--list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "good" in out
        assert "INVALID" in out


class TestTraceFlag:
    def test_trace_writes_chrome_artifact_next_to_bench(
        self, scenario_file, tmp_path, capsys
    ):
        out = tmp_path / "out"
        rc = main([
            "workload", "--scenario", str(scenario_file),
            "--out", str(out), "--trace",
        ])
        assert rc == 0
        trace_path = out / "TRACE_workload_mini.json"
        assert trace_path.exists()
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert doc["traceEvents"]
        # Forcing tracing on also forces the attribution section into
        # the BENCH payload, even though the scenario file has no
        # tracing block.
        payload = json.loads(
            (out / "BENCH_workload_mini.json").read_text(encoding="utf-8")
        )
        assert payload["latency_attribution"]["exact"] is True
        captured = capsys.readouterr().out
        assert "attribution: exact=True" in captured
        assert str(trace_path) in captured

    def test_trace_with_twice_checks_both_artifacts(
        self, scenario_file, tmp_path, capsys
    ):
        rc = main([
            "workload", "--scenario", str(scenario_file),
            "--out", str(tmp_path / "out"), "--trace", "--twice",
        ])
        assert rc == 0
        assert "byte-identical: yes" in capsys.readouterr().out

    def test_trace_artifact_is_deterministic(self, scenario_file, tmp_path):
        texts = []
        for label in ("a", "b"):
            out = tmp_path / label
            assert main([
                "workload", "--scenario", str(scenario_file),
                "--out", str(out), "--trace",
            ]) == 0
            texts.append(
                (out / "TRACE_workload_mini.json").read_bytes()
            )
        assert texts[0] == texts[1]

    def test_without_trace_no_trace_artifact(self, scenario_file, tmp_path):
        out = tmp_path / "out"
        assert main([
            "workload", "--scenario", str(scenario_file), "--out", str(out),
        ]) == 0
        assert not (out / "TRACE_workload_mini.json").exists()
