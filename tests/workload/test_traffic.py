"""Op-stream generation: determinism and scenario plumbing."""

from repro.workload import Scenario, generate_stream

from tests.workload.conftest import mini_obj


class TestDeterminism:
    def test_same_scenario_same_seed_identical_stream(self, mini_scenario):
        a = generate_stream(mini_scenario)
        b = generate_stream(mini_scenario)
        assert a == b
        # Byte-identical, not merely equal.
        assert repr(a) == repr(b)

    def test_seed_override_changes_stream(self, mini_scenario):
        assert generate_stream(mini_scenario, 1) != generate_stream(
            mini_scenario, 2
        )
        assert generate_stream(mini_scenario, 1) == generate_stream(
            mini_scenario.with_seed(1)
        )


class TestPlumbing:
    def test_stream_shape(self, mini_scenario):
        ops = generate_stream(mini_scenario)
        assert len(ops) == mini_scenario.traffic.ops
        assert [op.seq for op in ops] == list(range(len(ops)))
        n_slots = mini_scenario.population.objects
        for op in ops:
            assert 0 <= op.slot < n_slots
            assert op.kind in ("read", "write", "delete", "scan")
            assert op.tenant in ("alpha", "beta")

    def test_open_loop_timestamps_nondecreasing(self, mini_scenario):
        at = [op.at_ns for op in generate_stream(mini_scenario)]
        assert all(isinstance(t, int) for t in at)
        assert at == sorted(at)

    def test_closed_loop_has_no_timestamps(self):
        obj = mini_obj()
        obj["traffic"]["arrival"] = {
            "mode": "closed", "clients": 3, "think_time_us": 50,
        }
        ops = generate_stream(Scenario.from_obj(obj))
        assert all(op.at_ns is None for op in ops)

    def test_only_writes_carry_sizes(self, mini_scenario):
        for op in generate_stream(mini_scenario):
            if op.kind == "write":
                assert op.size_bytes == 2048  # the fixed size model
            else:
                assert op.size_bytes == 0

    def test_tenant_weights_respected(self):
        obj = mini_obj()
        obj["traffic"]["ops"] = 2000
        ops = generate_stream(Scenario.from_obj(obj))
        alpha = sum(1 for op in ops if op.tenant == "alpha")
        # alpha weight 3, beta weight 1 -> ~75 % alpha.
        assert 0.68 <= alpha / len(ops) <= 0.82

    def test_mix_weights_respected(self):
        obj = mini_obj()
        obj["traffic"]["ops"] = 2000
        ops = generate_stream(Scenario.from_obj(obj))
        reads = sum(1 for op in ops if op.kind == "read")
        # 60/100 of the mix.
        assert 0.53 <= reads / len(ops) <= 0.67
