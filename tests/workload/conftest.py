"""Shared fixtures: a small fast scenario the runner tests reuse."""

from __future__ import annotations

import copy

import pytest

from repro.workload import Scenario

MINI_OBJ = {
    "schema_version": 1,
    "name": "mini",
    "description": "tiny two-node inline scenario for unit tests",
    "seed": 11,
    "cluster": {"nodes": 2, "capacity_mib": 32},
    "population": {"objects": 16, "size": {"dist": "fixed", "bytes": 2048}},
    "traffic": {
        "ops": 40,
        "mix": {"read": 60, "write": 25, "delete": 10, "scan": 5},
        "scan_length": 4,
        "popularity": {"model": "uniform"},
        "arrival": {"mode": "open", "base_rate_ops_per_s": 500},
    },
    "tenants": [
        {"name": "alpha", "weight": 3},
        {"name": "beta", "weight": 1, "quota": {"ops_per_s": 40, "burst_ops": 2}},
    ],
}


def mini_obj(**overrides) -> dict:
    """Deep copy of the baseline scenario object with top-level overrides."""
    obj = copy.deepcopy(MINI_OBJ)
    obj.update(overrides)
    return obj


@pytest.fixture()
def mini_scenario() -> Scenario:
    return Scenario.from_obj(mini_obj())
