"""ScenarioRunner: real-cluster execution, BENCH payload, determinism."""

import pytest

from repro.workload import Scenario, run_scenario
from repro.workload.report import bench_artifact_name, dumps_bench
from repro.workload.runner import payload_for

from tests.workload.conftest import mini_obj


@pytest.fixture(scope="module")
def mini_run():
    scenario = Scenario.from_obj(mini_obj())
    return run_scenario(scenario)


class TestRun:
    def test_ops_execute_against_the_cluster(self, mini_run):
        result, payload = mini_run
        assert result.executed_ops > 0
        assert result.duration_ns > 0
        assert result.bytes_read > 0
        assert payload["sim"]["ops_per_s"] > 0

    def test_latency_includes_queueing(self, mini_run):
        result, _ = mini_run
        dist = result.latency_overall
        assert dist.count == result.executed_ops
        assert dist.quantile(0.99) >= dist.quantile(0.5) > 0

    def test_per_tenant_accounting(self, mini_run):
        _, payload = mini_run
        assert set(payload["tenants"]) == {"alpha", "beta"}
        for block in payload["tenants"].values():
            assert block["admitted"] + block["rejected"] > 0
        # beta has a tight ops quota (40 ops/s, burst 2) against a 500/s
        # offered rate: it must see rejections, and alpha must not.
        assert payload["tenants"]["beta"]["rejected"] > 0
        assert payload["tenants"]["alpha"]["rejected"] == 0
        reasons = payload["tenants"]["beta"]["rejected_by_reason"]
        assert reasons.get("ops_rate", 0) > 0

    def test_per_tenant_latency_from_obs_plane(self, mini_run):
        _, payload = mini_run
        block = payload["tenants"]["alpha"]["latency_ns"]
        assert block["count"] > 0
        assert block["p50_ns"] <= block["p95_ns"] <= block["p99_ns"]

    def test_payload_names_artifact(self, mini_run):
        _, payload = mini_run
        assert payload["artifact"] == bench_artifact_name("mini")
        assert payload["scenario"] == "mini"
        assert payload["schema_version"] == 1

    def test_outcome_totals_match(self, mini_run):
        result, payload = mini_run
        rejected = sum(
            n for key, n in payload["outcomes"].items()
            if key.startswith("rejected:")
        )
        assert result.executed_ops + rejected == result.generated_ops


class TestDeterminism:
    def test_run_twice_byte_identical(self):
        scenario = Scenario.from_obj(mini_obj())
        _, a = run_scenario(scenario)
        _, b = run_scenario(scenario)
        assert dumps_bench(a) == dumps_bench(b)

    def test_seed_changes_the_artifact(self):
        scenario = Scenario.from_obj(mini_obj())
        _, a = run_scenario(scenario, 1)
        _, b = run_scenario(scenario, 2)
        assert a["seed"] == 1 and b["seed"] == 2
        assert dumps_bench(a) != dumps_bench(b)


class TestClosedLoop:
    def test_closed_loop_runs_and_self_limits(self):
        obj = mini_obj(name="mini-closed")
        obj["traffic"]["arrival"] = {
            "mode": "closed", "clients": 2, "think_time_us": 500,
        }
        del obj["tenants"][1]["quota"]  # rate quotas are arrival-dependent
        _, payload = run_scenario(Scenario.from_obj(obj))
        assert payload["sim"]["ops_executed"] == payload["sim"]["ops_generated"]
        assert payload["sim"]["ops_per_s"] > 0


class TestPayloadHelper:
    def test_payload_for_is_deterministic_fill(self):
        assert payload_for(3, 5, 8) == payload_for(3, 5, 8)
        assert len(payload_for(0, 1, 100)) == 100
        assert payload_for(1, 1, 4) != payload_for(2, 1, 4)
