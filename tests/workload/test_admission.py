"""Multi-tenant admission control: token buckets, quotas, accounting."""

import pytest

from repro.common.clock import NS_PER_S
from repro.common.errors import AdmissionRejectedError, ObjectStoreError
from repro.obs import MetricsRegistry
from repro.workload.admission import (
    REJECT_REASONS,
    AdmissionController,
    TenantQuota,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(10.0, 3.0)
        assert bucket.try_take(3, 0)
        assert not bucket.try_take(1, 0)

    def test_refills_with_simulated_time(self):
        bucket = TokenBucket(10.0, 3.0)
        assert bucket.try_take(3, 0)
        # 10 tokens/s: after 0.2 simulated seconds there are 2 tokens.
        assert bucket.try_take(2, int(0.2 * NS_PER_S))
        assert not bucket.try_take(1, int(0.2 * NS_PER_S))

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(1000.0, 5.0)
        assert bucket.available(10 * NS_PER_S) == pytest.approx(5.0)

    def test_failed_take_consumes_nothing(self):
        bucket = TokenBucket(10.0, 4.0)
        assert not bucket.try_take(5, 0)
        assert bucket.try_take(4, 0)


class TestAdmissionController:
    def _controller(self, **quota) -> AdmissionController:
        controller = AdmissionController()
        controller.set_quota("t", TenantQuota(**quota))
        return controller

    def test_unknown_tenant_is_unlimited_but_counted(self):
        controller = AdmissionController()
        controller.admit("ghost", "write", 1 << 30, now_ns=0)
        assert controller.snapshot()["ghost"]["admitted"] == 1

    def test_ops_rate_rejection(self):
        controller = self._controller(ops_per_s=10.0, burst_ops=2)
        controller.admit("t", "read", 0, now_ns=0)
        controller.admit("t", "read", 0, now_ns=0)
        with pytest.raises(AdmissionRejectedError) as excinfo:
            controller.admit("t", "read", 0, now_ns=0)
        assert excinfo.value.reason == "ops_rate"
        assert excinfo.value.tenant == "t"
        assert isinstance(excinfo.value, ObjectStoreError)

    def test_write_rate_rejection(self):
        controller = self._controller(
            write_bytes_per_s=1000.0, burst_bytes=2048
        )
        controller.admit("t", "write", 2048, now_ns=0)
        with pytest.raises(AdmissionRejectedError) as excinfo:
            controller.admit("t", "write", 1, now_ns=0)
        assert excinfo.value.reason == "write_rate"

    def test_byte_quota_rejection_is_projected(self):
        controller = self._controller(max_stored_bytes=4096)
        controller.admit("t", "write", 4096, now_ns=0)
        controller.record_stored("t", 4096)
        with pytest.raises(AdmissionRejectedError) as excinfo:
            controller.admit("t", "write", 1, now_ns=0)
        assert excinfo.value.reason == "byte_quota"
        # Reads are not byte-limited.
        controller.admit("t", "read", 0, now_ns=0)

    def test_reads_bypass_write_limits(self):
        controller = self._controller(
            write_bytes_per_s=1.0, burst_bytes=1, max_stored_bytes=1
        )
        for _ in range(50):
            controller.admit("t", "read", 0, now_ns=0)

    def test_rate_recovers_over_simulated_time(self):
        controller = self._controller(ops_per_s=10.0, burst_ops=1)
        controller.admit("t", "read", 0, now_ns=0)
        with pytest.raises(AdmissionRejectedError):
            controller.admit("t", "read", 0, now_ns=0)
        controller.admit("t", "read", 0, now_ns=NS_PER_S)

    def test_delete_refund_reopens_byte_quota(self):
        controller = self._controller(max_stored_bytes=4096)
        controller.admit("t", "write", 4096, now_ns=0)
        controller.record_stored("t", 4096)
        controller.record_stored("t", -4096)
        controller.admit("t", "write", 4096, now_ns=0)

    def test_record_stored_clamps_at_zero(self):
        controller = AdmissionController()
        controller.record_stored("t", -100)
        assert controller.stored_bytes("t") == 0

    def test_set_quota_preserves_accounting(self):
        controller = self._controller(ops_per_s=1.0, burst_ops=1)
        controller.admit("t", "read", 0, now_ns=0)
        controller.record_stored("t", 512)
        with pytest.raises(AdmissionRejectedError):
            controller.admit("t", "read", 0, now_ns=0)
        controller.set_quota("t", TenantQuota(ops_per_s=100.0))
        assert controller.stored_bytes("t") == 512
        snap = controller.snapshot()["t"]
        assert snap["admitted"] == 1
        assert snap["rejected"] == 1

    def test_snapshot_reasons_are_known(self):
        controller = self._controller(ops_per_s=10.0, burst_ops=1)
        controller.admit("t", "read", 0, now_ns=0)
        with pytest.raises(AdmissionRejectedError):
            controller.admit("t", "read", 0, now_ns=0)
        snap = controller.snapshot()["t"]
        assert set(snap["rejected_by_reason"]) <= set(REJECT_REASONS)
        assert snap["rejected_by_reason"]["ops_rate"] == 1

    def test_metrics_plumbing(self):
        registry = MetricsRegistry(node="test")
        controller = AdmissionController()
        controller.attach_metrics(registry)
        controller.set_quota("t", TenantQuota(ops_per_s=10.0, burst_ops=1))
        controller.admit("t", "read", 0, now_ns=0)
        with pytest.raises(AdmissionRejectedError):
            controller.admit("t", "read", 0, now_ns=0)
        families = {f["name"]: f for f in registry.collect()}
        admitted = families["workload_admission_admitted_total"]["series"]
        rejected = families["workload_admission_rejected_total"]["series"]
        assert any(
            s["labels"].get("tenant") == "t" and s["value"] == 1
            for s in admitted
        )
        assert any(
            s["labels"].get("tenant") == "t"
            and s["labels"].get("reason") == "ops_rate"
            and s["value"] == 1
            for s in rejected
        )
