"""OpenCapiLink cost regimes: streaming vs single access."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig
from repro.common.rng import DeterministicRng
from repro.common.units import GiB, MiB, gib_per_s
from repro.thymesisflow.link import OpenCapiLink


def make(sigma=0.0, **kwargs):
    cfg = FabricLinkConfig(jitter_sigma=sigma, **kwargs)
    clock = SimClock()
    return clock, OpenCapiLink("a", "b", clock, cfg, DeterministicRng(11))


class TestStreaming:
    def test_bulk_read_approaches_paper_bandwidth(self):
        clock, link = make()
        cost = link.charge_stream_read(256 * MiB)
        assert gib_per_s(256 * MiB, cost) == pytest.approx(5.75, rel=0.01)
        assert clock.now_ns == round(cost)

    def test_write_bandwidth_slower_than_read(self):
        _, link = make()
        read = link.charge_stream_read(64 * MiB)
        write = link.charge_stream_write(64 * MiB)
        assert write > read

    def test_burst_splitting_accumulates(self):
        cfg = FabricLinkConfig(jitter_sigma=0.0)
        _, link = make()
        one = link.charge_stream_read(cfg.max_burst_bytes)
        many = link.charge_stream_read(4 * cfg.max_burst_bytes)
        assert many == pytest.approx(4 * one, rel=0.01)

    def test_counters(self):
        _, link = make()
        link.charge_stream_read(1000)
        link.charge_stream_write(500)
        link.charge_single_access()
        assert link.counters.get("read_bytes") == 1000
        assert link.counters.get("write_bytes") == 500
        assert link.counters.get("single_accesses") == 1


class TestSingleAccess:
    def test_single_access_pays_full_latency(self):
        _, link = make()
        cost = link.charge_single_access()
        assert cost == pytest.approx(FabricLinkConfig().added_latency_ns)

    def test_single_access_dwarfs_tiny_stream(self):
        """The unpipelined path is much more expensive per access than a
        pipelined small read — the reason bulk reads pipeline."""
        _, link = make()
        stream = link.charge_stream_read(64)
        single = link.charge_single_access()
        assert single > 10 * stream


class TestStructure:
    def test_connects(self):
        _, link = make()
        assert link.connects("a", "b") and link.connects("b", "a")
        assert not link.connects("a", "c")

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            OpenCapiLink(
                "a", "a", SimClock(), FabricLinkConfig(), DeterministicRng(1)
            )

    def test_endpoints_set(self):
        _, link = make()
        assert link.endpoints == frozenset({"a", "b"})
