"""ThymesisFabric topology + ApertureMap translation + RemoteRegion access."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import FabricLinkConfig, LocalMemoryConfig
from repro.common.errors import ApertureError, FabricError
from repro.common.rng import DeterministicRng
from repro.common.units import MiB, gib_per_s
from repro.thymesisflow import ThymesisFabric


def make_fabric():
    return ThymesisFabric(
        SimClock(),
        FabricLinkConfig(jitter_sigma=0.0),
        LocalMemoryConfig(jitter_sigma=0.0),
        DeterministicRng(5),
    )


@pytest.fixture
def fabric():
    fab = make_fabric()
    for name in ("a", "b", "c"):
        ep = fab.add_node(name, 8 * MiB)
        ep.expose(0, 4 * MiB)
    fab.connect_full_mesh()
    return fab


class TestTopology:
    def test_duplicate_node_rejected(self, fabric):
        with pytest.raises(FabricError):
            fabric.add_node("a", MiB)

    def test_unknown_node_rejected(self, fabric):
        with pytest.raises(FabricError):
            fabric.endpoint("zzz")

    def test_full_mesh_links_all_pairs(self, fabric):
        assert len(fabric.links()) == 3  # C(3,2)
        fabric.link_between("a", "b")
        fabric.link_between("b", "c")
        fabric.link_between("a", "c")

    def test_duplicate_link_rejected(self, fabric):
        with pytest.raises(FabricError):
            fabric.connect("a", "b")

    def test_missing_link_reported(self):
        fab = make_fabric()
        fab.add_node("x", MiB)
        fab.add_node("y", MiB)
        with pytest.raises(FabricError):
            fab.link_between("x", "y")

    def test_nodes_sorted(self, fabric):
        assert fabric.nodes() == ["a", "b", "c"]


class TestApertures:
    def test_map_remote_requires_link(self):
        fab = make_fabric()
        fab.add_node("x", MiB).expose(0, MiB // 2)
        fab.add_node("y", MiB)
        with pytest.raises(FabricError):
            fab.map_remote("y", "x")

    def test_map_remote_requires_exposed(self, fabric):
        fab = make_fabric()
        fab.add_node("x", MiB).expose(0, MiB // 2)
        fab.add_node("y", MiB)  # no expose
        fab.connect("x", "y")
        with pytest.raises(FabricError):
            fab.map_remote("x", "y")

    def test_double_mapping_rejected(self, fabric):
        fabric.map_remote("a", "b")
        with pytest.raises(ApertureError):
            fabric.map_remote("a", "b")

    def test_windows_live_above_local_capacity(self, fabric):
        rr = fabric.map_remote("a", "b")
        assert rr.aperture.base >= 8 * MiB
        assert rr.size == 4 * MiB

    def test_translate_local_and_remote(self, fabric):
        rr_b = fabric.map_remote("a", "b")
        amap = fabric.aperture_map("a")
        ap, off = amap.translate(100, 10)
        assert ap is None and off == 100  # local memory
        ap, off = amap.translate(rr_b.aperture.base + 50, 10)
        assert ap is rr_b.aperture and off == 50

    def test_translate_unmapped_raises(self, fabric):
        amap = fabric.aperture_map("a")
        with pytest.raises(ApertureError):
            amap.translate(10**12, 8)

    def test_translate_straddling_window_edge_raises(self, fabric):
        rr = fabric.map_remote("a", "b")
        amap = fabric.aperture_map("a")
        with pytest.raises(ApertureError):
            amap.translate(rr.aperture.end - 4, 8)

    def test_multiple_windows_disjoint(self, fabric):
        rr_b = fabric.map_remote("a", "b")
        rr_c = fabric.map_remote("a", "c")
        assert rr_b.aperture.end <= rr_c.aperture.base


class TestRemoteRegionAccess:
    def test_read_roundtrip(self, fabric):
        home = fabric.endpoint("b")
        home.local_write(10, b"remote-data")
        rr = fabric.map_remote("a", "b")
        assert rr.read(10, 11) == b"remote-data"

    def test_read_into_out_buffer(self, fabric):
        fabric.endpoint("b").local_write(0, b"xyz")
        rr = fabric.map_remote("a", "b")
        out = bytearray(3)
        assert rr.read(0, 3, out=out) is None
        assert bytes(out) == b"xyz"

    def test_read_charges_fabric_bandwidth(self, fabric):
        rr = fabric.map_remote("a", "b")
        before = fabric.clock.now_ns
        rr.read(0, 4 * MiB)
        elapsed = fabric.clock.now_ns - before
        assert gib_per_s(4 * MiB, elapsed) == pytest.approx(5.75, rel=0.02)

    def test_view_plus_charge_matches_read(self, fabric):
        rr = fabric.map_remote("a", "b")
        view = rr.view(0, 1024)
        assert len(view) == 1024
        cost = rr.charge_read(1024)
        assert cost > 0

    def test_out_of_window_rejected(self, fabric):
        rr = fabric.map_remote("a", "b")
        with pytest.raises(ApertureError):
            rr.read(rr.size - 4, 8)
        with pytest.raises(ApertureError):
            rr.read(0, 0)

    def test_write_is_fig3b_unsafe(self, fabric):
        """Remote writes reach home DRAM but home CPU may read stale."""
        home = fabric.endpoint("b")
        home.local_write(0, b"OLD!")
        rr = fabric.map_remote("a", "b")
        stale = rr.write(0, b"NEW!")
        assert stale == 4
        out = bytearray(4)
        home.local_read(0, 4, out=out)
        assert bytes(out) == b"OLD!"  # home is stale
        assert rr.read(0, 4) == b"NEW!"  # fabric readers are coherent

    def test_load_store_single_access(self, fabric):
        home = fabric.endpoint("b")
        home.local_write(0, b"\x07" + b"\x00" * 7)
        rr = fabric.map_remote("a", "b")
        before = fabric.clock.now_ns
        word = rr.load(0, 8)
        assert word[0] == 7
        assert fabric.clock.now_ns - before >= FabricLinkConfig().added_latency_ns * 0.9
        rr.store(8, b"\x01")
        assert rr.read(8, 1) == b"\x01"

    def test_home_name(self, fabric):
        assert fabric.map_remote("a", "c").home_name == "c"
