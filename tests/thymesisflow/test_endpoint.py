"""ThymesisEndpoint: timed local access and exposed-region service."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import LocalMemoryConfig
from repro.common.errors import FabricError
from repro.common.rng import DeterministicRng
from repro.common.units import MiB, gib_per_s
from repro.memory.host import HostMemory
from repro.thymesisflow.endpoint import ThymesisEndpoint


def make(capacity=8 * MiB, **cfg_kwargs):
    cfg = LocalMemoryConfig(jitter_sigma=0.0, **cfg_kwargs)
    clock = SimClock()
    mem = HostMemory(capacity, node="n0")
    return clock, ThymesisEndpoint("n0", mem, clock, cfg, DeterministicRng(3))


class TestTimedLocalAccess:
    def test_cold_read_hits_paper_bandwidth(self):
        clock, ep = make()
        cost = ep.local_read(0, 4 * MiB)
        assert gib_per_s(4 * MiB, cost) == pytest.approx(6.5, rel=0.02)
        assert clock.now_ns == round(cost)

    def test_warm_read_is_faster(self):
        _, ep = make()
        cold = ep.local_read(0, 1 * MiB)
        warm = ep.local_read(0, 1 * MiB)
        assert warm < cold

    def test_read_with_out_copies_observed_bytes(self):
        _, ep = make()
        ep.local_write(100, b"payload")
        out = bytearray(7)
        ep.local_read(100, 7, out=out)
        assert bytes(out) == b"payload"

    def test_write_roundtrip(self):
        _, ep = make()
        ep.local_write(0, b"abc")
        assert bytes(ep.local_view(0, 3)) == b"abc"

    def test_charge_local_write_times_without_copy(self):
        clock, ep = make()
        ep.local_write(0, b"keep")
        before = clock.now_ns
        cost = ep.charge_local_write(0, 4)
        assert clock.now_ns - before == round(cost)
        assert bytes(ep.local_view(0, 4)) == b"keep"  # DRAM untouched

    def test_counters(self):
        _, ep = make()
        ep.local_read(0, 100)
        ep.local_write(0, b"x" * 50)
        assert ep.counters.get("local_read_bytes") == 100
        assert ep.counters.get("local_write_bytes") == 50


class TestExposedRegion:
    def test_expose_once(self):
        _, ep = make()
        region = ep.expose(0, 4 * MiB)
        assert region.size == 4 * MiB
        with pytest.raises(FabricError):
            ep.expose(0, MiB)

    def test_exposed_property_requires_expose(self):
        _, ep = make()
        assert not ep.has_exposed
        with pytest.raises(FabricError):
            _ = ep.exposed

    def test_serve_remote_read_is_coherent_view(self):
        _, ep = make()
        ep.expose(MiB, 2 * MiB)
        ep.local_write(MiB + 10, b"shared")
        served = ep.serve_remote_read(10, 6)  # offsets are region-relative
        assert bytes(served) == b"shared"

    def test_serve_remote_write_creates_staleness(self):
        _, ep = make()
        ep.expose(0, MiB)
        ep.local_write(0, b"AAAA")
        stale = ep.serve_remote_write(0, b"BBBB")
        assert stale == 4
        out = bytearray(4)
        ep.local_read(0, 4, out=out)
        assert bytes(out) == b"AAAA"  # Fig 3b: home CPU sees old value
        assert ep.counters.get("stale_bytes_created") == 4

    def test_invalidate_exposed_restores_visibility(self):
        _, ep = make()
        ep.expose(0, MiB)
        ep.local_write(0, b"AAAA")
        ep.serve_remote_write(0, b"BBBB")
        ep.invalidate_exposed(0, 4)
        out = bytearray(4)
        ep.local_read(0, 4, out=out)
        assert bytes(out) == b"BBBB"

    def test_serve_remote_write_bounds_checked(self):
        _, ep = make()
        ep.expose(0, 1024)
        with pytest.raises(FabricError):
            ep.serve_remote_write(1020, b"too-long")
