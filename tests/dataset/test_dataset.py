"""DistributedDataset: narrow/wide ops, placement, immutability."""

import numpy as np
import pytest

from repro.common.config import testing_config as make_testing_config
from repro.common.errors import ObjectStoreError
from repro.common.units import MiB
from repro.core import Cluster
from repro.dataset import DistributedDataset, Partition


@pytest.fixture
def cluster3():
    return Cluster(
        make_testing_config(capacity_bytes=32 * MiB, seed=41),
        n_nodes=3,
        check_remote_uniqueness=False,
    )


def make_ds(cluster, n_parts=6, rows=1000):
    arrays = [
        np.arange(rows, dtype=np.int64) + i * rows for i in range(n_parts)
    ]
    return DistributedDataset.from_arrays(cluster, arrays), arrays


class TestConstruction:
    def test_round_robin_placement(self, cluster3):
        ds, _ = make_ds(cluster3, n_parts=6)
        homes = ds.partition_homes()
        assert homes == {"node0": 2, "node1": 2, "node2": 2}

    def test_single_placement(self, cluster3):
        arrays = [np.ones(10), np.ones(10)]
        ds = DistributedDataset.from_arrays(cluster3, arrays, placement="single")
        assert ds.partition_homes() == {"node0": 2}

    def test_unknown_placement(self, cluster3):
        with pytest.raises(ValueError):
            DistributedDataset.from_arrays(cluster3, [np.ones(3)], placement="x")

    def test_2d_rejected(self, cluster3):
        with pytest.raises(ObjectStoreError):
            DistributedDataset.from_arrays(cluster3, [np.ones((2, 2))])

    def test_empty_dataset_rejected(self, cluster3):
        with pytest.raises(ObjectStoreError):
            DistributedDataset.from_arrays(cluster3, [])

    def test_count_is_metadata_only(self, cluster3):
        ds, _ = make_ds(cluster3, n_parts=4, rows=250)
        before = cluster3.clock.now_ns
        assert ds.count() == 1000
        assert cluster3.clock.now_ns == before  # no store traffic at all


class TestCollect:
    def test_collect_preserves_order_and_values(self, cluster3):
        ds, arrays = make_ds(cluster3)
        collected = ds.collect()
        assert np.array_equal(collected, np.concatenate(arrays))

    def test_collect_on_any_node(self, cluster3):
        ds, arrays = make_ds(cluster3)
        for node in cluster3.node_names():
            assert np.array_equal(ds.collect(on=node), np.concatenate(arrays))

    def test_collect_reads_remote_partitions_via_fabric(self, cluster3):
        ds, _ = make_ds(cluster3)
        before = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        ds.collect(on="node0")
        after = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        assert after > before  # 4 of 6 partitions are remote to node0


class TestNarrowOps:
    def test_map_stays_home(self, cluster3):
        ds, arrays = make_ds(cluster3)
        doubled = ds.map(lambda a: a * 2)
        assert doubled.partition_homes() == ds.partition_homes()
        assert np.array_equal(
            doubled.collect(), np.concatenate(arrays) * 2
        )

    def test_map_produces_new_objects_originals_intact(self, cluster3):
        ds, arrays = make_ds(cluster3)
        ds.map(lambda a: a + 1)
        # The source dataset is unchanged (immutability).
        assert np.array_equal(ds.collect(), np.concatenate(arrays))

    def test_map_generates_no_fabric_traffic(self, cluster3):
        ds, _ = make_ds(cluster3)
        before = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        ds.map_partitions(lambda a: np.sqrt(a.astype(np.float64)))
        after = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        assert after == before  # narrow: all local

    def test_map_can_change_length_and_dtype(self, cluster3):
        ds, _ = make_ds(cluster3, rows=100)
        halved = ds.map_partitions(lambda a: a[::2].astype(np.float32))
        assert halved.count() == ds.count() // 2

    def test_map_must_return_1d(self, cluster3):
        ds, _ = make_ds(cluster3)
        with pytest.raises(ObjectStoreError):
            ds.map_partitions(lambda a: a.reshape(2, -1))

    def test_filter(self, cluster3):
        ds, arrays = make_ds(cluster3, rows=100)
        evens = ds.filter(lambda a: a % 2 == 0)
        expected = np.concatenate(arrays)
        assert np.array_equal(evens.collect(), expected[expected % 2 == 0])

    def test_filter_to_empty_partition_raises(self, cluster3):
        ds, _ = make_ds(cluster3, rows=10)
        with pytest.raises(ObjectStoreError, match="emptied"):
            ds.filter(lambda a: a < 0)


class TestReduce:
    def test_sum(self, cluster3):
        ds, arrays = make_ds(cluster3)
        assert ds.sum() == float(np.concatenate(arrays).sum())

    def test_custom_reduce_max(self, cluster3):
        ds, arrays = make_ds(cluster3)
        result = ds.reduce(lambda a: int(a.max()), max)
        assert result == int(np.concatenate(arrays).max())

    def test_reduce_moves_no_payload(self, cluster3):
        ds, _ = make_ds(cluster3)
        before = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        ds.sum()
        after = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        assert after == before  # partials computed at home; scalars combined


class TestShuffle:
    def test_shuffle_partitions_by_key(self, cluster3):
        ds, arrays = make_ds(cluster3, n_parts=3, rows=300)
        shuffled = ds.shuffle_by(lambda v: v, num_partitions=5)
        # Every row lands in the partition its key selects.
        whole = np.concatenate(arrays)
        assert shuffled.count() == len(whole)
        for p, expected_key in zip(shuffled.partitions, range(5)):
            worker_cluster = cluster3
            reader = worker_cluster.client(p.home)
            from repro.columnar import get_array

            with get_array(reader, p.object_id) as ref:
                assert np.all(ref.array % 5 == expected_key)

    def test_shuffle_conserves_multiset(self, cluster3):
        ds, arrays = make_ds(cluster3, n_parts=4, rows=128)
        shuffled = ds.shuffle_by(lambda v: v * 2654435761, num_partitions=3)
        assert np.array_equal(
            np.sort(shuffled.collect()), np.sort(np.concatenate(arrays))
        )

    def test_shuffle_spreads_over_nodes(self, cluster3):
        ds, _ = make_ds(cluster3, n_parts=3, rows=600)
        shuffled = ds.shuffle_by(lambda v: v, num_partitions=6)
        assert len(shuffled.partition_homes()) == 3  # all nodes used

    def test_shuffle_cleans_intermediates(self, cluster3):
        ds, _ = make_ds(cluster3, n_parts=3, rows=90)
        objects_before = sum(
            cluster3.store(n).object_count() for n in cluster3.node_names()
        )
        shuffled = ds.shuffle_by(lambda v: v, num_partitions=3)
        objects_after = sum(
            cluster3.store(n).object_count() for n in cluster3.node_names()
        )
        # Only the new output partitions remain (intermediates deleted).
        assert objects_after == objects_before + shuffled.num_partitions

    def test_shuffle_crosses_the_fabric(self, cluster3):
        ds, _ = make_ds(cluster3, n_parts=3, rows=600)
        before = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        ds.shuffle_by(lambda v: v, num_partitions=3)
        after = sum(
            link.counters.get("read_bytes") for link in cluster3.fabric.links()
        )
        assert after > before


class TestDistributedSort:
    def test_collect_is_globally_sorted(self, cluster3, np_rng):
        arrays = [np_rng.integers(0, 10**9, size=2000) for _ in range(5)]
        ds = DistributedDataset.from_arrays(cluster3, arrays)
        result = ds.sort(num_partitions=4).collect()
        whole = np.concatenate(arrays)
        assert np.array_equal(result, np.sort(whole))

    def test_sort_conserves_duplicates(self, cluster3):
        arrays = [np.array([5, 1, 5, 3] * 50), np.array([5, 5, 2, 2] * 50)]
        ds = DistributedDataset.from_arrays(cluster3, arrays)
        result = ds.sort(num_partitions=3).collect()
        assert np.array_equal(result, np.sort(np.concatenate(arrays)))

    def test_sort_single_output_partition(self, cluster3):
        ds, arrays = make_ds(cluster3, n_parts=3, rows=200)
        result = ds.sort(num_partitions=1)
        assert result.num_partitions == 1
        assert np.array_equal(result.collect(), np.sort(np.concatenate(arrays)))

    def test_sort_balance_is_reasonable(self, cluster3, np_rng):
        arrays = [np_rng.integers(0, 10**6, size=3000) for _ in range(4)]
        ds = DistributedDataset.from_arrays(cluster3, arrays)
        result = ds.sort(num_partitions=4)
        rows = [p.rows for p in result.partitions]
        assert max(rows) < 3 * min(rows)  # sampling keeps buckets sane

    def test_sort_of_already_sorted_input(self, cluster3):
        arrays = [np.arange(i * 100, (i + 1) * 100) for i in range(3)]
        ds = DistributedDataset.from_arrays(cluster3, arrays)
        result = ds.sort(num_partitions=3).collect()
        assert np.array_equal(result, np.arange(300))


class TestLifecycle:
    def test_drop_deletes_objects(self, cluster3):
        ds, _ = make_ds(cluster3, n_parts=3)
        counts_with = sum(
            cluster3.store(n).object_count() for n in cluster3.node_names()
        )
        ds.drop()
        counts_after = sum(
            cluster3.store(n).object_count() for n in cluster3.node_names()
        )
        assert counts_after == counts_with - 3

    def test_partition_validation(self):
        from repro.common.ids import ObjectID

        with pytest.raises(ValueError):
            Partition(index=-1, object_id=ObjectID.from_int(1), home="n", rows=1)
        with pytest.raises(ValueError):
            Partition(index=0, object_id=ObjectID.from_int(1), home="n", rows=-1)
