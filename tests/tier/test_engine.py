"""TierEngine over a real cluster: heat-driven plans, placement registry."""

import pytest

from repro.common.ids import ObjectID
from repro.core.cluster import Cluster


def oid(n: int) -> ObjectID:
    return ObjectID.from_int(n)


def holder_of(cluster: Cluster, object_id: ObjectID) -> str | None:
    for name in sorted(cluster.node_names()):
        store = cluster.store(name)
        if store.is_replica(object_id):
            continue
        with store.table.lock:
            entry = store.table.lookup(object_id)
            if entry is not None and entry.is_sealed:
                return name
    return None


@pytest.fixture()
def cluster():
    return Cluster(
        n_nodes=3, enable_lookup_cache=True, placement=True, tiering=True
    )


class TestTargetedMoves:
    def test_promote_moves_primary_to_reader(self, cluster):
        client = cluster.client("node0")
        client.put_bytes(oid(1), b"p" * 2048)
        home = holder_of(cluster, oid(1))
        dest = next(
            n for n in ("node0", "node1", "node2") if n != home
        )
        result = cluster.tier_engine.promote(oid(1), dest)
        assert result is not None and result.moved
        assert holder_of(cluster, oid(1)) == dest
        assert cluster.tier_engine.is_tier_placed(oid(1))

    def test_promote_to_current_holder_is_noop(self, cluster):
        cluster.client("node0").put_bytes(oid(1), b"p" * 512)
        home = holder_of(cluster, oid(1))
        assert cluster.tier_engine.promote(oid(1), home) is None

    def test_promoted_bytes_read_back_exactly(self, cluster):
        payload = bytes(range(256)) * 8
        cluster.client("node0").put_bytes(oid(1), payload)
        home = holder_of(cluster, oid(1))
        dest = next(n for n in ("node0", "node1", "node2") if n != home)
        assert cluster.tier_engine.promote(oid(1), dest).moved
        reader = next(
            n for n in ("node0", "node1", "node2") if n != dest
        )
        client = cluster.client(reader)
        buf = client.get([oid(1)])[0]
        try:
            assert buf.read_all() == payload
        finally:
            client.release(oid(1))

    def test_demote_targets_most_free_node(self, cluster):
        cluster.client("node0").put_bytes(oid(1), b"d" * 4096)
        source = holder_of(cluster, oid(1))
        result = cluster.tier_engine.demote(oid(1))
        assert result is not None and result.moved
        assert holder_of(cluster, oid(1)) != source


class TestHeatDrivenTicks:
    def test_hot_remote_reads_promote_home(self, cluster):
        client0 = cluster.client("node0")
        client0.put_bytes(oid(1), b"h" * 1024)
        home = holder_of(cluster, oid(1))
        reader = next(n for n in ("node0", "node1", "node2") if n != home)
        client = cluster.client(reader)
        # Drive decayed remote heat at the reader past promote_min_heat.
        for _ in range(6):
            buf = client.get([oid(1)])[0]
            buf.read_all()
            client.release(oid(1))
        plan = cluster.tier_engine.promotion_plan()
        assert (reader, oid(1)) in [(n, o) for n, o, _ in plan]
        report = cluster.tier_engine.tick()
        assert report.promoted_objects == 1
        assert holder_of(cluster, oid(1)) == reader

    def test_promotion_forgets_remote_heat_at_dest(self, cluster):
        client0 = cluster.client("node0")
        client0.put_bytes(oid(1), b"h" * 1024)
        home = holder_of(cluster, oid(1))
        reader = next(n for n in ("node0", "node1", "node2") if n != home)
        client = cluster.client(reader)
        for _ in range(6):
            buf = client.get([oid(1)])[0]
            buf.read_all()
            client.release(oid(1))
        cluster.tier_engine.tick()
        agent = cluster.tier_agent(reader)
        assert agent.remote_heat.heat(oid(1)) == 0.0
        # No promotion pressure remains: the plan is empty again.
        assert cluster.tier_engine.promotion_plan() == []


class TestPlacementRegistry:
    def test_clear_placements_returns_authority_to_ring(self, cluster):
        cluster.client("node0").put_bytes(oid(1), b"r" * 1024)
        home = holder_of(cluster, oid(1))
        dest = next(n for n in ("node0", "node1", "node2") if n != home)
        cluster.tier_engine.promote(oid(1), dest)
        assert cluster.tier_engine.clear_placements() == 1
        assert not cluster.tier_engine.is_tier_placed(oid(1))
        # The rebalancer now re-homes the object at its ring home.
        report = cluster.rebalancer.run_until_converged()
        assert report.converged
        assert holder_of(cluster, oid(1)) == home

    def test_rebalancer_leaves_tier_placed_objects_alone(self, cluster):
        cluster.client("node0").put_bytes(oid(1), b"r" * 1024)
        home = holder_of(cluster, oid(1))
        dest = next(n for n in ("node0", "node1", "node2") if n != home)
        cluster.tier_engine.promote(oid(1), dest)
        report = cluster.rebalancer.run_until_converged()
        assert report.converged
        assert holder_of(cluster, oid(1)) == dest

    def test_delete_prunes_placement_registry(self, cluster):
        cluster.client("node0").put_bytes(oid(1), b"r" * 1024)
        home = holder_of(cluster, oid(1))
        dest = next(n for n in ("node0", "node1", "node2") if n != home)
        cluster.tier_engine.promote(oid(1), dest)
        cluster.store(dest).delete_object(oid(1))
        cluster.tier_engine.tick()
        assert not cluster.tier_engine.is_tier_placed(oid(1))
