"""HotObjectCache: generation keying, admission, invalidation channels."""

import pytest

from repro.common.ids import ObjectID
from repro.tier.cache import FrequencySketch, HotObjectCache


def oid(n: int) -> ObjectID:
    return ObjectID.from_int(n)


class TestFrequencySketch:
    def test_estimates_track_increments(self):
        sketch = FrequencySketch(64, 4, seed=7)
        for _ in range(5):
            sketch.increment(b"hot")
        sketch.increment(b"cold")
        assert sketch.estimate(b"hot") >= 5
        assert sketch.estimate(b"cold") >= 1
        assert sketch.estimate(b"hot") > sketch.estimate(b"cold")

    def test_counters_saturate(self):
        sketch = FrequencySketch(64, 4, seed=7)
        for _ in range(100):
            sketch.increment(b"k")
        assert sketch.estimate(b"k") == 15

    def test_aging_halves_counts(self):
        sketch = FrequencySketch(8, 2, seed=1)
        for _ in range(10):
            sketch.increment(b"k")
        before = sketch.estimate(b"k")
        # The sample size is 10 * width = 80; push past it to force _age.
        for i in range(80):
            sketch.increment(str(i).encode())
        assert sketch.estimate(b"k") < before

    def test_seeded_and_deterministic(self):
        a, b = FrequencySketch(64, 4, seed=3), FrequencySketch(64, 4, seed=3)
        for s in (a, b):
            for i in range(50):
                s.increment(str(i % 7).encode())
        assert all(
            a.estimate(str(i).encode()) == b.estimate(str(i).encode())
            for i in range(7)
        )


class TestGenerationKeying:
    def test_exact_generation_hits(self):
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 3, b"abc", home="node1")
        assert cache.lookup(oid(1), 3) == b"abc"
        assert cache.hits == 1

    def test_stale_generation_misses(self):
        """A generation bump (delete/migration/re-put) is an automatic
        coherent miss — the old entry can never satisfy the new probe."""
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 3, b"abc", home="node1")
        assert cache.lookup(oid(1), 4) is None
        assert cache.misses == 1

    def test_lookup_any_serves_newest_generation(self):
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 3, b"old", home="node1")
        cache.offer(oid(1), 5, b"new", home="node2")
        assert cache.lookup_any(oid(1)) == (5, b"new", "node2")

    def test_newer_offer_supersedes_older_generations(self):
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 3, b"old", home="node1")
        cache.offer(oid(1), 5, b"new", home="node1")
        assert not cache.contains(oid(1), 3)
        assert cache.used_bytes == 3

    def test_lookup_any_absent_is_not_a_miss(self):
        cache = HotObjectCache(1024)
        assert cache.lookup_any(oid(9)) is None
        assert cache.misses == 0

    def test_last_served_debug_hook(self):
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 2, b"xy", home="node1")
        cache.last_served = None
        cache.lookup_any(oid(1))
        served_oid, generation, home = cache.last_served
        assert (served_oid.binary(), generation, home) == (
            oid(1).binary(), 2, "node1",
        )


class TestAdmission:
    def test_oversized_payload_rejected(self):
        cache = HotObjectCache(16)
        assert not cache.offer(oid(1), 1, b"x" * 17, home="n")
        assert cache.rejections == 1

    def test_one_hit_wonder_cannot_displace_hot_entry(self):
        cache = HotObjectCache(8)
        for _ in range(5):
            cache.record_access(oid(1))
        cache.offer(oid(1), 1, b"x" * 8, home="n")
        # A never-accessed candidate loses the victim contest.
        assert not cache.offer(oid(2), 1, b"y" * 8, home="n")
        assert cache.contains(oid(1), 1)

    def test_hotter_candidate_displaces_colder_victim(self):
        cache = HotObjectCache(8)
        cache.record_access(oid(1))
        cache.offer(oid(1), 1, b"x" * 8, home="n")
        for _ in range(6):
            cache.record_access(oid(2))
        assert cache.offer(oid(2), 1, b"y" * 8, home="n")
        assert not cache.contains(oid(1), 1)
        assert cache.evictions == 1


class TestInvalidation:
    def test_invalidate_drops_every_generation(self):
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 2, b"a", home="n1")
        cache.offer(oid(2), 1, b"b", home="n1")
        assert cache.invalidate(oid(1)) == 1
        assert cache.lookup_any(oid(1)) is None
        assert cache.lookup_any(oid(2)) is not None

    def test_invalidate_home_drops_that_peers_entries(self):
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 1, b"a", home="n1")
        cache.offer(oid(2), 1, b"b", home="n2")
        assert cache.invalidate_home("n1") == 1
        assert cache.lookup_any(oid(1)) is None
        assert cache.lookup_any(oid(2)) is not None

    def test_clear_purges_everything(self):
        cache = HotObjectCache(1024)
        cache.offer(oid(1), 1, b"a", home="n1")
        cache.offer(oid(2), 1, b"b", home="n2")
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            HotObjectCache(0)
