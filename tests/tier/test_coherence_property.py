"""Property-based cache coherence: under seeded random interleavings of
re-puts, deletes, and tier migrations, a read through the hot-object cache
never observes bytes other than the current incarnation's.

The staleness generator is delete + re-put of the same ObjectID with a
different payload (sealed payloads are immutable, so that is the only way
an id's bytes can change); migrations move the primary between nodes via
the promotion/demotion engine, bumping the generation each time. Every
read from every node is checked against a model of the live payloads.
"""

import pytest

from repro.common.errors import ReproError
from repro.common.ids import ObjectID
from repro.common.rng import DeterministicRng
from repro.core.cluster import Cluster

NODES = ("node0", "node1", "node2")
N_OBJECTS = 12
N_OPS = 150


def oid(n: int) -> ObjectID:
    return ObjectID.from_int(n)


def payload_for(obj: int, version: int) -> bytes:
    stamp = f"obj={obj} v={version} ".encode()
    return (stamp * (512 // len(stamp) + 1))[: 256 + 37 * (obj % 5)]


def find_holder(cluster: Cluster, object_id: ObjectID) -> str | None:
    for name in NODES:
        store = cluster.store(name)
        if object_id in store.deferred_retires():
            continue
        if store.is_replica(object_id):
            continue
        with store.table.lock:
            entry = store.table.lookup(object_id)
            if entry is not None and entry.is_sealed and not entry.quarantined:
                return name
    return None


@pytest.mark.parametrize("seed", [3, 17, 404, 2024, 9999])
def test_random_interleavings_never_serve_stale_bytes(seed):
    cluster = Cluster(
        n_nodes=3, enable_lookup_cache=True, placement=True, tiering=True
    )
    rng = DeterministicRng(seed).spawn("coherence")
    clients = {n: cluster.client(n) for n in NODES}
    model: dict[int, bytes] = {}  # live payloads only
    versions = {n: 0 for n in range(N_OBJECTS)}

    def do_read() -> None:
        obj = int(rng.integer(0, N_OBJECTS))
        node = str(rng.choice(list(NODES)))
        client = clients[node]
        if obj not in model:
            with pytest.raises(ReproError):
                client.get([oid(obj)])
            return
        buf = client.get([oid(obj)])[0]
        try:
            got = buf.read_all()
        finally:
            client.release(oid(obj))
        assert got == model[obj], (
            f"seed {seed}: read of obj {obj} at {node} saw stale bytes "
            f"(cache incoherence)"
        )

    def do_write() -> None:
        obj = int(rng.integer(0, N_OBJECTS))
        if obj in model:
            holder = find_holder(cluster, oid(obj))
            if holder is None:
                return
            cluster.store(holder).delete_object(oid(obj))
            del model[obj]
        versions[obj] += 1
        data = payload_for(obj, versions[obj])
        writer = str(rng.choice(list(NODES)))
        clients[writer].put_bytes(oid(obj), data)
        model[obj] = data

    def do_delete() -> None:
        live = sorted(model)
        if not live:
            return
        obj = int(rng.choice(live))
        holder = find_holder(cluster, oid(obj))
        if holder is None:
            return
        cluster.store(holder).delete_object(oid(obj))
        del model[obj]

    def do_promote() -> None:
        live = sorted(model)
        if not live:
            return
        obj = int(rng.choice(live))
        dest = str(rng.choice(list(NODES)))
        cluster.tier_engine.promote(oid(obj), dest)

    def do_demote() -> None:
        live = sorted(model)
        if not live:
            return
        obj = int(rng.choice(live))
        cluster.tier_engine.demote(oid(obj))

    def do_tick() -> None:
        cluster.clock.advance(2_000_000)
        cluster.tier_engine.tick()

    ops = (
        [do_read] * 45
        + [do_write] * 20
        + [do_delete] * 10
        + [do_promote] * 10
        + [do_demote] * 8
        + [do_tick] * 7
    )
    for _ in range(N_OPS):
        ops[int(rng.integer(0, len(ops)))]()

    # Final sweep: every live object reads coherently from every node.
    for obj, data in sorted(model.items()):
        for node in NODES:
            client = clients[node]
            buf = client.get([oid(obj)])[0]
            try:
                assert buf.read_all() == data
            finally:
                client.release(oid(obj))
