"""HeatTracker: decay on simulated time, sampling, deterministic ranking."""

import pytest

from repro.common.clock import SimClock
from repro.common.ids import ObjectID
from repro.common.rng import DeterministicRng
from repro.tier.heat import HeatTracker


def oid(n: int) -> ObjectID:
    return ObjectID.from_int(n)


def test_heat_accumulates_and_halves_per_half_life():
    clock = SimClock()
    tracker = HeatTracker(clock, half_life_ns=1000.0)
    tracker.record(oid(1))
    tracker.record(oid(1))
    assert tracker.heat(oid(1)) == pytest.approx(2.0)
    clock.advance(1000)
    assert tracker.heat(oid(1)) == pytest.approx(1.0)
    clock.advance(1000)
    assert tracker.heat(oid(1)) == pytest.approx(0.5)


def test_untracked_object_is_cold():
    tracker = HeatTracker(SimClock(), half_life_ns=1000.0)
    assert tracker.heat(oid(9)) == 0.0


def test_hottest_orders_by_current_heat_then_id():
    clock = SimClock()
    tracker = HeatTracker(clock, half_life_ns=1000.0)
    tracker.record(oid(1))
    clock.advance(2000)  # oid 1 cools to 0.25
    for _ in range(3):
        tracker.record(oid(2))
    ranked = tracker.hottest()
    assert [o for o, _ in ranked] == [oid(2), oid(1)]
    assert ranked[0][1] == pytest.approx(3.0)


def test_forget_and_prune():
    clock = SimClock()
    tracker = HeatTracker(clock, half_life_ns=100.0)
    tracker.record(oid(1))
    tracker.record(oid(2))
    tracker.forget(oid(1))
    assert len(tracker) == 1
    clock.advance(100 * 1000)  # ~1000 half-lives: heat underflows to ~0
    assert tracker.prune() == 1
    assert len(tracker) == 0


def test_sampling_is_unbiased_and_seeded():
    clock = SimClock()
    a = HeatTracker(
        clock, half_life_ns=1e12, sample_rate=0.25,
        rng=DeterministicRng(77),
    )
    b = HeatTracker(
        clock, half_life_ns=1e12, sample_rate=0.25,
        rng=DeterministicRng(77),
    )
    for _ in range(400):
        a.record(oid(1))
        b.record(oid(1))
    # Identical seeds record the identical subsample...
    assert a.heat(oid(1)) == b.heat(oid(1))
    # ...and the 1/rate weight scaling keeps the estimate near the truth.
    assert a.heat(oid(1)) == pytest.approx(400, rel=0.25)


def test_sub_unit_sampling_requires_rng():
    with pytest.raises(ValueError):
        HeatTracker(SimClock(), half_life_ns=1.0, sample_rate=0.5)


def test_half_life_must_be_positive():
    with pytest.raises(ValueError):
        HeatTracker(SimClock(), half_life_ns=0.0)
