"""The pre-resolution fast path over a live cluster: a cached hot object
is served without any RPC to its home, and push invalidation keeps that
sound across deletes and re-puts."""

import pytest

from repro.common.errors import ReproError
from repro.common.ids import ObjectID
from repro.core.cluster import Cluster


def oid(n: int) -> ObjectID:
    return ObjectID.from_int(n)


def holder_of(cluster: Cluster, object_id: ObjectID) -> str | None:
    for name in sorted(cluster.node_names()):
        store = cluster.store(name)
        if store.is_replica(object_id):
            continue
        with store.table.lock:
            entry = store.table.lookup(object_id)
            if entry is not None and entry.is_sealed:
                return name
    return None


def rpc_calls_to(cluster: Cluster, node: str, peer: str) -> int:
    return cluster.store(node).peer(peer).stub.channel.counters.get("calls")


def read_released(client, object_id: ObjectID) -> bytes:
    buf = client.get([object_id])[0]
    try:
        return buf.read_all()
    finally:
        client.release(object_id)


@pytest.fixture()
def cluster():
    return Cluster(
        n_nodes=3, enable_lookup_cache=True, placement=True, tiering=True
    )


def remote_reader(cluster: Cluster, object_id: ObjectID) -> str:
    home = holder_of(cluster, object_id)
    return next(n for n in ("node0", "node1", "node2") if n != home)


def test_cache_hit_skips_home_rpcs_entirely(cluster):
    payload = b"hot" * 1000
    cluster.client("node0").put_bytes(oid(1), payload)
    home = holder_of(cluster, oid(1))
    reader = remote_reader(cluster, oid(1))
    client = cluster.client(reader)
    # First read resolves at the home and seeds the reader's cache.
    assert read_released(client, oid(1)) == payload
    cache = cluster.tier_agent(reader).cache
    assert cache.lookup_any(oid(1)) is not None
    before = rpc_calls_to(cluster, reader, home)
    assert read_released(client, oid(1)) == payload
    assert rpc_calls_to(cluster, reader, home) == before
    assert cache.hits >= 1
    assert cache.bytes_avoided >= len(payload)


def test_cached_read_is_cheaper_than_fabric_read(cluster):
    payload = b"x" * (256 * 1024)
    cluster.client("node0").put_bytes(oid(1), payload)
    reader = remote_reader(cluster, oid(1))
    client = cluster.client(reader)
    clock = cluster.clock

    t0 = clock.now_ns
    read_released(client, oid(1))
    fabric_cost = clock.now_ns - t0

    t0 = clock.now_ns
    read_released(client, oid(1))
    cached_cost = clock.now_ns - t0

    assert cached_cost < fabric_cost


def test_delete_pushes_invalidation_to_every_peer(cluster):
    cluster.client("node0").put_bytes(oid(1), b"doomed" * 100)
    home = holder_of(cluster, oid(1))
    reader = remote_reader(cluster, oid(1))
    client = cluster.client(reader)
    read_released(client, oid(1))
    cache = cluster.tier_agent(reader).cache
    assert cache.lookup_any(oid(1)) is not None
    cluster.store(home).delete_object(oid(1))
    # NotifyDeleted reached the reader: nothing cached, nothing servable.
    assert cache.lookup_any(oid(1)) is None
    with pytest.raises(ReproError):
        client.get([oid(1)])


def test_re_put_after_delete_never_serves_stale_bytes(cluster):
    cluster.client("node0").put_bytes(oid(1), b"old-incarnation")
    home = holder_of(cluster, oid(1))
    reader = remote_reader(cluster, oid(1))
    client = cluster.client(reader)
    assert read_released(client, oid(1)) == b"old-incarnation"
    cluster.store(home).delete_object(oid(1))
    cluster.client("node0").put_bytes(oid(1), b"new-incarnation!")
    assert read_released(client, oid(1)) == b"new-incarnation!"
    assert read_released(client, oid(1)) == b"new-incarnation!"


def test_cache_served_buffer_release_is_clean(cluster):
    cluster.client("node0").put_bytes(oid(1), b"r" * 512)
    home = holder_of(cluster, oid(1))
    reader = remote_reader(cluster, oid(1))
    client = cluster.client(reader)
    read_released(client, oid(1))  # seed
    read_released(client, oid(1))  # cache-served, then released
    agent = cluster.tier_agent(reader)
    assert agent._served_refs == {}
    # With no cache-held pin outstanding the home can delete freely.
    cluster.store(home).delete_object(oid(1))


def test_migration_bumps_generation_and_invalidates(cluster):
    cluster.client("node0").put_bytes(oid(1), b"m" * 2048)
    home = holder_of(cluster, oid(1))
    reader = remote_reader(cluster, oid(1))
    client = cluster.client(reader)
    assert read_released(client, oid(1)) == b"m" * 2048
    # Promote onto the reader: the object is now home-local there, so the
    # next read must come from the local store, not the stale cache entry.
    result = cluster.tier_engine.promote(oid(1), reader)
    assert result is not None and result.moved
    buf = client.get([oid(1)])[0]
    try:
        assert not buf.is_remote
        assert buf.read_all() == b"m" * 2048
    finally:
        client.release(oid(1))
