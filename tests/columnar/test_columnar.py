"""Columnar layer: typed arrays and tables over the disaggregated store."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import ObjectStoreError
from repro.columnar import (
    ArraySchema,
    column_object_id,
    decode_schema,
    encode_schema,
    get_array,
    get_table,
    put_array,
    put_table,
)


class TestSchema:
    def test_roundtrip(self):
        s = ArraySchema(dtype="<f8", shape=(4, 5), order="C")
        assert decode_schema(encode_schema(s)) == s

    def test_of_array(self):
        a = np.arange(12, dtype=np.int32).reshape(3, 4)
        s = ArraySchema.of(a)
        assert s.shape == (3, 4)
        assert s.nbytes == a.nbytes

    def test_fortran_order(self):
        a = np.asfortranarray(np.arange(6, dtype=np.float32).reshape(2, 3))
        s = ArraySchema.of(a)
        assert s.order == "F"

    def test_non_contiguous_rejected(self):
        a = np.arange(100).reshape(10, 10)[::2, ::2]
        with pytest.raises(ObjectStoreError):
            ArraySchema.of(a)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(TypeError):
            ArraySchema(dtype="not-a-dtype", shape=(1,))

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            ArraySchema(dtype="<i4", shape=(1,), order="Z")

    def test_empty_metadata_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode_schema(b"")

    def test_non_array_metadata_rejected(self):
        from repro.rpc.codec import encode_message

        with pytest.raises(ObjectStoreError):
            decode_schema(encode_message({"kind": "blob"}))

    def test_column_ids_deterministic_and_distinct(self, ids):
        tid = ids.next()
        a = column_object_id(tid, "x")
        assert a == column_object_id(tid, "x")
        assert a != column_object_id(tid, "y")
        assert a != column_object_id(ids.next(), "x")


class TestArrays:
    def test_local_roundtrip(self, cluster):
        client = cluster.client("node0")
        data = np.arange(1000, dtype=np.float64)
        oid = cluster.new_object_id()
        put_array(client, oid, data)
        with get_array(client, oid) as ref:
            assert np.array_equal(ref.array, data)
            assert ref.dtype == np.float64

    def test_remote_zero_copy_view(self, cluster):
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        matrix = np.arange(64, dtype=np.int64).reshape(8, 8)
        oid = cluster.new_object_id()
        put_array(producer, oid, matrix)
        with get_array(consumer, oid) as ref:
            # Computation directly on the remote-backed view.
            assert int(ref.array.trace()) == int(matrix.trace())
            assert ref.shape == (8, 8)

    def test_views_are_read_only(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        put_array(client, oid, np.ones(10, dtype=np.uint8))
        with get_array(client, oid) as ref:
            with pytest.raises(ValueError):
                ref.array[0] = 7

    def test_copy_is_mutable(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        put_array(client, oid, np.zeros(4, dtype=np.int16))
        with get_array(client, oid) as ref:
            mine = ref.copy()
            mine[0] = 5
            assert ref.array[0] == 0

    def test_release_semantics(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        put_array(client, oid, np.arange(5, dtype=np.int8))
        ref = get_array(client, oid)
        ref.release()
        assert ref.is_released
        with pytest.raises(ObjectStoreError):
            _ = ref.array
        ref.release()  # idempotent

    def test_fortran_array_roundtrip(self, cluster):
        client = cluster.client("node0")
        a = np.asfortranarray(np.arange(12, dtype=np.float32).reshape(3, 4))
        oid = cluster.new_object_id()
        put_array(client, oid, a)
        with get_array(client, oid) as ref:
            assert np.array_equal(ref.array, a)

    def test_empty_array_rejected(self, cluster):
        client = cluster.client("node0")
        with pytest.raises(ObjectStoreError):
            put_array(client, cluster.new_object_id(), np.empty(0))

    def test_non_array_object_rejected_by_get(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        client.put_bytes(oid, b"just-bytes")
        with pytest.raises(ObjectStoreError):
            get_array(client, oid)
        # The failed get must not leak a reference.
        assert client.held_ids() == []

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        dtype=st.sampled_from(["<i4", "<f8", "u1", "<u2"]),
        shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    )
    def test_roundtrip_property(self, cluster_factory, dtype, shape):
        cluster = cluster_factory()
        client = cluster.client("node0")
        consumer = cluster.client("node1")
        n = shape[0] * shape[1]
        data = (np.arange(n) % 251).astype(dtype).reshape(shape)
        oid = cluster.new_object_id()
        put_array(client, oid, data)
        with get_array(consumer, oid) as ref:
            assert ref.array.dtype == np.dtype(dtype)
            assert np.array_equal(ref.array, data)


class TestTables:
    def test_table_roundtrip_across_nodes(self, cluster):
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        tid = cluster.new_object_id()
        cols = {
            "ts": np.arange(100, dtype=np.int64),
            "value": np.linspace(0, 1, 100),
            "flag": (np.arange(100) % 2).astype(np.uint8),
        }
        put_table(producer, tid, cols)
        with get_table(consumer, tid) as table:
            assert set(table.column_names) == set(cols)
            assert table.rows == 100
            for name, expected in cols.items():
                assert np.array_equal(table[name], expected)

    def test_ragged_rejected(self, cluster):
        client = cluster.client("node0")
        with pytest.raises(ObjectStoreError, match="ragged"):
            put_table(
                client,
                cluster.new_object_id(),
                {"a": np.zeros(3), "b": np.zeros(4)},
            )

    def test_empty_rejected(self, cluster):
        client = cluster.client("node0")
        with pytest.raises(ObjectStoreError):
            put_table(client, cluster.new_object_id(), {})

    def test_unknown_column_error(self, cluster):
        client = cluster.client("node0")
        tid = cluster.new_object_id()
        put_table(client, tid, {"only": np.zeros(2)})
        with get_table(client, tid) as table:
            with pytest.raises(ObjectStoreError, match="no column"):
                table.column("missing")

    def test_non_table_object_rejected(self, cluster):
        client = cluster.client("node0")
        oid = cluster.new_object_id()
        put_array(client, oid, np.zeros(3))
        with pytest.raises(Exception):
            get_table(client, oid)

    def test_release_frees_all_columns(self, cluster):
        client = cluster.client("node0")
        tid = cluster.new_object_id()
        put_table(client, tid, {"a": np.zeros(2), "b": np.ones(2)})
        table = get_table(client, tid)
        table.release()
        assert client.held_ids() == []
        with pytest.raises(ObjectStoreError):
            table.column("a")

    def test_columns_individually_addressable(self, cluster):
        """Any node can fetch a single column without touching the rest."""
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        tid = cluster.new_object_id()
        put_table(producer, tid, {"x": np.arange(10), "y": np.arange(10) * 2})
        with get_array(consumer, column_object_id(tid, "y")) as ref:
            assert ref.array[9] == 18
