"""Simulation harness: clean runs, byte-identical replay, oracle teeth."""

import pytest

from repro.simtest.harness import SimulationRunner, replay_trace, run_seed, run_seeds
from repro.simtest.model import ObjState, payload_for
from repro.simtest.ops import make
from repro.simtest.workload import generate_ops


def test_clean_seed_runs_without_violations():
    result = run_seed(0, 60)
    assert result.ok, result.report()
    assert len(result.steps) >= 60


def test_same_seed_byte_identical_trace():
    first = run_seed(3, 80)
    second = run_seed(3, 80)
    assert first.trace_text() == second.trace_text()


@pytest.mark.slow
@pytest.mark.simtest
def test_small_sweep_is_clean():
    sweep = run_seeds(6, 120)
    assert sweep.ok, sweep.summary()


def test_handcrafted_trace_put_get_delete():
    ops = [
        make("put", obj=0, node="node0", size=256, replicas=2),
        make("get", obj=0, node="node1"),
        make("delete", obj=0),
        make("get", obj=0, node="node2"),
    ]
    runner = SimulationRunner(11)
    result = runner.run(ops)
    assert result.ok, result.report()
    assert runner.model.state(0) is ObjState.DELETED_CLEAN


def test_replay_safe_ops_skip_unmet_preconditions():
    """Arbitrary subsets (what the shrinker generates) must stay valid:
    ops on unknown objects/nodes become recorded no-ops."""
    ops = [
        make("get", obj=9, node="node0"),        # never put
        make("delete", obj=9),                   # never put
        make("recover", node="node1"),           # never crashed
        make("heal", a="node0", b="node1"),      # never partitioned
        make("remove", node="node2"),            # still ACTIVE
    ]
    result = SimulationRunner(1).run(ops)
    assert result.ok, result.report()
    assert "skip" in result.steps[1]


def test_crash_and_recover_round_trip():
    ops = [
        make("put", obj=0, node="node0", size=1024, replicas=2),
        make("crash", node="node0"),
        make("advance", ms=300),
        make("health"),
        make("recover", node="node0"),
        make("get", obj=0, node="node0"),
    ]
    result = SimulationRunner(5).run(ops)
    assert result.ok, result.report()


def test_oracle_catches_planted_resurrection():
    """With the retire-before-free mutation planted, a delete + crash
    schedule must produce a resurrection violation."""
    ops = [
        make("put", obj=0, node="node0", size=512, replicas=1),
        make("delete", obj=0),
        make("crash", node="node1"),
    ]
    result = SimulationRunner(1, mutation="skip_retire").run(ops)
    # The planted bug leaves the sealed header in region memory; the
    # converge-phase recovery resurrects it somewhere.
    assert not result.ok
    assert any(v.kind == "resurrection" for v in result.violations)


def test_replay_trace_round_trip():
    result = run_seed(4, 50)
    replayed = replay_trace(result.to_trace())
    assert replayed.trace_text() == result.trace_text()


def test_payloads_are_seed_independent():
    assert payload_for(7, 64) == payload_for(7, 64)
    assert payload_for(7, 64) != payload_for(8, 64)


def test_generated_trace_replay_matches_run_seed():
    ops = generate_ops(9, 60)
    direct = SimulationRunner(9).run(ops)
    via_helper = run_seed(9, 60)
    assert direct.trace_text() == via_helper.trace_text()


def test_concurrency_profile_seed_is_clean_and_replays_identically():
    first = run_seed(3, 120, profile="concurrency")
    assert first.ok, first.report()
    assert "set_rpc_mode(mode=async)" in first.steps[0]
    second = run_seed(3, 120, profile="concurrency")
    assert first.trace_text() == second.trace_text()


@pytest.mark.slow
@pytest.mark.simtest
def test_small_concurrency_sweep_is_clean():
    sweep = run_seeds(6, 120, profile="concurrency")
    assert sweep.ok, sweep.summary()


def test_handcrafted_async_multi_get_mixes_hits_and_misses():
    ops = [
        make("set_rpc_mode", mode="async"),
        make("put", obj=0, node="node0", size=512, replicas=1),
        make("put", obj=1, node="node1", size=512, replicas=1),
        make("multi_get", objs="0,7,1,0", node="node2"),
    ]
    result = SimulationRunner(2).run(ops)
    assert result.ok, result.report()
    assert result.steps[3].endswith("-> ok,notfound,ok,ok")
