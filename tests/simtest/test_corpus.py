"""Golden-seed regression corpus.

Every trace that ever exposed a bug lives in ``corpus/`` and is replayed
on every test run. Entries carry an ``expect`` key:

* ``"clean"`` — a real bug fixed in the tree; the trace must stay green.
* ``"violation"`` — a planted mutation (named in ``mutation``); the
  harness must keep catching it with the recorded violation ``kind``.
"""

import json
from pathlib import Path

import pytest

from repro.simtest.harness import replay_trace

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def test_corpus_is_not_empty():
    assert CORPUS, "golden-seed corpus is missing"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_trace(path):
    trace = _load(path)
    result = replay_trace(trace)
    if trace["expect"] == "clean":
        assert result.ok, f"{path.stem} regressed:\n{result.report()}"
    else:
        assert not result.ok, (
            f"{path.stem}: harness no longer catches mutation "
            f"{trace.get('mutation')!r}"
        )
        kinds = {v.kind for v in result.violations}
        assert trace["kind"] in kinds, (
            f"{path.stem}: expected violation kind {trace['kind']!r}, "
            f"got {sorted(kinds)}"
        )


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_traces_stripped_of_mutation_are_clean(path):
    """The planted-mutation traces must pass on the real (fixed) code —
    proving each corpus schedule is clean without its mutation."""
    trace = dict(_load(path))
    trace.pop("mutation", None)
    result = replay_trace(trace)
    assert result.ok, f"{path.stem} without mutation:\n{result.report()}"
