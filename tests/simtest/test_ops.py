"""Op vocabulary: construction, validation, JSON round-trips."""

import json

import pytest

from repro.simtest.ops import Op, make, ops_from_json, ops_to_json
from repro.simtest.workload import generate_ops


def test_make_and_access():
    op = make("put", obj=3, node="node1", size=256, replicas=2)
    assert op.kind == "put"
    assert op["obj"] == 3
    assert op["node"] == "node1"
    with pytest.raises(KeyError):
        op["missing"]


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        make("frobnicate", x=1)


def test_wrong_args_rejected():
    with pytest.raises(ValueError):
        make("put", obj=1)  # missing node/size/replicas
    with pytest.raises(ValueError):
        make("health", extra=1)


def test_json_round_trip():
    ops = [
        make("put", obj=0, node="node0", size=64, replicas=1),
        make("partition", a="node0", b="node1"),
        make("advance", ms=60),
        make("rebalance"),
    ]
    text = ops_to_json(ops)
    assert ops_from_json(text) == ops
    # Stable serialization: re-encoding yields identical text.
    assert ops_to_json(ops_from_json(text)) == text


def test_from_obj_round_trip_via_plain_dicts():
    op = make("blackhole", src="node0", dst="node2", ms=5)
    assert Op.from_obj(json.loads(json.dumps(op.to_obj()))) == op


def test_format_is_deterministic():
    op = make("put", obj=1, node="node0", size=64, replicas=1)
    assert op.format() == "put(node=node0, obj=1, replicas=1, size=64)"


def test_generated_ops_all_serialize():
    ops = generate_ops(7, 200)
    assert len(ops) == 200
    assert ops_from_json(ops_to_json(ops)) == ops
