"""The flight recorder rides along with every simtest run.

Simtest clusters run with flight-recorder-only tracing (no sampling, no
retained traces — just bounded per-node span rings). A clean run ships
nothing; an oracle violation ships the rings as ``RunResult.flight``,
and because the whole simulation is deterministic, replaying the same
trace reproduces the dump byte for byte.
"""

import json

import pytest

from repro.simtest.harness import replay_trace, run_seed

# Known-failing configuration: the planted skip_retire mutation trips the
# dup-primary oracle at this seed (the same search the self-check runs).
FAILING_SEED = 16
FAILING_OPS = 150
MUTATION = "skip_retire"


@pytest.fixture(scope="module")
def failing_result():
    result = run_seed(FAILING_SEED, FAILING_OPS, mutation=MUTATION)
    assert not result.ok, "planted mutation no longer trips the oracle"
    return result


class TestFlightDump:
    def test_clean_run_ships_no_flight_dump(self):
        result = run_seed(0, 60)
        assert result.ok
        assert result.flight is None

    def test_violation_ships_the_per_node_rings(self, failing_result):
        flight = failing_result.flight
        assert flight is not None
        assert flight["schema_version"] == 1
        assert flight["nodes"], "violation dump has no per-node rings"
        for node in flight["nodes"].values():
            assert node["capacity"] > 0
            assert node["dropped"] >= 0
            for span in node["spans"]:
                assert span["span_id"]
                assert span["duration_ns"] >= 0

    def test_replay_reproduces_dump_byte_identically(self, failing_result):
        trace = failing_result.to_trace()
        first = replay_trace(trace)
        second = replay_trace(trace)
        assert first.flight is not None
        assert json.dumps(first.flight, indent=2, sort_keys=True) == json.dumps(
            second.flight, indent=2, sort_keys=True
        )

    def test_tracing_leaves_the_simulation_trace_unchanged(self, failing_result):
        # The violation, its op index, and the full step log are a pure
        # function of (seed, ops, mutation) — the span plane observes the
        # clock but never advances it, so the trace text is stable.
        again = run_seed(FAILING_SEED, FAILING_OPS, mutation=MUTATION)
        assert again.trace_text() == failing_result.trace_text()
