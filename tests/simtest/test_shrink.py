"""Trace shrinker: ddmin behaviour, reproducer emission, self-check."""

import pytest

from repro.simtest.harness import SimulationRunner, run_seed
from repro.simtest.ops import make
from repro.simtest.selfcheck import run_selfcheck
from repro.simtest.shrink import ddmin, emit_pytest, shrink_result


def test_ddmin_finds_single_culprit():
    ops = [make("advance", ms=1) for _ in range(16)]
    culprit = make("health")
    ops.insert(9, culprit)

    def predicate(subset):
        return culprit in subset

    minimal, replays = ddmin(ops, predicate)
    assert minimal == [culprit]
    assert replays > 0


def test_ddmin_keeps_cooperating_pair():
    a = make("advance", ms=5)
    b = make("health")
    ops = [make("advance", ms=1) for _ in range(10)] + [a] + \
          [make("advance", ms=2) for _ in range(10)] + [b]

    def predicate(subset):
        return a in subset and b in subset

    minimal, _ = ddmin(ops, predicate)
    assert minimal == [a, b]


def test_ddmin_budget_caps_replays():
    ops = [make("advance", ms=1) for _ in range(64)]

    def predicate(subset):
        return True

    minimal, replays = ddmin(ops, predicate, budget=10)
    assert replays <= 11


def test_shrink_result_requires_failure():
    with pytest.raises(ValueError):
        shrink_result(run_seed(0, 20))


@pytest.mark.slow
@pytest.mark.simtest
def test_shrink_planted_bug_to_small_trace():
    ops = [
        make("put", obj=0, node="node0", size=512, replicas=1),
        make("advance", ms=10),
        make("get", obj=0, node="node1"),
        make("delete", obj=0),
        make("health"),
        make("crash", node="node1"),
        make("advance", ms=60),
    ]
    failing = SimulationRunner(1, mutation="skip_retire").run(ops)
    assert not failing.ok
    report = shrink_result(failing)
    assert len(report.minimal) <= 4
    replay = SimulationRunner(1, mutation="skip_retire").run(report.minimal)
    assert any(v.kind == report.target_kind for v in replay.violations)


@pytest.mark.slow
@pytest.mark.simtest
def test_selfcheck_catches_and_shrinks_mutation(tmp_path):
    report = run_selfcheck(mutation="skip_retire", max_seeds=10, n_ops=150)
    assert report.caught, report.summary()
    assert len(report.shrink.minimal) <= 25
    # The emitted reproducer must be a runnable pytest module.
    path = tmp_path / "test_repro.py"
    path.write_text(report.pytest_source)
    compiled = compile(report.pytest_source, str(path), "exec")
    namespace = {}
    exec(compiled, namespace)  # noqa: S102 - executing our own generated test
    test_fns = [v for k, v in namespace.items() if k.startswith("test_")]
    assert len(test_fns) == 1
    test_fns[0]()  # asserts the harness still catches the mutation


def test_emit_pytest_clean_expectation():
    failing = SimulationRunner(1, mutation="skip_retire").run([
        make("put", obj=0, node="node0", size=512, replicas=1),
        make("delete", obj=0),
        make("crash", node="node1"),
    ])
    report = shrink_result(failing)
    source = emit_pytest(report, expect="clean", name="example")
    assert "def test_example" in source
    assert "assert result.ok" in source
