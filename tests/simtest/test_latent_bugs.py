"""Targeted unit tests for the two latent bugs the 500-seed sweep found.

Both are also pinned by corpus traces; these tests exercise the store
APIs directly so a regression points at the exact call, not a 3-op
simulation trace.
"""

from repro.common.ids import ObjectID
from repro.core import Cluster


def _home_of(cluster, oid):
    for name in cluster.node_names():
        store = cluster.store(name)
        if store.table.contains(oid) and not store.is_replica(oid):
            return name
    raise AssertionError("no primary holder found")


def test_dropped_replica_extent_is_retired(small_config):
    """drop_replicas must retire the replica header before freeing, or a
    region scan of the holder resurrects cleanly deleted objects."""
    cluster = Cluster(small_config, n_nodes=3, check_remote_uniqueness=False)
    oid = ObjectID.from_int(1)
    cluster.client("node0", client_name="t").put_bytes(
        oid, b"x" * 4096, replicas=2
    )
    home = _home_of(cluster, oid)
    holders = cluster.store(home).replica_locations(oid)
    assert holders
    holder_store = cluster.store(holders[0])
    cluster.store(home).delete_object(oid)
    with holder_store.table.lock:
        assert holder_store.table.lookup(oid) is None
    # The replica extent was freed; its header must be retired so a
    # restart's region scan cannot bring the object back.
    report = holder_store.recover()
    with holder_store.table.lock:
        assert holder_store.table.lookup(oid) is None, (
            "recovery resurrected a dropped replica extent",
            report,
        )


def test_delete_with_removed_replica_holder(small_config):
    """Deleting an object whose replica holder left the cluster must not
    raise (historically: KeyError from _drop_remote_replicas)."""
    cluster = Cluster(
        small_config,
        n_nodes=3,
        sharing="rpc",
        check_remote_uniqueness=False,
        placement=True,
    )
    oid = ObjectID.from_int(2)
    cluster.client("node0", client_name="t").put_bytes(
        oid, b"y" * 2048, replicas=2
    )
    home = _home_of(cluster, oid)
    holders = cluster.store(home).replica_locations(oid)
    assert holders
    victim = holders[0]
    assert victim != home
    cluster.drain_node(victim)
    cluster.rebalancer.run_until_converged()
    cluster.remove_node(victim)
    # Must complete without KeyError even though the holder is gone.
    cluster.store(home).delete_object(oid)
    for name in cluster.node_names():
        assert not cluster.store(name).table.contains(oid)
