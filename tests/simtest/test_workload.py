"""Workload generator: determinism and schedule-space coverage."""

from repro.simtest.workload import generate_ops


def test_same_seed_same_trace():
    assert generate_ops(42, 300) == generate_ops(42, 300)


def test_different_seeds_differ():
    assert generate_ops(1, 100) != generate_ops(2, 100)


def test_exact_length():
    for n in (1, 17, 250):
        assert len(generate_ops(5, n)) == n


def test_covers_all_interesting_kinds():
    """Across a modest seed budget the generator exercises the whole
    vocabulary — crashes, membership changes and maintenance included."""
    seen = set()
    for seed in range(12):
        seen |= {op.kind for op in generate_ops(seed, 200)}
    assert {
        "put", "tenant_put", "set_quota", "get", "delete", "crash",
        "recover", "partition", "heal", "degrade", "restore", "blackhole",
        "add_node", "drain", "remove", "scrub", "rebalance", "health",
        "advance",
    } <= seen


def test_put_before_get_for_same_object():
    """The generator only reads ids it has already put (modulo the
    deliberate stale-id reads, which reference smaller ids)."""
    for seed in range(5):
        put_ids = set()
        for op in generate_ops(seed, 200):
            if op.kind in ("put", "tenant_put"):
                put_ids.add(op["obj"])
            elif op.kind == "get":
                assert op["obj"] <= max(put_ids)


class TestConcurrencyProfile:
    def test_deterministic(self):
        first = generate_ops(11, 200, profile="concurrency")
        assert first == generate_ops(11, 200, profile="concurrency")

    def test_op_zero_flips_to_async(self):
        for seed in range(5):
            ops = generate_ops(seed, 200, profile="concurrency")
            assert ops[0].kind == "set_rpc_mode"
            assert ops[0]["mode"] == "async"
            assert len(ops) == 200

    def test_exercises_async_vocabulary(self):
        seen = set()
        for seed in range(8):
            seen |= {
                op.kind for op in generate_ops(seed, 200, profile="concurrency")
            }
        assert {
            "multi_get", "set_rpc_mode", "put", "get", "delete", "crash",
            "blackhole", "promote", "rebalance",
        } <= seen

    def test_multi_get_targets_known_ids(self):
        """Batched reads draw from put ids (modulo the deliberate
        poisoned slot, which references a smaller id)."""
        for seed in range(5):
            put_ids = {-1}
            for op in generate_ops(seed, 200, profile="concurrency"):
                if op.kind == "put":
                    put_ids.add(op["obj"])
                elif op.kind == "multi_get":
                    objs = [int(x) for x in str(op["objs"]).split(",")]
                    assert len(objs) >= 2 or objs
                    assert max(objs) <= max(put_ids)

    def test_default_profile_is_byte_identical_to_legacy(self):
        """The profile parameter must not disturb the default stream —
        golden seeds and shrunk reproducers depend on it."""
        assert generate_ops(42, 300) == generate_ops(
            42, 300, profile="default"
        )
        assert all(
            op.kind not in ("multi_get", "set_rpc_mode")
            for op in generate_ops(42, 300)
        )
