"""Workload generator: determinism and schedule-space coverage."""

from repro.simtest.workload import generate_ops


def test_same_seed_same_trace():
    assert generate_ops(42, 300) == generate_ops(42, 300)


def test_different_seeds_differ():
    assert generate_ops(1, 100) != generate_ops(2, 100)


def test_exact_length():
    for n in (1, 17, 250):
        assert len(generate_ops(5, n)) == n


def test_covers_all_interesting_kinds():
    """Across a modest seed budget the generator exercises the whole
    vocabulary — crashes, membership changes and maintenance included."""
    seen = set()
    for seed in range(12):
        seen |= {op.kind for op in generate_ops(seed, 200)}
    assert {
        "put", "tenant_put", "set_quota", "get", "delete", "crash",
        "recover", "partition", "heal", "degrade", "restore", "blackhole",
        "add_node", "drain", "remove", "scrub", "rebalance", "health",
        "advance",
    } <= seen


def test_put_before_get_for_same_object():
    """The generator only reads ids it has already put (modulo the
    deliberate stale-id reads, which reference smaller ids)."""
    for seed in range(5):
        put_ids = set()
        for op in generate_ops(seed, 200):
            if op.kind in ("put", "tenant_put"):
                put_ids.add(op["obj"])
            elif op.kind == "get":
                assert op["obj"] <= max(put_ids)
