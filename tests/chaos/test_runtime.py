"""ChaosRuntime: polled event application and reachability queries."""

from repro.chaos import (
    ChaosRuntime,
    FaultPlan,
    LinkDegrade,
    LinkHeal,
    LinkPartition,
    LinkRestore,
    NodeCrash,
    NodeRestart,
    RpcBlackhole,
)
from repro.common.clock import SimClock
from repro.common.config import ChaosConfig


class FakeServer:
    def __init__(self):
        self.down = False

    def shutdown(self):
        self.down = True

    def restart(self):
        self.down = False


class FakeLink:
    def __init__(self, a, b):
        self.endpoints = frozenset((a, b))
        self.partitioned = False
        self.factors = (1.0, 1.0)
        self.chaos = None

    def set_partitioned(self, flag):
        self.partitioned = flag

    def set_degradation(self, bandwidth_factor=1.0, latency_factor=1.0):
        self.factors = (bandwidth_factor, latency_factor)


def make_runtime(plan, clock=None):
    clock = clock or SimClock()
    return ChaosRuntime(plan, clock, ChaosConfig()), clock


class TestPolling:
    def test_events_apply_only_once_due(self):
        plan = FaultPlan([NodeCrash(at_ns=1_000, node="n0")])
        runtime, clock = make_runtime(plan)
        server = FakeServer()
        runtime.attach_server("n0", server)
        assert runtime.poll() == 0
        assert not server.down
        clock.advance(999)
        assert runtime.poll() == 0
        clock.advance(1)
        assert runtime.poll() == 1
        assert server.down
        assert runtime.node_crashed("n0")
        assert runtime.poll() == 0  # applied exactly once

    def test_crash_then_restart(self):
        plan = FaultPlan(
            [
                NodeCrash(at_ns=100, node="n0"),
                NodeRestart(at_ns=200, node="n0"),
            ]
        )
        runtime, clock = make_runtime(plan)
        server = FakeServer()
        runtime.attach_server("n0", server)
        clock.advance(150)
        runtime.poll()
        assert server.down
        clock.advance(100)
        runtime.poll()
        assert not server.down
        assert not runtime.node_crashed("n0")

    def test_batch_application_in_plan_order(self):
        plan = FaultPlan(
            [
                NodeCrash(at_ns=10, node="n0"),
                NodeRestart(at_ns=20, node="n0"),
                NodeCrash(at_ns=30, node="n1"),
            ]
        )
        runtime, clock = make_runtime(plan)
        clock.advance(100)
        assert runtime.poll() == 3
        assert [type(e).__name__ for e in runtime.applied] == [
            "NodeCrash",
            "NodeRestart",
            "NodeCrash",
        ]
        assert runtime.pending_events() == 0

    def test_timeline_is_deterministic(self):
        plan = FaultPlan.random(5, ["a", "b"], 1_000_000, n_events=5)
        lines = []
        for _ in range(2):
            runtime, clock = make_runtime(plan)
            clock.advance(2_000_000)
            runtime.poll()
            lines.append(runtime.timeline())
        assert lines[0] == lines[1]
        assert len(lines[0]) == len(plan)


class TestLinksAndPartitions:
    def test_partition_and_heal_drive_the_link(self):
        plan = FaultPlan(
            [
                LinkPartition(at_ns=10, node_a="a", node_b="b"),
                LinkHeal(at_ns=20, node_a="b", node_b="a"),
            ]
        )
        runtime, clock = make_runtime(plan)
        link = FakeLink("a", "b")
        runtime.attach_link(link)
        assert link.chaos is runtime
        clock.advance(10)
        runtime.poll()
        assert link.partitioned
        assert runtime.partitioned("a", "b")
        assert not runtime.rpc_allowed("a", "b")
        clock.advance(10)
        runtime.poll()
        assert not link.partitioned
        assert runtime.rpc_allowed("a", "b")

    def test_degrade_and_restore(self):
        plan = FaultPlan(
            [
                LinkDegrade(
                    at_ns=5,
                    node_a="a",
                    node_b="b",
                    bandwidth_factor=0.5,
                    latency_factor=2.0,
                ),
                LinkRestore(at_ns=15, node_a="a", node_b="b"),
            ]
        )
        runtime, clock = make_runtime(plan)
        link = FakeLink("a", "b")
        runtime.attach_link(link)
        clock.advance(5)
        runtime.poll()
        assert link.factors == (0.5, 2.0)
        clock.advance(10)
        runtime.poll()
        assert link.factors == (1.0, 1.0)


class TestBlackholes:
    def test_directional_window(self):
        plan = FaultPlan(
            [RpcBlackhole(at_ns=100, src="a", dst="b", duration_ns=50)]
        )
        runtime, clock = make_runtime(plan)
        clock.advance(100)
        runtime.poll()
        assert not runtime.rpc_allowed("a", "b")
        assert runtime.rpc_allowed("b", "a")  # one-way silence
        clock.advance(50)
        assert runtime.rpc_allowed("a", "b")  # window expired

    def test_wildcard_blackhole(self):
        plan = FaultPlan([RpcBlackhole(at_ns=0, duration_ns=1_000)])
        runtime, clock = make_runtime(plan)
        runtime.poll()
        assert not runtime.rpc_allowed("x", "y")
        assert not runtime.rpc_allowed("y", "x")

    def test_unanswered_wait_comes_from_config(self):
        runtime, _ = make_runtime(FaultPlan())
        assert runtime.unanswered_wait_ns == ChaosConfig().blackhole_timeout_ns

    def test_crashed_node_is_not_a_blackhole(self):
        # A crashed destination answers UNAVAILABLE (connection refused),
        # it does not swallow attempts — that asymmetry is deliberate.
        plan = FaultPlan([NodeCrash(at_ns=0, node="b")])
        runtime, _ = make_runtime(plan)
        runtime.poll()
        assert runtime.node_crashed("b")
        assert runtime.rpc_allowed("a", "b")
