"""FaultPlan construction, validation, ordering, deterministic synthesis."""

import pytest

from repro.chaos import (
    FaultPlan,
    LinkDegrade,
    LinkHeal,
    LinkPartition,
    NodeCrash,
    NodeRestart,
    RpcBlackhole,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(at_ns=-1, node="node0")

    def test_crash_needs_node(self):
        with pytest.raises(ValueError):
            NodeCrash(at_ns=0)

    def test_link_event_needs_distinct_nodes(self):
        with pytest.raises(ValueError):
            LinkPartition(at_ns=0, node_a="a", node_b="a")
        with pytest.raises(ValueError):
            LinkHeal(at_ns=0, node_a="a", node_b="")

    def test_degrade_factor_bounds(self):
        with pytest.raises(ValueError):
            LinkDegrade(at_ns=0, node_a="a", node_b="b", bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            LinkDegrade(at_ns=0, node_a="a", node_b="b", bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            LinkDegrade(at_ns=0, node_a="a", node_b="b", latency_factor=0.5)

    def test_blackhole_needs_duration(self):
        with pytest.raises(ValueError):
            RpcBlackhole(at_ns=0, duration_ns=0)
        hole = RpcBlackhole(at_ns=10, duration_ns=5)
        assert hole.until_ns == 15

    def test_link_pair_is_unordered(self):
        a = LinkPartition(at_ns=0, node_a="x", node_b="y")
        b = LinkPartition(at_ns=0, node_a="y", node_b="x")
        assert a.pair == b.pair


class TestPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            [
                NodeRestart(at_ns=300, node="n1"),
                NodeCrash(at_ns=100, node="n1"),
                LinkPartition(at_ns=200, node_a="n0", node_b="n1"),
            ]
        )
        assert [e.at_ns for e in plan] == [100, 200, 300]

    def test_add_merges_and_preserves_immutability(self):
        base = FaultPlan([NodeCrash(at_ns=100, node="n1")])
        extended = base.add(NodeRestart(at_ns=50, node="n1"))
        assert len(base) == 1
        assert len(extended) == 2
        assert extended.events[0].at_ns == 50

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan(["crash"])  # type: ignore[list-item]

    def test_validate_catches_unknown_nodes(self):
        plan = FaultPlan([NodeCrash(at_ns=0, node="ghost")])
        with pytest.raises(ValueError, match="ghost"):
            plan.validate(["node0", "node1"])
        plan2 = FaultPlan(
            [LinkPartition(at_ns=0, node_a="node0", node_b="ghost")]
        )
        with pytest.raises(ValueError, match="ghost"):
            plan2.validate(["node0", "node1"])

    def test_validate_allows_blackhole_wildcards(self):
        FaultPlan([RpcBlackhole(at_ns=0, duration_ns=10)]).validate(["a", "b"])

    def test_describe_lists_every_event(self):
        plan = FaultPlan(
            [
                NodeCrash(at_ns=1_000_000, node="node1"),
                LinkHeal(at_ns=2_000_000, node_a="node0", node_b="node1"),
            ]
        )
        text = plan.describe()
        assert "NodeCrash" in text and "LinkHeal" in text
        assert len(text.splitlines()) == 2
        assert FaultPlan().describe() == "(empty fault plan)"


class TestRandomSynthesis:
    NODES = ["node0", "node1", "node2"]

    def test_same_seed_same_plan(self):
        a = FaultPlan.random(42, self.NODES, 100_000_000, n_events=6)
        b = FaultPlan.random(42, self.NODES, 100_000_000, n_events=6)
        assert a == b
        assert a.describe() == b.describe()

    def test_different_seed_different_plan(self):
        a = FaultPlan.random(42, self.NODES, 100_000_000, n_events=6)
        b = FaultPlan.random(43, self.NODES, 100_000_000, n_events=6)
        assert a != b

    def test_events_within_horizon_and_valid(self):
        horizon = 50_000_000
        plan = FaultPlan.random(7, self.NODES, horizon, n_events=10)
        plan.validate(self.NODES)
        assert len(plan) >= 10  # recovery events may add more
        for event in plan:
            assert 0 <= event.at_ns < horizon

    def test_recoveries_follow_their_outage(self):
        plan = FaultPlan.random(3, self.NODES, 200_000_000, n_events=12)
        crashes = {e.node: e.at_ns for e in plan if isinstance(e, NodeCrash)}
        for event in plan:
            if isinstance(event, NodeRestart):
                assert event.node in crashes
                assert event.at_ns > crashes[event.node]

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            FaultPlan.random(1, ["solo"], 1_000_000)
