"""Tracer: spans over simulated time, summaries, Chrome export."""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.trace import TraceEvent, Tracer


@pytest.fixture
def setup():
    clock = SimClock()
    return clock, Tracer(clock)


class TestSpans:
    def test_span_measures_simulated_time(self, setup):
        clock, tracer = setup
        with tracer.span("cat", "op"):
            clock.advance(1234)
        (event,) = tracer.events()
        assert event.duration_ns == 1234
        assert event.start_ns == 0
        assert event.category == "cat"

    def test_nested_spans(self, setup):
        clock, tracer = setup
        with tracer.span("outer", "a"):
            clock.advance(10)
            with tracer.span("inner", "b"):
                clock.advance(5)
            clock.advance(10)
        inner, outer = tracer.events()  # inner exits first
        assert inner.name == "b" and inner.duration_ns == 5
        assert outer.name == "a" and outer.duration_ns == 25

    def test_instant_event(self, setup):
        clock, tracer = setup
        clock.advance(7)
        tracer.instant("mark", "here", track="n0", extra=1)
        (event,) = tracer.events()
        assert event.duration_ns == 0
        assert event.start_ns == 7
        assert event.args == {"extra": 1}

    def test_args_and_track_recorded(self, setup):
        clock, tracer = setup
        with tracer.span("rpc", "Lookup", track="a->b", n=5):
            clock.advance(1)
        (event,) = tracer.events()
        assert event.track == "a->b"
        assert event.args == {"n": 5}

    def test_bounded_capacity(self):
        clock = SimClock()
        tracer = Tracer(clock, max_events=3)
        for _ in range(5):
            tracer.instant("x", "y")
        assert len(tracer) == 3
        assert tracer.dropped == 2

    def test_category_filter_and_totals(self, setup):
        clock, tracer = setup
        with tracer.span("a", "x"):
            clock.advance(10)
        with tracer.span("b", "y"):
            clock.advance(20)
        assert len(tracer.events("a")) == 1
        assert tracer.total_ns("b") == 20
        assert tracer.total_ns("missing") == 0


class TestSummaryAndExport:
    def test_summary_aggregates(self, setup):
        clock, tracer = setup
        for _ in range(3):
            with tracer.span("rpc", "Lookup"):
                clock.advance(100)
        summary = tracer.summary()
        assert summary[("rpc", "Lookup")] == {"count": 3, "total_ns": 300}
        assert "Lookup" in tracer.format_summary()

    def test_chrome_trace_structure(self, setup):
        clock, tracer = setup
        with tracer.span("rpc", "Lookup", track="a->b"):
            clock.advance(2_000)
        doc = tracer.to_chrome_trace()
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == 0.0
        assert event["dur"] == 2.0  # microseconds
        assert event["pid"] == "a->b"

    def test_write_chrome_trace(self, setup, tmp_path):
        clock, tracer = setup
        with tracer.span("c", "n"):
            clock.advance(1)
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_write_chrome_trace_accepts_pathlib_and_str(self, setup, tmp_path):
        clock, tracer = setup
        with tracer.span("c", "n"):
            clock.advance(1)
        as_path = tmp_path / "as_path.json"
        tracer.write_chrome_trace(as_path)  # pathlib.Path
        tracer.write_chrome_trace(str(tmp_path / "as_str.json"))
        for name in ("as_path.json", "as_str.json"):
            assert json.loads((tmp_path / name).read_text())["traceEvents"]

    def test_summary_reports_dropped_events(self):
        clock = SimClock()
        tracer = Tracer(clock, max_events=2, ring=True)
        for _ in range(5):
            tracer.instant("x", "y")
        assert tracer.dropped == 3
        summary = tracer.summary()
        assert summary[("tracer", "dropped")] == {"count": 3, "total_ns": 0}
        assert "dropped" in tracer.format_summary()

    def test_summary_reports_dropped_in_bounded_mode_too(self):
        clock = SimClock()
        tracer = Tracer(clock, max_events=2)  # non-ring overflow
        for _ in range(5):
            tracer.instant("x", "y")
        assert tracer.summary()[("tracer", "dropped")]["count"] == 3

    def test_summary_has_no_dropped_row_when_nothing_dropped(self, setup):
        clock, tracer = setup
        tracer.instant("x", "y")
        assert ("tracer", "dropped") not in tracer.summary()


class TestClusterIntegration:
    def test_remote_get_produces_rpc_and_store_spans(self, small_config):
        from repro.core import Cluster

        clock_probe = {}
        # The tracer must share the cluster's clock: construct cluster
        # first, then attach? No — pass a tracer bound to a fresh clock is
        # wrong. Cluster builds its own clock, so build tracer after.
        cluster = Cluster(small_config, n_nodes=2, check_remote_uniqueness=False)
        tracer = Tracer(cluster.clock)
        # Rewire post-hoc (the cluster also accepts tracer= at build time;
        # this covers the manual wiring path).
        for name in cluster.node_names():
            cluster.store(name).tracer = tracer
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"traced")
        consumer.get_one(oid)
        spans = tracer.events("store")
        assert any(e.name == "get_buffers" for e in spans)

    def test_cluster_builds_with_tracer(self, small_config):
        from repro.core import Cluster

        from repro.common.clock import SimClock

        # The supported path: hand the cluster a tracer over its own clock
        # by two-phase construction.
        cluster = Cluster(small_config, n_nodes=2, check_remote_uniqueness=False)
        assert cluster.tracer is None

    def test_rpc_spans_dominate_remote_get(self, small_config):
        """The Fig 6 claim, on a timeline: the gRPC span accounts for most
        of a remote retrieval."""
        from repro.core import Cluster

        cluster = Cluster(small_config, n_nodes=2, check_remote_uniqueness=False)
        tracer = Tracer(cluster.clock)
        for name in cluster.node_names():
            cluster.store(name).tracer = tracer
            for channel in cluster.node(name).channels.values():
                channel._tracer = tracer  # noqa: SLF001 — post-hoc wiring
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        oid = cluster.new_object_id()
        producer.put_bytes(oid, b"breakdown")
        consumer.get_one(oid)
        store_total = tracer.total_ns("store")
        rpc_total = tracer.total_ns("rpc")
        assert rpc_total > 0.8 * store_total  # lookup time ~= RPC time
