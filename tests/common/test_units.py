"""Unit constants and formatting helpers."""

import pytest

from repro.common.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    format_bytes,
    format_duration_ns,
    gib_per_s,
)


class TestConstants:
    def test_binary_chain(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_decimal_chain(self):
        assert KB == 1000
        assert MB == 1000 * KB
        assert GB == 1000 * MB

    def test_paper_size_mapping(self):
        # Table I "100000 kB" objects are ~95.4 MiB.
        assert 100_000 * KB / MiB == pytest.approx(95.367, abs=0.001)


class TestFormatBytes:
    def test_ranges(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2 * KiB) == "2.00 KiB"
        assert format_bytes(3 * MiB) == "3.00 MiB"
        assert format_bytes(5 * GiB) == "5.00 GiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatDuration:
    def test_ranges(self):
        assert format_duration_ns(500) == "500 ns"
        assert format_duration_ns(1500) == "1.500 us"
        assert format_duration_ns(2_500_000) == "2.500 ms"
        assert format_duration_ns(3_000_000_000) == "3.000 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration_ns(-1)


class TestGibPerS:
    def test_known_value(self):
        # 1 GiB in 1 second = 1 GiB/s.
        assert gib_per_s(GiB, 1_000_000_000) == pytest.approx(1.0)

    def test_paper_plateau(self):
        # 6.5 GiB/s means 1 MiB in ~150.6 us.
        ns = (MiB / (6.5 * GiB)) * 1e9
        assert gib_per_s(MiB, ns) == pytest.approx(6.5)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            gib_per_s(1, 0)
