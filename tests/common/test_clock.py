"""SimClock / Stopwatch semantics."""

import pytest

from repro.common.clock import NS_PER_MS, NS_PER_S, NS_PER_US, SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_custom_start(self):
        assert SimClock(500).now_ns == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now_ns == 350

    def test_advance_rounds_fractional_ns(self):
        clock = SimClock()
        clock.advance(0.6)
        assert clock.now_ns == 1

    def test_advance_rejects_negative(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_now_s_conversion(self):
        clock = SimClock()
        clock.advance(2 * NS_PER_S)
        assert clock.now_s == pytest.approx(2.0)

    def test_unit_constants(self):
        assert NS_PER_S == 1000 * NS_PER_MS == 1_000_000 * NS_PER_US


class TestStopwatch:
    def test_measures_interval(self):
        clock = SimClock()
        sw = Stopwatch(clock).start()
        clock.advance(1234)
        assert sw.stop() == 1234
        assert sw.elapsed_ns == 1234

    def test_context_manager(self):
        clock = SimClock()
        with Stopwatch(clock) as sw:
            clock.advance(10)
            clock.advance(5)
        assert sw.elapsed_ns == 15

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch(SimClock()).stop()

    def test_elapsed_before_stop_raises(self):
        sw = Stopwatch(SimClock()).start()
        with pytest.raises(RuntimeError):
            _ = sw.elapsed_ns

    def test_restart_resets(self):
        clock = SimClock()
        sw = Stopwatch(clock).start()
        clock.advance(100)
        sw.stop()
        sw.start()
        clock.advance(7)
        assert sw.stop() == 7
