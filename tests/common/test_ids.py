"""ObjectID and UniqueIDGenerator behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.common.ids import ID_NBYTES, ObjectID, UniqueIDGenerator
from repro.common.rng import DeterministicRng


class TestObjectID:
    def test_requires_exactly_20_bytes(self):
        with pytest.raises(ValueError):
            ObjectID(b"short")
        with pytest.raises(ValueError):
            ObjectID(b"x" * 21)
        oid = ObjectID(b"x" * 20)
        assert oid.binary() == b"x" * 20

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            ObjectID("a" * 20)  # type: ignore[arg-type]

    def test_accepts_bytearray_and_memoryview(self):
        raw = bytearray(range(20))
        assert ObjectID(raw).binary() == bytes(raw)
        assert ObjectID(memoryview(raw)).binary() == bytes(raw)

    def test_equality_and_hash(self):
        a = ObjectID(bytes(range(20)))
        b = ObjectID(bytes(range(20)))
        c = ObjectID(bytes(reversed(range(20))))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_ordering_is_lexicographic(self):
        lo = ObjectID(b"\x00" * 20)
        hi = ObjectID(b"\x01" + b"\x00" * 19)
        assert lo < hi
        assert lo <= hi
        assert sorted([hi, lo]) == [lo, hi]

    def test_equality_with_other_types_is_not_implemented(self):
        assert ObjectID(b"x" * 20) != b"x" * 20
        assert ObjectID(b"x" * 20) != "x" * 20

    def test_from_name_is_deterministic_sha1(self):
        a = ObjectID.from_name("dataset/partition-7")
        b = ObjectID.from_name("dataset/partition-7")
        c = ObjectID.from_name("dataset/partition-8")
        assert a == b
        assert a != c
        assert len(a.binary()) == ID_NBYTES

    def test_from_int_roundtrips_in_hex(self):
        oid = ObjectID.from_int(0xDEADBEEF)
        assert oid.hex().endswith("deadbeef")
        with pytest.raises(ValueError):
            ObjectID.from_int(-1)

    def test_from_random_is_seed_deterministic(self):
        a = ObjectID.from_random(DeterministicRng(7).spawn("s"))
        b = ObjectID.from_random(DeterministicRng(7).spawn("s"))
        assert a == b

    def test_bytes_dunder_and_repr(self):
        oid = ObjectID(b"\xab" * 20)
        assert bytes(oid) == b"\xab" * 20
        assert "abab" in repr(oid)

    @given(st.binary(min_size=20, max_size=20))
    def test_binary_roundtrip(self, raw: bytes):
        assert ObjectID(raw).binary() == raw


class TestUniqueIDGenerator:
    def test_generates_unique_ids(self, rng):
        gen = UniqueIDGenerator(rng)
        ids = gen.take(500)
        assert len(set(ids)) == 500

    def test_take_and_iter_agree_on_uniqueness(self, rng):
        gen = UniqueIDGenerator(rng)
        seen = set(gen.take(10))
        it = iter(gen)
        for _ in range(10):
            oid = next(it)
            assert oid not in seen
            seen.add(oid)

    def test_streams_with_same_seed_match(self):
        a = UniqueIDGenerator(DeterministicRng(5))
        b = UniqueIDGenerator(DeterministicRng(5))
        assert a.take(20) == b.take(20)
