"""RunningStats (Welford), Distribution quantiles, counters."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import Distribution, RunningStats

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty_raises(self):
        s = RunningStats()
        with pytest.raises(ValueError):
            _ = s.mean
        with pytest.raises(ValueError):
            _ = s.min

    def test_single_sample(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.min == s.max == 5.0

    def test_known_values(self):
        s = RunningStats()
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.stdev == pytest.approx(math.sqrt(32.0 / 7.0))
        assert s.count == 8
        assert (s.min, s.max) == (2.0, 9.0)

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_batch_computation(self, xs):
        s = RunningStats()
        s.extend(xs)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-6)

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)
        assert merged.min == c.min and merged.max == c.max

    def test_merge_with_empty(self):
        a, b = RunningStats(), RunningStats()
        a.extend([1.0, 2.0])
        assert a.merge(b).mean == pytest.approx(1.5)
        assert b.merge(a).count == 2


class TestDistribution:
    def test_quantiles_of_known_data(self):
        d = Distribution()
        d.extend(range(1, 101))  # 1..100
        assert d.median == pytest.approx(50.5)
        q1, q3 = d.iqr()
        assert q1 == pytest.approx(25.75)
        assert q3 == pytest.approx(75.25)
        assert d.min == 1 and d.max == 100
        assert d.mean == pytest.approx(50.5)

    def test_quantile_bounds_checked(self):
        d = Distribution()
        d.add(1.0)
        with pytest.raises(ValueError):
            d.quantile(1.5)
        assert d.quantile(0.0) == d.quantile(1.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Distribution().quantile(0.5)
        with pytest.raises(ValueError):
            _ = Distribution().mean

    def test_summary_fields(self):
        d = Distribution()
        d.extend([1.0, 2.0, 3.0, 4.0])
        s = d.summary()
        assert s.count == 4
        assert s.min == 1.0 and s.max == 4.0
        assert s.q1 <= s.median <= s.q3
        assert "median" in s.format(unit="ms")

    def test_samples_returns_copy(self):
        d = Distribution()
        d.add(1.0)
        d.samples.append(99.0)
        assert d.count == 1

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_quantiles_monotone(self, xs):
        d = Distribution()
        d.extend(xs)
        qs = [d.quantile(q / 10) for q in range(11)]
        assert qs == sorted(qs)
        assert qs[0] == d.min and qs[-1] == d.max
