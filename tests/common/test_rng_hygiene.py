"""RNG hygiene: test randomness must flow from the shared fixtures.

A test that seeds its own generator inline (``np.random.default_rng(3)``,
``random.Random(7)``, module-level ``random`` state) produces failures
that cannot be replayed from one knob. All test randomness must come
from the ``rng`` / ``np_rng`` conftest fixtures (or a spawn of them), so
a failing run is reproducible by seed. This meta-test keeps offenders
from creeping back in.
"""

import re
from pathlib import Path

TESTS_ROOT = Path(__file__).resolve().parents[1]
REPO_ROOT = TESTS_ROOT.parent

#: Patterns that mean "private, inline-seeded (or unseeded) randomness".
FORBIDDEN = (
    re.compile(r"np\.random\.default_rng\(\s*\d"),   # inline literal seed
    re.compile(r"np\.random\.default_rng\(\s*\)"),   # unseeded
    re.compile(r"\brandom\.Random\("),
    re.compile(r"\brandom\.seed\("),
    re.compile(r"\bnp\.random\.(seed|rand|randint|randn|random)\("),
)

#: Files allowed to construct generators: the fixtures themselves and
#: this policy test.
ALLOWED = {"conftest.py", "test_rng_hygiene.py"}


def _test_files():
    for directory in (TESTS_ROOT, REPO_ROOT / "benchmarks"):
        if directory.is_dir():
            yield from sorted(directory.rglob("*.py"))


def test_no_inline_seeded_randomness_in_tests():
    offenders = []
    for path in _test_files():
        if path.name in ALLOWED:
            continue
        text = path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), 1):
            for pattern in FORBIDDEN:
                if pattern.search(line):
                    offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "tests must draw randomness from the shared conftest fixtures "
        "(rng / np_rng), not inline-seeded generators:\n  "
        + "\n  ".join(offenders)
    )
