"""Configuration defaults and validation."""

import dataclasses

import pytest

from repro.common.config import (
    ClusterConfig,
    FabricLinkConfig,
    LocalMemoryConfig,
    StoreConfig,
)
from repro.common.config import testing_config as make_testing_config
from repro.common.units import GiB, MiB


class TestCalibratedDefaults:
    """The defaults ARE the paper's numbers; breaking them silently would
    invalidate every regenerated figure."""

    def test_local_read_bandwidth_is_paper_plateau(self):
        assert LocalMemoryConfig().read_bandwidth_bps == pytest.approx(6.5 * GiB)

    def test_fabric_read_bandwidth_is_paper_plateau(self):
        assert FabricLinkConfig().read_bandwidth_bps == pytest.approx(5.75 * GiB)

    def test_remote_penalty_matches_paper_11_5_percent(self):
        local = LocalMemoryConfig().read_bandwidth_bps
        remote = FabricLinkConfig().read_bandwidth_bps
        assert (local - remote) / local == pytest.approx(0.115, abs=0.01)

    def test_ipc_fit_reproduces_fig6_local_anchors(self):
        cfg = ClusterConfig().ipc
        t1000 = cfg.request_overhead_ns + 1000 * cfg.per_object_ns
        t10 = cfg.request_overhead_ns + 10 * cfg.per_object_ns
        assert t1000 / 1e6 == pytest.approx(1.885, rel=0.03)
        assert t10 / 1e6 == pytest.approx(0.075, rel=0.05)

    def test_rpc_round_trip_is_millisecond_order(self):
        assert 1e6 < ClusterConfig().rpc.round_trip_ns < 5e6


class TestValidation:
    def test_default_config_validates(self):
        ClusterConfig().validate()

    def test_bad_allocator_rejected(self):
        cfg = ClusterConfig().with_store(allocator="slab")
        with pytest.raises(ValueError, match="allocator"):
            cfg.validate()

    def test_bad_alignment_rejected(self):
        cfg = ClusterConfig().with_store(alignment=48)
        with pytest.raises(ValueError, match="alignment"):
            cfg.validate()

    def test_zero_capacity_rejected(self):
        cfg = ClusterConfig().with_store(capacity_bytes=0)
        with pytest.raises(ValueError, match="capacity"):
            cfg.validate()

    def test_disaggregated_fraction_bounds(self):
        cfg = dataclasses.replace(ClusterConfig(), disaggregated_fraction=0.0)
        with pytest.raises(ValueError):
            cfg.validate()
        dataclasses.replace(ClusterConfig(), disaggregated_fraction=1.0).validate()

    def test_negative_bandwidth_rejected(self):
        bad = dataclasses.replace(
            ClusterConfig(),
            lan=dataclasses.replace(ClusterConfig().lan, bandwidth_bps=-1),
        )
        with pytest.raises(ValueError, match="bandwidth"):
            bad.validate()


class TestHelpers:
    def test_with_seed(self):
        assert ClusterConfig().with_seed(7).seed == 7

    def test_with_store_overrides(self):
        cfg = ClusterConfig().with_store(capacity_bytes=MiB, allocator="buddy")
        assert cfg.store.capacity_bytes == MiB
        assert cfg.store.allocator == "buddy"

    def test_testing_config_is_small_and_valid(self):
        cfg = make_testing_config()
        cfg.validate()
        assert cfg.store.capacity_bytes <= 64 * MiB

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ClusterConfig().seed = 1  # type: ignore[misc]
        with pytest.raises(dataclasses.FrozenInstanceError):
            StoreConfig().alignment = 128  # type: ignore[misc]
