"""Deterministic RNG discipline."""

import pytest

from repro.common.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_different_names_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_name_path_is_not_concatenation(self):
        # ("ab",) and ("a","b") must be distinct streams.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRng(42), DeterministicRng(42)
        assert a.bytes(32) == b.bytes(32)
        assert a.uniform(0, 1) == b.uniform(0, 1)
        assert a.integer(0, 1000) == b.integer(0, 1000)

    def test_spawn_is_independent_of_parent_consumption(self):
        a = DeterministicRng(42)
        a.bytes(100)  # consume parent
        child1 = a.spawn("x")
        child2 = DeterministicRng(42).spawn("x")
        assert child1.bytes(16) == child2.bytes(16)

    def test_spawned_streams_differ(self):
        root = DeterministicRng(42)
        assert root.spawn("x").bytes(16) != root.spawn("y").bytes(16)

    def test_payload_shape_and_range(self, rng):
        data = rng.payload(1000)
        assert data.shape == (1000,)
        assert data.dtype.name == "uint8"
        assert 0 <= int(data.min()) and int(data.max()) <= 255

    def test_lognormal_jitter_median_near_one(self):
        rng = DeterministicRng(7)
        draws = [rng.lognormal_jitter(0.2) for _ in range(4000)]
        draws.sort()
        median = draws[len(draws) // 2]
        assert 0.95 < median < 1.05

    def test_lognormal_jitter_zero_sigma_is_identity(self, rng):
        assert rng.lognormal_jitter(0.0) == 1.0
        assert rng.lognormal_jitter(-1.0) == 1.0

    def test_integer_bounds(self, rng):
        for _ in range(100):
            v = rng.integer(5, 10)
            assert 5 <= v < 10

    def test_choice_and_shuffle_are_deterministic(self):
        a, b = DeterministicRng(3), DeterministicRng(3)
        seq_a, seq_b = list(range(20)), list(range(20))
        a.shuffle(seq_a)
        b.shuffle(seq_b)
        assert seq_a == seq_b
        assert a.choice([1, 2, 3]) == b.choice([1, 2, 3])

    def test_normal_is_deterministic(self):
        assert DeterministicRng(9).normal(0, 1) == DeterministicRng(9).normal(0, 1)

    def test_seed_property(self):
        assert DeterministicRng(77).seed == 77
