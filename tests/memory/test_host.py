"""HostMemory and MemoryRegion: real byte storage with bounds discipline."""

import numpy as np
import pytest

from repro.common.errors import FabricError
from repro.memory.host import HostMemory, MemoryRegion


class TestHostMemory:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            HostMemory(0)

    def test_write_read_roundtrip(self):
        mem = HostMemory(1024, node="n0")
        assert mem.write(10, b"hello") == 5
        assert mem.read(10, 5) == b"hello"
        assert mem.node == "n0"

    def test_view_is_zero_copy(self):
        mem = HostMemory(64)
        view = mem.view(0, 8)
        view[:3] = b"abc"
        assert mem.read(0, 3) == b"abc"

    def test_readonly_view_rejects_writes(self):
        mem = HostMemory(64)
        ro = mem.readonly_view(0, 8)
        with pytest.raises(TypeError):
            ro[0] = 1  # type: ignore[index]

    def test_out_of_bounds_rejected(self):
        mem = HostMemory(100)
        with pytest.raises(FabricError):
            mem.read(90, 20)
        with pytest.raises(FabricError):
            mem.write(-1, b"x")
        with pytest.raises(ValueError):
            mem.read(0, -1)

    def test_accepts_numpy_and_multibyte_buffers(self):
        mem = HostMemory(64)
        mem.write(0, np.arange(4, dtype=np.uint32))  # 16 bytes, cast to B
        assert len(mem.read(0, 16)) == 16

    def test_write_at_exact_end(self):
        mem = HostMemory(10)
        mem.write(5, b"12345")
        with pytest.raises(FabricError):
            mem.write(6, b"12345")


class TestMemoryRegion:
    def test_offsets_are_region_relative(self):
        mem = HostMemory(1000)
        region = mem.region(100, 200)
        region.write(0, b"xyz")
        assert mem.read(100, 3) == b"xyz"
        assert region.read(0, 3) == b"xyz"
        assert region.base == 100 and region.size == 200
        assert len(region) == 200

    def test_bounds_are_region_local(self):
        region = HostMemory(1000).region(100, 50)
        with pytest.raises(FabricError):
            region.read(40, 20)

    def test_subregion_composes(self):
        mem = HostMemory(1000)
        outer = mem.region(100, 400)
        inner = outer.subregion(50, 100)
        inner.write(0, b"deep")
        assert mem.read(150, 4) == b"deep"
        assert inner.absolute(0) == 150

    def test_subregion_bounds_checked(self):
        outer = HostMemory(1000).region(0, 100)
        with pytest.raises(FabricError):
            outer.subregion(90, 20)

    def test_view_default_spans_whole_region(self):
        region = HostMemory(100).region(10, 20)
        assert len(region.view()) == 20

    def test_whole(self):
        mem = HostMemory(64)
        assert mem.whole().size == 64

    def test_zero_size_region_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(HostMemory(10), 0, 0)

    def test_readonly_view(self):
        region = HostMemory(100).region(0, 10)
        with pytest.raises(TypeError):
            region.readonly_view()[0] = 1  # type: ignore[index]
