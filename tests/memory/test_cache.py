"""CacheModel: residency accounting and the Figure 3 coherency semantics."""

import pytest

from repro.common.config import LocalMemoryConfig
from repro.memory.cache import CacheModel
from repro.memory.host import HostMemory


def make(capacity=64 * 1024, cache_capacity=8 * 1024, line=128):
    mem = HostMemory(capacity, node="home")
    cfg = LocalMemoryConfig(
        cache_line_bytes=line, cache_capacity_bytes=cache_capacity
    )
    return mem, CacheModel(mem, cfg)


class TestResidency:
    def test_first_read_misses_second_hits(self):
        _, cache = make()
        a1 = cache.local_read(0, 1000)
        assert a1.hit_bytes == 0 and a1.miss_bytes >= 1000
        a2 = cache.local_read(0, 1000)
        assert a2.miss_bytes == 0 and a2.hit_fraction == 1.0

    def test_partial_overlap_hits_partially(self):
        _, cache = make()
        cache.local_read(0, 1024)
        access = cache.local_read(512, 1024)
        assert 0 < access.hit_bytes < access.total_bytes

    def test_ranges_align_to_lines(self):
        _, cache = make(line=128)
        cache.local_read(130, 10)  # touches line 1
        assert cache.is_resident(128, 128)
        assert not cache.is_resident(0, 128)

    def test_write_populates_cache(self):
        _, cache = make()
        cache.local_write(0, b"x" * 1000)
        access = cache.local_read(0, 1000)
        assert access.hit_fraction == 1.0

    def test_capacity_bounds_residency(self):
        _, cache = make(capacity=64 * 1024, cache_capacity=4 * 1024)
        for i in range(16):
            cache.local_read(i * 1024, 1024)
        assert cache.resident_bytes <= 4 * 1024

    def test_lru_evicts_least_recently_used(self):
        _, cache = make(capacity=64 * 1024, cache_capacity=2 * 1024)
        cache.local_read(0, 1024)
        cache.local_read(1024, 1024)
        cache.local_read(2048, 1024)  # evicts [0,1024), the coldest
        assert not cache.is_resident(0, 1024)
        assert cache.is_resident(2048, 1024)

    def test_lru_reaccess_refreshes_recency(self):
        _, cache = make(capacity=64 * 1024, cache_capacity=2 * 1024)
        cache.local_read(0, 1024)
        cache.local_read(1024, 1024)
        cache.local_read(0, 1024)  # refresh: [1024,2048) is now coldest
        cache.local_read(2048, 1024)  # evicts [1024,2048), not [0,1024)
        assert cache.is_resident(0, 1024)
        assert not cache.is_resident(1024, 1024)
        assert cache.is_resident(2048, 1024)

    def test_lru_write_refreshes_recency(self):
        _, cache = make(capacity=64 * 1024, cache_capacity=2 * 1024)
        cache.local_read(0, 1024)
        cache.local_read(1024, 1024)
        cache.local_write(0, b"y" * 1024)  # stores age the line too
        cache.local_read(2048, 1024)  # evicts [1024,2048)
        assert cache.is_resident(0, 1024)
        assert not cache.is_resident(1024, 1024)

    def test_lru_eviction_order_full_cycle(self):
        _, cache = make(capacity=64 * 1024, cache_capacity=3 * 1024)
        for i in range(3):
            cache.local_read(i * 1024, 1024)
        # Touch in reverse so recency order inverts insertion order.
        for i in (2, 1, 0):
            cache.local_read(i * 1024, 1024)
        # Each new range must now evict in recency order: 2, then 1.
        cache.local_read(3 * 1024, 1024)
        assert not cache.is_resident(2 * 1024, 1024)
        assert cache.is_resident(1024, 1024) and cache.is_resident(0, 1024)
        cache.local_read(4 * 1024, 1024)
        assert not cache.is_resident(1024, 1024)
        assert cache.is_resident(0, 1024)

    def test_invalidate_drops_residency(self):
        _, cache = make()
        cache.local_read(0, 1024)
        cache.invalidate(0, 1024)
        assert not cache.is_resident(0, 128)
        assert cache.local_read(0, 1024).hit_bytes == 0

    def test_flush_clears_everything(self):
        _, cache = make()
        cache.local_write(0, b"x" * 512)
        cache.flush()
        assert cache.resident_bytes == 0
        assert cache.stale_ranges == 0

    def test_read_size_must_be_positive(self):
        _, cache = make()
        with pytest.raises(ValueError):
            cache.local_read(0, 0)
        with pytest.raises(ValueError):
            cache.local_write(0, b"")


class TestFig3aCoherentRemoteReads:
    """Reading remote disaggregated memory is cache-coherent."""

    def test_remote_read_sees_home_writes(self):
        _, cache = make()
        cache.local_write(100, b"current-value")
        assert bytes(cache.remote_coherent_read(100, 13)) == b"current-value"

    def test_remote_read_sees_latest_after_rewrite(self):
        _, cache = make()
        cache.local_write(0, b"v1--")
        cache.local_write(0, b"v2--")
        assert bytes(cache.remote_coherent_read(0, 4)) == b"v2--"


class TestFig3bRemoteWriteStaleness:
    """Writes to remote disaggregated memory land in home DRAM but the home
    cache may keep serving the previous value."""

    def test_home_cpu_observes_stale_value(self):
        mem, cache = make()
        cache.local_write(0, b"original-contents")
        stale = cache.remote_write_received(0, b"OVERWRITTEN-BYTES")
        assert stale > 0
        # DRAM holds the new bytes...
        assert mem.read(0, 17) == b"OVERWRITTEN-BYTES"
        # ...but the home CPU still observes the old ones.
        assert cache.observed_view(0, 17) == b"original-contents"

    def test_uncached_range_has_no_staleness(self):
        mem, cache = make()
        mem.write(0, b"cold-data")
        stale = cache.remote_write_received(0, b"NEW!-data")
        assert stale == 0
        assert cache.observed_view(0, 9) == b"NEW!-data"

    def test_invalidate_makes_remote_write_visible(self):
        _, cache = make()
        cache.local_write(0, b"aaaa")
        cache.remote_write_received(0, b"bbbb")
        assert cache.observed_view(0, 4) == b"aaaa"
        cache.invalidate(0, 4)
        assert cache.observed_view(0, 4) == b"bbbb"

    def test_local_rewrite_supersedes_staleness(self):
        _, cache = make()
        cache.local_write(0, b"aaaa")
        cache.remote_write_received(0, b"bbbb")
        cache.local_write(0, b"cccc")
        assert cache.observed_view(0, 4) == b"cccc"
        assert bytes(cache.remote_coherent_read(0, 4)) == b"cccc"

    def test_partial_staleness_overlay(self):
        _, cache = make(line=128)
        cache.local_write(0, b"A" * 128)  # line 0 cached
        # Remote write spans lines 0-1; only the cached line goes stale.
        cache.remote_write_received(0, b"B" * 256)
        observed = cache.observed_view(0, 256)
        assert observed[:128] == b"A" * 128
        assert observed[128:] == b"B" * 128

    def test_remote_coherent_read_sees_remote_write(self):
        _, cache = make()
        cache.local_write(0, b"xxxx")
        cache.remote_write_received(0, b"yyyy")
        # Another remote reader is coherent with DRAM, not the stale cache.
        assert bytes(cache.remote_coherent_read(0, 4)) == b"yyyy"

    def test_stale_count_reported_by_read(self):
        _, cache = make()
        cache.local_write(0, b"q" * 256)
        cache.remote_write_received(0, b"r" * 256)
        access = cache.local_read(0, 256)
        assert access.stale_bytes == 256

    def test_eviction_drops_stale_snapshot(self):
        _, cache = make(cache_capacity=1024, line=128)
        cache.local_write(0, b"s" * 128)
        cache.remote_write_received(0, b"t" * 128)
        # Push enough new lines through to evict line 0.
        for i in range(1, 20):
            cache.local_read(i * 128, 128)
        assert cache.observed_view(0, 128) == b"t" * 128


class TestChargeOnlyWrite:
    def test_note_local_write_updates_cache_not_dram(self):
        mem, cache = make()
        mem.write(0, b"keep-me!")
        access = cache.note_local_write(0, 8)
        assert access.total_bytes >= 8
        assert mem.read(0, 8) == b"keep-me!"
        assert cache.is_resident(0, 8)

    def test_note_local_write_supersedes_staleness(self):
        _, cache = make()
        cache.local_write(0, b"aaaa")
        cache.remote_write_received(0, b"bbbb")
        cache.note_local_write(0, 4)
        # Stale snapshot dropped: observation now matches DRAM.
        assert cache.observed_view(0, 4) == b"bbbb"
