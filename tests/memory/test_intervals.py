"""IntervalSet: unit behaviour + hypothesis model check against a set of ints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.intervals import Interval, IntervalSet


class TestInterval:
    def test_rejects_empty_and_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 5)
        with pytest.raises(ValueError):
            Interval(5, 4)
        with pytest.raises(ValueError):
            Interval(-1, 4)

    def test_length_overlap_contains(self):
        iv = Interval(10, 20)
        assert iv.length == 10
        assert iv.contains(10) and iv.contains(19) and not iv.contains(20)
        assert iv.overlaps(Interval(19, 25))
        assert not iv.overlaps(Interval(20, 25))

    def test_intersection(self):
        assert Interval(0, 10).intersection(Interval(5, 15)) == Interval(5, 10)
        assert Interval(0, 5).intersection(Interval(5, 10)) is None


class TestIntervalSetBasics:
    def test_add_coalesces_adjacent(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert list(s) == [Interval(0, 20)]
        assert len(s) == 1

    def test_add_coalesces_overlapping(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(5, 15)
        s.add(30, 40)
        assert list(s) == [Interval(0, 15), Interval(30, 40)]

    def test_add_bridging_interval_merges_neighbours(self):
        s = IntervalSet()
        s.add(0, 5)
        s.add(10, 15)
        s.add(5, 10)
        assert list(s) == [Interval(0, 15)]

    def test_remove_splits(self):
        s = IntervalSet()
        s.add(0, 100)
        s.remove(40, 60)
        assert list(s) == [Interval(0, 40), Interval(60, 100)]

    def test_remove_edges(self):
        s = IntervalSet()
        s.add(0, 100)
        s.remove(0, 10)
        s.remove(90, 100)
        assert list(s) == [Interval(10, 90)]

    def test_remove_absent_is_noop(self):
        s = IntervalSet()
        s.add(50, 60)
        s.remove(0, 10)
        assert list(s) == [Interval(50, 60)]

    def test_remove_spanning_multiple(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        s.add(40, 50)
        s.remove(5, 45)
        assert list(s) == [Interval(0, 5), Interval(45, 50)]

    def test_empty_query_rejected(self):
        s = IntervalSet()
        with pytest.raises(ValueError):
            s.add(3, 3)
        with pytest.raises(ValueError):
            s.overlap(5, 5)

    def test_covers_and_contains_point(self):
        s = IntervalSet([Interval(10, 20)])
        assert s.covers(10, 20)
        assert s.covers(12, 15)
        assert not s.covers(5, 15)
        assert not s.covers(15, 25)
        assert s.contains_point(10) and not s.contains_point(20)

    def test_overlap_counts(self):
        s = IntervalSet([Interval(0, 10), Interval(20, 30)])
        assert s.overlap(5, 25) == 10
        assert s.total() == 20

    def test_intersecting_clips(self):
        s = IntervalSet([Interval(0, 10), Interval(20, 30)])
        assert s.intersecting(5, 25) == [Interval(5, 10), Interval(20, 25)]

    def test_copy_is_independent(self):
        s = IntervalSet([Interval(0, 10)])
        t = s.copy()
        t.add(20, 30)
        assert s != t
        assert s.total() == 10

    def test_clear(self):
        s = IntervalSet([Interval(0, 10)])
        s.clear()
        assert not s
        assert s.total() == 0


# -- model-based property test ------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 200),
        st.integers(1, 50),
    ),
    max_size=60,
)


@settings(max_examples=200)
@given(ops)
def test_matches_reference_set_of_ints(operations):
    """The interval set must behave exactly like a plain set of integers."""
    s = IntervalSet()
    model: set[int] = set()
    for op, start, length in operations:
        stop = start + length
        if op == "add":
            s.add(start, stop)
            model |= set(range(start, stop))
        else:
            s.remove(start, stop)
            model -= set(range(start, stop))
        # Structural invariants: sorted, disjoint, non-adjacent.
        ivs = list(s)
        for a, b in zip(ivs, ivs[1:]):
            assert a.stop < b.start
        # Semantic equivalence.
        assert s.total() == len(model)
        for probe in range(0, 260, 7):
            assert s.contains_point(probe) == (probe in model)


@settings(max_examples=100)
@given(ops, st.integers(0, 250), st.integers(1, 30))
def test_overlap_matches_reference(operations, qstart, qlen):
    s = IntervalSet()
    model: set[int] = set()
    for op, start, length in operations:
        stop = start + length
        if op == "add":
            s.add(start, stop)
            model |= set(range(start, stop))
        else:
            s.remove(start, stop)
            model -= set(range(start, stop))
    qstop = qstart + qlen
    assert s.overlap(qstart, qstop) == len(model & set(range(qstart, qstop)))
    assert s.covers(qstart, qstop) == set(range(qstart, qstop)).issubset(model)
