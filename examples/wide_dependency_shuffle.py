#!/usr/bin/env python3
"""Wide-dependency shuffle: the big-data pattern the paper motivates.

§V-B: "Especially wide-dependency operations (commonly used in big data
applications) pose an interesting subset for performance evaluation due to
the ability of several nodes to operate on the distributed data in
parallel."

This example runs a Spark-style two-stage job on a 4-node cluster:

  stage 1 (map):    every node holds an input partition of (key, value)
                    records and re-partitions it by key hash, committing
                    one intermediate object per destination node;
  shuffle:          NO bulk network traffic — each reducer simply `get`s
                    the intermediate objects, local or remote, through the
                    disaggregated store;
  stage 2 (reduce): every node aggregates the values for its key range.

The same job is replayed on the scale-out baseline for comparison: there,
every remote intermediate is copied over the LAN into local memory first.

Run:  python examples/wide_dependency_shuffle.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, ObjectID, ScaleOutCluster
from repro.common.config import ClusterConfig
from repro.common.rng import DeterministicRng
from repro.common.units import MiB

N_NODES = 4
RECORDS_PER_NODE = 200_000  # (key, value) pairs, 8 bytes each


def make_input(rng: DeterministicRng, node_index: int) -> np.ndarray:
    """A partition of uint32 (key, value) records as a structured array."""
    keys = np.frombuffer(
        rng.bytes(RECORDS_PER_NODE * 4), dtype=np.uint32
    ) % 10_000
    values = np.full(RECORDS_PER_NODE, node_index + 1, dtype=np.uint32)
    return np.stack([keys, values], axis=1)


def intermediate_id(src: str, dst: str) -> ObjectID:
    return ObjectID.from_name(f"shuffle/{src}->{dst}")


def run_job(cluster, label: str) -> dict[int, int]:
    """Map, shuffle and reduce on whichever cluster flavour is passed in."""
    names = cluster.node_names()
    clients = {name: cluster.client(name) for name in names}
    rng = DeterministicRng(99)

    # -- stage 1: map + partition by key hash --------------------------------
    for i, name in enumerate(names):
        partition = make_input(rng.spawn(name), i)
        dest = partition[:, 0] % len(names)  # key -> destination node
        for j, dst in enumerate(names):
            chunk = partition[dest == j]
            clients[name].put_bytes(intermediate_id(name, dst), chunk.tobytes())

    # -- stage 2: shuffle-read + reduce ---------------------------------------
    t0 = cluster.clock.now_ns
    totals: dict[int, int] = {}
    for j, dst in enumerate(names):
        reducer = clients[dst]
        for src in names:
            raw = reducer.get_bytes(intermediate_id(src, dst))
            chunk = np.frombuffer(raw, dtype=np.uint32).reshape(-1, 2)
            # Aggregate: sum of values per key, merged into the global map.
            keys, sums = np.unique(chunk[:, 0], return_inverse=False), None
            for key in np.unique(chunk[:, 0]):
                totals[int(key)] = totals.get(int(key), 0) + int(
                    chunk[chunk[:, 0] == key, 1].sum()
                )
    elapsed_ms = (cluster.clock.now_ns - t0) / 1e6
    print(f"  {label}: shuffle+reduce took {elapsed_ms:10.2f} ms (simulated)")
    return totals


def main() -> None:
    cfg = ClusterConfig().with_store(capacity_bytes=128 * MiB)

    print(f"{N_NODES}-node wide-dependency job, "
          f"{RECORDS_PER_NODE} records/node:")

    disaggregated = Cluster(cfg, n_nodes=N_NODES, check_remote_uniqueness=False)
    totals_dis = run_job(disaggregated, "disaggregated (fabric reads)")

    scale_out = ScaleOutCluster(cfg, n_nodes=N_NODES)
    totals_so = run_job(scale_out, "scale-out     (LAN copies) ")

    assert totals_dis == totals_so, "both architectures must agree on results"
    checksum = sum(totals_dis.values())
    print(f"  results agree; global checksum = {checksum}")

    link_bytes = sum(
        link.counters.get("read_bytes")
        for link in disaggregated.fabric.links()
    )
    lan_bytes = scale_out.network.counters.get("bytes_transferred")
    print(f"  disaggregated moved {link_bytes / MiB:.1f} MiB over the fabric;")
    print(f"  scale-out moved     {lan_bytes / MiB:.1f} MiB over the LAN "
          f"(and duplicated it in local memory)")


if __name__ == "__main__":
    main()
