#!/usr/bin/env python3
"""Columnar analytics with the dataset layer: a mini distributed query.

Combines the two application-facing layers built on the store:

* :mod:`repro.columnar` — schema-tagged, zero-copy numpy arrays/tables
  (the Arrow idiom Plasma was built for);
* :mod:`repro.dataset` — an RDD-style distributed collection whose narrow
  ops never leave a node and whose wide ops move bytes only over the
  ThymesisFlow fabric.

Scenario: a 3-node cluster holds a day of trading ticks as a distributed
dataset of price observations. The "query" is:

    1. clean:   drop sentinel values            (narrow — local)
    2. derive:  log-returns per partition       (narrow — local)
    3. group:   re-partition by instrument hash (wide  — fabric shuffle)
    4. report:  per-group statistics + a global aggregate (reduce)

Plus a columnar reference table (instrument metadata) shared once and read
zero-copy by every node.

Run:  python examples/columnar_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster
from repro.columnar import get_table, put_table
from repro.common.config import ClusterConfig
from repro.common.rng import DeterministicRng
from repro.common.units import MiB
from repro.dataset import DistributedDataset

N_NODES = 3
N_INSTRUMENTS = 8
TICKS_PER_PARTITION = 120_000
PARTITIONS = 6


def main() -> None:
    cfg = ClusterConfig().with_store(capacity_bytes=96 * MiB)
    cluster = Cluster(cfg, n_nodes=N_NODES, check_remote_uniqueness=False)
    rng = DeterministicRng(2026)

    # --- shared reference data: one columnar table, readable everywhere ----
    ref_id = cluster.new_object_id()
    put_table(
        cluster.client("node0", "ref-loader"),
        ref_id,
        {
            "instrument": np.arange(N_INSTRUMENTS, dtype=np.int64),
            "lot_size": (10 ** (np.arange(N_INSTRUMENTS) % 3 + 1)).astype(
                np.int64
            ),
        },
    )

    # --- the tick dataset: price observations, instrument id in low bits ----
    def make_partition(i: int) -> np.ndarray:
        stream = rng.spawn(f"part{i}")
        # Encode (instrument, price_cents) into one int64 per tick:
        # value = price * N_INSTRUMENTS + instrument.
        inst = np.frombuffer(
            stream.bytes(TICKS_PER_PARTITION), dtype=np.uint8
        ).astype(np.int64) % N_INSTRUMENTS
        noise = np.frombuffer(
            stream.bytes(TICKS_PER_PARTITION * 2), dtype=np.int16
        ).astype(np.int64)
        price = 10_000 + (noise % 2001) - 1000  # 9000..11000, some sentinels
        price[::5000] = -1  # inject sentinel bad ticks
        return price * N_INSTRUMENTS + inst

    ticks = DistributedDataset.from_arrays(
        cluster, [make_partition(i) for i in range(PARTITIONS)]
    )
    print(f"tick dataset: {ticks!r}")

    # 1. clean (narrow): drop sentinel ticks.
    clean = ticks.filter(lambda v: v // N_INSTRUMENTS > 0)
    dropped = ticks.count() - clean.count()
    print(f"cleaned {dropped} sentinel ticks (narrow op, zero fabric bytes)")

    # 2. group by instrument (wide): shuffle so each output partition holds
    #    exactly one instrument's ticks.
    by_instrument = clean.shuffle_by(
        lambda v: v % N_INSTRUMENTS, num_partitions=N_INSTRUMENTS
    )
    print(f"shuffled into {by_instrument.num_partitions} instrument groups "
          f"across {len(by_instrument.partition_homes())} nodes")

    # 3. per-group statistics (narrow again: each group local to its node).
    def describe(group: np.ndarray) -> tuple[int, float, float]:
        inst = int(group[0] % N_INSTRUMENTS)
        prices = (group // N_INSTRUMENTS).astype(np.float64) / 100.0
        return inst, float(prices.mean()), float(prices.std())

    stats = {}
    for p in by_instrument.partitions:
        worker = cluster.client(p.home)
        from repro.columnar import get_array

        with get_array(worker, p.object_id) as ref:
            inst, mean, std = describe(ref.array)
        stats[inst] = (mean, std, p.rows, p.home)

    # 4. join against the shared reference table (zero-copy read per node).
    with get_table(cluster.client("node1", "ref-reader"), ref_id) as ref_table:
        lot_sizes = dict(
            zip(ref_table["instrument"].tolist(), ref_table["lot_size"].tolist())
        )

    print("per-instrument report (price mean ± std, ticks, home, lot size):")
    for inst in sorted(stats):
        mean, std, rows, home = stats[inst]
        print(
            f"  instrument {inst}: {mean:8.2f} ± {std:5.2f}  "
            f"({rows} ticks, {home}, lot {lot_sizes[inst]})"
        )

    global_mean = clean.map(
        lambda v: (v // N_INSTRUMENTS).astype(np.float64) / 100.0
    ).sum() / clean.count()
    print(f"global mean price: {global_mean:.2f}")

    fabric_mib = sum(
        link.counters.get("read_bytes") for link in cluster.fabric.links()
    ) / MiB
    print(f"fabric traffic for the whole query: {fabric_mib:.1f} MiB")


if __name__ == "__main__":
    main()
