#!/usr/bin/env python3
"""Quickstart: a 2-node memory-disaggregated object store in ~30 lines.

Mirrors the paper's deployment: two nodes, each running a Plasma store that
allocates objects in its ThymesisFlow-exposed memory; a producer on node0
commits an object; consumers on both nodes retrieve it — the remote one
transparently reads the payload through the memory fabric after a gRPC-style
lookup.

Run:  python examples/quickstart.py
"""

from repro import Cluster
from repro.common.units import MiB, format_duration_ns


def main() -> None:
    cluster = Cluster(n_nodes=2)

    producer = cluster.client("node0")
    local_consumer = cluster.client("node0")
    remote_consumer = cluster.client("node1")

    # Produce: create -> write -> seal (the object is now immutable and
    # visible to every client in the cluster).
    object_id = cluster.new_object_id()
    payload = b"hello, disaggregated world! " * 1000
    producer.put_bytes(object_id, payload)
    print(f"committed object {object_id!r} ({len(payload)} bytes) on node0")

    # Consume locally: handle arrives over the Unix-socket IPC.
    t0 = cluster.clock.now_ns
    data = local_consumer.get_bytes(object_id)
    assert data == payload
    print(f"local  get+read: {format_duration_ns(cluster.clock.now_ns - t0)}")

    # Consume remotely: the node1 store looks the id up at node0 over RPC,
    # then the client reads the bytes straight out of node0's memory
    # through the ThymesisFlow aperture — no bulk data on the LAN.
    t0 = cluster.clock.now_ns
    data = remote_consumer.get_bytes(object_id)
    assert data == payload
    print(f"remote get+read: {format_duration_ns(cluster.clock.now_ns - t0)}")

    # The same API scales to larger objects at fabric bandwidth.
    big_id = cluster.new_object_id()
    producer.put_bytes(big_id, bytes(32 * MiB))
    t0 = cluster.clock.now_ns
    buf = remote_consumer.get_one(big_id)
    buf.charge_sequential_read()  # timing-only read of all 32 MiB
    elapsed = cluster.clock.now_ns - t0
    gibps = (32 * MiB / (1 << 30)) / (elapsed / 1e9)
    print(f"remote 32 MiB sequential read: {gibps:.2f} GiB/s (paper: ~5.75)")
    remote_consumer.release(big_id)

    print("\nper-node state:")
    for name, stats in cluster.stats().items():
        print(
            f"  {name}: {stats['objects']} objects, "
            f"{stats['used_bytes']} / {stats['capacity_bytes']} bytes used"
        )


if __name__ == "__main__":
    main()
