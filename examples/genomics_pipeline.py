#!/usr/bin/env python3
"""Genomics pipeline over the disaggregated store (ArrowSAM-style).

The paper's Plasma background cites ArrowSAM [9] — in-memory genomics data
processing on Apache Arrow — as the kind of workload the framework serves.
This example reproduces that shape: a sorting/variant-calling-style pipeline
where aligned-read records live as immutable columnar objects in the
disaggregated store and downstream stages on *other* nodes consume them
without copying.

Pipeline (3 nodes):
  node0  "aligner"  : produces chromosome-partitioned read batches
                      (columnar: positions uint32, mapping quality uint8);
  node1  "sorter"   : consumes every batch remotely, sorts reads by
                      position per chromosome, commits sorted runs;
  node2  "caller"   : consumes sorted runs, computes per-chromosome
                      coverage pileup statistics (a stand-in for variant
                      calling).

Run:  python examples/genomics_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, ObjectID
from repro.common.config import ClusterConfig
from repro.common.rng import DeterministicRng
from repro.common.units import MiB

CHROMOSOMES = ["chr1", "chr2", "chr3", "chrX"]
BATCHES_PER_CHROM = 4
READS_PER_BATCH = 50_000
GENOME_REGION = 1_000_000  # positions per chromosome


def read_batch_id(chrom: str, batch: int) -> ObjectID:
    return ObjectID.from_name(f"reads/{chrom}/batch{batch}")


def sorted_run_id(chrom: str) -> ObjectID:
    return ObjectID.from_name(f"sorted/{chrom}")


def encode_reads(positions: np.ndarray, quals: np.ndarray) -> bytes:
    """Columnar encoding: u32 positions block then u8 qualities block."""
    return positions.astype("<u4").tobytes() + quals.astype("u1").tobytes()


def decode_reads(raw: bytes) -> tuple[np.ndarray, np.ndarray]:
    n = len(raw) // 5
    positions = np.frombuffer(raw[: n * 4], dtype="<u4")
    quals = np.frombuffer(raw[n * 4 :], dtype="u1")
    return positions, quals


def align_stage(cluster) -> int:
    """node0 commits unsorted read batches per chromosome."""
    aligner = cluster.client("node0", "aligner")
    rng = DeterministicRng(7)
    total = 0
    for chrom in CHROMOSOMES:
        for batch in range(BATCHES_PER_CHROM):
            stream = rng.spawn(chrom, str(batch))
            positions = np.frombuffer(
                stream.bytes(READS_PER_BATCH * 4), dtype="<u4"
            ) % GENOME_REGION
            quals = np.frombuffer(stream.bytes(READS_PER_BATCH), dtype="u1") % 60
            aligner.put_bytes(
                read_batch_id(chrom, batch), encode_reads(positions, quals)
            )
            total += READS_PER_BATCH
    return total


def sort_stage(cluster) -> None:
    """node1 reads every batch (remote, through the fabric), sorts per
    chromosome and commits one sorted run each."""
    sorter = cluster.client("node1", "sorter")
    for chrom in CHROMOSOMES:
        ids = [read_batch_id(chrom, b) for b in range(BATCHES_PER_CHROM)]
        buffers = sorter.get(ids)
        positions_parts, quals_parts = [], []
        for buf in buffers:
            positions, quals = decode_reads(buf.read_all())
            positions_parts.append(positions)
            quals_parts.append(quals)
        for oid in ids:
            sorter.release(oid)
        positions = np.concatenate(positions_parts)
        quals = np.concatenate(quals_parts)
        order = np.argsort(positions, kind="stable")
        sorter.put_bytes(
            sorted_run_id(chrom), encode_reads(positions[order], quals[order])
        )


def call_stage(cluster) -> dict[str, dict[str, float]]:
    """node2 consumes sorted runs (again remote) and computes pileup
    statistics per chromosome."""
    caller = cluster.client("node2", "caller")
    report: dict[str, dict[str, float]] = {}
    for chrom in CHROMOSOMES:
        raw = caller.get_bytes(sorted_run_id(chrom))
        positions, quals = decode_reads(raw)
        assert np.all(np.diff(positions.astype(np.int64)) >= 0), "must be sorted"
        coverage = np.bincount(positions // 1000, minlength=GENOME_REGION // 1000)
        high_q = quals >= 30
        report[chrom] = {
            "reads": float(len(positions)),
            "mean_coverage_per_kb": float(coverage.mean()),
            "peak_coverage_per_kb": float(coverage.max()),
            "fraction_q30": float(high_q.mean()),
        }
    return report


def main() -> None:
    cfg = ClusterConfig().with_store(capacity_bytes=96 * MiB)
    cluster = Cluster(
        cfg,
        n_nodes=3,
        check_remote_uniqueness=False,
        enable_lookup_cache=True,  # sorter re-requests batches per chrom
    )

    total_reads = align_stage(cluster)
    print(f"aligner committed {total_reads} reads "
          f"({len(CHROMOSOMES) * BATCHES_PER_CHROM} columnar batches) on node0")

    t0 = cluster.clock.now_ns
    sort_stage(cluster)
    print(f"sorter (node1) produced {len(CHROMOSOMES)} sorted runs in "
          f"{(cluster.clock.now_ns - t0) / 1e6:.2f} ms (simulated)")

    t0 = cluster.clock.now_ns
    report = call_stage(cluster)
    print(f"caller (node2) pileup in "
          f"{(cluster.clock.now_ns - t0) / 1e6:.2f} ms (simulated):")
    for chrom, stats in report.items():
        print(
            f"  {chrom}: {int(stats['reads'])} reads, "
            f"mean {stats['mean_coverage_per_kb']:.1f} / peak "
            f"{int(stats['peak_coverage_per_kb'])} reads/kb, "
            f"Q30 fraction {stats['fraction_q30']:.2f}"
        )

    fabric_mib = sum(
        link.counters.get("read_bytes") for link in cluster.fabric.links()
    ) / MiB
    print(f"total payload moved over the fabric: {fabric_mib:.1f} MiB "
          f"(LAN carried only RPC metadata)")


if __name__ == "__main__":
    main()
