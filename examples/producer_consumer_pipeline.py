#!/usr/bin/env python3
"""Streaming producer/consumer with notifications, eviction and pinning.

Plasma's consumer-supplier dynamic (paper §II-B): "A single source may have
multiple consumers querying it." This example streams a window of sensor
batches through a 2-node cluster and demonstrates the operational
behaviours the store guarantees:

* consumers discover new objects via **seal notifications**;
* under memory pressure the home store **evicts** the oldest consumed
  batches (LRU) and keeps running;
* a batch a remote consumer still holds is **pinned** when distributed
  usage sharing is on — the eviction-safety extension of §V-B.

Run:  python examples/producer_consumer_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster
from repro.common.config import ClusterConfig
from repro.common.rng import DeterministicRng
from repro.common.units import MiB

BATCH_BYTES = 2 * MiB
N_BATCHES = 40
STORE_CAPACITY = 24 * MiB  # deliberately < N_BATCHES * BATCH_BYTES


def main() -> None:
    cfg = ClusterConfig().with_store(capacity_bytes=STORE_CAPACITY)
    cluster = Cluster(
        cfg, n_nodes=2, share_usage=True, check_remote_uniqueness=False
    )
    producer = cluster.client("node0", "sensor-gateway")
    analyst = cluster.client("node1", "stream-analyst")
    feed = cluster.store("node0").subscribe()
    rng = DeterministicRng(123)

    # The analyst keeps the very first batch open as a long-lived baseline —
    # with usage sharing on, the home store must never evict it.
    baseline_buffer = None
    baseline_id = None
    running_mean = []

    print(
        f"streaming {N_BATCHES} x {BATCH_BYTES // MiB} MiB batches through a "
        f"{STORE_CAPACITY // MiB} MiB store (eviction inevitable)"
    )
    for seq in range(N_BATCHES):
        oid = cluster.new_object_id()
        batch = rng.spawn(str(seq)).payload(BATCH_BYTES)
        producer.put_bytes(oid, batch)

        # Drain notifications and process newly sealed batches remotely.
        note = feed.pop()
        while note is not None:
            if not note.deleted:
                buf = analyst.get_one(note.object_id)
                data = np.frombuffer(buf.view(), dtype=np.uint8)
                running_mean.append(float(data.mean()))
                if baseline_buffer is None:
                    baseline_buffer = buf  # hold it forever
                    baseline_id = note.object_id
                else:
                    analyst.release(note.object_id)
            note = feed.pop()

    store0 = cluster.store("node0")
    evicted = store0.counters.get("objects_evicted")
    print(f"processed {len(running_mean)} batches, "
          f"global mean of means = {np.mean(running_mean):.2f}")
    print(f"home store evicted {evicted} cold batches under pressure")

    # The pinned baseline batch survived all of it.
    assert store0.contains(baseline_id), "pinned baseline was evicted!"
    entry = store0.table.get(baseline_id)
    print(
        f"baseline batch still resident (remote_ref_count="
        f"{entry.remote_ref_count}); first bytes still valid: "
        f"{bytes(baseline_buffer.view()[:8]).hex()}"
    )
    analyst.release(baseline_id)
    print("released baseline; it is now evictable:",
          store0.table.get(baseline_id).evictable)


if __name__ == "__main__":
    main()
