"""E5 — allocator ablation (paper §IV-A1 + §V-B future work).

The paper replaces dlmalloc with its first-fit/ordered-map allocator and
concedes it "surrenders some benefits" (locality, fragmentation) while
noting "improved allocators generally have substantial impact" [16]. This
benchmark quantifies that trade by replaying identical workloads through
first_fit, dlmalloc and buddy:

  * Table I-shaped churn (create/delete waves of mixed sizes);
  * a fragmentation stress (interleaved lifetimes);

reporting wall-clock ops/s and the fragmentation metrics of each strategy.
"""

from __future__ import annotations

import pytest

from repro.allocator import ALLOCATOR_NAMES, create_allocator, fragmentation_report
from repro.common.errors import OutOfMemoryError
from repro.common.rng import DeterministicRng
from repro.common.units import MiB

CAPACITY = 64 * MiB


def table1_churn(alloc, rng: DeterministicRng, waves: int = 5) -> int:
    """Create/delete waves with Table I's size mix; returns ops done."""
    sizes = [1_000, 10_000, 100_000, 1_000_000]
    ops = 0
    for _ in range(waves):
        live = []
        for _ in range(400):
            size = sizes[rng.integer(0, len(sizes))]
            try:
                live.append(alloc.allocate(size))
                ops += 1
            except OutOfMemoryError:
                break
        rng.shuffle(live)
        for a in live:
            alloc.free(a.offset)
            ops += 1
    return ops


def fragmentation_stress(alloc, rng: DeterministicRng) -> None:
    """Interleaved lifetimes: free every other allocation, then try big."""
    live = []
    while True:
        try:
            live.append(alloc.allocate(64 + rng.integer(0, 8192)))
        except OutOfMemoryError:
            break
    for a in live[::2]:
        alloc.free(a.offset)


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
def test_churn_throughput(name, benchmark):
    """Wall-clock alloc/free throughput per strategy on the Table I mix."""
    rng = DeterministicRng(42)

    def run():
        alloc = create_allocator(name, CAPACITY)
        return table1_churn(alloc, rng.spawn(name), waves=3)

    ops = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ops > 1000


@pytest.mark.parametrize("name", ALLOCATOR_NAMES)
def test_fragmentation_after_stress(name, benchmark):
    rng = DeterministicRng(7)

    def run():
        alloc = create_allocator(name, 4 * MiB)
        fragmentation_stress(alloc, rng.spawn(name))
        return fragmentation_report(name, alloc)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + report.format_row())
    # Checkerboard freeing leaves heavy external fragmentation for the
    # non-buddy strategies; buddy bounds it by construction but pays
    # internal fragmentation instead.
    if name == "buddy":
        assert report.internal_fragmentation >= 0.0
    else:
        assert report.external_fragmentation > 0.5


def test_ablation_summary(benchmark):
    """One table: who fragments, who pads, who serves the biggest request
    after identical stress."""

    def run():
        rows = []
        for name in ALLOCATOR_NAMES:
            alloc = create_allocator(name, 4 * MiB)
            fragmentation_stress(alloc, DeterministicRng(7).spawn(name))
            report = fragmentation_report(name, alloc)
            # Largest single allocation each can still satisfy.
            largest = report.largest_free
            rows.append((name, report, largest))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAllocator ablation after identical fragmentation stress:")
    for name, report, largest in rows:
        print(f"  {report.format_row()} largest_free={largest}")
    by_name = {name: report for name, report, _ in rows}
    # dlmalloc's binning keeps small-request reuse cheap; the paper's
    # first-fit pays more external fragmentation than buddy's bounded split.
    assert by_name["first_fit"].external_fragmentation >= 0.0
    assert len(rows) == 3
