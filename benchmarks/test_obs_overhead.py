"""Observability overhead guarantees on the Fig 6/7 hot paths.

Two claims keep the metrics plane honest:

* **Zero simulated-ns overhead.** Instrumentation only reads the clock,
  never advances it and never consumes RNG, so a workload's final
  simulated timestamp — the quantity every figure is computed from — is
  bit-identical with metrics enabled, disabled, and with a tracer
  attached.
* **Bounded wall-clock overhead.** With metrics disabled every handle is
  ``None`` and the fast path is a single ``is None`` test, so real run
  time stays within noise of the pre-observability baseline; even fully
  enabled it must stay within a loose constant factor.
"""

import time

from repro.common.trace import Tracer
from repro.common.units import KiB, MiB
from repro.common.config import ClusterConfig
from repro.core import Cluster

N_OBJECTS = 50
OBJ_BYTES = 10 * KiB


def _run_fig67_workload(*, metrics: bool, tracer: bool = False) -> tuple[int, dict]:
    """The Fig 6/7 shape: put on node0, remote get + sequential read from
    node1. Returns (final simulated ns, cluster stats)."""
    cluster = Cluster(
        ClusterConfig(seed=123).with_store(capacity_bytes=64 * MiB),
        n_nodes=2,
        check_remote_uniqueness=False,
        metrics=metrics,
    )
    if tracer:
        cluster.attach_tracer(Tracer(cluster.clock))
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oids = cluster.new_object_ids(N_OBJECTS)
    for i, oid in enumerate(oids):
        producer.put_bytes(oid, bytes([i % 251]) * OBJ_BYTES)
    for oid in oids:
        [buf] = consumer.get([oid])
        buf.read_all()
        consumer.release(oid)
    return cluster.clock.now_ns, cluster.stats()


class TestSimulatedTimeNeutrality:
    def test_metrics_add_zero_simulated_ns(self):
        ns_off, stats_off = _run_fig67_workload(metrics=False)
        ns_on, stats_on = _run_fig67_workload(metrics=True)
        assert ns_on == ns_off
        assert stats_on == stats_off

    def test_tracer_adds_zero_simulated_ns(self):
        ns_plain, _ = _run_fig67_workload(metrics=False)
        ns_traced, _ = _run_fig67_workload(metrics=True, tracer=True)
        assert ns_traced == ns_plain


class TestWallClockOverhead:
    def _time(self, **kwargs) -> float:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            _run_fig67_workload(**kwargs)
            best = min(best, time.perf_counter() - t0)
        return best

    def test_enabled_overhead_is_bounded(self):
        """Very loose bound — this is a tripwire for accidentally putting
        allocation or formatting on the hot path, not a precise ratio."""
        base = self._time(metrics=False)
        observed = self._time(metrics=True)
        assert observed < 3.0 * base + 0.05, (
            f"metrics=True {observed:.3f}s vs baseline {base:.3f}s"
        )
