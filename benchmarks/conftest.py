"""Shared benchmark fixtures.

The full Table I microbenchmark (100 repetitions x 6 specs x local+remote,
the paper's exact protocol) runs once per pytest session; the Fig 6 / Fig 7
/ create-seal benchmarks consume its results, print the paper-vs-measured
tables, and assert the shapes. Individual tests additionally use
pytest-benchmark on the real underlying operations so `--benchmark-only`
reports honest wall-clock numbers for this implementation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import MicroBenchConfig, run_table
from repro.bench.specs import PAPER_REPETITIONS
from repro.common.config import ClusterConfig
from repro.common.units import MiB
from repro.core import Cluster


def pytest_addoption(parser):
    parser.addoption(
        "--emit-bench-json",
        metavar="DIR",
        default=None,
        help="also write BENCH_*.json artifacts for the paper figures "
             "(Fig 6/7) to DIR, via the same canonical writer the "
             "workload scenarios use",
    )


@pytest.fixture(scope="session")
def bench_json_dir(request) -> Path | None:
    """Destination for BENCH_*.json artifacts, or None when not requested."""
    value = request.config.getoption("--emit-bench-json")
    return Path(value) if value else None


@pytest.fixture(scope="session")
def table_results():
    """Run the paper's full protocol once (all specs, 100 repetitions)."""
    return run_table(MicroBenchConfig(repetitions=PAPER_REPETITIONS))


@pytest.fixture()
def bench_cluster():
    """A small 2-node cluster for wall-clock micro-measurements."""
    cfg = ClusterConfig().with_store(capacity_bytes=64 * MiB)
    return Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
