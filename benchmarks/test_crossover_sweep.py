"""E11 — crossover sweep: when does replication beat disaggregation?

The paper's introduction argues against the scale-out approach (Fig 1a)
because it burns LAN bandwidth and duplicates data; the honest counterpoint
is that a replica serves *repeat* reads at local speed. This sweep measures
both systems end-to-end as the re-read count grows and locates the
crossover — the quantitative boundary of the paper's argument.
"""

from __future__ import annotations

import pytest

from repro.bench.sweep import object_size_sweep, reread_crossover
from repro.common.units import KB, MiB


def test_reread_crossover(benchmark):
    result = benchmark.pedantic(
        lambda: reread_crossover(object_size=16 * MiB, max_rereads=120, step=10),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())

    first = result.points[0]
    last = result.points[-1]
    # First touch: disaggregation wins decisively (fabric vs LAN copy).
    assert first.disaggregated_ms < first.scale_out_ms / 2
    # Far past the crossover: the local replica wins.
    assert last.scale_out_ms < last.disaggregated_ms
    # And the crossover exists strictly between the endpoints.
    assert result.crossover_rereads is not None
    assert 1 < result.crossover_rereads <= 120


def test_crossover_scales_with_fabric_penalty(benchmark):
    """The crossover point is governed by (LAN copy cost) / (per-read
    fabric penalty); both scale linearly with object size, so the crossover
    k* should be roughly size-independent."""

    def run():
        small = reread_crossover(object_size=4 * MiB, max_rereads=120, step=10)
        large = reread_crossover(object_size=32 * MiB, max_rereads=120, step=10)
        return small.crossover_rereads, large.crossover_rereads

    k_small, k_large = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncrossover k*: 4 MiB -> {k_small}, 32 MiB -> {k_large}")
    assert k_small is not None and k_large is not None
    assert abs(k_small - k_large) <= 30  # same order, as the model predicts


def test_object_size_sweep(benchmark):
    """Continuous size axis: retrieval latency falls with object count,
    throughput rises to the plateaus — the trends behind Figs 6 and 7."""
    # Budget above the 64 MiB cache model so large-object reads are
    # DRAM-streaming (the Fig 7 plateau), not cache hits.
    sizes = [10 * KB, 100 * KB, 1000 * KB, 10_000 * KB]

    points = benchmark.pedantic(
        lambda: object_size_sweep(sizes, objects_budget_bytes=96 * MiB),
        rounds=1,
        iterations=1,
    )
    print("\nobject-size sweep (96 MiB total per point):")
    print(f"{'size kB':>8} {'loc ret ms':>11} {'rem ret ms':>11} "
          f"{'loc GiB/s':>10} {'rem GiB/s':>10}")
    for p in points:
        print(
            f"{p.object_size // KB:>8} {p.local_retrieve_ms:>11.3f} "
            f"{p.remote_retrieve_ms:>11.3f} {p.local_read_gibps:>10.2f} "
            f"{p.remote_read_gibps:>10.2f}"
        )
    # Retrieval latency tracks object count (falls as size grows).
    loc = [p.local_retrieve_ms for p in points]
    assert loc == sorted(loc, reverse=True)
    # Remote retrieval floors at the gRPC round trip.
    assert all(p.remote_retrieve_ms > 1.5 for p in points)
    # Throughput approaches the plateaus for large objects.
    big = points[-1]
    assert big.local_read_gibps == pytest.approx(6.5, rel=0.08)
    assert big.remote_read_gibps == pytest.approx(5.75, rel=0.08)
    # Local beats remote everywhere.
    for p in points:
        assert p.local_read_gibps > p.remote_read_gibps
