"""E2 — Figure 6: total object-buffer retrieval latency, local vs remote.

Paper anchors (§V-A): local 1.885 ms @ benchmark 1 (1000 objects) down to
0.075 ms @ benchmark 6 (10 objects); remote 5.049 ms @ benchmark 1 down to
~2.6 ms, "dominated by gRPC and its inherent network jitter".

Shape assertions:
  * local latency scales with object count (monotone over specs 1->6);
  * remote latency always exceeds local (gRPC round trip);
  * remote is millisecond-order for every spec (jitter-dominated floor);
  * measured values sit near each stated paper anchor.
"""

import pytest

from repro.bench.reporting import (
    PAPER_FIG6_LOCAL_MS,
    PAPER_FIG6_REMOTE_MS,
    fig6_payload,
    format_fig6,
    write_bench_json,
)


def test_fig6_series(table_results, benchmark, bench_json_dir):
    results = table_results
    print()
    print(benchmark.pedantic(lambda: format_fig6(results), rounds=1, iterations=1))
    if bench_json_dir is not None:
        payload = fig6_payload(results)
        print(f"wrote {write_bench_json(bench_json_dir / payload['artifact'], payload)}")

    local_ms = [r.local_retrieve_ms_mean for r in results]
    remote_ms = [r.remote_retrieve_ms_mean for r in results]

    # Local latency scales with the number of requested objects.
    assert local_ms == sorted(local_ms, reverse=True)
    # Remote always pays the gRPC round trip on top.
    for lo, re in zip(local_ms, remote_ms):
        assert re > lo + 1.5  # >= one ~2.3 ms round trip, minus jitter slack
    # Remote series is ms-order everywhere (jitter floor), local drops to us.
    assert all(1.5 < re < 8.0 for re in remote_ms)
    assert local_ms[-1] < 0.1

    # Paper anchors, generous tolerance (jitter + calibration).
    for r in results:
        anchor = PAPER_FIG6_LOCAL_MS.get(r.spec.index)
        if anchor is not None:
            assert r.local_retrieve_ms_mean == pytest.approx(anchor, rel=0.15)
        anchor = PAPER_FIG6_REMOTE_MS.get(r.spec.index)
        if anchor is not None:
            assert r.remote_retrieve_ms_mean == pytest.approx(anchor, rel=0.25)


def test_retrieval_wall_clock_local(bench_cluster, benchmark):
    """Real wall-time of a 100-object local retrieval round trip."""
    p = bench_cluster.client("node0")
    c = bench_cluster.client("node0")
    ids = bench_cluster.new_object_ids(100)
    for oid in ids:
        p.put_bytes(oid, b"x" * 1000)

    def op():
        bufs = c.get(ids)
        for oid in ids:
            c.release(oid)
        return bufs

    assert len(benchmark(op)) == 100


def test_retrieval_wall_clock_remote(bench_cluster, benchmark):
    """Real wall-time of a 100-object remote retrieval (RPC + apertures)."""
    p = bench_cluster.client("node0")
    c = bench_cluster.client("node1")
    ids = bench_cluster.new_object_ids(100)
    for oid in ids:
        p.put_bytes(oid, b"x" * 1000)

    def op():
        bufs = c.get(ids)
        for oid in ids:
            c.release(oid)
        return bufs

    assert all(b.is_remote for b in benchmark(op))
