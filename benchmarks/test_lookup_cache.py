"""E7 — remote-lookup caching (paper §V-B future work, implemented).

"A caching mechanism for previously requested remote objects ... would
increase the performance of repeated requests for identifiers."

Measures repeated remote gets with and without the cache, and the cost of
keeping it coherent (NotifyDeleted invalidations on delete/evict).
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig
from repro.common.units import KB, MiB
from repro.core import Cluster


def cfg():
    return ClusterConfig().with_store(capacity_bytes=64 * MiB)


def _repeated_requests(cluster, rounds: int, n_objects: int) -> float:
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    ids = cluster.new_object_ids(n_objects)
    for oid in ids:
        producer.put_bytes(oid, bytes(10 * KB))
    t0 = cluster.clock.now_ns
    for _ in range(rounds):
        bufs = consumer.get(ids)
        for buf in bufs:
            buf.charge_sequential_read()
        for oid in ids:
            consumer.release(oid)
    return (cluster.clock.now_ns - t0) / 1e6


def test_cache_accelerates_repeated_requests(benchmark):
    def run():
        cold_cluster = Cluster(cfg(), n_nodes=2, check_remote_uniqueness=False)
        cold = _repeated_requests(cold_cluster, rounds=10, n_objects=20)
        cold_rpcs = cold_cluster.store("node1").counters.get("lookup_rpcs")
        warm_cluster = Cluster(
            cfg(), n_nodes=2, enable_lookup_cache=True, check_remote_uniqueness=False
        )
        warm = _repeated_requests(warm_cluster, rounds=10, n_objects=20)
        warm_rpcs = warm_cluster.store("node1").counters.get("lookup_rpcs")
        hit_rate = warm_cluster.store("node1").lookup_cache.hit_rate
        return cold, warm, hit_rate, cold_rpcs, warm_rpcs

    cold, warm, hit_rate, cold_rpcs, warm_rpcs = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\n10 rounds x 20 remote objects: no-cache {cold:.2f} ms "
        f"({cold_rpcs} lookup RPCs), cache {warm:.2f} ms ({warm_rpcs} RPCs, "
        f"{cold / warm:.1f}x, hit rate {hit_rate:.0%})"
    )
    # 9 of 10 rounds skip the gRPC round trip entirely; the residual cost
    # is IPC per get/release, which caching cannot remove.
    assert cold_rpcs == 10
    assert warm_rpcs == 1
    assert warm < cold / 1.8
    assert hit_rate > 0.8


def test_invalidation_keeps_cache_coherent(benchmark):
    """Deletions must push invalidations; the benchmark measures that the
    coherency traffic (one NotifyDeleted per delete) stays proportional."""

    def run():
        cluster = Cluster(
            cfg(), n_nodes=2, enable_lookup_cache=True, check_remote_uniqueness=False
        )
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        ids = cluster.new_object_ids(20)
        for oid in ids:
            producer.put_bytes(oid, bytes(1000))
        for oid in ids:
            consumer.get_one(oid)
            consumer.release(oid)
        # Delete half: caches must drop exactly those entries.
        for oid in ids[:10]:
            producer.delete(oid)
        cache = cluster.store("node1").lookup_cache
        notifications = cluster.store("node0").counters.get(
            "delete_notifications"
        )
        return len(cache), cache.invalidations, notifications

    remaining, invalidations, notifications = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\ncache entries left: {remaining}, invalidations: {invalidations}, "
        f"notify RPCs: {notifications}"
    )
    assert remaining == 10
    assert invalidations == 10
    assert notifications == 10


def test_zipf_hit_rates_with_bounded_cache(benchmark):
    """Realistic access skew: under Zipf(1.1) popularity, even a cache far
    smaller than the object population absorbs most lookups; under uniform
    access the same cache thrashes. Paper §V-B: the caching win "is
    dependent on system usage" — this quantifies that dependence."""
    from repro.bench import uniform_access_sequence, zipf_access_sequence
    from repro.common.rng import DeterministicRng

    N_OBJECTS = 400
    N_ACCESSES = 2000
    CACHE_ENTRIES = 40  # 10 % of the population

    def run_pattern(pattern: str) -> float:
        cluster = Cluster(
            cfg(),
            n_nodes=2,
            enable_lookup_cache=True,
            check_remote_uniqueness=False,
        )
        # Shrink the cache to force replacement.
        store = cluster.store("node1")
        from repro.core.lookup_cache import LookupCache

        store._lookup_cache = LookupCache(CACHE_ENTRIES)  # noqa: SLF001
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        ids = cluster.new_object_ids(N_OBJECTS)
        for oid in ids:
            producer.put_bytes(oid, bytes(1000))
        rng = DeterministicRng(99).spawn(pattern)
        if pattern == "zipf":
            sequence = zipf_access_sequence(rng, N_OBJECTS, N_ACCESSES)
        else:
            sequence = uniform_access_sequence(rng, N_OBJECTS, N_ACCESSES)
        for index in sequence:
            oid = ids[int(index)]
            consumer.get_one(oid)
            consumer.release(oid)
        return store.lookup_cache.hit_rate

    rates = benchmark.pedantic(
        lambda: {p: run_pattern(p) for p in ("zipf", "uniform")},
        rounds=1,
        iterations=1,
    )
    print(
        f"\nlookup-cache hit rate, {CACHE_ENTRIES}-entry cache over "
        f"{N_OBJECTS} objects: zipf={rates['zipf']:.0%}, "
        f"uniform={rates['uniform']:.0%}"
    )
    assert rates["zipf"] > 0.45
    assert rates["zipf"] > rates["uniform"] + 0.25


def test_cached_lookup_wall_clock(benchmark):
    """Real wall-time of a cache-hit remote get (no RPC dispatch at all)."""
    cluster = Cluster(
        cfg(), n_nodes=2, enable_lookup_cache=True, check_remote_uniqueness=False
    )
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oid = cluster.new_object_id()
    producer.put_bytes(oid, bytes(1000))
    consumer.get_one(oid)
    consumer.release(oid)

    def op():
        buf = consumer.get_one(oid)
        consumer.release(oid)
        return buf

    assert benchmark(op).is_remote
