"""Simulation-testing determinism and throughput characteristics.

The harness's value rests on two measurable properties:

* **Exact replay** — the same seed yields a byte-identical step trace
  and an identical simulated-time footprint, run after run. Without
  this, shrinking and the golden-seed corpus would be meaningless.
* **Seed independence** — different seeds explore different schedules
  (otherwise a sweep is one test run in a trench coat).

These are asserted here over heavier runs than the tier-1 suite uses,
alongside a rough ops/sec figure so a slowdown in the harness itself
(which gates how many seeds a CI budget can afford) is visible.
"""

from __future__ import annotations

import time

import pytest

from repro.simtest import generate_ops, run_seed

N_OPS = 250
SEEDS = (11, 12, 13)


def test_replay_is_byte_identical_across_runs():
    for seed in SEEDS:
        first = run_seed(seed, N_OPS)
        second = run_seed(seed, N_OPS)
        assert first.trace_text() == second.trace_text()
        assert first.ok and second.ok


def test_simulated_time_footprint_is_deterministic():
    # The step trace already embeds outcomes; this pins the op stream
    # itself, which feeds every downstream decision.
    for seed in SEEDS:
        assert generate_ops(seed, N_OPS) == generate_ops(seed, N_OPS)


def test_distinct_seeds_explore_distinct_schedules():
    traces = {run_seed(seed, N_OPS).trace_text() for seed in SEEDS}
    assert len(traces) == len(SEEDS)


@pytest.mark.slow
def test_harness_throughput_budget():
    """A smoke sweep (100 seeds x 200 ops) must fit a CI-sized budget.

    This is a wall-clock guard, so the bound is deliberately loose
    (~10x the typical runtime on a laptop); it exists to flag order-of-
    magnitude regressions in the harness, not to benchmark the host.
    """
    start = time.perf_counter()
    ops_run = 0
    for seed in SEEDS:
        result = run_seed(seed, N_OPS)
        assert result.ok, result.report()
        ops_run += len(result.ops)
    elapsed = time.perf_counter() - start
    per_op = elapsed / ops_run
    assert per_op < 0.05, f"harness slowed to {per_op * 1e3:.1f} ms/op"
