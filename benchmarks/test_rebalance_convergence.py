"""E-placement — drain convergence under a byte-budgeted rebalancer.

A 4-node placement cluster holds 1000 x 8 KiB objects routed by the
consistent-hash ring. ``drain_node("node1")`` excludes the node from the
ring; the rebalancer then migrates its primaries home a budgeted number
of bytes per simulated tick. The experiment asserts the PR's elasticity
contract:

* convergence — the drained store ends empty and *zero* bytes remain
  misplaced anywhere;
* availability — after every single tick, every one of the 1000 objects
  is readable (migration never leaves a window where neither the source
  nor the destination serves the object);
* pacing — no tick moves more than the configured byte budget, so the
  drain takes multiple ticks of simulated time;
* determinism — replaying the same seed yields an identical tick count,
  identical final simulated timestamp, and identical store counters.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import ClusterConfig
from repro.common.units import KiB, MiB
from repro.core import Cluster

NUM_OBJECTS = 1000
OBJECT_SIZE = 8 * KiB
BYTES_PER_TICK = 256 * KiB
TICK_NS = 1_000_000.0  # 1 ms of simulated time per tick
SEED = 1337

PATTERN = b"rebalance/"
PAYLOAD = (PATTERN * (OBJECT_SIZE // len(PATTERN) + 1))[:OBJECT_SIZE]


def build_cluster(seed: int) -> Cluster:
    config = ClusterConfig(seed=seed).with_store(capacity_bytes=64 * MiB)
    config = replace(
        config,
        placement=replace(
            config.placement,
            rebalance_bytes_per_tick=BYTES_PER_TICK,
            rebalance_tick_interval_ns=TICK_NS,
        ),
    )
    return Cluster(config, n_nodes=4, placement=True)


def run_drain(seed: int) -> dict:
    """Load, drain node1, tick to convergence with reads between ticks."""
    cluster = build_cluster(seed)
    ids = cluster.new_object_ids(NUM_OBJECTS)
    cluster.client("node0").put_batch([(oid, PAYLOAD) for oid in ids])
    drained_before = cluster.store("node1").object_count()
    assert drained_before > 0, "the ring should have homed objects on node1"

    cluster.drain_node("node1")
    readers = [cluster.client(name) for name in ("node0", "node2", "node3")]
    ticks = 0
    max_tick_bytes = 0
    while (
        cluster.rebalancer.misplaced_bytes() > 0
        or cluster.rebalancer.deferred_retires() > 0
    ):
        report = cluster.rebalancer.tick()
        ticks += 1
        max_tick_bytes = max(max_tick_bytes, report.moved_bytes)
        # Full availability sweep between ticks: every object, from a
        # reader that is *not* the draining node.
        reader = readers[ticks % len(readers)]
        for oid in ids:
            assert bytes(reader.get_bytes(oid)) == PAYLOAD
        assert ticks <= 10_000, "rebalancer failed to converge"

    return {
        "ticks": ticks,
        "drained_before": drained_before,
        "drained_after": cluster.store("node1").object_count(),
        "misplaced_after": cluster.rebalancer.misplaced_bytes(),
        "max_tick_bytes": max_tick_bytes,
        "final_t_ns": cluster.clock.now_ns,
        "epoch": cluster.membership.epoch,
        "counters": {
            name: sorted(cluster.store(name).counters.snapshot().items())
            for name in cluster.node_names()
        },
        "engine": sorted(
            cluster.migration_engine.counters.snapshot().items()
        ),
    }


def test_drain_converges_with_no_read_outage():
    result = run_drain(SEED)
    assert result["drained_after"] == 0
    assert result["misplaced_after"] == 0
    # The byte budget paces the drain across several simulated ticks.
    assert result["max_tick_bytes"] <= BYTES_PER_TICK + OBJECT_SIZE
    assert result["ticks"] > 1
    print(
        f"\ndrain: {result['drained_before']} objects off node1 in "
        f"{result['ticks']} tick(s), zero misplaced bytes, "
        f"{NUM_OBJECTS} objects readable after every tick "
        f"(final t={result['final_t_ns'] / 1e6:.1f} ms, "
        f"epoch={result['epoch']})"
    )


def test_same_seed_replays_to_identical_timestamp():
    a = run_drain(SEED)
    b = run_drain(SEED)
    assert a["final_t_ns"] == b["final_t_ns"]
    assert a == b
