"""E3 — Figure 7: buffer reading throughput distributions, local vs remote.

Paper (§V-A): "The results stabilize at 6.5 GiB/s for local objects and
5.75 GiB/s for remote objects in benchmarks 4-6. Benchmarks 1-3 display
more variation (ranging from 5.5 to 7.1 GiB/s)" — an ~11.5 % remote
penalty, competitive with switched InfiniBand RDMA.

Shape assertions:
  * specs 4-6 plateau at ~6.5 local / ~5.75 remote (tight IQRs);
  * remote penalty ~11.5 % on the plateau;
  * specs 1-3 have visibly wider spread than 4-6;
  * small-object medians stay within the paper's 5.5-7.1 band (local).
"""

import pytest

from repro.bench.reporting import (
    PAPER_FIG7_LOCAL_GIBPS,
    PAPER_FIG7_REMOTE_GIBPS,
    fig7_payload,
    format_fig7,
    write_bench_json,
)
from repro.common.units import MiB, gib_per_s


def _spread(dist):
    q1, q3 = dist.iqr()
    return (q3 - q1) / dist.median


def test_fig7_distributions(table_results, benchmark, bench_json_dir):
    results = table_results
    print()
    print(benchmark.pedantic(lambda: format_fig7(results), rounds=1, iterations=1))
    if bench_json_dir is not None:
        payload = fig7_payload(results)
        print(f"wrote {write_bench_json(bench_json_dir / payload['artifact'], payload)}")

    plateau = [r for r in results if r.spec.index >= 4]
    small = [r for r in results if r.spec.index <= 3]

    # Plateau values (specs 4-6).
    for r in plateau:
        assert r.local.read_gibps.median == pytest.approx(
            PAPER_FIG7_LOCAL_GIBPS, rel=0.05
        )
        assert r.remote.read_gibps.median == pytest.approx(
            PAPER_FIG7_REMOTE_GIBPS, rel=0.05
        )
        # Remote penalty ~11.5 %.
        penalty = 1 - r.remote.read_gibps.median / r.local.read_gibps.median
        assert penalty == pytest.approx(0.115, abs=0.03)

    # Variance structure: smalls visibly noisier than the plateau.
    small_spread = max(_spread(r.local.read_gibps) for r in small)
    plateau_spread = max(_spread(r.local.read_gibps) for r in plateau)
    assert small_spread > 2 * plateau_spread

    # Small-object medians inside the paper's stated 5.5-7.1 band.
    for r in small:
        assert 5.5 <= r.local.read_gibps.median <= 7.1
        assert 4.8 <= r.remote.read_gibps.median <= 7.1  # remote a bit lower

    # Local beats remote for every spec.
    for r in results:
        assert r.local.read_gibps.median > r.remote.read_gibps.median


def test_read_wall_clock_local(bench_cluster, benchmark):
    """Real wall-time of sequentially reading a 4 MiB local buffer."""
    p = bench_cluster.client("node0")
    oid = bench_cluster.new_object_id()
    p.put_bytes(oid, bytes(4 * MiB))
    buf = p.get_one(oid)
    out = bytearray(4 * MiB)

    benchmark(lambda: buf.read_into(out))


def test_read_wall_clock_remote(bench_cluster, benchmark):
    """Real wall-time of sequentially reading a 4 MiB remote buffer through
    the fabric model (includes simulated-cost accounting overhead)."""
    p = bench_cluster.client("node0")
    c = bench_cluster.client("node1")
    oid = bench_cluster.new_object_id()
    p.put_bytes(oid, bytes(4 * MiB))
    buf = c.get_one(oid)
    out = bytearray(4 * MiB)

    benchmark(lambda: buf.read_into(out))


def test_simulated_rates_straight_from_fabric(bench_cluster, benchmark):
    """Sanity: raw endpoint/link rates match the configured plateaus."""
    ep = bench_cluster.node("node0").endpoint
    clock = bench_cluster.clock

    def measure():
        t0 = clock.now_ns
        ep.local_read(0, 16 * MiB)
        local = gib_per_s(16 * MiB, clock.now_ns - t0)
        window = bench_cluster.store("node1").peer("node0").remote_region
        t0 = clock.now_ns
        window.charge_read(16 * MiB)
        remote = gib_per_s(16 * MiB, clock.now_ns - t0)
        return local, remote

    local, remote = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert local == pytest.approx(6.5, rel=0.1)
    assert remote == pytest.approx(5.75, rel=0.05)
