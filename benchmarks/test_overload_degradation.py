"""E-overload — the goodput knee: graceful degradation vs congestion collapse.

The same workload (steady open-loop arrivals against servers with a finite
service rate, plus a periodic stall on one node) is swept across offered
load with the overload controls **on** (bounded LIFO-under-pressure queue,
expired-work shedding at server and ingress, retry budget) and **off**
(unbounded FIFO queue, no shedding, unlimited retries). Goodput counts
only "ok" ops that finished within the op deadline measured from their
*scheduled* arrival — the user-facing SLO, not the dispatch-relative one.

The experiment asserts the PR's degradation contract:

* With controls on, goodput at 2x the per-node service rate holds at
  >= 70% of the pre-knee peak — overload sheds stale work for free and
  keeps serving fresh work inside the deadline.
* With controls off, the same 2x point *collapses*: every op waits out the
  full backlog, so almost nothing finishes inside the deadline.
* The whole sweep is deterministic: re-running a point yields a
  byte-identical BENCH payload.
"""

from __future__ import annotations

from repro.workload.report import build_workload_payload
from repro.workload.runner import ScenarioRunner
from repro.workload.scenario import Scenario

SERVICE_RATE = 100.0  # ops/s each server can actually service
RATES = (50, 100, 200)  # offered load: 0.5x, 1x, 2x the service rate
OP_DEADLINE_MS = 100.0


def make_scenario(rate: float, controls: bool) -> Scenario:
    return Scenario.from_obj({
        "schema_version": 1,
        "name": f"knee-{'on' if controls else 'off'}-{int(rate)}",
        "seed": 77,
        "cluster": {
            "nodes": 3, "capacity_mib": 48, "replicas": 1, "placement": True,
        },
        "population": {
            "objects": 80, "size": {"dist": "fixed", "bytes": 2048},
        },
        "traffic": {
            "ops": 600,
            "mix": {"read": 70, "write": 20, "delete": 5, "scan": 5},
            "scan_length": 8,
            "popularity": {"model": "zipfian", "s": 1.1},
            "arrival": {
                "mode": "open",
                "base_rate_ops_per_s": rate,
                "diurnal_amplitude": 0.0,
                "diurnal_period_s": 1.0,
            },
        },
        "overload": {
            "service_rate_ops_per_s": SERVICE_RATE,
            # Controls off: unbounded FIFO, never shed, retry forever.
            "queue_depth": 16 if controls else 0,
            "queue_discipline": "lifo" if controls else "fifo",
            "shed_expired": controls,
            "op_deadline_ms": OP_DEADLINE_MS,
            "retry_budget_per_s": 50 if controls else 0,
            "retry_budget_burst": 10,
            # A 120 ms stall on node-0 twice a second: the exogenous
            # backlog the bounded queue has to absorb or shed.
            "burst_backlog_ms": 120,
            "burst_period_s": 0.5,
            "burst_node": 0,
        },
    })


def run_point(rate: float, controls: bool):
    result = ScenarioRunner(make_scenario(rate, controls)).run()
    goodput = result.in_deadline_ops / (result.duration_ns / 1e9)
    return result, goodput


def sweep(controls: bool) -> dict[float, float]:
    return {rate: run_point(rate, controls)[1] for rate in RATES}


def test_goodput_knee_with_controls_on():
    """At 2x the service rate, goodput holds >= 70% of the pre-knee peak."""
    goodput = sweep(controls=True)
    pre_knee_peak = max(goodput[rate] for rate in RATES if rate <= SERVICE_RATE)
    at_2x = goodput[2 * SERVICE_RATE]
    assert pre_knee_peak > 0
    assert at_2x >= 0.7 * pre_knee_peak, (
        f"goodput collapsed with controls on: {at_2x:.1f} ops/s at 2x vs "
        f"pre-knee peak {pre_knee_peak:.1f} ops/s ({goodput})"
    )


def test_goodput_collapses_with_controls_off():
    """The identical 2x point collapses without the overload controls."""
    goodput = sweep(controls=False)
    pre_knee_peak = max(goodput[rate] for rate in RATES if rate <= SERVICE_RATE)
    at_2x = goodput[2 * SERVICE_RATE]
    assert pre_knee_peak > 0
    assert at_2x < 0.3 * pre_knee_peak, (
        f"expected congestion collapse with controls off, got {at_2x:.1f} "
        f"ops/s at 2x vs pre-knee peak {pre_knee_peak:.1f} ops/s ({goodput})"
    )


def test_controls_win_at_overload():
    """Head to head at 2x: controls on beats controls off outright."""
    _, on = run_point(2 * SERVICE_RATE, controls=True)
    _, off = run_point(2 * SERVICE_RATE, controls=False)
    assert on > 2 * off


def test_sweep_point_replays_byte_identical():
    """One overloaded point, run twice: identical BENCH payloads."""
    first, _ = run_point(2 * SERVICE_RATE, controls=True)
    second, _ = run_point(2 * SERVICE_RATE, controls=True)
    assert build_workload_payload(first) == build_workload_payload(second)
    assert first.overload_server == second.overload_server
    assert first.overload_client == second.overload_client
