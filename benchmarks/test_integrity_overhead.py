"""Integrity tax: what validated fabric reads cost on the paper's paths.

The header/validation machinery must not move the reproduced figures:

* Fig 7 (read throughput) — a validated remote read streams the 64-byte
  header alongside the payload, so the charged overhead is 64/size: ~0 %
  for the 1-8 MiB plateau objects, ~6 % worst-case for 1 kB objects
  (which still sit above the paper's stated small-object band floor).
* Fig 6 (retrieval latency) — descriptors carry three extra integrity
  fields; the per-object cost rides the existing Lookup RPC and stays
  well inside the figure's tolerance.
* CRC-on-read is *opt-in* (off by default, so Fig 7 is untouched) and its
  cost is exactly the configured ``checksum_ns_per_byte * size``.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig
from repro.common.units import KB, MiB, gib_per_s
from repro.core import Cluster


def _remote_read_ns(size: int, **store_overrides) -> int:
    """Simulated ns to sequentially read one *size*-byte remote object."""
    cfg = ClusterConfig(seed=7).with_store(
        capacity_bytes=64 * MiB, **store_overrides
    )
    cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oid = cluster.new_object_id()
    producer.put_bytes(oid, bytes(size))
    buf = consumer.get_one(oid)
    out = bytearray(size)
    t0 = cluster.clock.now_ns
    buf.read_into(out)
    return cluster.clock.now_ns - t0


def _remote_get_ns(size: int, **store_overrides) -> int:
    """Simulated ns for the Fig 6 retrieval step (lookup + buffer wiring)."""
    cfg = ClusterConfig(seed=7).with_store(
        capacity_bytes=64 * MiB, **store_overrides
    )
    cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oid = cluster.new_object_id()
    producer.put_bytes(oid, bytes(size))
    t0 = cluster.clock.now_ns
    consumer.get_one(oid)
    return cluster.clock.now_ns - t0


BARE = dict(integrity_headers=False, verify_remote_reads=False)


def test_plateau_throughput_overhead_is_negligible():
    size = 4 * MiB
    bare = _remote_read_ns(size, **BARE)
    validated = _remote_read_ns(size)
    assert validated >= bare
    assert (validated - bare) / bare < 0.001  # 64 bytes on 4 MiB
    # The Fig 7 remote plateau is untouched.
    assert gib_per_s(size, validated) == pytest.approx(5.75, rel=0.05)


def test_small_object_throughput_overhead_is_headers_over_size():
    size = 1 * KB
    bare = _remote_read_ns(size, **BARE)
    validated = _remote_read_ns(size)
    overhead = (validated - bare) / bare
    # One 64-byte header charged per 1000-byte stream, plus nothing hidden.
    assert overhead == pytest.approx(64 / size, abs=0.03)
    assert overhead < 0.10
    # Still above the small-object band floor the Fig 7 test enforces.
    assert gib_per_s(size, validated) > 4.8


def test_fig6_retrieval_overhead_within_tolerance():
    size = 100 * KB
    bare = _remote_get_ns(size, **BARE)
    validated = _remote_get_ns(size)
    # The integrity fields ride the existing Lookup RPC; the retrieval
    # latency the Fig 6 anchors check moves by well under its 25 % rel
    # tolerance.
    assert abs(validated - bare) / bare < 0.10


def test_checksum_on_read_costs_exactly_what_config_says():
    size = 1 * MiB
    ns_per_byte = 0.5
    plain = _remote_read_ns(size)
    checked = _remote_read_ns(
        size,
        verify_checksum_on_read=True,
        checksum_ns_per_byte=ns_per_byte,
    )
    assert checked - plain == pytest.approx(ns_per_byte * size, rel=0.01)


def test_checksum_on_read_is_off_by_default():
    cfg = ClusterConfig()
    assert cfg.store.integrity_headers is True
    assert cfg.store.verify_remote_reads is True
    assert cfg.store.verify_checksum_on_read is False
    assert cfg.store.checksum_ns_per_byte == 0.0
