"""E10 — eviction policy ablation.

Plasma's LRU-with-pinning is what the paper's eviction discussion builds
on; this ablation quantifies the policy choice under a streaming workload
with a hot set:

  * a producer streams large cold batches through a store far smaller than
    the stream (eviction constantly active);
  * a small set of hot objects is re-read every round;
  * whenever a hot object has been evicted, the producer must recreate it
    (the cost the policy is supposed to avoid).

Expected shape: LRU protects the hot set (recency), largest-first protects
it even harder (hot objects are small), FIFO sacrifices it.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig
from repro.common.ids import ObjectID
from repro.common.units import KB, MiB
from repro.core import Cluster

STORE_CAPACITY = 24 * MiB
COLD_BATCH = 2 * MiB
HOT_OBJECTS = 8
HOT_SIZE = 64 * KB
ROUNDS = 40


def run_streaming_workload(policy: str) -> dict:
    cfg = ClusterConfig().with_store(
        capacity_bytes=STORE_CAPACITY, eviction_policy=policy
    )
    cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
    producer = cluster.client("node0")
    hot_ids = [ObjectID.from_int(i) for i in range(HOT_OBJECTS)]
    hot_payload = bytes(HOT_SIZE)
    for oid in hot_ids:
        producer.put_bytes(oid, hot_payload)

    recreations = 0
    t0 = cluster.clock.now_ns
    for round_no in range(ROUNDS):
        producer.put_bytes(
            ObjectID.from_int(1000 + round_no), bytes(COLD_BATCH)
        )
        for oid in hot_ids:
            if not cluster.store("node0").contains(oid):
                producer.put_bytes(oid, hot_payload)  # the miss penalty
                recreations += 1
            producer.get_one(oid)
            producer.release(oid)
    elapsed_ms = (cluster.clock.now_ns - t0) / 1e6
    return {
        "policy": policy,
        "recreations": recreations,
        "elapsed_ms": elapsed_ms,
        "evictions": cluster.store("node0").counters.get("objects_evicted"),
    }


def test_eviction_policy_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_streaming_workload(p) for p in ("lru", "fifo", "largest_first")],
        rounds=1,
        iterations=1,
    )
    print("\nEviction-policy ablation (hot set under streaming pressure):")
    for row in rows:
        print(
            f"  {row['policy']:<14} hot-recreations={row['recreations']:>3} "
            f"evictions={row['evictions']:>3} total={row['elapsed_ms']:8.2f} ms"
        )
    by = {row["policy"]: row for row in rows}
    # FIFO keeps evicting the (old) hot set; recency/size-aware policies
    # protect it.
    assert by["fifo"]["recreations"] > by["lru"]["recreations"]
    assert by["largest_first"]["recreations"] <= by["lru"]["recreations"]
    # Which shows up as end-to-end time.
    assert by["lru"]["elapsed_ms"] <= by["fifo"]["elapsed_ms"]


def test_eviction_throughput_wall_clock(benchmark):
    """Real wall-time of an eviction-heavy create loop (policy machinery
    itself must stay cheap)."""
    cfg = ClusterConfig().with_store(capacity_bytes=8 * MiB)
    cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
    producer = cluster.client("node0")
    counter = iter(range(10_000_000))

    def op():
        producer.put_bytes(
            ObjectID.from_int(10_000 + next(counter)), bytes(MiB)
        )

    benchmark(op)
    assert cluster.store("node0").counters.get("objects_evicted") > 0
