"""E8 — multi-node (> 2) operation (paper §V-B future work, implemented).

"The currently presented system is implemented to accommodate a 2 node
system. For rack-scale solutions, this needs to be modified to accommodate
multiple nodes. The current system design allows for this modification."

Measures the wide-dependency exchange (every node reads every node's
partition) as the cluster grows, using Table I spec 4's object size.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig
from repro.common.units import KB, MiB
from repro.core import Cluster

OBJECT_SIZE = 1000 * KB
PARTITIONS_PER_NODE = 4


def cfg():
    return ClusterConfig().with_store(capacity_bytes=64 * MiB)


def wide_exchange(n_nodes: int) -> dict:
    """All-to-all consumption; returns simulated timings and counters."""
    cluster = Cluster(cfg(), n_nodes=n_nodes, check_remote_uniqueness=False)
    clients = {n: cluster.client(n) for n in cluster.node_names()}
    ids_by_node = {}
    payload = bytes(OBJECT_SIZE)
    for name in cluster.node_names():
        ids = cluster.new_object_ids(PARTITIONS_PER_NODE)
        for oid in ids:
            clients[name].put_bytes(oid, payload)
        ids_by_node[name] = ids
    t0 = cluster.clock.now_ns
    for reader_name, reader in clients.items():
        for home_name, ids in ids_by_node.items():
            bufs = reader.get(ids)
            for buf in bufs:
                buf.charge_sequential_read()
            for oid in ids:
                reader.release(oid)
    elapsed_ms = (cluster.clock.now_ns - t0) / 1e6
    total_reads = n_nodes * n_nodes * PARTITIONS_PER_NODE
    return {
        "nodes": n_nodes,
        "elapsed_ms": elapsed_ms,
        "per_read_ms": elapsed_ms / total_reads,
        "remote_fraction": (n_nodes - 1) / n_nodes,
    }


def test_scaling_2_to_6_nodes(benchmark):
    def run():
        return [wide_exchange(n) for n in (2, 3, 4, 6)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nWide-dependency all-to-all exchange (spec-4 sized objects):")
    for row in rows:
        print(
            f"  {row['nodes']} nodes: total {row['elapsed_ms']:8.1f} ms, "
            f"per read {row['per_read_ms']:.3f} ms "
            f"(remote fraction {row['remote_fraction']:.0%})"
        )
    # Total work grows ~quadratically with node count (all-to-all)...
    assert rows[-1]["elapsed_ms"] > rows[0]["elapsed_ms"] * 4
    # ...while per-read cost grows slowly (only the remote fraction and the
    # per-batch RPC change), staying ms-order — the design scales.
    assert rows[-1]["per_read_ms"] < 4 * rows[0]["per_read_ms"]


def test_placement_transparency_at_scale(benchmark):
    """At 6 nodes a client still resolves any object with one batched RPC
    per peer at worst, stopping at the first claimant."""
    cluster = Cluster(cfg(), n_nodes=6, check_remote_uniqueness=False)
    producer = cluster.client("node5")
    ids = cluster.new_object_ids(10)
    for oid in ids:
        producer.put_bytes(oid, bytes(1000))
    consumer = cluster.client("node0")

    def op():
        bufs = consumer.get(ids)
        for oid in ids:
            consumer.release(oid)
        return bufs

    bufs = benchmark(op)
    assert all(b.location == "remote:node5" for b in bufs)
