"""Every standing scenario must reproduce its committed golden artifact.

``benchmarks/golden/`` holds the canonical BENCH payload for each standing
scenario — the byte-level perf trajectory. A run is a pure function of
(scenario, seed), so any diff here is either an intentional perf change
(update the golden in the same commit, explain why) or a determinism
regression (fix it). In particular this pins the sync-path artifacts
across async-RPC-core changes: ``rpc_mode="sync"`` must stay
byte-identical to the unary baseline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workload.report import bench_artifact_name, dumps_bench
from repro.workload.runner import run_scenario
from repro.workload.scenario import load_scenario

SCENARIOS = Path(__file__).parent / "scenarios"
GOLDEN = Path(__file__).parent / "golden"

STANDING = (
    "uniform-smoke",
    "zipfian-read-heavy",
    "hotspot-multi-tenant",
    "diurnal-churn",
    "overload-burst",
    "zipfian-tiered",
    "zipfian-async",
)


def test_every_standing_scenario_has_a_golden():
    for name in STANDING:
        assert (GOLDEN / bench_artifact_name(name)).is_file(), name


@pytest.mark.parametrize("name", STANDING)
def test_artifact_matches_golden(name):
    scenario = load_scenario(SCENARIOS / f"{name}.json")
    _, payload = run_scenario(scenario)
    golden = (GOLDEN / bench_artifact_name(name)).read_text(encoding="utf-8")
    assert dumps_bench(payload) == golden
