"""E1 — Table I: the six benchmark specifications.

Regenerates the paper's Table I verbatim and benchmarks the workload
generator that realises it (payload synthesis for one spec).
"""

from repro.bench import TABLE_I, format_table1, make_payloads, spec_by_index
from repro.common.rng import DeterministicRng


def test_table1_regenerated(benchmark):
    text = benchmark.pedantic(format_table1, rounds=1, iterations=1)
    print()
    print(text)
    # The printed table must contain every paper row.
    for spec in TABLE_I:
        assert str(spec.num_objects) in text
        assert str(spec.object_size_kb) in text
    assert len(TABLE_I) == 6


def test_workload_generation_throughput(benchmark):
    """Wall-clock cost of synthesising one spec-3 payload (100 kB)."""
    spec = spec_by_index(3)
    rng = DeterministicRng(1)

    result = benchmark(lambda: make_payloads(spec, rng))
    assert len(result.payload) == spec.object_size_bytes
