"""E-chaos — resilience under a deterministic node crash.

A Table I spec-4 style workload (100 x 1000 kB objects, homed on node1,
read from node0) runs while a seeded :class:`FaultPlan` kills node1's
store process mid-run. The experiment asserts the PR's resilience
contract:

* ``replicas=1`` — reads of dead-node objects fail *typed* and *bounded*:
  :class:`ObjectUnavailableError` within the configured deadline.
* ``replicas=2`` — every read still succeeds, served by lookup failover
  to the replica holder.
* The per-peer circuit breaker caps the post-crash lookup cost: once
  open, a failed lookup costs less than one RPC round trip.
* The whole scenario is deterministic: replaying the same seed yields an
  identical fault timeline, outcome counts, and store counters.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import spec_by_index
from repro.chaos import FaultPlan, NodeCrash
from repro.common.config import ClusterConfig
from repro.common.errors import ObjectUnavailableError
from repro.common.units import MiB
from repro.core import Cluster

CRASH_AT_NS = 5_000_000  # node1 dies 5 ms into the run
DEADLINE_NS = 20_000_000.0  # 20 ms per-call budget
SPEC = spec_by_index(4)  # 100 objects x 1000 kB


def build_cluster(seed: int, n_nodes: int) -> Cluster:
    config = ClusterConfig(seed=seed).with_store(capacity_bytes=512 * MiB)
    config = replace(
        config, rpc=replace(config.rpc, default_deadline_ns=DEADLINE_NS)
    )
    plan = FaultPlan([NodeCrash(at_ns=CRASH_AT_NS, node="node1")])
    return Cluster(config, n_nodes=n_nodes, fault_plan=plan)


def run_scenario(seed: int, replicas: int, n_nodes: int = 3) -> dict:
    """Produce on node1, crash it, read everything from node0."""
    cluster = build_cluster(seed, n_nodes)
    producer = cluster.client("node1")
    reader = cluster.client("node0")
    pattern = b"resilience!"
    payload = (pattern * (SPEC.object_size_bytes // len(pattern) + 1))[
        : SPEC.object_size_bytes
    ]
    ids = cluster.new_object_ids(SPEC.num_objects)
    producer.put_batch([(oid, payload) for oid in ids], replicas=replicas)

    # Let the fault plan fire (polled on the next health tick / RPC).
    cluster.clock.advance(max(0, CRASH_AT_NS - cluster.clock.now_ns))
    cluster.health_tick()
    assert cluster.chaos is not None
    assert cluster.chaos.node_crashed("node1")

    ok = unavailable = 0
    lookup_costs_ns: list[float] = []
    for oid in ids:
        t0 = cluster.clock.now_ns
        try:
            data = reader.get_bytes(oid)
            assert len(data) == SPEC.object_size_bytes
            ok += 1
        except ObjectUnavailableError as exc:
            assert "node1" in exc.unreachable_peers
            unavailable += 1
        lookup_costs_ns.append(cluster.clock.now_ns - t0)
    return {
        "timeline": tuple(cluster.chaos.timeline()),
        "ok": ok,
        "unavailable": unavailable,
        "lookup_costs_ns": lookup_costs_ns,
        "reader_counters": cluster.store("node0").counters.snapshot(),
        "round_trip_ns": cluster.config.rpc.round_trip_ns,
    }


def test_replicated_objects_survive_the_crash():
    result = run_scenario(seed=21, replicas=2)
    assert result["ok"] == SPEC.num_objects
    assert result["unavailable"] == 0
    print(
        f"\nreplicas=2: {result['ok']}/{SPEC.num_objects} reads served "
        "via failover after the home store crashed"
    )


def test_single_copy_objects_fail_typed_and_bounded():
    result = run_scenario(seed=21, replicas=1)
    assert result["ok"] == 0
    assert result["unavailable"] == SPEC.num_objects
    # Every failed read was bounded by the per-call deadline (plus the
    # fabric/IPC overhead around the lookup itself, well under one extra
    # round trip).
    bound = DEADLINE_NS + result["round_trip_ns"]
    worst = max(result["lookup_costs_ns"])
    assert worst <= bound, f"worst failed read {worst / 1e6:.3f} ms"
    print(
        f"\nreplicas=1: {result['unavailable']} typed failures, worst "
        f"{worst / 1e6:.3f} ms (deadline {DEADLINE_NS / 1e6:.0f} ms)"
    )


def test_breaker_caps_post_crash_lookup_cost():
    # Two nodes: the reader's only peer is the dead one, so the whole
    # post-crash lookup cost is the cost of talking to a corpse.
    result = run_scenario(seed=21, replicas=1, n_nodes=2)
    costs = result["lookup_costs_ns"]
    # Early lookups pay retries up to the deadline; once the breaker
    # opens, a failed lookup costs less than a single RPC round trip.
    assert costs[0] > result["round_trip_ns"]
    tail = costs[len(costs) // 2 :]
    assert max(tail) < result["round_trip_ns"], (
        f"breaker did not cap lookup cost: {max(tail) / 1e6:.3f} ms vs "
        f"round trip {result['round_trip_ns'] / 1e6:.3f} ms"
    )
    print(
        f"\nbreaker: first failed lookup {costs[0] / 1e6:.3f} ms, "
        f"steady-state {max(tail) / 1e3:.1f} us "
        f"(round trip {result['round_trip_ns'] / 1e6:.3f} ms)"
    )


def test_scenario_is_deterministic():
    a = run_scenario(seed=21, replicas=2)
    b = run_scenario(seed=21, replicas=2)
    assert a["timeline"] == b["timeline"]
    assert (a["ok"], a["unavailable"]) == (b["ok"], b["unavailable"])
    assert a["reader_counters"] == b["reader_counters"]
    assert a["lookup_costs_ns"] == b["lookup_costs_ns"]
