"""E6 — object-sharing strategy ablation (paper §IV-A2).

The paper enumerates three ways stores could share object information and
picks gRPC; its future work suggests the disaggregated-memory hash map
"would likely improve performance but requires additional work". This
benchmark measures all of them, plus the scale-out baseline the
introduction argues against:

  strategy            metadata path                      payload path
  ------------------  ---------------------------------  -------------
  rpc (paper)         gRPC Lookup (~2.3 ms round trip)   fabric read
  dmsg (§IV-A2 (2))   ring messages over the fabric      fabric read
  hashmap (future)    fabric line loads (~1.1 us/probe)  fabric read
  scale-out (Fig 1a)  gRPC lookup                        LAN bulk copy
"""

from __future__ import annotations

import pytest

from repro.baseline import ScaleOutCluster
from repro.common.config import ClusterConfig
from repro.common.units import KB, MiB
from repro.core import Cluster

N_OBJECTS = 50
OBJECT_SIZE = 1000 * KB  # Table I spec 4 object size


def _commit(cluster):
    producer = cluster.client("node0")
    ids = cluster.new_object_ids(N_OBJECTS)
    payload = bytes(OBJECT_SIZE)
    for oid in ids:
        producer.put_bytes(oid, payload)
    return ids


def _consume_remote(cluster, ids) -> float:
    """Remote client retrieves and reads everything; returns simulated ms."""
    consumer = cluster.client("node1")
    t0 = cluster.clock.now_ns
    bufs = consumer.get(ids)
    for buf in bufs:
        buf.charge_sequential_read()
    for oid in ids:
        consumer.release(oid)
    return (cluster.clock.now_ns - t0) / 1e6


def cfg():
    return ClusterConfig().with_store(capacity_bytes=128 * MiB)


def test_sharing_strategy_comparison(benchmark):
    def run():
        rows = {}
        cl = Cluster(cfg(), n_nodes=2, check_remote_uniqueness=False)
        rows["rpc"] = _consume_remote(cl, _commit(cl))

        cl = Cluster(
            cfg(), n_nodes=2, sharing="dmsg", check_remote_uniqueness=False
        )
        rows["dmsg"] = _consume_remote(cl, _commit(cl))

        cl = Cluster(
            cfg(), n_nodes=2, sharing="hashmap", check_remote_uniqueness=False
        )
        rows["hashmap"] = _consume_remote(cl, _commit(cl))

        cl = Cluster(
            cfg(), n_nodes=2, sharing="hybrid", check_remote_uniqueness=False
        )
        rows["hybrid"] = _consume_remote(cl, _commit(cl))

        so = ScaleOutCluster(cfg(), n_nodes=2)
        ids = _commit(so)
        consumer = so.client("node1")
        t0 = so.clock.now_ns
        bufs = consumer.get(ids)  # fetch = full LAN copy
        for buf in bufs:
            buf.charge_sequential_read()
        for oid in ids:
            consumer.release(oid)
        rows["scale-out"] = (so.clock.now_ns - t0) / 1e6
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nRemote consumption of {N_OBJECTS} x {OBJECT_SIZE // KB} kB "
        f"(simulated ms): "
        + ", ".join(f"{k}={v:.2f}" for k, v in rows.items())
    )
    # Who wins, and by roughly what factor:
    # both fabric metadata planes avoid the gRPC round trip -> beat rpc.
    assert rows["hashmap"] < rows["rpc"]
    assert rows["dmsg"] < rows["rpc"]
    # All disaggregated strategies beat copying the payload over the LAN.
    assert rows["rpc"] < rows["scale-out"] / 2
    # The rpc/fabric-metadata gap is roughly the gRPC round trip (~2.3 ms),
    # not orders of magnitude — the paper's argument that LAN lookup is
    # "simple, robust and performant" enough for a prototype.
    assert rows["rpc"] - rows["hashmap"] < 5.0
    # dmsg pays ring/poll overhead over raw directory probes but keeps the
    # bidirectional feedback hashmap cannot offer.
    assert rows["dmsg"] >= rows["hashmap"] * 0.9
    # The paper's §V-B hybrid guess holds: directory lookups + messaging
    # feedback lands with the fabric-metadata strategies, far below rpc.
    assert rows["hybrid"] < rows["rpc"]


def test_hashmap_probe_cost_scaling(benchmark):
    """Directory lookups stay cheap even under collision pressure."""

    def run():
        cl = Cluster(
            cfg(),
            n_nodes=2,
            sharing="hashmap",
            check_remote_uniqueness=False,
            directory_buckets=256,
        )
        producer = cl.client("node0")
        consumer = cl.client("node1")
        ids = cl.new_object_ids(128)  # 50 % load factor
        for oid in ids:
            producer.put_bytes(oid, b"x" * 64)
        t0 = cl.clock.now_ns
        for oid in ids:
            consumer.get_one(oid)
            consumer.release(oid)
        elapsed_us_per_lookup = (cl.clock.now_ns - t0) / len(ids) / 1e3
        return elapsed_us_per_lookup

    us = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nper-lookup cost at 50% load: {us:.1f} us (incl. IPC)")
    # Dominated by the ~55 us IPC, with a handful of ~1.1 us probes on top;
    # far below the ~2300 us gRPC path.
    assert us < 300


def test_rpc_lookup_wall_clock(bench_cluster, benchmark):
    """Real wall-time of one batched Lookup RPC for 50 ids."""
    p = bench_cluster.client("node0")
    ids = bench_cluster.new_object_ids(50)
    for oid in ids:
        p.put_bytes(oid, b"y")
    stub = bench_cluster.node("node1").channels["node0"].stub(
        "plasma.StoreService"
    )
    payload = {"object_ids": [oid.binary() for oid in ids]}

    response = benchmark(lambda: stub.Lookup(payload))
    assert len(response["found"]) == 50
