"""Async event-loop RPC core vs the unary baseline (zipfian-async anchor).

The same zipfian read-heavy mix, the same 1000 ops/s open-loop arrivals,
the same seed — once through the classic serial unary path and once
through the event-loop task plane (pipelined concurrent ops, coalesced
per-peer lookups, scans as one batched multi-get). The sync path is
serially bound by per-op round trips, so it saturates well below the
offered rate; the async path overlaps transport waits and must clear at
least twice the sync throughput. Both runs are pure functions of
(scenario, seed): the async artifact must reproduce byte for byte.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.workload.report import dumps_bench
from repro.workload.runner import run_scenario
from repro.workload.scenario import load_scenario

SCENARIO = Path(__file__).parent / "scenarios" / "zipfian-async.json"


@pytest.fixture(scope="module")
def async_runs():
    scenario = load_scenario(SCENARIO)
    return run_scenario(scenario), run_scenario(scenario)


@pytest.fixture(scope="module")
def sync_payload():
    scenario = load_scenario(SCENARIO)
    scenario = dataclasses.replace(
        scenario, rpc=dataclasses.replace(scenario.rpc, mode="sync")
    )
    return run_scenario(scenario)[1]


def test_async_at_least_2x_sync_throughput(async_runs, sync_payload):
    (_, async_payload), _ = async_runs
    async_rate = async_payload["sim"]["ops_per_s"]
    sync_rate = sync_payload["sim"]["ops_per_s"]
    assert sync_rate > 0
    speedup = async_rate / sync_rate
    print(
        f"\nzipfian-async: sync {sync_rate:.1f} ops/s, "
        f"async {async_rate:.1f} ops/s ({speedup:.2f}x)"
    )
    assert speedup >= 2.0


def test_async_run_twice_byte_identical(async_runs):
    (_, first), (_, second) = async_runs
    assert dumps_bench(first) == dumps_bench(second)


def test_async_pipelines_and_batches(async_runs):
    (result, payload), _ = async_runs
    counters = payload["rpc"]["counters"]
    # Concurrency actually happened: more than one request in flight to a
    # single peer, and id-list calls shared wire messages.
    assert counters["in_flight_peak"] >= 2
    assert counters["batches_sent"] >= 1
    assert counters["batched_ids"] >= counters["batched_requests"]
    assert counters["tasks_completed"] == counters["tasks_started"]
    assert result.rpc_mode == "async"


def test_async_attribution_sums_exactly(async_runs):
    (_, payload), _ = async_runs
    attribution = payload["rpc"]["attribution"]
    assert attribution["exact"] is True
    for table in (attribution["by_kind"], attribution["by_tenant"]):
        for slot in table.values():
            assert sum(slot["components_ns"].values()) == slot["observed_ns"]


def test_sync_mode_artifact_has_no_async_counters(sync_payload):
    counters = sync_payload["rpc"]["counters"]
    assert counters["tasks_started"] == 0
    assert counters["batches_sent"] == 0
