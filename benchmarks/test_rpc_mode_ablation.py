"""E9 — gRPC configuration ablation (paper §IV-A2 design choices).

"The gRPC protocol was configured in synchronous mode due to its favorable
servicing latency. ... Additionally, gRPC was configured in unary mode to
minimize protocol overhead for the messages being sent."

Three ways a store could resolve N remote ids:

  per-object unary   — one Lookup call per id (N round trips);
  batched unary      — the paper's actual protocol: all ids in one message;
  streaming          — one connection round trip, one framed message per id.

The expected shape: batched unary wins (the paper's choice is right for
this workload); streaming recovers most of the gap for callers that cannot
batch; per-object unary is catastrophically round-trip-bound.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig
from repro.common.units import MiB
from repro.core import Cluster

N_IDS = 200


@pytest.fixture()
def loaded_cluster():
    cfg = ClusterConfig().with_store(capacity_bytes=64 * MiB)
    cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
    producer = cluster.client("node0")
    ids = cluster.new_object_ids(N_IDS)
    for oid in ids:
        producer.put_bytes(oid, b"k" * 256)
    return cluster, ids


def test_rpc_mode_comparison(loaded_cluster, benchmark):
    cluster, ids = loaded_cluster
    stub_channel = cluster.node("node1").channels["node0"]
    service = "plasma.StoreService"

    rounds = 20  # average out the ~18% log-normal gRPC jitter

    def run():
        rows = {}
        t0 = cluster.clock.now_ns
        for oid in ids:
            stub_channel.unary_call(service, "Lookup", {"object_ids": [oid.binary()]})
        rows["per-object unary"] = (cluster.clock.now_ns - t0) / 1e6
        t0 = cluster.clock.now_ns
        for _ in range(rounds):
            stub_channel.unary_call(
                service, "Lookup", {"object_ids": [oid.binary() for oid in ids]}
            )
        rows["batched unary"] = (cluster.clock.now_ns - t0) / 1e6 / rounds
        t0 = cluster.clock.now_ns
        for _ in range(rounds):
            stub_channel.stream_call(
                service, "Lookup", [{"object_ids": [oid.binary()]} for oid in ids]
            )
        rows["streaming"] = (cluster.clock.now_ns - t0) / 1e6 / rounds
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nResolving {N_IDS} remote ids (simulated ms):")
    for label, ms in rows.items():
        print(f"  {label:<18}: {ms:9.2f} ms")

    # Shape: batched unary (the paper's protocol) is fastest; streaming is
    # within ~2x of it; per-object unary pays ~N round trips.
    assert rows["batched unary"] < rows["streaming"]
    assert rows["streaming"] < rows["per-object unary"] / 20
    assert rows["per-object unary"] > N_IDS * 2.0  # >= N x ~2.3 ms RTT


def test_streaming_wall_clock(loaded_cluster, benchmark):
    """Real wall-time of a 200-message streaming Lookup."""
    cluster, ids = loaded_cluster
    channel = cluster.node("node1").channels["node0"]
    requests = [{"object_ids": [oid.binary()]} for oid in ids]

    responses = benchmark(
        lambda: channel.stream_call("plasma.StoreService", "Lookup", requests)
    )
    assert len(responses) == N_IDS


def test_retry_overhead_under_faults(benchmark):
    """With a lossy LAN (25 % attempt failure), retries keep the protocol
    correct at a quantifiable latency cost."""
    import dataclasses

    def run():
        rows = {}
        for label, rate in (("clean", 0.0), ("lossy 25%", 0.25)):
            base = ClusterConfig().with_store(capacity_bytes=64 * MiB)
            cfg = dataclasses.replace(
                base,
                rpc=dataclasses.replace(
                    base.rpc, inject_failure_rate=rate, max_retries=8
                ),
            )
            cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
            producer = cluster.client("node0")
            consumer = cluster.client("node1")
            ids = cluster.new_object_ids(40)
            for oid in ids:
                producer.put_bytes(oid, b"r" * 128)
            t0 = cluster.clock.now_ns
            for oid in ids:
                consumer.get_one(oid)
                consumer.release(oid)
            rows[label] = (cluster.clock.now_ns - t0) / 1e6
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n40 remote gets: clean {rows['clean']:.1f} ms, "
          f"lossy {rows['lossy 25%']:.1f} ms "
          f"({rows['lossy 25%'] / rows['clean']:.2f}x)")
    assert rows["lossy 25%"] > rows["clean"] * 1.1
    assert rows["lossy 25%"] < rows["clean"] * 3.0  # retries, not collapse