"""Span-tracing overhead guarantees on the Fig 6/7 hot paths.

Same contract the metrics plane honors (benchmarks/test_obs_overhead.py):

* **Zero simulated-ns overhead.** The span sink only listens to clock
  advances — it never advances the clock and never consumes shared RNG
  (its sampling stream is a pure spawn) — so the final simulated
  timestamp is bit-identical with tracing enabled, disabled, and at any
  sample rate.
* **Bounded wall-clock overhead.** With tracing off every handle is
  ``None`` and the hot path pays a single ``is None`` test; fully
  enabled it must stay within a loose constant factor.
"""

import time

from repro.common.config import ClusterConfig
from repro.common.units import KiB, MiB
from repro.core import Cluster
from repro.obs.spans import SpanConfig

N_OBJECTS = 50
OBJ_BYTES = 10 * KiB


def _run_fig67_workload(*, tracing=None) -> tuple[int, dict]:
    """The Fig 6/7 shape: put on node0, remote get + sequential read from
    node1. Returns (final simulated ns, cluster stats)."""
    cluster = Cluster(
        ClusterConfig(seed=123).with_store(capacity_bytes=64 * MiB),
        n_nodes=2,
        check_remote_uniqueness=False,
        tracing=tracing,
    )
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oids = cluster.new_object_ids(N_OBJECTS)
    for i, oid in enumerate(oids):
        producer.put_bytes(oid, bytes([i % 251]) * OBJ_BYTES)
    for oid in oids:
        [buf] = consumer.get([oid])
        buf.read_all()
        consumer.release(oid)
    return cluster.clock.now_ns, cluster.stats()


class TestSimulatedTimeNeutrality:
    def test_tracing_adds_zero_simulated_ns(self):
        ns_off, stats_off = _run_fig67_workload()
        ns_on, stats_on = _run_fig67_workload(tracing=True)
        assert ns_on == ns_off
        assert stats_on == stats_off

    def test_sample_rate_does_not_perturb_time(self):
        ns_full, _ = _run_fig67_workload(tracing=SpanConfig(sample_rate=1.0))
        ns_none, _ = _run_fig67_workload(tracing=SpanConfig(sample_rate=0.0))
        assert ns_full == ns_none

    def test_flight_only_config_matches_plain(self):
        # The simtest/chaos configuration: rings only, nothing retained.
        ns_plain, _ = _run_fig67_workload()
        ns_flight, _ = _run_fig67_workload(
            tracing=SpanConfig(sample_rate=0.0, max_traces=0)
        )
        assert ns_flight == ns_plain


class TestDisabledPathIsFree:
    def test_untraced_cluster_builds_no_sink(self):
        cluster = Cluster(
            ClusterConfig(seed=123).with_store(capacity_bytes=64 * MiB),
            n_nodes=2,
            check_remote_uniqueness=False,
        )
        assert cluster.spans is None


class TestWallClockOverhead:
    def _time(self, **kwargs) -> float:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            _run_fig67_workload(**kwargs)
            best = min(best, time.perf_counter() - t0)
        return best

    def test_enabled_overhead_is_bounded(self):
        """Very loose bound — a tripwire for accidentally putting
        allocation or formatting on the hot path, not a precise ratio."""
        base = self._time()
        traced = self._time(tracing=True)
        assert traced < 3.0 * base + 0.05, (
            f"tracing=True {traced:.3f}s vs baseline {base:.3f}s"
        )
