"""E4 — create/write/seal timing (§IV-B measures it; §V-A does not plot it).

The paper measures "creation, writing, and sealing of the objects" per
benchmark. No absolute anchors are stated, so the assertions are structural:
the phase scales with bytes written, and the paper-literal per-create
uniqueness RPC dominates when enabled.
"""

import pytest

from repro.bench import MicroBenchConfig, run_spec, spec_by_index
from repro.bench.reporting import format_create_seal


def test_create_seal_series(table_results, benchmark):
    results = table_results
    print()
    print(
        benchmark.pedantic(
            lambda: format_create_seal(results), rounds=1, iterations=1
        )
    )
    # The phase cost model is T = 3n * ipc + bytes / write_bw (three IPC
    # round trips per object: create, seal, release; then the payload
    # write). Both terms must be visible: the spec with the most objects is
    # IPC-bound, the spec with the most bytes is bandwidth-bound.
    from repro.common.config import ClusterConfig

    ipc = ClusterConfig().ipc
    write_bw = ClusterConfig().local_memory.write_bandwidth_bps
    for r in results:
        ipc_floor = 3 * r.spec.num_objects * (
            ipc.request_overhead_ns + ipc.per_object_ns
        )
        write_floor = r.spec.total_bytes / write_bw * 1e9
        assert r.create_seal_ns.mean > 0.8 * max(ipc_floor, write_floor)
        assert r.create_seal_ns.mean < 3.0 * (ipc_floor + write_floor)


def test_paper_literal_uniqueness_rpc_dominates(benchmark):
    """With the per-create Contains RPC (paper §IV-A2), creation cost is
    gRPC-bound: ~2.3 ms per object against ~10 us without."""

    def run_both():
        amortised = run_spec(
            spec_by_index(6), MicroBenchConfig(repetitions=3)
        )
        literal = run_spec(
            spec_by_index(6),
            MicroBenchConfig(repetitions=3, per_create_uniqueness_rpc=True),
        )
        return amortised, literal

    amortised, literal = benchmark.pedantic(run_both, rounds=1, iterations=1)
    n = spec_by_index(6).num_objects
    per_obj_literal_ms = literal.create_seal_ns.mean / n / 1e6
    per_obj_amortised_ms = amortised.create_seal_ns.mean / n / 1e6
    print(
        f"\ncreate+seal per object: amortised {per_obj_amortised_ms:.3f} ms, "
        f"per-create-RPC {per_obj_literal_ms:.3f} ms"
    )
    # Spec 6 objects are 100 MB, so the write term (~15.7 ms/object at
    # 6 GiB/s) dominates both modes; the literal mode adds one ~2.3 ms
    # Contains round trip per object on top.
    extra_ms = per_obj_literal_ms - per_obj_amortised_ms
    assert 1.5 < extra_ms < 4.5


def test_create_wall_clock(bench_cluster, benchmark):
    """Real wall-time of create+write+seal+delete for a 100 kB object."""
    client = bench_cluster.client("node0")
    payload = bytes(100_000)
    counter = iter(range(10**9))

    def op():
        oid = bench_cluster.new_object_id()
        next(counter)
        client.put_bytes(oid, payload)
        client.delete(oid)

    benchmark(op)
