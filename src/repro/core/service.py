"""The RPC service every disaggregated store exposes to its peers.

Paper §IV-A2: "upon a client request for a remote object, the local Plasma
store makes an RPC call to look up the object identifier(s) in the remote
store ... Similarly, on object creation, RPC calls are used to ensure the
uniqueness of object identifiers."

Methods:

* ``Lookup``   — batched id -> sealed-object descriptors (offset within the
  exposed region, size, metadata), the heart of remote retrieval.
* ``Contains`` — batched existence check for id-uniqueness at creation.
* ``AddRef`` / ``ReleaseRef`` — the distributed object-usage-sharing
  extension (paper future work): a peer declares that its clients are using
  one of our objects, pinning it against eviction.
* ``NotifyDeleted`` — home-store push used to invalidate peers' lookup
  caches (paper future work: caching "could result in corrupted object
  buffers if not handled carefully" — this is the careful handling).

Every handler runs under the store's object-table mutex, modelling the
paper's gRPC-server-thread / main-thread contention point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.ids import ObjectID
from repro.rpc.service import Service, rpc_method

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.store import DisaggregatedStore


class StoreService(Service):
    SERVICE_NAME = "plasma.StoreService"

    def __init__(self, store: "DisaggregatedStore"):
        self._store = store

    def _ids_from(self, request: dict, key: str = "object_ids") -> list[ObjectID]:
        raw = request.get(key)
        if not isinstance(raw, list) or not raw:
            raise ValueError(f"request field {key!r} must be a non-empty list")
        return [ObjectID(item) for item in raw]

    @rpc_method
    def Lookup(self, request: dict) -> dict:
        """Return descriptors for every requested id sealed in this store."""
        object_ids = self._ids_from(request)
        found: list[dict] = []
        with self._store.table.lock:
            for oid in object_ids:
                descriptor = self._store.lookup_descriptor(oid)
                if descriptor is not None:
                    found.append(descriptor)
        return {"found": found, "store": self._store.name}

    @rpc_method
    def Contains(self, request: dict) -> dict:
        """Batched existence check (unsealed objects count: their ids are
        reserved the moment they are created)."""
        object_ids = self._ids_from(request)
        with self._store.table.lock:
            present = [self._store.contains(oid) for oid in object_ids]
        return {"present": present}

    @rpc_method
    def AddRef(self, request: dict) -> dict:
        """A peer's client started using one of our objects: pin it."""
        object_ids = self._ids_from(request)
        with self._store.table.lock:
            for oid in object_ids:
                self._store.add_ref(oid, remote=True)
        return {}

    @rpc_method
    def ReleaseRef(self, request: dict) -> dict:
        """A peer's client stopped using one of our objects."""
        object_ids = self._ids_from(request)
        with self._store.table.lock:
            for oid in object_ids:
                self._store.release_ref(oid, remote=True)
        return {}

    @rpc_method
    def NotifyDeleted(self, request: dict) -> dict:
        """The calling peer deleted/evicted objects we may have cached."""
        object_ids = self._ids_from(request)
        self._store.invalidate_cached_lookups(object_ids)
        return {}

    @rpc_method
    def Subscribe(self, request: dict) -> dict:
        """Register a cross-node notification subscription; the caller
        polls it with PollNotifications (the RPC realisation of the
        "additional RPC functionality" §V-B suggests for store feedback)."""
        return {"subscription": self._store.create_subscription()}

    @rpc_method
    def PollNotifications(self, request: dict) -> dict:
        sub_id = request.get("subscription")
        if not isinstance(sub_id, int):
            raise ValueError("subscription id required")
        notes = self._store.poll_subscription(sub_id)
        return {
            "notifications": [
                {
                    "object_id": n.object_id.binary(),
                    "data_size": n.data_size,
                    "deleted": n.deleted,
                }
                for n in notes
            ]
        }

    @rpc_method
    def Heartbeat(self, request: dict) -> dict:
        """Liveness probe for the failure detector (repro.core.health).

        Deliberately trivial: a crashed store never reaches the handler
        (the server answers UNAVAILABLE first), so any response at all
        means the metadata plane is up.
        """
        return {"node": self._store.node, "t_ns": self._store.clock.now_ns}

    @rpc_method
    def Replicate(self, request: dict) -> dict:
        """Create a local replica of a peer's sealed object.

        The caller (the object's home store) sends only the *descriptor*;
        the payload is pulled over the ThymesisFlow fabric from the
        caller's exposed region — a remote read (coherent, Fig 3a) followed
        by a local write, so replication respects the framework's
        write-local/read-remote rule and never puts bulk data on the LAN.
        """
        source = request.get("source")
        if not isinstance(source, str) or not source:
            raise ValueError("Replicate needs the source store's name")
        object_id = ObjectID(request["object_id"])
        offset = int(request["offset"])
        data_size = int(request["data_size"])
        metadata = bytes(request.get("metadata", b""))
        self._store.create_replica(source, object_id, offset, data_size, metadata)
        return {"replica": self._store.name}

    @rpc_method
    def DropReplica(self, request: dict) -> dict:
        """The home store deleted an object we hold a replica of; drop our
        copy if it is idle (best effort — an in-use replica survives until
        released)."""
        object_ids = self._ids_from(request)
        dropped = self._store.drop_replicas(object_ids)
        return {"dropped": dropped}

    # -- elastic placement (repro.placement) ----------------------------------

    @rpc_method
    def Topology(self, request: dict) -> dict:
        """The topology view this store holds (epoch 0 = none installed).
        Recovering nodes pull this from a live peer to catch up on views
        they missed while down."""
        view = self._store.topology()
        if view is None:
            return {"epoch": 0, "members": []}
        return view.to_wire()

    @rpc_method
    def UpdateTopology(self, request: dict) -> dict:
        """Coordinator push of a new epoch-numbered topology view; stale
        epochs are acknowledged but ignored (idempotent, re-orderable)."""
        from repro.placement.membership import TopologyView

        view = TopologyView.from_wire(request)
        installed = self._store.install_topology(view)
        return {"installed": installed, "epoch": self._store.topology_epoch}

    @rpc_method
    def PlacedCreate(self, request: dict) -> dict:
        """Home side of a placement-routed create: allocate the extent
        (header written unsealed) and return the exposed-region offset the
        creator's fabric write streams the payload to."""
        object_id = ObjectID(request["object_id"])
        data_size = int(request["data_size"])
        metadata = bytes(request.get("metadata", b""))
        offset = self._store.placed_create(object_id, data_size, metadata)
        return {"offset": offset, "store": self._store.name}

    @rpc_method
    def PlacedSeal(self, request: dict) -> dict:
        """Make a placement-routed object visible: invalidate the stale
        cached lines the remote write left (Fig 3b), checksum, seal, and
        run home-driven replication if requested."""
        object_id = ObjectID(request["object_id"])
        replicas = int(request.get("replicas", 1))
        self._store.placed_seal(object_id, replicas)
        return {}

    @rpc_method
    def MigratePrepare(self, request: dict) -> dict:
        """Destination side of a live migration: allocate + pull the payload
        over the fabric, but do NOT seal — the copy stays invisible until
        MigrateCommit, so a crash in between leaves only an unsealed extent
        that restart recovery reclaims."""
        source = request.get("source")
        if not isinstance(source, str) or not source:
            raise ValueError("MigratePrepare needs the source store's name")
        object_id = ObjectID(request["object_id"])
        holders = [str(h) for h in request.get("holders", [])]
        state = self._store.begin_adopt(
            source,
            object_id,
            int(request["offset"]),
            int(request["data_size"]),
            bytes(request.get("metadata", b"")),
            holders=holders,
        )
        return {"state": state}

    @rpc_method
    def MigrateCommit(self, request: dict) -> dict:
        """Second phase: seal the pulled copy, atomically publishing the
        new-generation descriptor."""
        object_id = ObjectID(request["object_id"])
        generation = self._store.commit_adopt(object_id)
        return {"generation": generation}

    @rpc_method
    def Stats(self, request: dict) -> dict:
        """Operational snapshot (used by examples and debugging, not by any
        hot path). With the tiering plane attached the reply carries the
        node's tier agent snapshot (cache counters + heat-tracker sizes) so
        an operator can read hit rates over the wire."""
        out = {
            "store": self._store.name,
            "node": self._store.node,
            "objects": self._store.object_count(),
            "used_bytes": self._store.used_bytes,
            "capacity_bytes": self._store.capacity_bytes,
        }
        agent = self._store.tier_agent
        if agent is not None:
            out["tier"] = agent.stats()
        return out
