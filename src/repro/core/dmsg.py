"""Messaging via disaggregated memory (paper §IV-A2, approach 2).

The paper rejected this approach for its prototype: "Messaging in
traditional shared memory is a simple task, however, the cache-coherency
characteristics of ThymesisFlow introduce additional complexity. This
would require developing a robust messaging system using both local and
remote disaggregated memory." This module *is* that messaging system, so
the trade can be measured instead of argued (E6 in DESIGN.md):

* transport: a pair of :mod:`~repro.core.ring` SPSC rings, one in each
  node's exposed region — writers write locally, readers read remotely, so
  the Fig 3b staleness trap is avoided by construction;
* :class:`DmsgChannel` carries the very same wire-encoded
  :class:`~repro.core.service.StoreService` calls as the gRPC channel, so
  a cluster built with ``sharing="dmsg"`` runs the identical metadata
  protocol over disaggregated memory — including the AddRef/ReleaseRef
  feedback the one-way hash-map directory cannot do;
* cost: each call pays ring writes at local bandwidth, polling delay
  (modelling the peer's service loop wake-up), and fabric loads/reads —
  microseconds in total, versus the ~2.3 ms gRPC round trip.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import DmsgConfig
from repro.common.errors import RpcError, RpcStatusError
from repro.common.rng import DeterministicRng
from repro.obs.metrics import CounterGroup
from repro.core.ring import RingReader, RingWriter
from repro.rpc.codec import decode_message, encode_message
from repro.rpc.server import RpcServer
from repro.rpc.status import StatusCode


class DmsgChannel:
    """A blocking unary-call channel over a disaggregated-memory ring pair.

    ``local_writer`` lives in this node's exposed region (requests out);
    ``response_reader`` reads the peer's ring (responses in). The peer's
    service loop is emulated synchronously: ``peer_request_reader`` is the
    peer's view of our request ring and ``peer_writer`` the peer's response
    ring writer; dispatch happens on the peer's real :class:`RpcServer`, so
    handler semantics (mutexes, status mapping) are identical to the gRPC
    path.
    """

    def __init__(
        self,
        local_host: str,
        server: RpcServer,
        local_writer: RingWriter,
        peer_request_reader: RingReader,
        peer_writer: RingWriter,
        response_reader: RingReader,
        clock: SimClock,
        config: DmsgConfig,
        rng: DeterministicRng,
    ):
        self._local_host = local_host
        self._server = server
        self._writer = local_writer
        self._peer_request_reader = peer_request_reader
        self._peer_writer = peer_writer
        self._response_reader = response_reader
        self._clock = clock
        self._config = config
        self._rng = rng.spawn("dmsg", local_host, server.host)
        self.counters = CounterGroup()
        self._closed = False

    @property
    def target(self) -> str:
        return self._server.host

    def close(self) -> None:
        self._closed = True

    def _poll_delay(self) -> None:
        """Half the peer's polling interval on average, jittered — the time
        until the peer's service loop next looks at the ring."""
        mean = self._config.poll_interval_ns / 2.0
        self._clock.advance(mean * self._rng.lognormal_jitter(0.5))

    def unary_call(self, service: str, method: str, request: dict | None = None) -> dict:
        if self._closed:
            raise RpcError(f"dmsg channel to {self._server.host} is closed")
        header = encode_message({"service": service, "method": method})
        wire_request = encode_message(request or {})
        frame = encode_message({"h": header, "b": wire_request})

        # 1. Request out: local write into our exposed ring.
        self._writer.publish(frame)
        # 2. Peer's service loop wakes up and drains our ring (fabric reads
        #    from the peer's side).
        self._poll_delay()
        frames = self._peer_request_reader.poll()
        if not frames or frames[-1] != frame:
            raise RpcError("dmsg transport lost the request frame")
        envelope = decode_message(frames[-1])
        head = decode_message(envelope["h"])
        status, wire_response, detail = self._server.dispatch_wire(
            head["service"], head["method"], envelope["b"]
        )
        # 3. Response out: the peer writes its own exposed ring.
        response_frame = encode_message(
            {"s": status.value, "d": detail, "b": wire_response}
        )
        self._peer_writer.publish(response_frame)
        # 4. We poll the peer's ring for the response.
        self._poll_delay()
        responses = self._response_reader.poll()
        if not responses:
            raise RpcError("dmsg transport lost the response frame")
        reply = decode_message(responses[-1])

        self.counters.inc("calls")
        self.counters.inc("bytes_sent", len(frame))
        self.counters.inc("bytes_received", len(responses[-1]))
        reply_status = StatusCode(reply["s"])
        if reply_status is not StatusCode.OK:
            self.counters.inc("calls_failed")
            raise RpcStatusError(reply_status, reply.get("d", ""))
        return decode_message(reply["b"])

    def stub(self, service: str):
        from repro.rpc.channel import ServiceStub

        return ServiceStub(self, service)  # type: ignore[arg-type]
