"""Cluster builder: one call from config to a running disaggregated mesh.

Reproduces the paper's deployment (Fig 5) for any node count: per node a
ThymesisFlow endpoint whose exposed window hosts the store's objects (plus,
optionally, the hash directory), an RPC server with the
:class:`~repro.core.service.StoreService`, and for every ordered node pair
a gRPC-style channel and a mapped aperture. The paper's prototype is the
2-node instance; "the current system design allows for this [multi-node]
modification" — here it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos import ChaosRuntime, FaultPlan
from repro.common.clock import SimClock
from repro.common.config import ClusterConfig
from repro.common.errors import ObjectStoreError, PlacementError, RpcStatusError
from repro.common.ids import UniqueIDGenerator
from repro.common.rng import DeterministicRng
from repro.core.client import DisaggregatedClient
from repro.core.dmsg import DmsgChannel
from repro.core.health import CircuitBreaker, HealthMonitor
from repro.core.remote import PeerHandle
from repro.core.ring import RingReader, RingWriter, ring_bytes
from repro.core.service import StoreService
from repro.core.sharing import (
    DisaggregatedHashMap,
    RemoteHashMapReader,
    directory_bytes,
)
from repro.core.store import DisaggregatedStore
from repro.network.ipc import IpcChannel
from repro.obs.correlation import CorrelationContext
from repro.obs.export import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanConfig, SpanSink
from repro.placement.membership import Membership, NodeStatus, TopologyView
from repro.placement.migrate import MigrationEngine
from repro.placement.rebalance import Rebalancer
from repro.placement.ring import HashRing
from repro.rpc.aio import AsyncChannel, EventLoop
from repro.rpc.channel import Channel
from repro.rpc.overload import OverloadModel
from repro.rpc.server import RpcServer
from repro.rpc.status import StatusCode
from repro.thymesisflow.fabric import ThymesisFabric
from repro.tier import TierAgent, TierEngine

_DIRECTORY_ALIGN = 4096


@dataclass
class ClusterNode:
    """Everything standing on one node."""

    name: str
    store: DisaggregatedStore
    server: RpcServer
    ipc: IpcChannel
    directory: DisaggregatedHashMap | None = None
    channels: dict[str, Channel] = field(default_factory=dict)
    monitor: HealthMonitor | None = None

    @property
    def endpoint(self):
        return self.store.endpoint


class Cluster:
    """A running mesh of disaggregated Plasma stores."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        n_nodes: int = 2,
        *,
        node_names: list[str] | None = None,
        share_usage: bool = False,
        enable_lookup_cache: bool = False,
        check_remote_uniqueness: bool = True,
        sharing: str = "rpc",
        directory_buckets: int = 4096,
        tracer=None,
        tracing: SpanConfig | bool | None = None,
        fault_plan: FaultPlan | None = None,
        metrics: bool = False,
        placement: bool = False,
        node_weights: dict[str, float] | None = None,
        tiering: bool = False,
    ):
        self._config = config or ClusterConfig()
        self._config.validate()
        self._tracer = tracer
        # Correlation ids only exist when someone can observe them (a
        # tracer, the span sink, or the metrics plane); otherwise every
        # component keeps its None fast path.
        self._correlation = (
            CorrelationContext()
            if (tracer is not None or metrics or tracing)
            else None
        )
        if node_names is None:
            if n_nodes < 2:
                raise ValueError("a disaggregated cluster needs >= 2 nodes")
            node_names = [f"node{i}" for i in range(n_nodes)]
        if len(set(node_names)) != len(node_names):
            raise ValueError("node names must be unique")
        self._clock = SimClock()
        self._rng = DeterministicRng(self._config.seed)
        # One event loop serves the whole mesh (repro.rpc.aio). Building it
        # draws nothing from the RNG — rng.spawn() is hash-derived — and in
        # sync mode nothing ever schedules on it, so every sync-mode stream
        # (and artifact) is bit-identical to a pre-loop build.
        self._loop = EventLoop(self._clock, self._rng)
        self._rpc_mode = self._config.rpc.mode
        # The span sink draws its head-sampling decisions from a dedicated
        # child of the RNG tree, so enabling tracing never perturbs any
        # simulation stream (and the clock listener only *reads* time):
        # simulated results are bit-identical with tracing on or off.
        self._spans: SpanSink | None = None
        if tracing:
            span_config = tracing if isinstance(tracing, SpanConfig) else SpanConfig()
            self._spans = SpanSink(
                self._clock, self._rng.spawn("obs", "spans"), span_config
            )
        self._chaos: ChaosRuntime | None = None
        if fault_plan is not None:
            fault_plan.validate(node_names)
            self._chaos = ChaosRuntime(
                fault_plan, self._clock, self._config.chaos, tracer=tracer
            )
        self._id_gen = UniqueIDGenerator(self._rng.spawn("object-ids"))
        self._fabric = ThymesisFabric(
            self._clock, self._config.fabric, self._config.local_memory, self._rng
        )
        self._nodes: dict[str, ClusterNode] = {}
        self._sharing = sharing
        self._client_seq = 0
        # Tiering (repro.tier): per-node agents built alongside the stores;
        # the promotion/demotion engine follows in phase 5 (it needs the
        # placement plane's migration machinery).
        self._tiering = tiering
        self._tier_agents: dict[str, TierAgent] = {}
        self._tier_engine: TierEngine | None = None

        # 'hybrid' (paper §V-B) combines the hash-map directory for lookups
        # with dmsg rings for feedback RPCs — so it needs both layouts.
        use_directory = sharing in ("hashmap", "hybrid")
        use_dmsg = sharing in ("dmsg", "hybrid")
        if placement and sharing != "rpc":
            # dmsg mailboxes and the hash directory are sized at build time
            # for a fixed node count; elastic membership needs the sharing
            # mode whose per-pair state can grow and shrink.
            raise ValueError(
                "placement=True requires sharing='rpc' (dmsg rings and the "
                "hash directory are statically sized per node count)"
            )
        self._use_directory = use_directory
        self._use_dmsg = use_dmsg
        dir_size = 0
        if use_directory:
            dir_size = -(-directory_bytes(directory_buckets) // _DIRECTORY_ALIGN)
            dir_size *= _DIRECTORY_ALIGN
        # dmsg mailboxes: per peer, one request ring (we initiate) and one
        # response ring (we serve), each in our own exposed region.
        ring_total = 0
        mailbox_size = 0
        if use_dmsg:
            raw = ring_bytes(self._config.dmsg.ring_capacity_bytes)
            ring_total = -(-raw // 64) * 64
            mailbox_size = 2 * (len(node_names) - 1) * ring_total
            mailbox_size = -(-mailbox_size // _DIRECTORY_ALIGN) * _DIRECTORY_ALIGN
        self._ring_total = ring_total
        self._mailbox_base = dir_size

        store_capacity = int(
            self._config.store.capacity_bytes * self._config.disaggregated_fraction
        )
        store_base = dir_size + mailbox_size
        exposed_size = store_base + store_capacity
        # Kept for recover_node() and add_node(): restarted/joining stores
        # are built with the exact construction parameters of the seed set.
        self._store_base = store_base
        self._store_capacity = store_capacity
        self._exposed_size = exposed_size
        self._directory_buckets = directory_buckets
        self._store_kwargs = dict(
            check_remote_uniqueness=check_remote_uniqueness,
            share_usage=share_usage,
            enable_lookup_cache=enable_lookup_cache,
            notify_deletions=enable_lookup_cache,
            sharing=sharing,
            region_offset_in_exposed=store_base,
        )

        # Phase 1: nodes, endpoints, exposed regions, stores, servers.
        for name in node_names:
            self._build_node(name)

        # Phase 2: full-mesh links and apertures (every node maps every
        # other node's exposed region).
        self._fabric.connect_full_mesh()
        for link in self._fabric.links():
            link.tracer = tracer
            link.spans = self._spans
            link.correlation = self._correlation
        if self._chaos is not None:
            for link in self._fabric.links():
                self._chaos.attach_link(link)
        self._remote_regions = {}
        for reader_name in node_names:
            for home_name in node_names:
                if reader_name != home_name:
                    self._remote_regions[(reader_name, home_name)] = (
                        self._fabric.map_remote(reader_name, home_name)
                    )

        # Phase 3: metadata channels (gRPC-model or dmsg rings) and peers.
        for reader_name in node_names:
            for home_name in node_names:
                if reader_name != home_name:
                    self._link_pair(reader_name, home_name)

        # Phase 4: health monitors (heartbeat failure detection) over the
        # per-pair channels. Dmsg rings have no breaker/deadline machinery,
        # so monitors only cover gRPC-model channels.
        if not use_dmsg:
            for name, node in self._nodes.items():
                monitor = HealthMonitor(name, self._clock, self._config.health)
                for peer_name, channel in sorted(node.channels.items()):
                    monitor.add_peer(
                        peer_name,
                        channel.stub(StoreService.SERVICE_NAME),
                        channel.breaker,
                    )
                node.monitor = monitor

        # Phase 5: elastic placement (opt-in). Membership starts with every
        # seed node ACTIVE — at weight 1.0, or at the per-node weights a
        # heterogeneous scenario supplies (a weight-2 node owns twice the
        # ring, the stand-in for a memory-rich host). The epoch-1 view is
        # installed on each store before any client routes a create.
        self._membership: Membership | None = None
        self._engine: MigrationEngine | None = None
        self._rebalancer: Rebalancer | None = None
        self._placement_ring: HashRing | None = None
        if node_weights and not placement:
            raise ValueError(
                "node_weights requires placement=True (weights feed the "
                "consistent-hash ring)"
            )
        if placement:
            self._membership = Membership(node_names, weights=node_weights)
            self._engine = MigrationEngine(
                self._clock, tracer=tracer, spans=self._spans
            )
            pcfg = self._config.placement
            self._rebalancer = Rebalancer(
                self,
                self._engine,
                bytes_per_tick=pcfg.rebalance_bytes_per_tick,
                tick_interval_ns=pcfg.rebalance_tick_interval_ns,
            )
            for node in self._nodes.values():
                node.store.enable_placement(pcfg)
            self._publish_topology()
            if tiering:
                self._tier_engine = TierEngine(
                    self, self._engine, self._tier_agents, self._config.tier
                )

        # Phase 6: metrics plane (opt-in). One registry per node plus one
        # for the shared fabric; everything binds once, here, so hot paths
        # stay branch-on-None.
        self._registries: dict[str, MetricsRegistry] = {}
        self._telemetry: Telemetry | None = None
        if metrics:
            fabric_registry = MetricsRegistry(node="fabric")
            for link in self._fabric.links():
                link.attach_metrics(fabric_registry)
            for name, node in self._nodes.items():
                registry = MetricsRegistry(node=name)
                self._attach_node_metrics(node, registry)
                self._registries[name] = registry
            self._registries["fabric"] = fabric_registry
            if self._membership is not None:
                placement_registry = MetricsRegistry(node="placement")
                self._engine.attach_metrics(placement_registry)
                self._attach_placement_gauges(placement_registry)
                if self._tier_engine is not None:
                    self._tier_engine.attach_metrics(placement_registry)
                self._registries["placement"] = placement_registry
            self._telemetry = Telemetry(self._registries)

    def _build_node(self, name: str) -> ClusterNode:
        """Construct one node's full stack (endpoint, exposed region, store,
        RPC server, IPC channel) and register it. Used for the seed set at
        build time and for every elastic :meth:`add_node` join."""
        endpoint = self._fabric.add_node(name, self._exposed_size)
        exposed = endpoint.expose(0, self._exposed_size)
        store_region = exposed.subregion(self._store_base, self._store_capacity)
        store = DisaggregatedStore(
            name,
            endpoint,
            store_region,
            self._config.store,
            self._clock,
            **self._store_kwargs,
        )
        directory = None
        if self._use_directory:
            directory = DisaggregatedHashMap(
                exposed.subregion(0, directory_bytes(self._directory_buckets)),
                self._directory_buckets,
            )
            store.attach_directory(directory)
        store.tracer = self._tracer
        store.spans = self._spans
        store.correlation = self._correlation
        store.attach_aio(self._loop, async_mode=self._rpc_mode == "async")
        if self._tiering:
            agent = TierAgent(
                name,
                self._config.tier,
                self._clock,
                self._rng.spawn("tier", name),
            )
            store.attach_tier(agent)
            self._tier_agents[name] = agent
        server = RpcServer(name)
        server.tracer = self._tracer
        server.spans = self._spans
        server.clock = self._clock
        # Every server carries an admission model so chaos bursts and
        # runtime rate changes work on any cluster; at the default config
        # (rate 0, no backlog) it is inert and dispatch keeps its fast path.
        server.overload = OverloadModel(
            self._clock, self._config.overload, name=name
        )
        server.add_service(StoreService(store))
        ipc = IpcChannel(
            self._clock, self._config.ipc, self._rng.spawn("ipc", name)
        )
        if self._chaos is not None:
            self._chaos.attach_server(name, server)
            self._chaos.attach_region(name, exposed)
        node = ClusterNode(
            name=name, store=store, server=server, ipc=ipc, directory=directory
        )
        self._nodes[name] = node
        return node

    def _link_pair(self, reader_name: str, home_name: str) -> None:
        """Wire the directed (reader -> home) metadata channel and peer
        handle over the already-mapped aperture."""
        reader = self._nodes[reader_name]
        home = self._nodes[home_name]
        if self._use_dmsg:
            channel = self._make_dmsg_channel(reader_name, home_name)
        else:
            channel = AsyncChannel(
                reader_name,
                home.server,
                self._clock,
                self._config.rpc,
                self._rng,
                tracer=self._tracer,
                spans=self._spans,
                breaker=CircuitBreaker(
                    self._clock,
                    self._config.health,
                    name=f"{reader_name}->{home_name}",
                ),
                chaos=self._chaos,
                correlation=self._correlation,
                loop=self._loop,
            )
        reader.channels[home_name] = channel
        remote_region = self._remote_regions[(reader_name, home_name)]
        reader.store.connect_peer(
            PeerHandle(
                name=home_name,
                stub=channel.stub(StoreService.SERVICE_NAME),
                remote_region=remote_region,
            )
        )
        if self._use_directory:
            reader.store.attach_hashmap_reader(
                home_name,
                RemoteHashMapReader(remote_region, 0, self._directory_buckets),
            )

    def _attach_node_metrics(self, node: "ClusterNode", registry: MetricsRegistry) -> None:
        node.store.attach_metrics(registry)
        node.server.attach_metrics(registry)
        registry.register_group(node.ipc.counters, "ipc")
        registry.register_group(
            node.endpoint.counters, "thymesisflow_endpoint"
        )
        for peer_name, channel in sorted(node.channels.items()):
            if hasattr(channel, "attach_metrics"):
                channel.attach_metrics(registry)
            else:  # dmsg rings: counters only
                registry.register_group(channel.counters, "dmsg", peer=peer_name)
        for (reader_name, home_name), region in sorted(self._remote_regions.items()):
            if reader_name == node.name:
                registry.register_group(
                    region.counters, "thymesisflow_aperture", home=home_name
                )
        if node.monitor is not None:
            node.monitor.attach_metrics(registry)

    # -- dmsg wiring ---------------------------------------------------------------

    def _peer_index(self, node: str, peer: str) -> int:
        peers = sorted(n for n in self._nodes if n != node)
        return peers.index(peer)

    def _ring_offsets(self, node: str, peer: str) -> tuple[int, int]:
        """(request-ring offset, response-ring offset) of *node*'s rings
        dedicated to *peer*, within *node*'s exposed region."""
        base = self._mailbox_base + self._peer_index(node, peer) * 2 * self._ring_total
        return base, base + self._ring_total

    def _make_dmsg_channel(self, initiator: str, server_node: str) -> DmsgChannel:
        raw = ring_bytes(self._config.dmsg.ring_capacity_bytes)
        ep_a = self._nodes[initiator].endpoint
        ep_b = self._nodes[server_node].endpoint
        a_req_off, _ = self._ring_offsets(initiator, server_node)
        _, b_resp_off = self._ring_offsets(server_node, initiator)
        a_req_abs = ep_a.exposed.absolute(a_req_off)
        b_resp_abs = ep_b.exposed.absolute(b_resp_off)
        return DmsgChannel(
            initiator,
            self._nodes[server_node].server,
            local_writer=RingWriter(ep_a, ep_a.memory.region(a_req_abs, raw)),
            peer_request_reader=RingReader(
                self._remote_regions[(server_node, initiator)], a_req_off, raw
            ),
            peer_writer=RingWriter(ep_b, ep_b.memory.region(b_resp_abs, raw)),
            response_reader=RingReader(
                self._remote_regions[(initiator, server_node)], b_resp_off, raw
            ),
            clock=self._clock,
            config=self._config.dmsg,
            rng=self._rng,
        )

    # -- access ---------------------------------------------------------------------

    @property
    def config(self) -> ClusterConfig:
        return self._config

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def rng(self) -> DeterministicRng:
        return self._rng

    @property
    def fabric(self) -> ThymesisFabric:
        return self._fabric

    @property
    def loop(self) -> EventLoop:
        """The cluster-wide deterministic event loop (repro.rpc.aio)."""
        return self._loop

    @property
    def rpc_mode(self) -> str:
        """Current RPC execution mode: ``"sync"`` or ``"async"``."""
        return self._rpc_mode

    def set_rpc_mode(self, mode: str) -> None:
        """Flip the mesh between sync (one-in-flight, artifact-stable) and
        async (pipelined event-loop) RPC execution at runtime.

        Sync mode is the compatibility plane: with it active no task ever
        schedules on the loop and every draw sequence matches a pre-async
        build byte for byte. Async mode routes the store facades through
        their task forms (pipelining, coalesced batches, hedged
        scatter-gather lookups, chunked bulk pulls).
        """
        if mode not in ("sync", "async"):
            raise ValueError(
                f"rpc mode must be 'sync' or 'async', got {mode!r}"
            )
        if mode == "async" and self._use_dmsg:
            raise ObjectStoreError(
                "async rpc mode requires gRPC-model channels; dmsg rings "
                "have no event-loop integration (sharing="
                f"{self._sharing!r})"
            )
        self._rpc_mode = mode
        for node in self._nodes.values():
            node.store.set_rpc_async(mode == "async")

    @property
    def sharing(self) -> str:
        return self._sharing

    @property
    def tracer(self):
        return self._tracer

    @property
    def spans(self) -> SpanSink | None:
        """The span sink (None unless built with ``tracing=`` or attached)."""
        return self._spans

    @property
    def chaos(self) -> ChaosRuntime | None:
        """The fault-injection runtime, when built with a fault_plan."""
        return self._chaos

    @property
    def correlation(self) -> CorrelationContext | None:
        """The shared correlation context (None unless tracing/metrics)."""
        return self._correlation

    def attach_tracer(self, tracer) -> None:
        """Wire *tracer* (plus a correlation context) into every layer of
        an already-built cluster — the CLI's opt-in ``--trace`` path.
        Attach before creating clients so their operations mint ids."""
        self._tracer = tracer
        if self._correlation is None:
            self._correlation = CorrelationContext()
        for node in self._nodes.values():
            node.store.tracer = tracer
            node.store.correlation = self._correlation
            node.server.tracer = tracer
            node.server.clock = self._clock
            for channel in node.channels.values():
                channel._tracer = tracer  # noqa: SLF001 — co-designed wiring
                channel._correlation = self._correlation  # noqa: SLF001
        for link in self._fabric.links():
            link.tracer = tracer
            link.correlation = self._correlation

    def attach_spans(self, sink: SpanSink) -> None:
        """Wire a span sink (plus a correlation context) into every layer
        of an already-built cluster — the retrofit twin of
        :meth:`attach_tracer`. Build the sink over ``cluster.clock``;
        attach before creating clients so their operations mint ids."""
        self._spans = sink
        if self._correlation is None:
            self._correlation = CorrelationContext()
        for node in self._nodes.values():
            node.store.spans = sink
            node.store.correlation = self._correlation
            node.server.spans = sink
            node.server.clock = self._clock
            for channel in node.channels.values():
                channel._spans = sink  # noqa: SLF001 — co-designed wiring
                channel._correlation = self._correlation  # noqa: SLF001
        for link in self._fabric.links():
            link.spans = sink
            link.correlation = self._correlation
        if self._engine is not None:
            self._engine.spans = sink

    def metrics(self) -> Telemetry:
        """The cluster-wide telemetry view (requires ``metrics=True``)."""
        if self._telemetry is None:
            raise ObjectStoreError(
                "cluster was built without metrics; pass Cluster(..., "
                "metrics=True) to enable the telemetry plane"
            )
        return self._telemetry

    def registry(self, node: str) -> MetricsRegistry:
        """One node's metric registry (requires ``metrics=True``)."""
        return self.metrics().registry(node)

    def health_tick(self) -> dict[str, dict[str, bool]]:
        """Pump every node's failure detector once.

        The simulation has no background threads; workloads (or the chaos
        benchmarks) call this wherever the paper's deployment would have a
        heartbeat timer fire. Returns {node: {peer: answered}} for the
        probes actually sent this tick (interval-gated).
        """
        if self._chaos is not None:
            self._chaos.poll()
        out: dict[str, dict[str, bool]] = {}
        for name, node in self._nodes.items():
            if node.monitor is not None:
                out[name] = node.monitor.tick()
        if self._membership is not None:
            self._reconcile_membership()
        return out

    def monitor(self, name: str) -> HealthMonitor | None:
        return self.node(name).monitor

    def health_snapshot(self) -> dict[str, dict]:
        """Per-node view of peer health (breaker states, suspicion)."""
        return {
            name: node.monitor.snapshot()
            for name, node in self._nodes.items()
            if node.monitor is not None
        }

    # -- elastic placement (repro.placement) --------------------------------------

    @property
    def placement_enabled(self) -> bool:
        return self._membership is not None

    @property
    def membership(self) -> Membership:
        """The authoritative membership record (requires ``placement=True``)."""
        if self._membership is None:
            raise ObjectStoreError(
                "cluster was built without placement; pass Cluster(..., "
                "placement=True) to enable elastic membership"
            )
        return self._membership

    def placement_ring(self) -> HashRing:
        """The ring built from the latest published view."""
        self.membership  # raises when placement is off
        assert self._placement_ring is not None
        return self._placement_ring

    @property
    def rebalancer(self) -> Rebalancer:
        self.membership
        assert self._rebalancer is not None
        return self._rebalancer

    @property
    def migration_engine(self) -> MigrationEngine:
        self.membership
        assert self._engine is not None
        return self._engine

    # -- tiering (repro.tier) -----------------------------------------------------

    @property
    def tiering_enabled(self) -> bool:
        return self._tiering

    @property
    def tier_engine(self) -> TierEngine | None:
        """The promotion/demotion engine (None unless built with both
        ``tiering=True`` and ``placement=True``)."""
        return self._tier_engine

    def tier_agent(self, name: str) -> TierAgent | None:
        """One node's tier agent (None when tiering is off)."""
        return self._tier_agents.get(name)

    def tier_stats(self) -> dict[str, dict]:
        """Per-node tier snapshot (empty when tiering is off)."""
        return {
            name: agent.stats()
            for name, agent in sorted(self._tier_agents.items())
            if name in self._nodes
        }

    def _coordinator_name(self) -> str:
        """Lowest-named live ACTIVE member; falls back to any live member
        (e.g. every survivor is DRAINING during a scale-down)."""
        view = self._membership.view()
        for name in view.names():
            if view.status(name) is NodeStatus.ACTIVE and name in self._nodes:
                return name
        for name in view.names():
            if name in self._nodes:
                return name
        raise ObjectStoreError("no live member left to coordinate topology")

    def _publish_topology(self) -> TopologyView:
        """Snapshot utilization, rebuild the ring, install the view on the
        coordinator and push it to every member over its channels.

        Pushes to unreachable members are skipped — they install a stale
        epoch guard anyway, and ``recover_node`` pulls the freshest view
        from a live peer when they come back.
        """
        assert self._membership is not None
        self._membership.update_utilization(
            {
                name: (
                    node.store.used_bytes / node.store.capacity_bytes
                    if node.store.capacity_bytes
                    else 0.0
                )
                for name, node in self._nodes.items()
            }
        )
        view = self._membership.view()
        pcfg = self._config.placement
        self._placement_ring = HashRing.from_view(
            view,
            vnodes=pcfg.vnodes,
            high_watermark=pcfg.capacity_high_watermark,
            min_capacity_factor=pcfg.min_capacity_factor,
        )
        coordinator = self._nodes[self._coordinator_name()]
        coordinator.store.install_topology(view)
        wire = view.to_wire()
        for peer_name, channel in sorted(coordinator.channels.items()):
            if peer_name not in view.members or peer_name not in self._nodes:
                continue
            try:
                channel.stub(StoreService.SERVICE_NAME).UpdateTopology(wire)
            except RpcStatusError as exc:
                if exc.code in (
                    StatusCode.UNAVAILABLE,
                    StatusCode.DEADLINE_EXCEEDED,
                    StatusCode.RESOURCE_EXHAUSTED,
                ):
                    # Down, silent, or shedding under overload: skip — the
                    # member catches up via pull on recovery.
                    continue
                raise
        return view

    def _pull_topology(self, name: str) -> None:
        """Install on *name* the freshest view a live peer holds (the
        recovered store missed every push while it was down); the local
        membership record is the fallback when nobody answers."""
        node = self._nodes[name]
        view: TopologyView | None = None
        for peer_name, channel in sorted(node.channels.items()):
            if peer_name not in self._nodes:
                continue
            try:
                wire = channel.stub(StoreService.SERVICE_NAME).Topology({"from": name})
            except RpcStatusError as exc:
                if exc.code in (
                    StatusCode.UNAVAILABLE,
                    StatusCode.DEADLINE_EXCEEDED,
                    StatusCode.RESOURCE_EXHAUSTED,
                ):
                    continue
                raise
            if int(wire.get("epoch", 0)) > 0:
                candidate = TopologyView.from_wire(wire)
                if view is None or candidate.epoch > view.epoch:
                    view = candidate
                break
        if view is None:
            view = self._membership.view()
        node.store.install_topology(view)

    def add_node(self, name: str, *, weight: float = 1.0) -> ClusterNode:
        """Grow the mesh by one node: endpoint + store + server, fabric
        links and apertures to every existing node, channels and peer
        handles in both directions, health monitoring, metrics — then join
        the membership and publish the bumped-epoch view so creates start
        routing to it. Existing objects move only when the rebalancer (or a
        manual migration) sends them."""
        membership = self.membership
        if name in self._nodes:
            raise ValueError(f"cluster already has a node named {name!r}")
        existing = sorted(self._nodes)
        node = self._build_node(name)
        for other in existing:
            link = self._fabric.connect(name, other)
            link.tracer = self._tracer
            link.spans = self._spans
            link.correlation = self._correlation
            if self._chaos is not None:
                self._chaos.attach_link(link)
            if "fabric" in self._registries:
                link.attach_metrics(self._registries["fabric"])
        for other in existing:
            self._remote_regions[(name, other)] = self._fabric.map_remote(name, other)
            self._remote_regions[(other, name)] = self._fabric.map_remote(other, name)
        for other in existing:
            self._link_pair(name, other)
            self._link_pair(other, name)
        monitor = HealthMonitor(name, self._clock, self._config.health)
        for peer_name, channel in sorted(node.channels.items()):
            monitor.add_peer(
                peer_name,
                channel.stub(StoreService.SERVICE_NAME),
                channel.breaker,
            )
        node.monitor = monitor
        for other in existing:
            other_node = self._nodes[other]
            if other_node.monitor is not None:
                channel = other_node.channels[name]
                other_node.monitor.add_peer(
                    name, channel.stub(StoreService.SERVICE_NAME), channel.breaker
                )
        if self._telemetry is not None:
            registry = MetricsRegistry(node=name)
            self._attach_node_metrics(node, registry)
            self._registries[name] = registry
            for other in existing:
                other_registry = self._registries.get(other)
                if other_registry is None:
                    continue
                self._nodes[other].channels[name].attach_metrics(other_registry)
                other_registry.register_group(
                    self._remote_regions[(other, name)].counters,
                    "thymesisflow_aperture",
                    home=name,
                )
            # Telemetry snapshots its registry dict at construction.
            self._telemetry = Telemetry(self._registries)
        node.store.enable_placement(self._config.placement)
        membership.join(name, weight)
        self._publish_topology()
        return node

    def drain_node(self, name: str) -> TopologyView:
        """Mark *name* DRAINING and publish: new creates stop routing to it
        while its objects stay readable in place. Run the rebalancer to
        empty it, then :meth:`remove_node`."""
        self.node(name)
        self.membership.drain(name)
        return self._publish_topology()

    def remove_node(self, name: str, *, force: bool = False) -> None:
        """Retire a drained (or dead) member and tear down its wiring.

        Refuses while the node still holds sealed primaries unless *force*
        (replicas it holds are expendable — other holders or the home copy
        survive). The server is shut down so any straggler RPC to the
        departed name fails UNAVAILABLE rather than resurrecting it.
        """
        membership = self.membership
        node = self.node(name)
        if membership.status(name) is NodeStatus.ACTIVE:
            raise PlacementError(
                f"node {name!r} is ACTIVE; drain_node() it and rebalance "
                "before removing"
            )
        if not force:
            with node.store.table.lock:
                stranded = [
                    entry.object_id
                    for entry in node.store.table
                    if entry.is_sealed
                    and not node.store.is_replica(entry.object_id)
                ]
            if stranded:
                raise PlacementError(
                    f"node {name!r} still holds {len(stranded)} primary "
                    "object(s); run the rebalancer to convergence or pass "
                    "force=True to abandon them"
                )
        membership.remove(name)
        del self._nodes[name]
        self._tier_agents.pop(name, None)
        node.server.shutdown()
        for other in self._nodes.values():
            other.channels.pop(name, None)
            other.store.disconnect_peer(name)
            if other.monitor is not None:
                other.monitor.remove_peer(name)
        for key in [k for k in self._remote_regions if name in k]:
            del self._remote_regions[key]
        if self._telemetry is not None:
            self._registries.pop(name, None)
            self._telemetry = Telemetry(self._registries)
        self._publish_topology()

    def _reconcile_membership(self) -> None:
        """Fold the coordinator's failure-detector suspicions into the
        membership: a suspected ACTIVE/DRAINING member goes DOWN and the
        bumped view publishes, so the ring stops homing new objects there."""
        coordinator = self._coordinator_name()
        monitor = self._nodes[coordinator].monitor
        if monitor is None:
            return
        suspects = [p for p in monitor.suspects() if p in self._nodes]
        if suspects and self._membership.reconcile(suspects) is not None:
            self._publish_topology()

    def topology_snapshot(self) -> dict:
        """Everything the ``repro topology`` CLI shows, as plain data."""
        membership = self.membership
        view = membership.view()
        ring = self._placement_ring
        shares = ring.ownership_share() if ring is not None else {}
        nodes: dict[str, dict] = {}
        for name in view.names():
            info = view.members[name]
            store = self._nodes[name].store if name in self._nodes else None
            nodes[name] = {
                "status": info.status.value,
                "weight": info.weight,
                "utilization": (
                    store.used_bytes / store.capacity_bytes
                    if store is not None and store.capacity_bytes
                    else info.utilization
                ),
                "ownership_share": shares.get(name, 0.0),
                "vnodes": ring.vnode_count(name) if ring is not None else 0,
                "objects": store.object_count() if store is not None else 0,
                "used_bytes": store.used_bytes if store is not None else 0,
            }
        return {
            "epoch": view.epoch,
            "imbalance": ring.imbalance() if ring is not None else 0.0,
            "misplaced_bytes": self.rebalancer.misplaced_bytes(),
            "nodes": nodes,
        }

    def _attach_placement_gauges(self, registry: MetricsRegistry) -> None:
        registry.gauge(
            "placement_epoch",
            "Current topology epoch at the membership coordinator.",
        ).labels().set_function(lambda: float(self._membership.epoch))
        registry.gauge(
            "placement_ring_imbalance",
            "Max ownership share over the weight-fair share (1.0 = balanced).",
        ).labels().set_function(
            lambda: (
                self._placement_ring.imbalance()
                if self._placement_ring is not None
                else 0.0
            )
        )
        registry.gauge(
            "placement_misplaced_bytes",
            "Payload bytes whose ring home differs from their holder.",
        ).labels().set_function(
            lambda: float(self._rebalancer.misplaced_bytes())
        )

    def recover_node(self, name: str):
        """Restart a crashed node's store process and recover its objects
        from the region's sealed-object headers.

        Models the asymmetry that makes disaggregated restarts interesting:
        the store *process* died (object table, allocator state and RPC
        service all gone) but the node's exposed region — every sealed
        object's header and payload in it — survived. A fresh store is
        constructed over the same endpoint and region, its table and free
        list are rebuilt by the header scan, the RPC service is re-bound on
        the surviving server, and peer connections are re-established over
        the existing channels and apertures. Peers' cached descriptors stay
        valid across the restart because offsets and generations live in
        the region, not in the dead process.

        Returns the :class:`~repro.plasma.store.RecoveryReport`.
        """
        node = self.node(name)
        endpoint = node.store.endpoint
        store_region = endpoint.exposed.subregion(
            self._store_base, self._store_capacity
        )
        store = DisaggregatedStore(
            name,
            endpoint,
            store_region,
            self._config.store,
            self._clock,
            **self._store_kwargs,
        )
        store.tracer = self._tracer
        store.spans = self._spans
        store.correlation = self._correlation
        store.attach_aio(self._loop, async_mode=self._rpc_mode == "async")
        agent = self._tier_agents.get(name)
        if agent is not None:
            # Same agent instance, fresh state: store.recover() resets the
            # cache and heat — process state that died with the old store.
            store.attach_tier(agent)
        if node.directory is not None:
            # The directory's buckets live in the region and survived; the
            # recovered store re-attaches the same instance.
            store.attach_directory(node.directory)
        for peer_name, channel in sorted(node.channels.items()):
            store.connect_peer(
                PeerHandle(
                    name=peer_name,
                    stub=channel.stub(StoreService.SERVICE_NAME),
                    remote_region=self._remote_regions[(name, peer_name)],
                )
            )
            if self._sharing in ("hashmap", "hybrid"):
                store.attach_hashmap_reader(
                    peer_name,
                    RemoteHashMapReader(
                        self._remote_regions[(name, peer_name)],
                        0,
                        self._directory_buckets,
                    ),
                )
        report = store.recover()
        node.server.replace_service(StoreService(store))
        node.server.restart()
        node.store = store
        if name in self._registries:
            # Re-binding replaces the dead store's group/gauge bindings;
            # latency histograms keep accumulating across the restart.
            store.attach_metrics(self._registries[name])
        if self._membership is not None:
            store.enable_placement(self._config.placement)
            if self._membership.status(name) is NodeStatus.DOWN:
                # Rejoin first so the view the node catches up on already
                # includes itself (the push from the coordinator may still
                # be fail-fasting on an open breaker; the pull below is the
                # reliable path).
                self._membership.reactivate(name)
                self._publish_topology()
            self._pull_topology(name)
        return report

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def node(self, name: str) -> ClusterNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r}; cluster has {sorted(self._nodes)}"
            ) from None

    def store(self, name: str) -> DisaggregatedStore:
        return self.node(name).store

    def client(self, node_name: str, client_name: str | None = None) -> DisaggregatedClient:
        """A new client attached to *node_name*'s store."""
        node = self.node(node_name)
        if client_name is None:
            self._client_seq += 1
            client_name = f"client{self._client_seq}@{node_name}"
        return DisaggregatedClient(
            client_name, node.store, node.ipc, correlation=self._correlation
        )

    def new_object_id(self):
        """A fresh system-unique id from the cluster's deterministic stream."""
        return self._id_gen.next()

    def new_object_ids(self, n: int):
        return self._id_gen.take(n)

    def stats(self) -> dict[str, dict]:
        """Per-node operational snapshot."""
        out: dict[str, dict] = {}
        for name, node in self._nodes.items():
            out[name] = {
                "objects": node.store.object_count(),
                "used_bytes": node.store.used_bytes,
                "capacity_bytes": node.store.capacity_bytes,
                "counters": node.store.counters.snapshot(),
            }
        return out

    def __repr__(self) -> str:
        return f"Cluster(nodes={self.node_names()}, sharing={self._sharing!r})"
