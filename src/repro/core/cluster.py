"""Cluster builder: one call from config to a running disaggregated mesh.

Reproduces the paper's deployment (Fig 5) for any node count: per node a
ThymesisFlow endpoint whose exposed window hosts the store's objects (plus,
optionally, the hash directory), an RPC server with the
:class:`~repro.core.service.StoreService`, and for every ordered node pair
a gRPC-style channel and a mapped aperture. The paper's prototype is the
2-node instance; "the current system design allows for this [multi-node]
modification" — here it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos import ChaosRuntime, FaultPlan
from repro.common.clock import SimClock
from repro.common.config import ClusterConfig
from repro.common.errors import ObjectStoreError
from repro.common.ids import UniqueIDGenerator
from repro.common.rng import DeterministicRng
from repro.core.client import DisaggregatedClient
from repro.core.dmsg import DmsgChannel
from repro.core.health import CircuitBreaker, HealthMonitor
from repro.core.remote import PeerHandle
from repro.core.ring import RingReader, RingWriter, ring_bytes
from repro.core.service import StoreService
from repro.core.sharing import (
    DisaggregatedHashMap,
    RemoteHashMapReader,
    directory_bytes,
)
from repro.core.store import DisaggregatedStore
from repro.network.ipc import IpcChannel
from repro.obs.correlation import CorrelationContext
from repro.obs.export import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.rpc.channel import Channel
from repro.rpc.server import RpcServer
from repro.thymesisflow.fabric import ThymesisFabric

_DIRECTORY_ALIGN = 4096


@dataclass
class ClusterNode:
    """Everything standing on one node."""

    name: str
    store: DisaggregatedStore
    server: RpcServer
    ipc: IpcChannel
    directory: DisaggregatedHashMap | None = None
    channels: dict[str, Channel] = field(default_factory=dict)
    monitor: HealthMonitor | None = None

    @property
    def endpoint(self):
        return self.store.endpoint


class Cluster:
    """A running mesh of disaggregated Plasma stores."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        n_nodes: int = 2,
        *,
        node_names: list[str] | None = None,
        share_usage: bool = False,
        enable_lookup_cache: bool = False,
        check_remote_uniqueness: bool = True,
        sharing: str = "rpc",
        directory_buckets: int = 4096,
        tracer=None,
        fault_plan: FaultPlan | None = None,
        metrics: bool = False,
    ):
        self._config = config or ClusterConfig()
        self._config.validate()
        self._tracer = tracer
        # Correlation ids only exist when someone can observe them (a
        # tracer or the metrics plane); otherwise every component keeps
        # its None fast path.
        self._correlation = (
            CorrelationContext() if (tracer is not None or metrics) else None
        )
        if node_names is None:
            if n_nodes < 2:
                raise ValueError("a disaggregated cluster needs >= 2 nodes")
            node_names = [f"node{i}" for i in range(n_nodes)]
        if len(set(node_names)) != len(node_names):
            raise ValueError("node names must be unique")
        self._clock = SimClock()
        self._rng = DeterministicRng(self._config.seed)
        self._chaos: ChaosRuntime | None = None
        if fault_plan is not None:
            fault_plan.validate(node_names)
            self._chaos = ChaosRuntime(
                fault_plan, self._clock, self._config.chaos, tracer=tracer
            )
        self._id_gen = UniqueIDGenerator(self._rng.spawn("object-ids"))
        self._fabric = ThymesisFabric(
            self._clock, self._config.fabric, self._config.local_memory, self._rng
        )
        self._nodes: dict[str, ClusterNode] = {}
        self._sharing = sharing
        self._client_seq = 0

        # 'hybrid' (paper §V-B) combines the hash-map directory for lookups
        # with dmsg rings for feedback RPCs — so it needs both layouts.
        use_directory = sharing in ("hashmap", "hybrid")
        use_dmsg = sharing in ("dmsg", "hybrid")
        dir_size = 0
        if use_directory:
            dir_size = -(-directory_bytes(directory_buckets) // _DIRECTORY_ALIGN)
            dir_size *= _DIRECTORY_ALIGN
        # dmsg mailboxes: per peer, one request ring (we initiate) and one
        # response ring (we serve), each in our own exposed region.
        ring_total = 0
        mailbox_size = 0
        if use_dmsg:
            raw = ring_bytes(self._config.dmsg.ring_capacity_bytes)
            ring_total = -(-raw // 64) * 64
            mailbox_size = 2 * (len(node_names) - 1) * ring_total
            mailbox_size = -(-mailbox_size // _DIRECTORY_ALIGN) * _DIRECTORY_ALIGN
        self._ring_total = ring_total
        self._mailbox_base = dir_size

        store_capacity = int(
            self._config.store.capacity_bytes * self._config.disaggregated_fraction
        )
        store_base = dir_size + mailbox_size
        exposed_size = store_base + store_capacity
        # Kept for recover_node(): a restarted store is rebuilt with the
        # exact construction parameters of the original.
        self._store_base = store_base
        self._store_capacity = store_capacity
        self._directory_buckets = directory_buckets
        self._store_kwargs = dict(
            check_remote_uniqueness=check_remote_uniqueness,
            share_usage=share_usage,
            enable_lookup_cache=enable_lookup_cache,
            notify_deletions=enable_lookup_cache,
            sharing=sharing,
            region_offset_in_exposed=store_base,
        )

        # Phase 1: nodes, endpoints, exposed regions, stores, servers.
        for name in node_names:
            endpoint = self._fabric.add_node(name, exposed_size)
            exposed = endpoint.expose(0, exposed_size)
            store_region = exposed.subregion(store_base, store_capacity)
            store = DisaggregatedStore(
                name,
                endpoint,
                store_region,
                self._config.store,
                self._clock,
                check_remote_uniqueness=check_remote_uniqueness,
                share_usage=share_usage,
                enable_lookup_cache=enable_lookup_cache,
                notify_deletions=enable_lookup_cache,
                sharing=sharing,
                region_offset_in_exposed=store_base,
            )
            directory = None
            if use_directory:
                directory = DisaggregatedHashMap(
                    exposed.subregion(0, directory_bytes(directory_buckets)),
                    directory_buckets,
                )
                store.attach_directory(directory)
            store.tracer = tracer
            store.correlation = self._correlation
            server = RpcServer(name)
            server.tracer = tracer
            server.clock = self._clock
            server.add_service(StoreService(store))
            ipc = IpcChannel(
                self._clock, self._config.ipc, self._rng.spawn("ipc", name)
            )
            if self._chaos is not None:
                self._chaos.attach_server(name, server)
                self._chaos.attach_region(name, exposed)
            self._nodes[name] = ClusterNode(
                name=name, store=store, server=server, ipc=ipc, directory=directory
            )

        # Phase 2: full-mesh links and apertures (every node maps every
        # other node's exposed region).
        self._fabric.connect_full_mesh()
        for link in self._fabric.links():
            link.tracer = tracer
            link.correlation = self._correlation
        if self._chaos is not None:
            for link in self._fabric.links():
                self._chaos.attach_link(link)
        self._remote_regions = {}
        for reader_name in node_names:
            for home_name in node_names:
                if reader_name != home_name:
                    self._remote_regions[(reader_name, home_name)] = (
                        self._fabric.map_remote(reader_name, home_name)
                    )

        # Phase 3: metadata channels (gRPC-model or dmsg rings) and peers.
        for reader_name in node_names:
            for home_name in node_names:
                if reader_name == home_name:
                    continue
                reader = self._nodes[reader_name]
                home = self._nodes[home_name]
                if use_dmsg:
                    channel = self._make_dmsg_channel(reader_name, home_name)
                else:
                    channel = Channel(
                        reader_name,
                        home.server,
                        self._clock,
                        self._config.rpc,
                        self._rng,
                        tracer=self._tracer,
                        breaker=CircuitBreaker(
                            self._clock,
                            self._config.health,
                            name=f"{reader_name}->{home_name}",
                        ),
                        chaos=self._chaos,
                        correlation=self._correlation,
                    )
                reader.channels[home_name] = channel
                remote_region = self._remote_regions[(reader_name, home_name)]
                reader.store.connect_peer(
                    PeerHandle(
                        name=home_name,
                        stub=channel.stub(StoreService.SERVICE_NAME),
                        remote_region=remote_region,
                    )
                )
                if use_directory:
                    reader.store.attach_hashmap_reader(
                        home_name,
                        RemoteHashMapReader(remote_region, 0, directory_buckets),
                    )

        # Phase 4: health monitors (heartbeat failure detection) over the
        # per-pair channels. Dmsg rings have no breaker/deadline machinery,
        # so monitors only cover gRPC-model channels.
        if not use_dmsg:
            for name, node in self._nodes.items():
                monitor = HealthMonitor(name, self._clock, self._config.health)
                for peer_name, channel in sorted(node.channels.items()):
                    monitor.add_peer(
                        peer_name,
                        channel.stub(StoreService.SERVICE_NAME),
                        channel.breaker,
                    )
                node.monitor = monitor

        # Phase 5: metrics plane (opt-in). One registry per node plus one
        # for the shared fabric; everything binds once, here, so hot paths
        # stay branch-on-None.
        self._registries: dict[str, MetricsRegistry] = {}
        self._telemetry: Telemetry | None = None
        if metrics:
            fabric_registry = MetricsRegistry(node="fabric")
            for link in self._fabric.links():
                link.attach_metrics(fabric_registry)
            for name, node in self._nodes.items():
                registry = MetricsRegistry(node=name)
                self._attach_node_metrics(node, registry)
                self._registries[name] = registry
            self._registries["fabric"] = fabric_registry
            self._telemetry = Telemetry(self._registries)

    def _attach_node_metrics(self, node: "ClusterNode", registry: MetricsRegistry) -> None:
        node.store.attach_metrics(registry)
        node.server.attach_metrics(registry)
        registry.register_group(node.ipc.counters, "ipc")
        registry.register_group(
            node.endpoint.counters, "thymesisflow_endpoint"
        )
        for peer_name, channel in sorted(node.channels.items()):
            if hasattr(channel, "attach_metrics"):
                channel.attach_metrics(registry)
            else:  # dmsg rings: counters only
                registry.register_group(channel.counters, "dmsg", peer=peer_name)
        for (reader_name, home_name), region in sorted(self._remote_regions.items()):
            if reader_name == node.name:
                registry.register_group(
                    region.counters, "thymesisflow_aperture", home=home_name
                )
        if node.monitor is not None:
            node.monitor.attach_metrics(registry)

    # -- dmsg wiring ---------------------------------------------------------------

    def _peer_index(self, node: str, peer: str) -> int:
        peers = sorted(n for n in self._nodes if n != node)
        return peers.index(peer)

    def _ring_offsets(self, node: str, peer: str) -> tuple[int, int]:
        """(request-ring offset, response-ring offset) of *node*'s rings
        dedicated to *peer*, within *node*'s exposed region."""
        base = self._mailbox_base + self._peer_index(node, peer) * 2 * self._ring_total
        return base, base + self._ring_total

    def _make_dmsg_channel(self, initiator: str, server_node: str) -> DmsgChannel:
        raw = ring_bytes(self._config.dmsg.ring_capacity_bytes)
        ep_a = self._nodes[initiator].endpoint
        ep_b = self._nodes[server_node].endpoint
        a_req_off, _ = self._ring_offsets(initiator, server_node)
        _, b_resp_off = self._ring_offsets(server_node, initiator)
        a_req_abs = ep_a.exposed.absolute(a_req_off)
        b_resp_abs = ep_b.exposed.absolute(b_resp_off)
        return DmsgChannel(
            initiator,
            self._nodes[server_node].server,
            local_writer=RingWriter(ep_a, ep_a.memory.region(a_req_abs, raw)),
            peer_request_reader=RingReader(
                self._remote_regions[(server_node, initiator)], a_req_off, raw
            ),
            peer_writer=RingWriter(ep_b, ep_b.memory.region(b_resp_abs, raw)),
            response_reader=RingReader(
                self._remote_regions[(initiator, server_node)], b_resp_off, raw
            ),
            clock=self._clock,
            config=self._config.dmsg,
            rng=self._rng,
        )

    # -- access ---------------------------------------------------------------------

    @property
    def config(self) -> ClusterConfig:
        return self._config

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def rng(self) -> DeterministicRng:
        return self._rng

    @property
    def fabric(self) -> ThymesisFabric:
        return self._fabric

    @property
    def sharing(self) -> str:
        return self._sharing

    @property
    def tracer(self):
        return self._tracer

    @property
    def chaos(self) -> ChaosRuntime | None:
        """The fault-injection runtime, when built with a fault_plan."""
        return self._chaos

    @property
    def correlation(self) -> CorrelationContext | None:
        """The shared correlation context (None unless tracing/metrics)."""
        return self._correlation

    def attach_tracer(self, tracer) -> None:
        """Wire *tracer* (plus a correlation context) into every layer of
        an already-built cluster — the CLI's opt-in ``--trace`` path.
        Attach before creating clients so their operations mint ids."""
        self._tracer = tracer
        if self._correlation is None:
            self._correlation = CorrelationContext()
        for node in self._nodes.values():
            node.store.tracer = tracer
            node.store.correlation = self._correlation
            node.server.tracer = tracer
            node.server.clock = self._clock
            for channel in node.channels.values():
                channel._tracer = tracer  # noqa: SLF001 — co-designed wiring
                channel._correlation = self._correlation  # noqa: SLF001
        for link in self._fabric.links():
            link.tracer = tracer
            link.correlation = self._correlation

    def metrics(self) -> Telemetry:
        """The cluster-wide telemetry view (requires ``metrics=True``)."""
        if self._telemetry is None:
            raise ObjectStoreError(
                "cluster was built without metrics; pass Cluster(..., "
                "metrics=True) to enable the telemetry plane"
            )
        return self._telemetry

    def registry(self, node: str) -> MetricsRegistry:
        """One node's metric registry (requires ``metrics=True``)."""
        return self.metrics().registry(node)

    def health_tick(self) -> dict[str, dict[str, bool]]:
        """Pump every node's failure detector once.

        The simulation has no background threads; workloads (or the chaos
        benchmarks) call this wherever the paper's deployment would have a
        heartbeat timer fire. Returns {node: {peer: answered}} for the
        probes actually sent this tick (interval-gated).
        """
        if self._chaos is not None:
            self._chaos.poll()
        out: dict[str, dict[str, bool]] = {}
        for name, node in self._nodes.items():
            if node.monitor is not None:
                out[name] = node.monitor.tick()
        return out

    def monitor(self, name: str) -> HealthMonitor | None:
        return self.node(name).monitor

    def health_snapshot(self) -> dict[str, dict]:
        """Per-node view of peer health (breaker states, suspicion)."""
        return {
            name: node.monitor.snapshot()
            for name, node in self._nodes.items()
            if node.monitor is not None
        }

    def recover_node(self, name: str):
        """Restart a crashed node's store process and recover its objects
        from the region's sealed-object headers.

        Models the asymmetry that makes disaggregated restarts interesting:
        the store *process* died (object table, allocator state and RPC
        service all gone) but the node's exposed region — every sealed
        object's header and payload in it — survived. A fresh store is
        constructed over the same endpoint and region, its table and free
        list are rebuilt by the header scan, the RPC service is re-bound on
        the surviving server, and peer connections are re-established over
        the existing channels and apertures. Peers' cached descriptors stay
        valid across the restart because offsets and generations live in
        the region, not in the dead process.

        Returns the :class:`~repro.plasma.store.RecoveryReport`.
        """
        node = self.node(name)
        endpoint = node.store.endpoint
        store_region = endpoint.exposed.subregion(
            self._store_base, self._store_capacity
        )
        store = DisaggregatedStore(
            name,
            endpoint,
            store_region,
            self._config.store,
            self._clock,
            **self._store_kwargs,
        )
        store.tracer = self._tracer
        store.correlation = self._correlation
        if node.directory is not None:
            # The directory's buckets live in the region and survived; the
            # recovered store re-attaches the same instance.
            store.attach_directory(node.directory)
        for peer_name, channel in sorted(node.channels.items()):
            store.connect_peer(
                PeerHandle(
                    name=peer_name,
                    stub=channel.stub(StoreService.SERVICE_NAME),
                    remote_region=self._remote_regions[(name, peer_name)],
                )
            )
            if self._sharing in ("hashmap", "hybrid"):
                store.attach_hashmap_reader(
                    peer_name,
                    RemoteHashMapReader(
                        self._remote_regions[(name, peer_name)],
                        0,
                        self._directory_buckets,
                    ),
                )
        report = store.recover()
        node.server.replace_service(StoreService(store))
        node.server.restart()
        node.store = store
        if name in self._registries:
            # Re-binding replaces the dead store's group/gauge bindings;
            # latency histograms keep accumulating across the restart.
            store.attach_metrics(self._registries[name])
        return report

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def node(self, name: str) -> ClusterNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r}; cluster has {sorted(self._nodes)}"
            ) from None

    def store(self, name: str) -> DisaggregatedStore:
        return self.node(name).store

    def client(self, node_name: str, client_name: str | None = None) -> DisaggregatedClient:
        """A new client attached to *node_name*'s store."""
        node = self.node(node_name)
        if client_name is None:
            self._client_seq += 1
            client_name = f"client{self._client_seq}@{node_name}"
        return DisaggregatedClient(
            client_name, node.store, node.ipc, correlation=self._correlation
        )

    def new_object_id(self):
        """A fresh system-unique id from the cluster's deterministic stream."""
        return self._id_gen.next()

    def new_object_ids(self, n: int):
        return self._id_gen.take(n)

    def stats(self) -> dict[str, dict]:
        """Per-node operational snapshot."""
        out: dict[str, dict] = {}
        for name, node in self._nodes.items():
            out[name] = {
                "objects": node.store.object_count(),
                "used_bytes": node.store.used_bytes,
                "capacity_bytes": node.store.capacity_bytes,
                "counters": node.store.counters.snapshot(),
            }
        return out

    def __repr__(self) -> str:
        return f"Cluster(nodes={self.node_names()}, sharing={self._sharing!r})"
