"""The paper's contribution: the memory-disaggregated Plasma framework.

Plasma stores on different nodes are interconnected (Fig 5): each store
allocates its objects inside its node's *exposed* ThymesisFlow region, peers
exchange object metadata over gRPC-style RPC, and a client request for a
remote object is satisfied by (1) an RPC lookup returning the object's
offset/size in the home store's exposed region, then (2) a direct
ThymesisFlow read of the payload — no bulk data ever crosses the LAN.

Public surface:

* :class:`Cluster` — stands up N nodes (fabric, stores, RPC mesh) from one
  :class:`~repro.common.config.ClusterConfig`; the entry point applications
  use.
* :class:`DisaggregatedStore` / :class:`DisaggregatedClient` — the store
  and client; clients are oblivious to object placement ("the distributed
  nature can largely remain hidden to Plasma clients").
* :class:`StoreService` — the RPC service (Lookup/Contains/AddRef/
  ReleaseRef/NotifyDeleted) stores expose to peers.
* Extensions the paper lists as future work, all implemented and
  benchmarked: :class:`LookupCache` (repeated-request caching),
  distributed reference sharing (eviction safety for remote readers),
  multi-node (>2) operation, and :class:`DisaggregatedHashMap` (the
  "shared data structure in disaggregated memory" sharing alternative).
* Resilience layer (:mod:`repro.core.health`): heartbeat failure
  detection (:class:`HealthMonitor`), per-peer :class:`CircuitBreaker`
  gating every channel, RPC deadlines and exponential-backoff retries,
  plus opt-in object replication for failover reads — pair with
  :mod:`repro.chaos` fault plans to measure degraded-mode behaviour.
"""

from repro.core.service import StoreService
from repro.core.remote import PeerHandle, RemoteObjectRecord
from repro.core.lookup_cache import LookupCache
from repro.core.health import BreakerState, CircuitBreaker, HealthMonitor
from repro.core.store import DisaggregatedStore
from repro.core.client import DisaggregatedClient
from repro.core.cluster import Cluster, ClusterNode
from repro.core.sharing import DisaggregatedHashMap

__all__ = [
    "StoreService",
    "PeerHandle",
    "RemoteObjectRecord",
    "LookupCache",
    "BreakerState",
    "CircuitBreaker",
    "HealthMonitor",
    "DisaggregatedStore",
    "DisaggregatedClient",
    "Cluster",
    "ClusterNode",
    "DisaggregatedHashMap",
]
