"""The memory-disaggregated Plasma store (paper §IV).

Extends :class:`~repro.plasma.store.PlasmaStore` in exactly the two steps
the paper describes:

1. **Disaggregated memory allocation** — the store's allocation region *is*
   the node's exposed ThymesisFlow window, so every sealed object is
   directly readable by remote nodes through their apertures (the base
   class already allocates in whatever region it is given; the cluster
   builder passes the exposed region).
2. **Remote object sharing** — stores are interconnected with RPC. On a
   client request for unknown ids the store batch-Lookups its peers and
   wires the returned descriptors to ThymesisFlow reads; on creation it
   enforces system-wide id uniqueness with Contains RPCs.

Future-work extensions (each individually switchable, all benchmarked):

* ``share_usage`` — distributed object-usage sharing: AddRef/ReleaseRef
  RPCs pin remotely-used objects at their home store so eviction cannot
  corrupt a remote reader (closes the gap paper §IV-A2 leaves open).
* ``enable_lookup_cache`` — descriptor caching for repeated requests
  (paper §V-B), invalidated by NotifyDeleted pushes.
* multi-node — peers are a list, not a single partner; nothing in the
  data path is 2-node specific.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.config import StoreConfig
from repro.common.errors import (
    ObjectExistsError,
    ObjectNotFoundError,
    ObjectStoreError,
    ObjectUnavailableError,
    ServerOverloadedError,
)
from repro.common.ids import ObjectID
from repro.core.lookup_cache import LookupCache
from repro.core.remote import PeerHandle, RemoteObjectRecord
from repro.rpc.overload import DeadlineBudget
from repro.placement.membership import TopologyView
from repro.placement.ring import HashRing
from repro.memory.host import MemoryRegion
from repro.plasma.buffer import (
    PlasmaBuffer,
    RemoteBufferSource,
    RemoteReadIntegrity,
)
from repro.plasma.entry import ObjectEntry
from repro.plasma.eviction import HeatAwareEvictionPolicy
from repro.plasma.notifications import SealNotification
from repro.plasma.store import PlasmaStore
from repro.rpc.aio.loop import Sleep
from repro.rpc.aio.streaming import stream_pull
from repro.rpc.status import StatusCode
from repro.common.errors import RpcStatusError
from repro.thymesisflow.endpoint import ThymesisEndpoint
from repro.tier.source import CachedBufferSource, TierBufferSource


class DisaggregatedStore(PlasmaStore):
    """A Plasma store whose objects live in disaggregated memory and whose
    metadata plane spans every connected peer."""

    def __init__(
        self,
        name: str,
        endpoint: ThymesisEndpoint,
        region: MemoryRegion,
        config: StoreConfig,
        clock: SimClock,
        *,
        check_remote_uniqueness: bool = True,
        share_usage: bool = False,
        enable_lookup_cache: bool = False,
        lookup_cache_entries: int = 100_000,
        notify_deletions: bool = False,
        sharing: str = "rpc",
        region_offset_in_exposed: int = 0,
    ):
        super().__init__(name, endpoint, region, config, clock)
        # 'rpc' and 'dmsg' run the same StoreService protocol over different
        # transports (gRPC-model channel vs. disaggregated-memory rings);
        # 'hashmap' replaces lookups with direct directory probes; 'hybrid'
        # (paper §V-B: "a hybrid system that combines disaggregated memory
        # hash map look-up with messaging") probes the directory for
        # lookups but keeps a dmsg channel for feedback RPCs.
        if sharing not in ("rpc", "hashmap", "dmsg", "hybrid"):
            raise ValueError(f"unknown sharing strategy {sharing!r}")
        if sharing == "hashmap" and share_usage:
            # The paper's core argument for gRPC over the shared-data-
            # structure approach: the one-way directory gives the home store
            # no usage feedback, so remote pinning is impossible. (The
            # 'hybrid' strategy exists precisely to lift this restriction.)
            raise ValueError(
                "usage sharing requires a bidirectional sharing strategy "
                "('rpc', 'dmsg' or 'hybrid')"
            )
        self._peers: dict[str, PeerHandle] = {}
        self._remote_records: dict[ObjectID, RemoteObjectRecord] = {}
        self._check_remote_uniqueness = check_remote_uniqueness
        self._share_usage = share_usage
        self._notify_deletions = notify_deletions
        self._sharing = sharing
        self._exposed_offset = region_offset_in_exposed
        self._directory = None  # home-side DisaggregatedHashMap, if attached
        self._readers: dict[str, object] = {}  # peer -> RemoteHashMapReader
        self._lookup_cache: LookupCache | None = (
            LookupCache(lookup_cache_entries) if enable_lookup_cache else None
        )
        # Replication book-keeping: which peers hold copies of our objects
        # (home side) and which of our objects are copies of a peer's
        # (replica side).
        self._replicated_to: dict[ObjectID, tuple[str, ...]] = {}
        self._replicas_of: dict[ObjectID, str] = {}
        # Elastic placement (repro.placement): the installed topology view,
        # the ring derived from it, and migration book-keeping. All None /
        # empty until the cluster enables placement.
        self._placement_cfg = None
        self._topology: TopologyView | None = None
        self._ring: HashRing | None = None
        self._pending_adoptions: set[ObjectID] = set()
        self._deferred_retires: set[ObjectID] = set()
        self._m_get = None
        # Tiering (repro.tier): the node's TierAgent — hot-object byte
        # cache plus heat trackers. None until the cluster enables tiering;
        # every tier branch below is branch-on-None so the disabled path is
        # byte-identical to a build without the subsystem.
        self._tier = None
        # Async RPC plane (repro.rpc.aio): the cluster-wide event loop and
        # the mode flag. In sync mode nothing ever schedules on the loop and
        # the flag check is the only new cost on the baseline path.
        self._aio_loop = None
        self._rpc_async = False

    # -- observability -----------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Local-store metrics plus Get latency and lookup-cache gauges."""
        super().attach_metrics(registry)
        if not getattr(registry, "enabled", True):
            return
        self._m_get = registry.histogram(
            "plasma_get_latency_ns",
            "Simulated end-to-end Get latency at the store "
            "(lookup + pin + buffer construction).",
            labels=("store",),
        ).labels(store=self._name)
        if self._lookup_cache is not None:
            entries = registry.gauge(
                "cache_entries",
                "Live lookup-cache descriptors.",
                labels=("store",),
            )
            hit_rate = registry.gauge(
                "cache_hit_rate",
                "Lookup-cache hit rate since start.",
                labels=("store",),
            )
            cache = self._lookup_cache
            entries.labels(store=self._name).set_function(lambda: len(cache))
            hit_rate.labels(store=self._name).set_function(lambda: cache.hit_rate)
            events = registry.gauge(
                "cache_events",
                "Lookup-cache event counts since start "
                "(hits/misses/evictions/invalidations).",
                labels=("store", "event"),
            )
            for event in ("hits", "misses", "evictions", "invalidations"):
                events.labels(store=self._name, event=event).set_function(
                    lambda e=event: getattr(cache, e)
                )
        if self._tier is not None and self._tier.cache is not None:
            tier_cache = self._tier.cache
            specs = (
                ("tier_cache_entries", "Live hot-object cache entries.",
                 lambda: len(tier_cache)),
                ("tier_cache_bytes", "Bytes held by the hot-object cache.",
                 lambda: tier_cache.used_bytes),
                ("tier_cache_hit_rate",
                 "Hot-object cache hit rate since start.",
                 lambda: tier_cache.hit_rate),
                ("tier_cache_bytes_avoided",
                 "Fabric read bytes served from the hot-object cache.",
                 lambda: tier_cache.bytes_avoided),
            )
            for gauge_name, help_text, fn in specs:
                registry.gauge(
                    gauge_name, help_text, labels=("store",)
                ).labels(store=self._name).set_function(fn)

    # -- topology ---------------------------------------------------------------

    def connect_peer(self, handle: PeerHandle) -> None:
        if handle.name == self._name:
            raise ObjectStoreError("a store does not peer with itself")
        if handle.name in self._peers:
            raise ObjectStoreError(f"{self._name} already peers with {handle.name}")
        self._peers[handle.name] = handle

    def disconnect_peer(self, name: str) -> None:
        """Remove *name* from the metadata plane (it left the cluster).

        Cached descriptors homed there are purged in one pass; remote
        records without live references are dropped. Records still held by
        readers release locally — there is no peer left to un-pin at."""
        self._peers.pop(name, None)
        self._readers.pop(name, None)
        if self._lookup_cache is not None:
            self._lookup_cache.invalidate_node(name)
        if self._tier is not None and self._tier.cache is not None:
            # Payload bytes cached from the departed home may outlive any
            # NotifyDeleted it could no longer send — drop them wholesale.
            self._tier.cache.invalidate_home(name)
        stale = [
            oid
            for oid, record in self._remote_records.items()
            if record.home == name and record.local_refs == 0
        ]
        for oid in stale:
            del self._remote_records[oid]
        self.counters.inc("peers_disconnected")

    def peers(self) -> list[str]:
        return sorted(self._peers)

    def peer(self, name: str) -> PeerHandle:
        try:
            return self._peers[name]
        except KeyError:
            raise ObjectStoreError(f"{self._name} has no peer {name!r}") from None

    @property
    def share_usage(self) -> bool:
        return self._share_usage

    @property
    def sharing(self) -> str:
        return self._sharing

    @property
    def lookup_cache(self) -> LookupCache | None:
        return self._lookup_cache

    # -- tiering (repro.tier) -----------------------------------------------------

    def attach_tier(self, agent) -> None:
        """Arm the tiering plane: *agent* fronts every materialising fabric
        read with its hot-object cache and feeds the heat trackers the
        promotion/demotion engine plans from. Capacity-pressure eviction is
        upgraded to coldest-first so it agrees with demotion about victims."""
        self._tier = agent
        policy = HeatAwareEvictionPolicy(
            self._region.size, self._config.eviction_batch_fraction
        )
        policy.heat_probe = agent.local_heat.heat
        self._eviction = policy

    @property
    def tier_agent(self):
        return self._tier

    # -- hashmap-sharing wiring (ablation E6) -----------------------------------

    def attach_directory(self, directory) -> None:
        """Attach the home-side disaggregated hash directory; sealed objects
        are published to it and deletions retract them."""
        self._directory = directory

    def attach_hashmap_reader(self, peer_name: str, reader) -> None:
        """Attach the remote-side reader for *peer_name*'s directory."""
        self._readers[peer_name] = reader

    @property
    def directory(self):
        return self._directory

    # -- elastic placement (repro.placement) ------------------------------------

    def enable_placement(self, placement_cfg) -> None:
        """Arm the placement plane; the cluster installs topology views
        (locally for the coordinator, via UpdateTopology RPCs for peers)."""
        self._placement_cfg = placement_cfg

    @property
    def placement_enabled(self) -> bool:
        return self._placement_cfg is not None

    def topology(self) -> TopologyView | None:
        return self._topology

    @property
    def topology_epoch(self) -> int:
        return self._topology.epoch if self._topology is not None else 0

    def placement_ring(self) -> HashRing | None:
        return self._ring

    def install_topology(self, view: TopologyView) -> bool:
        """Adopt *view* iff its epoch is newer than what we hold (replayed
        or re-ordered pushes are no-ops), rebuild the placement ring, and
        epoch-stamp the lookup cache so descriptors learned under the old
        topology are re-looked-up instead of trusted."""
        if self._placement_cfg is None:
            raise ObjectStoreError(
                f"{self._name} was not built with placement enabled"
            )
        if self._topology is not None and view.epoch <= self._topology.epoch:
            self.counters.inc("topology_stale_updates")
            return False
        self._topology = view
        cfg = self._placement_cfg
        self._ring = HashRing.from_view(
            view,
            vnodes=cfg.vnodes,
            high_watermark=cfg.capacity_high_watermark,
            min_capacity_factor=cfg.min_capacity_factor,
        )
        if self._lookup_cache is not None:
            self._lookup_cache.set_epoch(view.epoch)
        if self._tier is not None and self._tier.cache is not None:
            # A topology change moves objects (drain migrations, crash
            # failovers) faster than per-object notifications can keep up;
            # the epoch bump is the wholesale invalidation channel.
            self._tier.cache.clear()
        self.counters.inc("topology_installs")
        return True

    def placement_home(self, object_id: ObjectID) -> str | None:
        """Where a *new* object with this id belongs, or None for "create
        locally" (placement off, we are the home, or the home is not a
        connected peer)."""
        if self._ring is None:
            return None
        home = self._ring.home(object_id)
        if home == self._name or home not in self._peers:
            return None
        return home

    def forward_put(
        self,
        object_id: ObjectID,
        data,
        metadata: bytes,
        home: str,
        *,
        replicas: int = 1,
    ) -> bool:
        """Create a new object at its ring *home* instead of locally.

        PlacedCreate allocates the extent at the home (header unsealed);
        the payload streams over the ThymesisFlow fabric as a remote write
        into the home's exposed region (Fig 3b — bulk bytes never touch the
        LAN); PlacedSeal makes the home flush its stale cached lines and
        seal. Returns False when the home's metadata plane is unreachable —
        the caller degrades to a local create and the rebalancer re-homes
        the object later."""
        if self._aio_facade():
            return self._drive(
                self.forward_put_task(
                    object_id, data, metadata, home, replicas=replicas
                ),
                name=f"forward-put:{home}",
            )
        handle = self.peer(home)
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        # One budget for the whole forwarded create: PlacedSeal is issued
        # with whatever the PlacedCreate hop and fabric write left of the
        # channel's default deadline, so a slow first hop shrinks the
        # second instead of resetting it.
        budget = DeadlineBudget.for_stub(handle.stub, self.clock)
        try:
            response = handle.stub.PlacedCreate(
                {
                    "object_id": object_id.binary(),
                    "data_size": len(mv),
                    "metadata": bytes(metadata),
                },
                **budget.kwargs(),
            )
        except RpcStatusError as exc:
            if exc.code is StatusCode.ALREADY_EXISTS:
                raise ObjectExistsError(
                    f"{object_id!r} already exists in home store {home}"
                ) from exc
            if self._peer_unavailable(home, exc):
                self.counters.inc("placed_creates_fallback")
                return False
            raise
        offset = int(response["offset"])
        handle.remote_region.write(offset, mv)
        try:
            handle.stub.PlacedSeal(
                {"object_id": object_id.binary(), "replicas": int(replicas)},
                **budget.kwargs(),
            )
        except RpcStatusError as exc:
            if self._peer_unavailable(home, exc):
                # The home died holding the unsealed extent (its restart
                # recovery reclaims it), but the id is burned there — do
                # NOT create locally; surface the outage instead.
                raise ObjectUnavailableError(
                    f"home store {home} became unreachable while sealing "
                    f"{object_id!r}",
                    unreachable_peers=(home,),
                ) from exc
            raise
        self.counters.inc("placed_creates_forwarded")
        self.counters.inc("placed_bytes_forwarded", len(mv))
        return True

    def placed_create(
        self, object_id: ObjectID, data_size: int, metadata: bytes = b""
    ) -> int:
        """Home side of a placement-routed create: allocate (unsealed) and
        return the exposed-region offset the creator streams payload to."""
        entry = self.create_object_unchecked(object_id, data_size, metadata)
        self.counters.inc("placed_creates_received")
        return entry.payload_offset + self._exposed_offset

    def placed_seal(self, object_id: ObjectID, replicas: int = 1) -> None:
        """Seal a placement-routed object after the creator's fabric write.

        The remote write left this CPU's cached lines over the extent stale
        (the Fig 3b staleness trap); ``invalidate_exposed`` models the
        paper's hypothetical kernel-module fix, so the seal-time CRC reads
        the bytes the creator actually wrote."""
        with self.table.lock:
            entry = self.table.lookup(object_id)
            if entry is None:
                raise ObjectNotFoundError(
                    f"{object_id!r} not found in {self._name}"
                )
            self.endpoint.invalidate_exposed(
                entry.allocation.offset + self._exposed_offset,
                entry.allocation.padded_size,
            )
        self.seal_object(object_id)
        for _ in range(max(0, int(replicas) - 1)):
            self.replicate_object(object_id)

    # -- live migration (repro.placement.migrate) -------------------------------

    def migration_descriptor(self, object_id: ObjectID) -> dict | None:
        """Source side: the wire descriptor MigratePrepare carries, or None
        if the object is no longer a migratable sealed primary."""
        with self.table.lock:
            entry = self.table.lookup(object_id)
            if entry is None or not entry.is_sealed or entry.quarantined:
                return None
            return {
                "object_id": object_id.binary(),
                "offset": entry.payload_offset + self._exposed_offset,
                "data_size": entry.data_size,
                "metadata": entry.metadata,
            }

    def begin_adopt(
        self,
        source: str,
        object_id: ObjectID,
        offset: int,
        data_size: int,
        metadata: bytes = b"",
        holders=(),
    ) -> str:
        """Destination side of MigratePrepare: allocate a fresh extent (new
        integrity-header generation, header written *unsealed*) and pull
        the payload zero-copy from the source's exposed region. Returns
        ``'sealed'`` when a sealed copy already lives here (idempotent
        re-drive after a source crash, or a promoted replica), else
        ``'prepared'``."""
        with self.table.lock:
            existing = self.table.lookup(object_id)
            sealed_already = existing is not None and existing.is_sealed
        if sealed_already:
            self._replicas_of.pop(object_id, None)
            others = [h for h in holders if h != self._name]
            if others:
                self.record_replicas(object_id, others)
            self.counters.inc("adoptions_already_sealed")
            return "sealed"
        if existing is not None:
            # Unsealed leftover of an earlier aborted migration: discard
            # the half-copy and pull afresh.
            self.abort_adopt(object_id)
        handle = self.peer(source)
        entry = self.create_object_unchecked(object_id, data_size, metadata)
        self._pull_payload(handle, entry, offset, data_size)
        self._pending_adoptions.add(object_id)
        others = [h for h in holders if h != self._name]
        if others:
            self.record_replicas(object_id, others)
        self.counters.inc("adoptions_prepared")
        return "prepared"

    def commit_adopt(self, object_id: ObjectID) -> int:
        """Destination side of MigrateCommit: seal — payload CRC, in-region
        seal flag and directory publication all happen under the table
        mutex, so the new descriptor becomes visible atomically. Idempotent
        for a re-sent commit; returns the new generation."""
        if object_id not in self._pending_adoptions:
            with self.table.lock:
                entry = self.table.lookup(object_id)
                if entry is not None and entry.is_sealed:
                    return entry.generation
            raise ObjectNotFoundError(
                f"{self._name} has no pending migration for {object_id!r}"
            )
        entry = self.seal_object(object_id)
        self._pending_adoptions.discard(object_id)
        self.counters.inc("adoptions_committed")
        return entry.generation

    def abort_adopt(self, object_id: ObjectID) -> None:
        """Drop an unsealed adoption (never published, so never referenced);
        retire-before-free keeps any racing fabric reader typed-failing."""
        with self.table.lock:
            entry = self.table.lookup(object_id)
            if entry is None or entry.is_sealed:
                self._pending_adoptions.discard(object_id)
                return
            self.table.remove(object_id)
            self._retire_header(entry)
            self._allocator.free(entry.allocation.offset)
        self._pending_adoptions.discard(object_id)
        self.counters.inc("adoptions_aborted")

    def retire_migrated(self, object_id: ObjectID) -> bool:
        """Source side, after a committed migration: retire the local copy
        via the retire-before-free path (generation bump + seal-flag clear
        *before* the extent returns to the allocator), so an in-flight
        remote reader fails typed and re-looks-up at the new home. A copy
        pinned by readers is deferred instead of yanked; returns True when
        the copy is gone, False when deferred."""
        with self.table.lock:
            entry = self.table.lookup(object_id)
            if entry is None:
                self._deferred_retires.discard(object_id)
                return True
            if entry.total_refs > 0:
                if object_id not in self._deferred_retires:
                    self._deferred_retires.add(object_id)
                    self.counters.inc("migration_retires_deferred")
                return False
            self.table.remove(object_id)
            self._retire_header(entry)
            self._allocator.free(entry.allocation.offset)
        self._deferred_retires.discard(object_id)
        self._replicated_to.pop(object_id, None)
        self._retract_from_directory(object_id)
        self._broadcast_deleted(object_id)
        self._notify(SealNotification(object_id, entry.data_size, deleted=True))
        self.counters.inc("objects_migrated_out")
        self.counters.inc("bytes_migrated_out", entry.data_size)
        return True

    def flush_deferred_retires(self) -> int:
        """Retry deferred source retirements (rebalancer tick); returns how
        many copies were actually freed."""
        done = 0
        for oid in sorted(self._deferred_retires):
            if self.retire_migrated(oid):
                done += 1
        return done

    def deferred_retires(self) -> frozenset:
        return frozenset(self._deferred_retires)

    # -- descriptor translation ---------------------------------------------------

    def lookup_descriptor(self, object_id: ObjectID) -> dict | None:
        """Descriptors cross the wire with offsets relative to the *exposed*
        region (what the peer's aperture addresses), which may start before
        the store's allocation region (e.g. the hashmap directory prefix)."""
        descriptor = super().lookup_descriptor(object_id)
        if descriptor is not None and self._exposed_offset:
            descriptor = {
                **descriptor,
                "offset": descriptor["offset"] + self._exposed_offset,
            }
        return descriptor

    # -- publishing to the directory -------------------------------------------------

    def seal_object(self, object_id: ObjectID) -> ObjectEntry:
        entry = super().seal_object(object_id)
        if self._directory is not None:
            self._directory.insert(
                object_id,
                entry.payload_offset + self._exposed_offset,
                entry.data_size,
            )
        return entry

    def _retract_from_directory(self, object_id: ObjectID) -> None:
        if self._directory is not None:
            self._directory.remove(object_id)

    # -- id uniqueness across the system (paper §IV-A2) ---------------------------------

    def _peer_unavailable(self, name: str, exc: RpcStatusError) -> bool:
        """True (and counted) iff *exc* means the peer's metadata plane is
        unreachable — its process is down (UNAVAILABLE, possibly fast-failed
        by an open circuit breaker) or it cannot answer within the deadline.
        Data in its exposed memory stays reachable over the fabric; only the
        metadata plane is skipped."""
        if exc.code in (StatusCode.UNAVAILABLE, StatusCode.DEADLINE_EXCEEDED):
            self.counters.inc("peers_unavailable")
            return True
        return False

    def check_id_available(self, object_id: ObjectID) -> None:
        super().check_id_available(object_id)
        if not self._check_remote_uniqueness:
            return
        payload = {"object_ids": [object_id.binary()]}
        for name in self.peers():
            try:
                response = self._peers[name].stub.Contains(payload)
            except RpcStatusError as exc:
                # A down peer cannot answer; creation proceeds on the
                # surviving quorum (documented weakening, like any
                # availability/consistency trade).
                if self._peer_unavailable(name, exc):
                    continue
                raise
            if any(response.get("present", [])):
                raise ObjectExistsError(
                    f"{object_id!r} already exists in peer store {name}"
                )

    def reserve_ids(self, object_ids: list[ObjectID]) -> None:
        """Batched uniqueness check: one Contains RPC per peer for the whole
        batch — the amortised variant producers use for bulk commits."""
        with self.table.lock:
            for oid in object_ids:
                if self.table.contains(oid):
                    raise ObjectExistsError(f"{oid!r} already exists in {self._name}")
        if not self._check_remote_uniqueness or not object_ids:
            return
        payload = {"object_ids": [oid.binary() for oid in object_ids]}
        for name in self.peers():
            try:
                response = self._peers[name].stub.Contains(payload)
            except RpcStatusError as exc:
                if self._peer_unavailable(name, exc):
                    continue
                raise
            present = response.get("present", [])
            for oid, hit in zip(object_ids, present):
                if hit:
                    raise ObjectExistsError(
                        f"{oid!r} already exists in peer store {name}"
                    )

    # -- the remote retrieval path (paper Fig 5) --------------------------------------------

    def get_buffers(
        self, object_ids: list[ObjectID], allow_missing: bool = False
    ) -> list[PlasmaBuffer]:
        """Resolve ids to buffers, local or remote, adding references.

        Local ids resolve against the table; unknown ids go through the
        lookup cache (if enabled), then batched per-peer Lookup RPCs, then
        ThymesisFlow-backed buffers. Raises
        :class:`~repro.common.errors.ObjectNotFoundError` if any id resolves
        nowhere — unless ``allow_missing`` is set, in which case unresolved
        positions come back as ``None``.
        """
        if not object_ids:
            return []
        if self._aio_facade():
            start_ns = self.clock.now_ns
            try:
                return self._drive(
                    self.get_buffers_task(object_ids, allow_missing),
                    name=f"get:{self._name}",
                )
            finally:
                if self._m_get is not None:
                    self._m_get.observe(self.clock.now_ns - start_ns)
        if self.tracer is None and self.spans is None and self._m_get is None:
            return self._get_buffers_inner(object_ids, allow_missing)
        start_ns = self.clock.now_ns
        try:
            if self.tracer is not None or self.spans is not None:
                args = {"n": len(object_ids)}
                rid = self.correlation.current if self.correlation else None
                if rid is not None:
                    args["rid"] = rid
                return self._get_buffers_observed(object_ids, allow_missing, args)
            return self._get_buffers_inner(object_ids, allow_missing)
        finally:
            if self._m_get is not None:
                self._m_get.observe(self.clock.now_ns - start_ns)

    def _get_buffers_observed(
        self, object_ids: list[ObjectID], allow_missing: bool, args: dict
    ) -> list[PlasmaBuffer]:
        if self.spans is not None:
            with self.spans.span("store", "get_buffers", node=self.node, **args):
                return self._get_buffers_legacy_traced(
                    object_ids, allow_missing, args
                )
        return self._get_buffers_legacy_traced(object_ids, allow_missing, args)

    def _get_buffers_legacy_traced(
        self, object_ids: list[ObjectID], allow_missing: bool, args: dict
    ) -> list[PlasmaBuffer]:
        if self.tracer is not None:
            with self.tracer.span("store", "get_buffers", track=self.node, **args):
                return self._get_buffers_inner(object_ids, allow_missing)
        return self._get_buffers_inner(object_ids, allow_missing)

    def _get_buffers_inner(
        self, object_ids: list[ObjectID], allow_missing: bool
    ) -> list[PlasmaBuffer]:
        buffers: dict[ObjectID, PlasmaBuffer | None] = {}
        missing: list[ObjectID] = []
        with self.table.lock:
            for oid in object_ids:
                entry = self.table.lookup(oid)
                if entry is not None:
                    if not entry.is_sealed:
                        if allow_missing:
                            buffers[oid] = None
                            continue
                        raise ObjectNotFoundError(
                            f"{oid!r} exists locally but is not sealed"
                        )
                    self.table.add_ref(oid)
                    buffers[oid] = self.local_buffer(entry)
                    if self._tier is not None:
                        self._tier.note_local_get(oid)
                else:
                    missing.append(oid)
        served_cached = 0
        if missing and self._tier is not None and self._notify_deletions:
            # Pre-resolution fast path: a cached incarnation can be served
            # without touching the home at all — no Lookup, no AddRef/
            # ReleaseRef round trips, no fabric stream. Sound only because
            # deletes and evictions *push* NotifyDeleted to every peer
            # (hence the gate), so anything still cached is live.
            unresolved: list[ObjectID] = []
            for oid in missing:
                if oid in self._remote_records:
                    # A held handle pinned this incarnation at its home;
                    # keep the resolving path's refcounts authoritative.
                    unresolved.append(oid)
                    continue
                hit = self._tier.serve_cached(oid)
                if hit is None:
                    unresolved.append(oid)
                    continue
                _, payload, home = hit
                buffers[oid] = self._cache_served_buffer(oid, payload, home)
                self._tier.note_served(oid)
                self._tier.note_remote_get(oid)
                served_cached += 1
            missing = unresolved
        found_remote = 0
        if missing:
            records = self._resolve_remote(missing, allow_missing)
            newly_pinned: dict[str, list[ObjectID]] = {}
            for oid in missing:
                record = records.get(oid)
                if record is None:
                    buffers[oid] = None  # allow_missing guaranteed by resolve
                    continue
                if record.local_refs == 0 and self._share_usage:
                    newly_pinned.setdefault(record.home, []).append(oid)
                record.local_refs += 1
                buffers[oid] = self._remote_buffer(record)
                found_remote += 1
                if self._tier is not None:
                    self._tier.note_remote_get(oid)
            self._pin_at_home(newly_pinned)
        self.counters.inc(
            "gets_local", len(object_ids) - len(missing) - served_cached
        )
        self.counters.inc("gets_remote", found_remote)
        if served_cached:
            self.counters.inc("gets_cache_served", served_cached)
        return [buffers[oid] for oid in object_ids]

    def _resolve_remote(
        self, object_ids: list[ObjectID], allow_missing: bool = False
    ) -> dict[ObjectID, RemoteObjectRecord]:
        resolved: dict[ObjectID, RemoteObjectRecord] = {}
        unresolved: list[ObjectID] = []
        for oid in object_ids:
            record = self._remote_records.get(oid)
            if record is None and self._lookup_cache is not None:
                record = self._lookup_cache.get(oid)
                if record is not None:
                    self._remote_records[oid] = record
                    self.counters.inc("lookup_cache_hits")
            if record is not None:
                resolved[oid] = record
            else:
                unresolved.append(oid)
        if unresolved:
            unreachable: list[str] = []
            if self._sharing in ("hashmap", "hybrid"):
                still = self._hashmap_lookup(unresolved, resolved)
            else:
                still = self._rpc_lookup(unresolved, resolved, unreachable)
            if still and not allow_missing:
                detail = ", ".join(repr(oid) for oid in still[:5])
                if unreachable:
                    # The ids may well exist — on the peers we could not
                    # reach. Typed so callers can tell an outage from a
                    # genuinely absent object (and retry after recovery).
                    raise ObjectUnavailableError(
                        f"{len(still)} object(s) unresolved while peer(s) "
                        f"{', '.join(unreachable)} are unreachable: {detail}",
                        unreachable_peers=tuple(unreachable),
                    )
                raise ObjectNotFoundError(
                    f"{len(still)} object(s) not found anywhere: " + detail
                )
        return resolved

    def _rpc_lookup(
        self,
        object_ids: list[ObjectID],
        resolved: dict[ObjectID, RemoteObjectRecord],
        unreachable: list[str] | None = None,
    ) -> list[ObjectID]:
        """One batched Lookup per peer until everything resolves; returns
        the ids nobody claimed. Peers whose metadata plane cannot answer
        (down, breaker-open, past deadline) are skipped and collected into
        *unreachable*; so is a peer shedding under overload — its objects
        may well exist, so unresolved ids surface as the typed outage
        rather than not-found.

        When hedging is configured on the channels, a non-final peer is
        only waited on for the hedge delay (a configured quantile of that
        channel's observed latency): on expiry the sweep abandons the
        attempt (the cancellation) and moves straight to the next holder.
        A sweep that still has unresolved ids afterwards retries the
        hedged (slow, not dead) peers once with the full deadline —
        hedging trades tail latency for duplicate work, never
        availability."""
        remaining = list(object_ids)
        peers = self.peers()
        hedged: list[str] = []
        for index, name in enumerate(peers):
            if not remaining:
                break
            hedge_ns = None
            if index < len(peers) - 1:
                channel = getattr(self._peers[name].stub, "channel", None)
                if channel is not None and hasattr(channel, "hedge_delay_ns"):
                    hedge_ns = channel.hedge_delay_ns()
            remaining = self._lookup_peer(
                name, remaining, resolved, unreachable, hedged, hedge_ns
            )
        if remaining and hedged:
            self.counters.inc("lookup_hedge_losses")
            for name in hedged:
                if not remaining:
                    break
                remaining = self._lookup_peer(
                    name, remaining, resolved, unreachable, None, None
                )
        return remaining

    def _lookup_peer(
        self,
        name: str,
        remaining: list[ObjectID],
        resolved: dict[ObjectID, RemoteObjectRecord],
        unreachable: list[str] | None,
        hedged: list[str] | None,
        hedge_ns: float | None,
    ) -> list[ObjectID]:
        """Probe one peer with a batched Lookup (optionally clamped to the
        hedge delay); returns the ids it did not claim."""
        payload = {"object_ids": [oid.binary() for oid in remaining]}
        stub = self._peers[name].stub
        try:
            if hedge_ns is not None:
                if self.spans is not None:
                    # Time burned waiting on a hedge-clamped probe is the
                    # cost of the hedging policy, not ordinary service —
                    # attribute every ns of this attempt to "hedge".
                    with self.spans.component("hedge"):
                        response = stub.Lookup(payload, deadline_ns=hedge_ns)
                else:
                    response = stub.Lookup(payload, deadline_ns=hedge_ns)
            else:
                response = stub.Lookup(payload)
        except ServerOverloadedError:
            if hedge_ns is not None and hedged is not None:
                # Shed *under the hedge clamp*: the server refused work it
                # could not finish inside the hedge window. That is the
                # hedge firing, not an outage — the peer stays eligible
                # for the full-deadline retry after the sweep.
                self.counters.inc("lookup_hedges_fired")
                hedged.append(name)
                return remaining
            # The peer is alive but shedding load; back off rather than
            # fail over (the channel's breaker/retry budget already did
            # their part).
            self.counters.inc("lookups_shed")
            if unreachable is not None:
                unreachable.append(name)
            return remaining
        except RpcStatusError as exc:
            if hedge_ns is not None and exc.code is StatusCode.DEADLINE_EXCEEDED:
                # The hedge fired: this peer is slow, not dead — it is NOT
                # marked unreachable. The sweep hedges to the next holder;
                # this abandoned attempt is the cancelled one.
                self.counters.inc("lookup_hedges_fired")
                hedged.append(name)
                return remaining
            # A down peer's objects are unreachable by lookup (their
            # bytes survive in exposed memory, but nobody can resolve
            # ids to offsets) — skip it and keep serving. An open
            # circuit breaker takes this same path, at ~1 us instead
            # of a full timed-out round trip.
            if self._peer_unavailable(name, exc):
                if unreachable is not None:
                    unreachable.append(name)
                return remaining
            raise
        self.counters.inc("lookup_rpcs")
        found = response.get("found", [])
        claimed: set[ObjectID] = set()
        for descriptor in found:
            record = RemoteObjectRecord.from_descriptor(name, descriptor)
            self._remote_records[record.object_id] = record
            if self._lookup_cache is not None:
                self._lookup_cache.put(record)
            resolved[record.object_id] = record
            claimed.add(record.object_id)
        if hedged and claimed:
            # An answer arrived from a holder reached only because an
            # earlier hedge fired — the hedge won the race.
            self.counters.inc("lookup_hedge_wins")
        return [oid for oid in remaining if oid not in claimed]

    def _hashmap_lookup(
        self,
        object_ids: list[ObjectID],
        resolved: dict[ObjectID, RemoteObjectRecord],
    ) -> list[ObjectID]:
        """Resolve ids by probing peers' disaggregated hash directories with
        timed fabric loads (no RPC; no usage feedback)."""
        remaining = list(object_ids)
        for name in self.peers():
            if not remaining:
                break
            reader = self._readers.get(name)
            if reader is None:
                continue
            claimed: set[ObjectID] = set()
            for oid in remaining:
                hit = reader.lookup(oid)
                self.counters.inc("directory_probes")
                if hit is None:
                    continue
                offset, size = hit
                # The directory carries no generation; generation=0 means
                # validated reads still check magic/id/seal, but accept any
                # generation (the one-way-sharing trade, paper §V-B).
                record = RemoteObjectRecord(
                    object_id=oid,
                    home=name,
                    offset=offset,
                    data_size=size,
                    header_size=self.header_size,
                )
                self._remote_records[oid] = record
                if self._lookup_cache is not None:
                    self._lookup_cache.put(record)
                resolved[oid] = record
                claimed.add(oid)
            remaining = [oid for oid in remaining if oid not in claimed]
        return remaining

    def _pull_payload(self, handle, entry, offset: int, data_size: int) -> None:
        """Bulk-pull a peer object's payload into a fresh local extent
        (migration adoption, replica materialisation, tier promotion all
        come through here). Sync mode keeps the baseline one-lump
        ``view + charge_read`` shape byte-for-byte; async mode streams in
        ``stream_chunk_bytes`` chunks, charging the identical link model
        per slice."""
        if self._rpc_async:
            channel = self._peer_channel(handle.name)
            kwargs = (
                {"chunk_bytes": channel.stream_chunk_bytes}
                if channel is not None
                else {}
            )
            payload = stream_pull(
                handle.remote_region, offset, data_size, **kwargs
            )
        else:
            payload = handle.remote_region.view(offset, data_size)
            handle.remote_region.charge_read(data_size)
        self.local_buffer(entry).write(payload)

    def _remote_buffer(self, record: RemoteObjectRecord) -> PlasmaBuffer:
        handle = self.peer(record.home)
        source = RemoteBufferSource(
            handle.remote_region, record.offset, self._integrity_for(record)
        )
        if self._tier is not None and self._tier.cache is not None:
            source = TierBufferSource(
                source, record, handle.remote_region, self._tier, self
            )
        return PlasmaBuffer(
            record.object_id,
            source,
            record.data_size,
            sealed=True,
            metadata=record.metadata,
        )

    def _cache_served_buffer(
        self, object_id: ObjectID, payload: bytes, home: str
    ) -> PlasmaBuffer:
        """A handle over a cache-resident payload copy (the pre-resolution
        fast path); reads charge the local-copy model and credit the home
        link with the fabric stream they replaced."""
        handle = self._peers.get(home)
        link = handle.remote_region.aperture.link if handle is not None else None
        source = CachedBufferSource(payload, home, self._tier, self, link)
        return PlasmaBuffer(
            object_id, source, len(payload), sealed=True
        )

    def _integrity_for(
        self, record: RemoteObjectRecord
    ) -> RemoteReadIntegrity | None:
        """The validation context a fabric read of *record* runs under, or
        None when the home store writes no headers / validation is off."""
        if not self.config.verify_remote_reads or not record.header_size:
            return None
        return RemoteReadIntegrity(
            object_id=record.object_id.binary(),
            generation=record.generation,
            header_size=record.header_size,
            payload_crc=record.payload_crc,
            verify_checksum=self.config.verify_checksum_on_read,
            checksum_ns_per_byte=self.config.checksum_ns_per_byte,
            clock=self.clock,
            refresh=lambda oid=record.object_id: self._refresh_stale(oid),
        )

    def _refresh_stale(self, object_id: ObjectID) -> tuple | None:
        """A validated fabric read hit a stale header: drop every cached
        descriptor for *object_id* (satisfying the lost-NotifyDeleted case —
        generation mismatch is the backstop invalidation signal), re-Lookup
        once, and hand the reader a fresh read target. Returns
        ``(remote_region, payload_offset, integrity)`` or None if nobody
        claims the id anymore."""
        self.counters.inc("stale_descriptor_refreshes")
        # The stale record stays registered until the re-lookup succeeds, so
        # held buffers release cleanly even when the object is gone for
        # good; the *cache* entry goes immediately — it is proven wrong.
        old = self._remote_records.get(object_id)
        if self._lookup_cache is not None:
            self._lookup_cache.invalidate(object_id)
        if self._tier is not None and self._tier.cache is not None:
            # The generation moved on; entries keyed by the old one can
            # never hit again — reclaim their bytes now.
            self._tier.cache.invalidate(object_id)
        resolved: dict[ObjectID, RemoteObjectRecord] = {}
        if self._sharing in ("hashmap", "hybrid"):
            self._hashmap_lookup([object_id], resolved)
        else:
            try:
                self._rpc_lookup([object_id], resolved, unreachable=[])
            except RpcStatusError:
                return None
        record = resolved.get(object_id)
        if record is None:
            return None
        if old is not None:
            # The stale record's handles keep working against the fresh
            # incarnation; re-pin at the (possibly different) home.
            record.local_refs = old.local_refs
            if old.local_refs and self._share_usage:
                try:
                    self._peers[record.home].stub.AddRef(
                        {"object_ids": [object_id.binary()]}
                    )
                    record.pinned_at_home = True
                except RpcStatusError:
                    pass
        self._remote_records[object_id] = record
        handle = self.peer(record.home)
        return handle.remote_region, record.offset, self._integrity_for(record)

    def _pin_at_home(self, by_home: dict[str, list[ObjectID]]) -> None:
        for home, oids in by_home.items():
            try:
                self._peers[home].stub.AddRef(
                    {"object_ids": [oid.binary() for oid in oids]}
                )
            except RpcStatusError as exc:
                if exc.code is StatusCode.NOT_FOUND:
                    # The object vanished between lookup and pin — surface
                    # as not-found so the client can retry cleanly.
                    raise ObjectNotFoundError(str(exc)) from exc
                raise
            for oid in oids:
                self._remote_records[oid].pinned_at_home = True
            self.counters.inc("addref_rpcs")

    # -- async task plane (repro.rpc.aio) --------------------------------------------

    def attach_aio(self, loop, *, async_mode: bool = False) -> None:
        """Wire the cluster-wide event loop; *async_mode* arms the task
        facades (``rpc_mode="async"``). Attaching draws nothing and changes
        nothing observable in sync mode."""
        self._aio_loop = loop
        self._rpc_async = bool(async_mode)

    def set_rpc_async(self, enabled: bool) -> None:
        """Flip this store between sync facades and event-loop task forms."""
        if enabled and self._aio_loop is None:
            raise ObjectStoreError(
                f"{self._name} has no event loop attached (attach_aio first)"
            )
        self._rpc_async = bool(enabled)

    @property
    def rpc_async(self) -> bool:
        return self._rpc_async

    @property
    def aio_loop(self):
        return self._aio_loop

    def _aio_facade(self) -> bool:
        """True when a synchronous facade should reroute through its task
        form: async mode is on and we are *not* already inside a task (a
        nested facade executes its classic inline body instead — blocking
        semantics are safe there, re-entering the loop driver is not)."""
        return (
            self._rpc_async
            and self._aio_loop is not None
            and not self._aio_loop.driving
        )

    def _drive(self, gen, name: str | None = None):
        """Run a task form to completion from a synchronous facade."""
        loop = self._aio_loop
        return loop.run_until_complete(loop.spawn(gen, name=name))

    def _peer_channel(self, name: str):
        """The peer's task-capable channel, or None when its transport has
        no event-loop integration (dmsg rings)."""
        channel = getattr(self._peers[name].stub, "channel", None)
        if channel is not None and hasattr(channel, "unary_task"):
            return channel
        return None

    def get_buffers_task(
        self,
        object_ids: list[ObjectID],
        allow_missing: bool = False,
        attr=None,
    ):
        """Task form of :meth:`get_buffers`: the local table and tier-cache
        scans are instant; unresolved ids go through concurrent (scatter-
        gather, optionally hedged) batched Lookups and a gathered AddRef
        pin. Mirrors ``_get_buffers_inner`` outcome-for-outcome."""
        buffers: dict[ObjectID, PlasmaBuffer | None] = {}
        missing: list[ObjectID] = []
        with self.table.lock:
            for oid in object_ids:
                entry = self.table.lookup(oid)
                if entry is not None:
                    if not entry.is_sealed:
                        if allow_missing:
                            buffers[oid] = None
                            continue
                        raise ObjectNotFoundError(
                            f"{oid!r} exists locally but is not sealed"
                        )
                    self.table.add_ref(oid)
                    buffers[oid] = self.local_buffer(entry)
                    if self._tier is not None:
                        self._tier.note_local_get(oid)
                else:
                    missing.append(oid)
        served_cached = 0
        if missing and self._tier is not None and self._notify_deletions:
            unresolved: list[ObjectID] = []
            for oid in missing:
                if oid in self._remote_records:
                    unresolved.append(oid)
                    continue
                hit = self._tier.serve_cached(oid)
                if hit is None:
                    unresolved.append(oid)
                    continue
                _, payload, home = hit
                buffers[oid] = self._cache_served_buffer(oid, payload, home)
                self._tier.note_served(oid)
                self._tier.note_remote_get(oid)
                served_cached += 1
            missing = unresolved
        found_remote = 0
        if missing:
            records = yield from self._resolve_remote_task(
                missing, allow_missing, attr
            )
            newly_pinned: dict[str, list[ObjectID]] = {}
            for oid in missing:
                record = records.get(oid)
                if record is None:
                    buffers[oid] = None  # allow_missing guaranteed by resolve
                    continue
                if record.local_refs == 0 and self._share_usage:
                    newly_pinned.setdefault(record.home, []).append(oid)
                record.local_refs += 1
                buffers[oid] = self._remote_buffer(record)
                found_remote += 1
                if self._tier is not None:
                    self._tier.note_remote_get(oid)
            yield from self._pin_at_home_task(newly_pinned, attr)
        self.counters.inc(
            "gets_local", len(object_ids) - len(missing) - served_cached
        )
        self.counters.inc("gets_remote", found_remote)
        if served_cached:
            self.counters.inc("gets_cache_served", served_cached)
        return [buffers[oid] for oid in object_ids]

    def _resolve_remote_task(
        self,
        object_ids: list[ObjectID],
        allow_missing: bool = False,
        attr=None,
    ):
        """Task form of :meth:`_resolve_remote` (same caches, same typed
        errors); only the per-peer Lookups change shape."""
        resolved: dict[ObjectID, RemoteObjectRecord] = {}
        unresolved: list[ObjectID] = []
        for oid in object_ids:
            record = self._remote_records.get(oid)
            if record is None and self._lookup_cache is not None:
                record = self._lookup_cache.get(oid)
                if record is not None:
                    self._remote_records[oid] = record
                    self.counters.inc("lookup_cache_hits")
            if record is not None:
                resolved[oid] = record
            else:
                unresolved.append(oid)
        if unresolved:
            unreachable: list[str] = []
            if self._sharing in ("hashmap", "hybrid"):
                still = self._hashmap_lookup(unresolved, resolved)
            else:
                still = yield from self._rpc_lookup_task(
                    unresolved, resolved, unreachable, attr
                )
            if still and not allow_missing:
                detail = ", ".join(repr(oid) for oid in still[:5])
                if unreachable:
                    raise ObjectUnavailableError(
                        f"{len(still)} object(s) unresolved while peer(s) "
                        f"{', '.join(unreachable)} are unreachable: {detail}",
                        unreachable_peers=tuple(unreachable),
                    )
                raise ObjectNotFoundError(
                    f"{len(still)} object(s) not found anywhere: " + detail
                )
        return resolved

    def _rpc_lookup_task(
        self,
        object_ids: list[ObjectID],
        resolved: dict[ObjectID, RemoteObjectRecord],
        unreachable: list[str] | None = None,
        attr=None,
    ):
        """Scatter-gather replica resolution (task form of `_rpc_lookup`).

        Ids with a known ring home are probed *concurrently*, one batched
        Lookup per home, each hedged to the next peer after the channel's
        ``hedge_stagger_ns`` (losers run out harmlessly — Lookup is
        idempotent). Whatever no targeted probe claims falls back to the
        ordered sweep over every peer, exactly like the sync path — any
        peer might hold a replica, and the ring view might be stale."""
        remaining = list(object_ids)
        peers = self.peers()
        if not peers:
            return remaining
        by_home: dict[str, list[ObjectID]] = {}
        if self._ring is not None:
            for oid in remaining:
                home = self._ring.home(oid)
                if home != self._name and home in self._peers:
                    by_home.setdefault(home, []).append(oid)
        loop = self._aio_loop
        if by_home:
            probes = [
                loop.spawn(
                    self._probe_peer_task(
                        home, by_home[home], resolved, unreachable, attr
                    ),
                    name=f"lookup:{home}",
                )
                for home in sorted(by_home)
            ]
            results = yield loop.gather(probes)
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        remaining = [oid for oid in object_ids if oid not in resolved]
        for name in peers:
            if not remaining:
                break
            remaining = yield from self._lookup_peer_task(
                name, remaining, resolved, unreachable, attr
            )
        return remaining

    def _probe_peer_task(
        self,
        name: str,
        ids: list[ObjectID],
        resolved: dict,
        unreachable: list[str] | None,
        attr=None,
    ):
        """One targeted probe, hedged: race the home's Lookup against a
        staggered backup probe at the next peer. Returns the ids neither
        claimed."""
        loop = self._aio_loop
        channel = self._peer_channel(name)
        stagger = channel.hedge_stagger_ns if channel is not None else 0.0
        backup = None
        if stagger > 0:
            peers = self.peers()
            candidate = peers[(peers.index(name) + 1) % len(peers)]
            if candidate != name:
                backup = candidate
        primary = loop.spawn(
            self._lookup_peer_task(name, ids, resolved, unreachable, attr),
            name=f"probe:{name}",
        )
        if backup is None:
            result = yield primary
            return result
        hedge = loop.spawn(
            self._hedge_probe_task(stagger, backup, ids, resolved, primary),
            name=f"hedge:{backup}",
        )
        race_start_ns = self.clock.now_ns
        index, outcome = yield loop.race([primary, hedge])
        if attr is not None:
            # Only the wait *past* the stagger ran in hedged territory; a
            # primary that answers inside the stagger is ordinary lookup
            # time and charges nothing to the hedge bucket.
            attr.hint(
                "hedge",
                max(0.0, self.clock.now_ns - race_start_ns - stagger),
            )
        if isinstance(outcome, BaseException):
            raise outcome
        if index == 1:
            self.counters.inc("lookup_hedge_wins")
        return outcome

    def _hedge_probe_task(self, stagger_ns, name, ids, resolved, primary):
        """The backup half of a hedged probe: wait out the stagger; if the
        primary has not answered, fire the same Lookup at the next peer.
        Never marks anyone unreachable — it is a latency hedge, not a
        failure detector."""
        yield Sleep(stagger_ns)
        if primary.future.done():
            return list(ids)
        channel = self._peer_channel(name)
        if channel is not None:
            channel.aio_counters["hedges_fired"] += 1
        self.counters.inc("lookup_hedges_fired")
        result = yield from self._lookup_peer_task(
            name, ids, resolved, None, None
        )
        return result

    def _lookup_peer_task(
        self,
        name: str,
        remaining: list[ObjectID],
        resolved: dict,
        unreachable: list[str] | None,
        attr=None,
    ):
        """Task form of `_lookup_peer`: the Lookup goes through the peer
        channel's coalescing buffer (sharing a wire message with any other
        lookup landing within the batch window); error mapping matches the
        sync path."""
        channel = self._peer_channel(name)
        if channel is None:
            return self._lookup_peer(
                name, list(remaining), resolved, unreachable, None, None
            )
        try:
            response = yield channel.batched_call(
                self._peers[name].stub.service,
                "Lookup",
                [oid.binary() for oid in remaining],
                attr=attr,
            )
        except ServerOverloadedError:
            self.counters.inc("lookups_shed")
            if unreachable is not None and name not in unreachable:
                unreachable.append(name)
            return list(remaining)
        except RpcStatusError as exc:
            if self._peer_unavailable(name, exc):
                if unreachable is not None and name not in unreachable:
                    unreachable.append(name)
                return list(remaining)
            raise
        self.counters.inc("lookup_rpcs")
        claimed: set[ObjectID] = set()
        for descriptor in response.get("found", []):
            record = RemoteObjectRecord.from_descriptor(name, descriptor)
            self._remote_records[record.object_id] = record
            if self._lookup_cache is not None:
                self._lookup_cache.put(record)
            resolved[record.object_id] = record
            claimed.add(record.object_id)
        return [oid for oid in remaining if oid not in claimed]

    def _pin_at_home_task(self, by_home: dict[str, list[ObjectID]], attr=None):
        """Gathered, batched AddRef pins (task form of `_pin_at_home`)."""
        if not by_home:
            return
        loop = self._aio_loop
        homes, futures = [], []
        for home in sorted(by_home):
            channel = self._peer_channel(home)
            if channel is None:
                self._pin_at_home({home: by_home[home]})
                continue
            homes.append(home)
            futures.append(
                channel.batched_call(
                    self._peers[home].stub.service,
                    "AddRef",
                    [oid.binary() for oid in by_home[home]],
                    attr=attr,
                )
            )
        if not futures:
            return
        results = yield loop.gather(futures)
        for home, result in zip(homes, results):
            if isinstance(result, RpcStatusError):
                if result.code is StatusCode.NOT_FOUND:
                    raise ObjectNotFoundError(str(result)) from result
                raise result
            if isinstance(result, BaseException):
                raise result
            for oid in by_home[home]:
                self._remote_records[oid].pinned_at_home = True
            self.counters.inc("addref_rpcs")

    def delete_object_task(self, object_id: ObjectID, attr=None):
        """Task form of delete: the local unlink is instant; the
        NotifyDeleted fan-out and replica drops run concurrently."""
        PlasmaStore.delete_object(self, object_id)
        self._retract_from_directory(object_id)
        yield from self._broadcast_deleted_task(object_id, attr)
        yield from self._drop_remote_replicas_task(object_id, attr)
        self._replicas_of.pop(object_id, None)

    def _broadcast_deleted_task(self, object_id: ObjectID, attr=None):
        """Concurrent batched NotifyDeleted to every peer (task form of
        `_broadcast_deleted`, same unavailable-peer tolerance)."""
        if not self._notify_deletions:
            return
        loop = self._aio_loop
        wire_id = object_id.binary()
        names, futures = [], []
        for name in self.peers():
            channel = self._peer_channel(name)
            if channel is None:
                try:
                    self._peers[name].stub.NotifyDeleted(
                        {"object_ids": [wire_id]}
                    )
                except RpcStatusError as exc:
                    if self._peer_unavailable(name, exc):
                        continue
                    raise
                continue
            names.append(name)
            futures.append(
                channel.batched_call(
                    self._peers[name].stub.service,
                    "NotifyDeleted",
                    [wire_id],
                    attr=attr,
                )
            )
        if futures:
            results = yield loop.gather(futures)
            for name, result in zip(names, results):
                if isinstance(result, RpcStatusError):
                    if self._peer_unavailable(name, result):
                        continue
                    raise result
                if isinstance(result, BaseException):
                    raise result
        self.counters.inc("delete_notifications")

    def _drop_remote_replicas_task(self, object_id: ObjectID, attr=None):
        """Concurrent DropReplica to every recorded holder (task form of
        `_drop_remote_replicas`; DropReplica is not batchable — one pipelined
        unary per holder)."""
        holders = self._replicated_to.pop(object_id, ())
        if not holders:
            return
        loop = self._aio_loop
        payload = {"object_ids": [object_id.binary()]}
        names, tasks = [], []
        for name in holders:
            if name not in self._peers:
                continue
            channel = self._peer_channel(name)
            if channel is None:
                try:
                    self._peers[name].stub.DropReplica(payload)
                except RpcStatusError as exc:
                    if self._peer_unavailable(name, exc):
                        continue
                    raise
                continue
            names.append(name)
            tasks.append(
                loop.spawn(
                    channel.unary_task(
                        self._peers[name].stub.service,
                        "DropReplica",
                        payload,
                        attr=attr,
                    ),
                    name=f"drop-replica:{name}",
                )
            )
        if not tasks:
            return
        results = yield loop.gather(tasks)
        for name, result in zip(names, results):
            if isinstance(result, RpcStatusError):
                if self._peer_unavailable(name, result):
                    continue
                raise result
            if isinstance(result, BaseException):
                raise result

    def forward_put_task(
        self,
        object_id: ObjectID,
        data,
        metadata: bytes,
        home: str,
        *,
        replicas: int = 1,
        attr=None,
    ):
        """Task form of :meth:`forward_put`: the PlacedCreate and PlacedSeal
        hops are pipelined unary tasks sharing one deadline budget; the
        payload still streams over the fabric between them."""
        handle = self.peer(home)
        channel = self._peer_channel(home)
        if channel is None:
            return self.forward_put(
                object_id, data, metadata, home, replicas=replicas
            )
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        budget = DeadlineBudget.for_stub(handle.stub, self.clock)
        service = handle.stub.service
        try:
            response = yield from channel.unary_task(
                service,
                "PlacedCreate",
                {
                    "object_id": object_id.binary(),
                    "data_size": len(mv),
                    "metadata": bytes(metadata),
                },
                attr=attr,
                **budget.kwargs(),
            )
        except RpcStatusError as exc:
            if exc.code is StatusCode.ALREADY_EXISTS:
                raise ObjectExistsError(
                    f"{object_id!r} already exists in home store {home}"
                ) from exc
            if self._peer_unavailable(home, exc):
                self.counters.inc("placed_creates_fallback")
                return False
            raise
        offset = int(response["offset"])
        handle.remote_region.write(offset, mv)
        try:
            yield from channel.unary_task(
                service,
                "PlacedSeal",
                {"object_id": object_id.binary(), "replicas": int(replicas)},
                attr=attr,
                **budget.kwargs(),
            )
        except RpcStatusError as exc:
            if self._peer_unavailable(home, exc):
                raise ObjectUnavailableError(
                    f"home store {home} became unreachable while sealing "
                    f"{object_id!r}",
                    unreachable_peers=(home,),
                ) from exc
            raise
        self.counters.inc("placed_creates_forwarded")
        self.counters.inc("placed_bytes_forwarded", len(mv))
        return True

    # -- replication for failover reads (degraded-mode extension) ------------------------------

    def replicate_object(self, object_id: ObjectID, peer_name: str | None = None) -> str | None:
        """Push a copy of a local sealed object to one peer (home side).

        Sends only the *descriptor* over RPC; the peer pulls the payload
        through the ThymesisFlow fabric (see ``StoreService.Replicate``).
        The peer is chosen deterministically from the object id unless
        given, skipping peers that already hold a copy. Returns the replica
        holder's name, or None if the chosen peer was unavailable —
        replication degrades rather than failing the write (documented
        weakening: the object simply has one copy fewer until re-put).
        """
        with self.table.lock:
            entry = self.get_sealed_entry(object_id)
            offset = entry.payload_offset + self._exposed_offset
            data_size = entry.data_size
            metadata = entry.metadata
        existing = self._replicated_to.get(object_id, ())
        candidates = [name for name in self.peers() if name not in existing]
        if not candidates:
            raise ObjectStoreError(
                f"{self._name} has no peer left to replicate {object_id!r} to"
            )
        if peer_name is None:
            stable = int.from_bytes(object_id.binary()[:4], "big")
            peer_name = candidates[stable % len(candidates)]
        elif peer_name not in candidates:
            raise ObjectStoreError(
                f"cannot replicate {object_id!r} to {peer_name!r} "
                "(unknown peer or already a replica holder)"
            )
        try:
            self._peers[peer_name].stub.Replicate(
                {
                    "source": self._name,
                    "object_id": object_id.binary(),
                    "offset": offset,
                    "data_size": data_size,
                    "metadata": metadata,
                }
            )
        except RpcStatusError as exc:
            if self._peer_unavailable(peer_name, exc):
                self.counters.inc("replicas_skipped")
                return None
            raise
        self._replicated_to[object_id] = existing + (peer_name,)
        self.counters.inc("replicas_created")
        return peer_name

    def create_replica(
        self,
        source: str,
        object_id: ObjectID,
        offset: int,
        data_size: int,
        metadata: bytes = b"",
    ) -> None:
        """Materialise a replica of *source*'s object locally (replica side).

        Allocates like any local object, pulls the payload over the fabric
        from the source's exposed region (charged as a streaming remote
        read + a local write), seals it, and records its provenance. The
        replica then answers Lookup RPCs like any sealed object, which is
        exactly what makes failover reads work when the home store dies.
        """
        handle = self.peer(source)
        entry = self.create_object_unchecked(object_id, data_size, metadata)
        self._pull_payload(handle, entry, offset, data_size)
        self.seal_object(object_id)
        self._replicas_of[object_id] = source
        self.counters.inc("replicas_held")

    def drop_replicas(self, object_ids: list[ObjectID]) -> int:
        """Best-effort removal of local replicas (the home store deleted the
        originals). In-use replicas survive until their readers release
        them; returns how many were dropped."""
        dropped = 0
        for oid in object_ids:
            if oid not in self._replicas_of:
                continue
            with self.table.lock:
                entry = self.table.lookup(oid)
                if entry is None:
                    del self._replicas_of[oid]
                    continue
                if entry.total_refs > 0:
                    continue
                self.table.remove(oid)
                self._retire_header(entry)
                self._allocator.free(entry.allocation.offset)
            del self._replicas_of[oid]
            self._retract_from_directory(oid)
            self._notify(SealNotification(oid, entry.data_size, deleted=True))
            self.counters.inc("replicas_dropped")
            dropped += 1
        return dropped

    def replica_locations(self, object_id: ObjectID) -> tuple[str, ...]:
        """Peers holding copies of our *object_id* (home side)."""
        return self._replicated_to.get(object_id, ())

    def record_replicas(self, object_id: ObjectID, holders) -> None:
        """Reconcile home-side replica book-keeping with observed reality.

        The replica map is process state, so a crash wipes it even though
        the replicas themselves survive on their holders. The scrubber's
        cross-check rediscovers them with Lookup probes and writes the
        truth back here, so ``replicate_object`` never double-places."""
        self._replicated_to[object_id] = tuple(dict.fromkeys(holders))

    def is_replica(self, object_id: ObjectID) -> bool:
        """Is our local *object_id* a copy of some peer's object?"""
        return object_id in self._replicas_of

    def _drop_remote_replicas(self, object_id: ObjectID) -> None:
        holders = self._replicated_to.pop(object_id, ())
        if not holders:
            return
        payload = {"object_ids": [object_id.binary()]}
        for name in holders:
            if name not in self._peers:
                # The holder left the cluster (remove_node disconnects the
                # peer); its copy is gone with it, nothing to drop.
                continue
            try:
                self._peers[name].stub.DropReplica(payload)
            except RpcStatusError as exc:
                if self._peer_unavailable(name, exc):
                    continue
                raise

    # -- integrity: quarantine/repair with directory upkeep ------------------------------------

    def quarantine_object(self, object_id: ObjectID) -> ObjectEntry:
        """Quarantine locally and stop advertising the corrupt object to
        peers (directory retraction + cache invalidation push)."""
        entry = super().quarantine_object(object_id)
        self._retract_from_directory(object_id)
        self._broadcast_deleted(object_id)
        return entry

    def repair_object(self, object_id: ObjectID, data) -> ObjectEntry:
        entry = super().repair_object(object_id, data)
        if self._directory is not None:
            try:
                self._directory.insert(
                    object_id,
                    entry.payload_offset + self._exposed_offset,
                    entry.data_size,
                )
            except ObjectStoreError:
                pass  # repair without a prior retraction: still advertised
        return entry

    # -- reference management spanning nodes ---------------------------------------------------

    def release_object(self, object_id: ObjectID) -> None:
        """Release one reference, local or remote."""
        record = self._remote_records.get(object_id)
        if record is None:
            if self._tier is not None and self._tier.release_served(object_id):
                return  # a cache-served buffer: no table entry, no record
            self.release_ref(object_id)
            return
        if record.local_refs <= 0:
            raise ObjectStoreError(
                f"release of remote {object_id!r} without a matching reference"
            )
        record.local_refs -= 1
        if record.local_refs == 0:
            if record.pinned_at_home:
                # The home may have been removed from the cluster while the
                # reader held the buffer; the local release still completes.
                if record.home in self._peers:
                    self._peers[record.home].stub.ReleaseRef(
                        {"object_ids": [object_id.binary()]}
                    )
                    self.counters.inc("releaseref_rpcs")
                record.pinned_at_home = False
            # Drop the live record; the descriptor may survive in the
            # lookup cache for future requests.
            del self._remote_records[object_id]

    def remote_record(self, object_id: ObjectID) -> RemoteObjectRecord | None:
        return self._remote_records.get(object_id)

    # -- deletion/eviction notifications (cache invalidation) ------------------------------------

    def _broadcast_deleted(self, object_id: ObjectID) -> None:
        if not self._notify_deletions:
            return
        payload = {"object_ids": [object_id.binary()]}
        for name in self.peers():
            try:
                self._peers[name].stub.NotifyDeleted(payload)
            except RpcStatusError as exc:
                if self._peer_unavailable(name, exc):
                    continue
                raise
        self.counters.inc("delete_notifications")

    def delete_object(self, object_id: ObjectID) -> None:
        if self._aio_facade():
            self._drive(
                self.delete_object_task(object_id),
                name=f"delete:{self._name}",
            )
            return
        super().delete_object(object_id)
        self._retract_from_directory(object_id)
        self._broadcast_deleted(object_id)
        self._drop_remote_replicas(object_id)
        self._replicas_of.pop(object_id, None)

    def _evict_entry(self, entry: ObjectEntry) -> None:
        super()._evict_entry(entry)
        self._retract_from_directory(entry.object_id)
        self._broadcast_deleted(entry.object_id)

    # -- remote subscriptions (cross-node notification relay) ----------------------------

    def create_subscription(self) -> int:
        """Register a notification queue a *remote* client will poll over
        RPC — the cross-node version of Plasma's notification socket."""
        queue = self.subscribe()
        sub_id = len(self._subscriptions) + 1
        self._subscriptions[sub_id] = queue
        return sub_id

    def poll_subscription(self, sub_id: int) -> list:
        try:
            queue = self._subscriptions[sub_id]
        except KeyError:
            raise ObjectStoreError(f"unknown subscription {sub_id}") from None
        return queue.drain()

    @property
    def _subscriptions(self) -> dict:
        # Lazily created so plain PlasmaStore paths pay nothing.
        subs = getattr(self, "_subscriptions_map", None)
        if subs is None:
            subs = {}
            self._subscriptions_map = subs
        return subs

    # -- restart recovery ------------------------------------------------------------

    def recover(self):
        """Restart recovery: rebuild the object table and free list from the
        region's sealed-object headers (see PlasmaStore.recover_from_region)
        and reconcile the surviving directory — corrupt objects come back
        quarantined and must not be advertised to peers."""
        report = self.recover_from_region()
        if self._directory is not None:
            for entry in list(self.table):
                if entry.quarantined:
                    self._retract_from_directory(entry.object_id)
        if self._tier is not None:
            # Cache and heat are process state; a crash may also have eaten
            # invalidation pushes addressed to us, so nothing cached before
            # the restart can be trusted.
            self._tier.reset()
        return report

    def invalidate_cached_lookups(self, object_ids: list[ObjectID]) -> None:
        """Handle a peer's NotifyDeleted: drop cached descriptors and any
        unreferenced remote records."""
        for oid in object_ids:
            if self._lookup_cache is not None:
                self._lookup_cache.invalidate(oid)
            if self._tier is not None and self._tier.cache is not None:
                self._tier.cache.invalidate(oid)
            record = self._remote_records.get(oid)
            if record is not None and record.local_refs == 0:
                del self._remote_records[oid]
