"""The client of a disaggregated store.

API-identical to :class:`~repro.plasma.client.PlasmaClient` — that is the
framework's selling point: "the distributed nature can largely remain
hidden to Plasma clients" (paper §IV-A2). ``get`` transparently returns
local or ThymesisFlow-backed buffers; ``release`` routes to local refcounts
or cross-node release as appropriate.
"""

from __future__ import annotations

from repro.common.ids import ObjectID
from repro.core.store import DisaggregatedStore
from repro.network.ipc import IpcChannel
from repro.plasma.buffer import PlasmaBuffer
from repro.plasma.client import PlasmaClient
from repro.plasma.notifications import SealNotification


class RemoteSubscription:
    """A polled cross-node notification feed.

    Each :meth:`poll` is one RPC to the home store returning everything
    sealed/deleted there since the previous poll.
    """

    def __init__(self, stub, subscription_id: int, home: str):
        self._stub = stub
        self._id = subscription_id
        self._home = home

    @property
    def home(self) -> str:
        return self._home

    def poll(self) -> list[SealNotification]:
        response = self._stub.PollNotifications({"subscription": self._id})
        return [
            SealNotification(
                object_id=ObjectID(n["object_id"]),
                data_size=int(n["data_size"]),
                deleted=bool(n["deleted"]),
            )
            for n in response.get("notifications", [])
        ]


class DisaggregatedClient(PlasmaClient):
    """A Plasma client whose local store is part of a disaggregated mesh."""

    def __init__(
        self,
        name: str,
        store: DisaggregatedStore,
        ipc: IpcChannel,
        correlation=None,
    ):
        super().__init__(name, store, ipc)
        # CorrelationContext shared cluster-wide; each top-level operation
        # (Get/Put) mints one request id that every nested RPC and fabric
        # span inherits.
        self._correlation = correlation

    @property
    def store(self) -> DisaggregatedStore:
        return self._store  # type: ignore[return-value]

    def get(
        self, object_ids: list[ObjectID], allow_missing: bool = False
    ) -> list[PlasmaBuffer]:
        """Retrieve sealed buffers wherever they live.

        One IPC round trip to the local store; the store performs any
        peer Lookup RPCs and aperture wiring (those costs are charged by
        the store's channel and the fabric respectively). With
        ``allow_missing=True``, ids that resolve nowhere yield ``None``.
        """
        if not object_ids:
            return []
        if self._correlation is None:
            return self._get_op(object_ids, allow_missing, None)
        rid = self._correlation.begin()
        try:
            buffers = self._get_op(object_ids, allow_missing, rid)
        finally:
            self._correlation.end()
        # Stamp handles so deferred reads (read_all after the Get returned)
        # still attribute their fabric spans to this request.
        for buffer in buffers:
            if buffer is not None and buffer.is_remote:
                buffer._set_correlation(self._correlation, rid)
        return buffers

    def _get_op(
        self,
        object_ids: list[ObjectID],
        allow_missing: bool,
        rid: str | None,
    ) -> list[PlasmaBuffer]:
        tracer = self._store.tracer
        spans = self._store.spans
        if tracer is None and spans is None:
            return self._get_inner(object_ids, allow_missing)
        args = {"n": len(object_ids)}
        if rid is not None:
            args["rid"] = rid
        if spans is not None:
            with spans.span("client", "get", node=self._name, **args):
                return self._get_traced(object_ids, allow_missing, args)
        return self._get_traced(object_ids, allow_missing, args)

    def _get_traced(
        self, object_ids: list[ObjectID], allow_missing: bool, args: dict
    ) -> list[PlasmaBuffer]:
        tracer = self._store.tracer
        if tracer is not None:
            with tracer.span("client", "get", track=self._name, **args):
                return self._get_inner(object_ids, allow_missing)
        return self._get_inner(object_ids, allow_missing)

    def _get_inner(
        self, object_ids: list[ObjectID], allow_missing: bool
    ) -> list[PlasmaBuffer]:
        self._ipc.charge_request(nobjects=len(object_ids))
        buffers = self._store.get_buffers(object_ids, allow_missing=allow_missing)
        for buffer in buffers:
            if buffer is not None:
                self._held.setdefault(buffer.object_id, []).append(buffer)
        self.counters.inc("gets", len(object_ids))
        return buffers

    def _release_store_ref(self, object_id: ObjectID) -> None:
        self.store.release_object(object_id)

    # -- batched multi-object API (repro.rpc.aio) ---------------------------------

    def _aio_drive(self, gen, name: str):
        loop = self.store.aio_loop
        return loop.run_until_complete(loop.spawn(gen, name=name))

    def _aio_facade(self) -> bool:
        store = self.store
        return (
            store.rpc_async
            and store.aio_loop is not None
            and not store.aio_loop.driving
        )

    def multi_get(
        self, object_ids: list[ObjectID], *, allow_missing: bool = True
    ) -> list[bytes | None]:
        """Fetch many payloads in one batched operation.

        One IPC request covers every id; the store resolves all of them
        together (in async mode: one coalesced Lookup per peer instead of N
        unary calls, hedged scatter-gather across homes). Returns payload
        *copies* in input order — references are taken and released
        internally — with ``None`` at unresolved positions unless
        ``allow_missing=False``.
        """
        if not object_ids:
            return []
        if self._aio_facade():
            return self._aio_drive(
                self.multi_get_task(object_ids, allow_missing=allow_missing),
                name=f"multi-get:{self._name}",
            )
        buffers = self.get(list(object_ids), allow_missing=allow_missing)
        return self._read_out(object_ids, buffers)

    def _read_out(self, object_ids, buffers) -> list[bytes | None]:
        out: list[bytes | None] = []
        # Duplicate ids in one call resolve to a single shared handle
        # (one reference per occurrence): read each handle once and reuse
        # the payload, so releasing slot N's reference cannot invalidate
        # slot N+1's pending read of the same buffer.
        read: dict[int, bytes] = {}
        for oid, buffer in zip(object_ids, buffers):
            if buffer is None:
                out.append(None)
                continue
            key = id(buffer)
            try:
                if key not in read:
                    read[key] = buffer.read_all()
                out.append(read[key])
            finally:
                self.release(oid)
        return out

    def multi_get_task(
        self,
        object_ids: list[ObjectID],
        *,
        allow_missing: bool = True,
        attr=None,
    ):
        """Task form of :meth:`multi_get` (``yield from`` inside a task)."""
        object_ids = list(object_ids)
        if not object_ids:
            return []
        self._ipc.charge_request(nobjects=len(object_ids))
        if attr is not None:
            attr.settle("client")
        buffers = yield from self.store.get_buffers_task(
            object_ids, allow_missing, attr
        )
        if attr is not None:
            attr.settle("service")
        for buffer in buffers:
            if buffer is not None:
                self._held.setdefault(buffer.object_id, []).append(buffer)
        self.counters.inc("gets", len(object_ids))
        out = self._read_out(object_ids, buffers)
        if attr is not None:
            attr.settle("fabric")
        return out

    def get_task(
        self,
        object_ids: list[ObjectID],
        allow_missing: bool = False,
        attr=None,
    ):
        """Task form of :meth:`get`: same reference-taking semantics, but
        the resolution runs on the event loop (the caller releases)."""
        object_ids = list(object_ids)
        if not object_ids:
            return []
        self._ipc.charge_request(nobjects=len(object_ids))
        if attr is not None:
            attr.settle("client")
        buffers = yield from self.store.get_buffers_task(
            object_ids, allow_missing, attr
        )
        for buffer in buffers:
            if buffer is not None:
                self._held.setdefault(buffer.object_id, []).append(buffer)
        self.counters.inc("gets", len(object_ids))
        return buffers

    def multi_put(
        self,
        items: list[tuple[ObjectID, object]],
        metadata: bytes = b"",
        *,
        replicas: int = 1,
    ) -> list[ObjectID]:
        """Bulk put: one batched uniqueness check for all ids; in async
        mode every object's create pipeline runs as a concurrent task (a
        ring-forwarded create overlaps its peers' instead of queueing
        behind them)."""
        items = list(items)
        if not items:
            return []
        if self._aio_facade():
            return self._aio_drive(
                self.multi_put_task(items, metadata, replicas=replicas),
                name=f"multi-put:{self._name}",
            )
        return self.put_batch(items, metadata, replicas=replicas)

    def multi_put_task(
        self,
        items: list[tuple[ObjectID, object]],
        metadata: bytes = b"",
        *,
        replicas: int = 1,
        attr=None,
    ):
        """Task form of :meth:`multi_put`: concurrent per-object pipelines
        after one shared reserve_ids check."""
        self._check_replicas(replicas)
        items = list(items)
        if not items:
            return []
        ids = [oid for oid, _ in items]
        self.store.reserve_ids(ids)
        loop = self.store.aio_loop
        tasks = [
            loop.spawn(
                self._put_one_task(oid, data, metadata, replicas, attr),
                name=f"put:{i}",
            )
            for i, (oid, data) in enumerate(items)
        ]
        results = yield loop.gather(tasks)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return ids

    def _put_one_task(self, oid, data, metadata, replicas, attr):
        """One multi_put item, ids already reserved: forward to the ring
        home as a pipelined task, else the classic unchecked local create."""
        home = self.store.placement_home(oid)
        if home is not None:
            self._ipc.charge_request(nobjects=1, nbytes=len(metadata))
            ok = yield from self.store.forward_put_task(
                oid, data, metadata, home, replicas=replicas, attr=attr
            )
            if ok:
                self.counters.inc("puts_forwarded")
                return oid
            self.counters.inc("puts_forward_fallback")
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        self._ipc.charge_request(nobjects=1, nbytes=len(metadata))
        entry = self._store.create_object_unchecked(oid, len(mv), metadata)
        self._store.add_ref(oid)
        buffer = self._store.local_buffer(entry)
        self._held.setdefault(oid, []).append(buffer)
        buffer.write(mv)
        self.seal(oid)
        self.release(oid)
        self._replicate(oid, replicas)
        return oid

    def put_bytes_task(
        self,
        object_id: ObjectID,
        data,
        metadata: bytes = b"",
        *,
        replicas: int = 1,
        attr=None,
    ):
        """Task form of :meth:`put_bytes` (placement-aware, pipelined
        forward hops)."""
        self._check_replicas(replicas)
        home = self.store.placement_home(object_id)
        if home is not None:
            self._ipc.charge_request(nobjects=1, nbytes=len(metadata))
            if attr is not None:
                attr.settle("client")
            ok = yield from self.store.forward_put_task(
                object_id, data, metadata, home, replicas=replicas, attr=attr
            )
            if ok:
                self.counters.inc("puts_forwarded")
                return object_id
            self.counters.inc("puts_forward_fallback")
        PlasmaClient.put_bytes(self, object_id, data, metadata)
        self._replicate(object_id, replicas)
        return object_id

    def delete_task(self, object_id: ObjectID, attr=None):
        """Task form of :meth:`~repro.plasma.client.PlasmaClient.delete`."""
        self._ipc.charge_request(nobjects=1)
        if attr is not None:
            attr.settle("client")
        yield from self.store.delete_object_task(object_id, attr)
        self.counters.inc("deletes")

    def tier_stats(self, peer: str | None = None) -> dict | None:
        """The tiering-plane snapshot (cache counters, heat-tracker sizes)
        for this client's node, or — with *peer* — for a peer store via its
        Stats RPC. ``None`` when tiering is not enabled on the target."""
        if peer is None:
            agent = self.store.tier_agent
            return agent.stats() if agent is not None else None
        handle = self.store.peer(peer)
        return handle.stub.Stats({}).get("tier")

    def subscribe_remote(self, peer_name: str) -> RemoteSubscription:
        """Subscribe to a *peer* store's seal/delete notifications.

        The local store's notification socket only announces local events;
        this is the RPC-based cross-node feed (§V-B's "additional RPC
        functionality").
        """
        handle = self.store.peer(peer_name)
        response = handle.stub.Subscribe({})
        return RemoteSubscription(
            handle.stub, int(response["subscription"]), peer_name
        )

    def put_bytes(
        self,
        object_id: ObjectID,
        data,
        metadata: bytes = b"",
        *,
        replicas: int = 1,
    ) -> ObjectID:
        """create + write + seal + release, optionally replicated.

        ``replicas=1`` (default) is the paper's single-copy mode. With
        ``replicas=2`` (or more) the home store pushes copies to
        deterministically chosen peers after sealing, so the object stays
        readable — via lookup failover — when the home store process dies.
        Replication degrades gracefully: an unavailable replica target is
        skipped, never failing the write.

        With elastic placement enabled, the consistent-hash ring decides
        where the object lives: a ring home other than this node receives
        the object via the forwarded-create protocol (metadata over RPC,
        payload over the fabric). An unreachable home degrades to a local
        create — the rebalancer re-homes the object once the cluster heals.
        """
        self._check_replicas(replicas)
        if self._correlation is None:
            self._put_routed(object_id, data, metadata, replicas)
            return object_id
        rid = self._correlation.begin()
        try:
            spans = self._store.spans
            if spans is not None:
                with spans.span(
                    "client", "put", node=self._name, rid=rid, replicas=replicas
                ):
                    self._put_traced(object_id, data, metadata, replicas, rid)
            else:
                self._put_traced(object_id, data, metadata, replicas, rid)
        finally:
            self._correlation.end()
        return object_id

    def _put_traced(
        self, object_id: ObjectID, data, metadata: bytes, replicas: int, rid: str
    ) -> None:
        tracer = self._store.tracer
        if tracer is not None:
            with tracer.span(
                "client", "put", track=self._name, rid=rid, replicas=replicas
            ):
                self._put_routed(object_id, data, metadata, replicas)
        else:
            self._put_routed(object_id, data, metadata, replicas)

    def _put_routed(
        self, object_id: ObjectID, data, metadata: bytes, replicas: int
    ) -> None:
        """Placement-aware create: forward to the ring home when it is a
        reachable peer, else the classic local create + replicate path."""
        home = self.store.placement_home(object_id)
        if home is not None:
            self._ipc.charge_request(nobjects=1, nbytes=len(metadata))
            if self.store.forward_put(
                object_id, data, metadata, home, replicas=replicas
            ):
                self.counters.inc("puts_forwarded")
                return
            self.counters.inc("puts_forward_fallback")
        super().put_bytes(object_id, data, metadata)
        self._replicate(object_id, replicas)

    def _check_replicas(self, replicas: int) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1 (1 = no extra copies)")
        if replicas - 1 > len(self.store.peers()):
            raise ValueError(
                f"replicas={replicas} needs {replicas - 1} peers, "
                f"have {len(self.store.peers())}"
            )

    def _replicate(self, object_id: ObjectID, replicas: int) -> None:
        for _ in range(replicas - 1):
            self.store.replicate_object(object_id)

    def put_batch(
        self,
        items: list[tuple[ObjectID, object]],
        metadata: bytes = b"",
        *,
        replicas: int = 1,
    ) -> list[ObjectID]:
        """Bulk commit with one batched uniqueness check (reserve_ids)
        instead of a Contains RPC per object — the amortised producer path.
        ``replicas`` behaves as in :meth:`put_bytes`.
        """
        self._check_replicas(replicas)
        ids = [oid for oid, _ in items]
        self.store.reserve_ids(ids)
        out: list[ObjectID] = []
        for oid, data in items:
            mv = memoryview(data)
            if mv.ndim != 1 or mv.itemsize != 1:
                mv = mv.cast("B")
            home = self.store.placement_home(oid)
            if home is not None:
                self._ipc.charge_request(nobjects=1, nbytes=len(metadata))
                if self.store.forward_put(
                    oid, mv, metadata, home, replicas=replicas
                ):
                    self.counters.inc("puts_forwarded")
                    out.append(oid)
                    continue
                self.counters.inc("puts_forward_fallback")
            self._ipc.charge_request(nobjects=1, nbytes=len(metadata))
            entry = self._store.create_object_unchecked(oid, len(mv), metadata)
            self._store.add_ref(oid)
            buffer = self._store.local_buffer(entry)
            self._held.setdefault(oid, []).append(buffer)
            buffer.write(mv)
            self.seal(oid)
            self.release(oid)
            self._replicate(oid, replicas)
            out.append(oid)
        return out
