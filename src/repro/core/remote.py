"""Peer handles and remote-object book-keeping."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import ObjectID
from repro.rpc.channel import ServiceStub
from repro.thymesisflow.aperture import RemoteRegion


@dataclass
class PeerHandle:
    """Everything a store needs to use one peer: the RPC stub for metadata
    and the mapped ThymesisFlow window for payload bytes."""

    name: str
    stub: ServiceStub
    remote_region: RemoteRegion

    def __post_init__(self) -> None:
        if self.remote_region.home_name != self.name and not self.name.startswith(
            self.remote_region.home_name
        ):
            # The window must point at the peer's node; store names are
            # derived from node names in the cluster builder.
            pass


@dataclass
class RemoteObjectRecord:
    """A remote object this store's clients currently reference.

    ``local_refs`` counts handles held by *this node's* clients; when it
    drops to zero the record is dropped (and, with reference sharing on,
    a ReleaseRef RPC un-pins the object at its home store).
    """

    object_id: ObjectID
    home: str
    offset: int  # exposed-region offset of the *payload* bytes
    data_size: int
    metadata: bytes = b""
    local_refs: int = 0
    pinned_at_home: bool = False
    # Integrity fields carried by the descriptor: the home store's
    # generation for this incarnation of the object (0 = unknown, e.g. the
    # hashmap directory path), the in-region header size (0 = home runs
    # without headers) and the seal-time payload checksum.
    generation: int = 0
    header_size: int = 0
    payload_crc: int = 0

    @classmethod
    def from_descriptor(cls, home: str, descriptor: dict) -> "RemoteObjectRecord":
        return cls(
            object_id=ObjectID(descriptor["object_id"]),
            home=home,
            offset=int(descriptor["offset"]),
            data_size=int(descriptor["data_size"]),
            metadata=bytes(descriptor.get("metadata", b"")),
            generation=int(descriptor.get("generation", 0)),
            header_size=int(descriptor.get("header_size", 0)),
            payload_crc=int(descriptor.get("payload_crc", 0)),
        )
