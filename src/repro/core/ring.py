"""Single-producer/single-consumer rings in disaggregated memory.

The transport primitive for the paper's §IV-A2 approach (2), "messaging via
disaggregated memory". The design works *with* the Fig 3 coherency
asymmetry instead of fighting it:

* each direction of a channel gets its own ring, placed in the **sender's**
  exposed region;
* the sender only ever writes **its own local memory** (always coherent for
  remote readers, Fig 3a);
* the receiver only ever **reads remotely** (coherent by OpenCAPI) — no
  node ever writes remote memory, so the Fig 3b staleness trap can't fire.

Layout of a ring region::

    [ u64 head (total bytes ever published) | data area of `capacity` bytes ]

Messages are ``u32 length | payload`` records written circularly into the
data area. The writer has no view of reader progress (feedback would
require a remote write); flow control is the protocol's job — the unary
request/response pattern used by :class:`~repro.core.dmsg.DmsgChannel`
keeps at most one frame in flight per direction, so the only hard limit is
``max message <= capacity``.
"""

from __future__ import annotations

import struct

from repro.common.errors import ObjectStoreError
from repro.memory.host import MemoryRegion
from repro.thymesisflow.aperture import RemoteRegion
from repro.thymesisflow.endpoint import ThymesisEndpoint

HEADER_BYTES = 8
_LEN = struct.Struct(">I")


def ring_bytes(capacity: int) -> int:
    """Region bytes needed for a ring with *capacity* data bytes."""
    if capacity <= _LEN.size:
        raise ValueError("ring capacity too small")
    return HEADER_BYTES + capacity


class RingWriter:
    """The local (sender) side: timed local writes into the own exposed
    region."""

    def __init__(self, endpoint: ThymesisEndpoint, region: MemoryRegion):
        if region.memory is not endpoint.memory:
            raise ValueError("ring region must live in the writer's memory")
        if region.size <= HEADER_BYTES + _LEN.size:
            raise ValueError("ring region too small")
        self._ep = endpoint
        self._region = region
        self._capacity = region.size - HEADER_BYTES
        self._head = 0
        # Initialise the header so readers starting later see head=0.
        region.write(0, struct.pack(">Q", 0))

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def head(self) -> int:
        return self._head

    def _write_circular(self, pos: int, payload: bytes) -> None:
        offset = pos % self._capacity
        first = min(len(payload), self._capacity - offset)
        abs_base = self._region.absolute(0) + HEADER_BYTES
        self._ep.local_write(abs_base + offset, payload[:first])
        if first < len(payload):
            self._ep.local_write(abs_base, payload[first:])

    def publish(self, payload: bytes) -> int:
        """Append one message; returns the new head. The message must fit
        in the ring (protocol-level flow control keeps readers caught up)."""
        frame = _LEN.pack(len(payload)) + bytes(payload)
        if len(frame) > self._capacity:
            raise ObjectStoreError(
                f"message of {len(payload)} bytes exceeds ring capacity "
                f"{self._capacity - _LEN.size}"
            )
        self._write_circular(self._head, frame)
        self._head += len(frame)
        # Publish the new head last (release ordering: data before flag).
        self._ep.local_write(self._region.absolute(0), struct.pack(">Q", self._head))
        return self._head


class RingReader:
    """The remote (receiver) side: timed fabric loads/reads, never writes."""

    def __init__(self, remote: RemoteRegion, base_offset: int, region_size: int):
        if region_size <= HEADER_BYTES + _LEN.size:
            raise ValueError("ring region too small")
        self._remote = remote
        self._base = base_offset
        self._capacity = region_size - HEADER_BYTES
        self._tail = 0
        self.polls = 0
        self.messages = 0

    @property
    def tail(self) -> int:
        return self._tail

    def _read_circular(self, pos: int, size: int) -> bytes:
        offset = pos % self._capacity
        data_base = self._base + HEADER_BYTES
        first = min(size, self._capacity - offset)
        out = self._remote.read(data_base + offset, first)
        if first < size:
            out += self._remote.read(data_base, size - first)
        return out

    def peek_head(self) -> int:
        """One unpipelined fabric load of the publication counter."""
        self.polls += 1
        return struct.unpack(">Q", self._remote.load(self._base, HEADER_BYTES))[0]

    def poll(self) -> list[bytes]:
        """Drain every message published since the last poll."""
        head = self.peek_head()
        if head < self._tail:
            raise ObjectStoreError("ring head went backwards (corrupt ring)")
        if head - self._tail > self._capacity:
            raise ObjectStoreError(
                "reader lost messages: ring overwrote unread data "
                f"(tail={self._tail}, head={head}, capacity={self._capacity})"
            )
        out: list[bytes] = []
        while self._tail < head:
            (length,) = _LEN.unpack(self._read_circular(self._tail, _LEN.size))
            if length == 0:
                payload = b""  # zero-length messages are legal frames
            else:
                payload = self._read_circular(self._tail + _LEN.size, length)
            out.append(payload)
            self._tail += _LEN.size + length
            self.messages += 1
        return out
