"""The "shared data structure in disaggregated memory" sharing approach.

Paper §IV-A2 enumerates three ways stores could share object information:
(1) a shared data structure in disaggregated memory, (2) messaging via
disaggregated memory, (3) LAN/gRPC. The paper picks (3); this module
implements (1) so the trade-off can actually be measured (ablation E6 in
DESIGN.md):

* the home store maintains an open-addressed hash directory *inside its
  exposed region*, mapping object id -> (offset, size) for sealed objects;
* a remote store resolves an id by hashing it and issuing single-line
  ThymesisFlow loads per probe — no RPC round trip, just ~1.1 us per probe;
* exactly as the paper warns, it is one-way: the home store learns nothing
  about remote usage (no eviction feedback), and a remote *write* into the
  directory would hit the Fig 3b staleness trap — so readers never write.

Each bucket is one 64-byte cache line:
``state(1) | object_id(20) | offset(8) | data_size(8) | pad(27)``.
"""

from __future__ import annotations

import struct

from repro.common.errors import ObjectStoreError
from repro.common.ids import ObjectID
from repro.memory.host import MemoryRegion
from repro.thymesisflow.aperture import RemoteRegion

BUCKET_SIZE = 64
_STATE_EMPTY = 0
_STATE_FULL = 1
_STATE_TOMBSTONE = 2
_PACK = ">B20sQQ"  # state, id, offset, size
_PACK_LEN = struct.calcsize(_PACK)
assert _PACK_LEN <= BUCKET_SIZE


def directory_bytes(nbuckets: int) -> int:
    """Region bytes needed for a directory of *nbuckets*."""
    if nbuckets <= 0:
        raise ValueError("directory needs at least one bucket")
    return nbuckets * BUCKET_SIZE


def _bucket_of(object_id: ObjectID, nbuckets: int) -> int:
    return int.from_bytes(object_id.binary()[:8], "big") % nbuckets


class DisaggregatedHashMap:
    """Home-side view: lives in (a prefix of) the home's exposed region.

    Home-side mutations are plain local writes (the home node owns the
    memory; remote readers see them coherently per Fig 3a).
    """

    def __init__(self, region: MemoryRegion, nbuckets: int):
        needed = directory_bytes(nbuckets)
        if region.size < needed:
            raise ObjectStoreError(
                f"directory needs {needed} B, region has {region.size} B"
            )
        self._region = region
        self._nbuckets = nbuckets
        self._count = 0

    @property
    def nbuckets(self) -> int:
        return self._nbuckets

    @property
    def count(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        return self._count / self._nbuckets

    def _read_bucket(self, index: int) -> tuple[int, bytes, int, int]:
        raw = self._region.read(index * BUCKET_SIZE, _PACK_LEN)
        return struct.unpack(_PACK, raw)

    def _write_bucket(
        self, index: int, state: int, oid: bytes, offset: int, size: int
    ) -> None:
        self._region.write(
            index * BUCKET_SIZE, struct.pack(_PACK, state, oid, offset, size)
        )

    def insert(self, object_id: ObjectID, offset: int, data_size: int) -> None:
        """Publish a sealed object. Raises when the table is full."""
        if self._count >= self._nbuckets:
            raise ObjectStoreError("disaggregated directory is full")
        oid = object_id.binary()
        index = _bucket_of(object_id, self._nbuckets)
        for _ in range(self._nbuckets):
            state, existing, _, _ = self._read_bucket(index)
            if state == _STATE_FULL and existing == oid:
                raise ObjectStoreError(f"{object_id!r} already in directory")
            if state in (_STATE_EMPTY, _STATE_TOMBSTONE):
                self._write_bucket(index, _STATE_FULL, oid, offset, data_size)
                self._count += 1
                return
            index = (index + 1) % self._nbuckets
        raise ObjectStoreError("disaggregated directory is full")

    def remove(self, object_id: ObjectID) -> bool:
        """Unpublish (on delete/evict). Returns whether it was present."""
        oid = object_id.binary()
        index = _bucket_of(object_id, self._nbuckets)
        for _ in range(self._nbuckets):
            state, existing, _, _ = self._read_bucket(index)
            if state == _STATE_EMPTY:
                return False
            if state == _STATE_FULL and existing == oid:
                self._write_bucket(index, _STATE_TOMBSTONE, b"\x00" * 20, 0, 0)
                self._count -= 1
                return True
            index = (index + 1) % self._nbuckets
        return False

    def local_lookup(self, object_id: ObjectID) -> tuple[int, int] | None:
        """(offset, size) if published — untimed, home-side."""
        oid = object_id.binary()
        index = _bucket_of(object_id, self._nbuckets)
        for _ in range(self._nbuckets):
            state, existing, offset, size = self._read_bucket(index)
            if state == _STATE_EMPTY:
                return None
            if state == _STATE_FULL and existing == oid:
                return offset, size
            index = (index + 1) % self._nbuckets
        return None


class RemoteHashMapReader:
    """Remote-side view: resolves ids with timed single-line fabric loads.

    *base_offset* is where the directory starts within the home's exposed
    region (the cluster builder places it at offset 0).
    """

    def __init__(self, remote: RemoteRegion, base_offset: int, nbuckets: int):
        if nbuckets <= 0:
            raise ValueError("directory needs at least one bucket")
        self._remote = remote
        self._base = base_offset
        self._nbuckets = nbuckets
        self.probes = 0
        self.lookups = 0

    def lookup(self, object_id: ObjectID) -> tuple[int, int] | None:
        """(offset, size) of a published object, or None. Each probe is one
        ~1.1 us unpipelined fabric load of a 64-byte line."""
        oid = object_id.binary()
        index = _bucket_of(object_id, self._nbuckets)
        self.lookups += 1
        for _ in range(self._nbuckets):
            raw = self._remote.load(
                self._base + index * BUCKET_SIZE, _PACK_LEN
            )
            self.probes += 1
            state, existing, offset, size = struct.unpack(_PACK, raw)
            if state == _STATE_EMPTY:
                return None
            if state == _STATE_FULL and existing == oid:
                return offset, size
            index = (index + 1) % self._nbuckets
        return None
