"""Failure detection and degraded-mode machinery (heartbeats + breakers).

Three cooperating pieces, all driven by the cluster's single
:class:`~repro.common.clock.SimClock`:

* :class:`CircuitBreaker` — per-peer closed → open → half-open state
  machine. The channel consults it before every call: while open, calls
  fail fast for ~1 us of simulated time instead of a full 2.3 ms round
  trip, so a dead peer stops taxing every lookup. After a reset timeout the
  breaker admits a bounded number of probe calls (half-open); one success
  closes it, any failure re-opens it.
* :class:`PeerHealth` — per-peer record: breaker + last heartbeat ack.
* :class:`HealthMonitor` — one per node. :meth:`HealthMonitor.tick` sends a
  Heartbeat RPC to every peer whose interval elapsed (cost is charged like
  any other unary call) and tracks acknowledgements; a peer that has not
  answered within ``suspicion_timeout_ns`` is *suspected*. The simulation
  has no background threads, so ticks happen wherever the embedding
  workload chooses to pump them (``Cluster.health_tick()``).

The breaker counts *call-level* outcomes (a call that succeeds after
transparent retries is a success), so transient jitter never opens it —
only sustained unavailability does.
"""

from __future__ import annotations

import enum

from repro.common.clock import SimClock
from repro.common.config import HealthConfig
from repro.common.errors import RpcStatusError
from repro.obs.metrics import CounterGroup
from repro.rpc.status import StatusCode


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __str__(self) -> str:
        return self.value


class CircuitBreaker:
    """A per-peer circuit breaker over simulated time.

    The channel calls :meth:`allow` before each call, then exactly one of
    :meth:`record_success` / :meth:`record_failure` with the call's final
    outcome.
    """

    def __init__(self, clock: SimClock, config: HealthConfig, name: str = ""):
        self._clock = clock
        self._config = config
        self.name = name
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ns = 0
        self._half_open_in_flight = 0
        self.counters = CounterGroup()

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def fail_fast_cost_ns(self) -> float:
        return self._config.breaker_fail_fast_ns

    def attach_metrics(self, registry, **labels: str) -> None:
        """Bind transition counters plus a sampled state gauge
        (0=closed, 1=open, 2=half-open)."""
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(self.counters, "rpc_breaker", **labels)
        state_code = {
            BreakerState.CLOSED: 0,
            BreakerState.OPEN: 1,
            BreakerState.HALF_OPEN: 2,
        }
        registry.gauge(
            "rpc_breaker_state",
            "Breaker state: 0=closed, 1=open, 2=half-open.",
            labels=tuple(sorted(labels)),
        ).labels(**labels).set_function(lambda: state_code[self._state])

    def allow(self) -> bool:
        """May a call proceed right now? (Open → False, except probes.)"""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            waited = self._clock.now_ns - self._opened_at_ns
            if waited < self._config.breaker_reset_timeout_ns:
                self.counters.inc("rejected")
                return False
            # Reset timeout elapsed: admit probes.
            self._state = BreakerState.HALF_OPEN
            self._half_open_in_flight = 0
            self.counters.inc("half_opens")
        # HALF_OPEN: bounded number of concurrent probes.
        if self._half_open_in_flight >= self._config.breaker_half_open_probes:
            self.counters.inc("rejected")
            return False
        self._half_open_in_flight += 1
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state is not BreakerState.CLOSED:
            self.counters.inc("closes")
        self._state = BreakerState.CLOSED
        self._half_open_in_flight = 0

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._trip()
        elif (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self._config.breaker_failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at_ns = self._clock.now_ns
        self._half_open_in_flight = 0
        self.counters.inc("opens")

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name or 'peer'}, {self._state}, "
            f"failures={self._consecutive_failures})"
        )


class PeerHealth:
    """What one node knows about one peer."""

    def __init__(self, name: str, stub, breaker: CircuitBreaker):
        self.name = name
        self.stub = stub
        self.breaker = breaker
        self.last_heartbeat_sent_ns: int | None = None
        self.last_ack_ns: int | None = None
        self.heartbeats_sent = 0
        self.heartbeats_missed = 0


class HealthMonitor:
    """Heartbeat-based failure detector for one node's peer set."""

    def __init__(self, node: str, clock: SimClock, config: HealthConfig):
        self._node = node
        self._clock = clock
        self._config = config
        self._peers: dict[str, PeerHealth] = {}
        self._registry = None
        self.counters = CounterGroup()

    @property
    def node(self) -> str:
        return self._node

    def attach_metrics(self, registry) -> None:
        """Bind heartbeat counters and per-peer suspicion gauges. Peers
        added later (elastic join) get their gauge on :meth:`add_peer`."""
        if not getattr(registry, "enabled", True):
            return
        self._registry = registry
        registry.register_group(self.counters, "health")
        for name in self.peers():
            self._register_suspect_gauge(name)

    def _register_suspect_gauge(self, name: str) -> None:
        suspect = self._registry.gauge(
            "health_peer_suspect",
            "1 while the peer is suspected dead (silent past timeout).",
            labels=("peer",),
        )
        suspect.labels(peer=name).set_function(
            lambda n=name: 1.0 if self.is_suspect(n) else 0.0
        )

    def add_peer(self, name: str, stub, breaker: CircuitBreaker) -> None:
        if name in self._peers:
            raise ValueError(f"{self._node} already monitors {name}")
        self._peers[name] = PeerHealth(name, stub, breaker)
        if self._registry is not None:
            self._register_suspect_gauge(name)

    def remove_peer(self, name: str) -> None:
        """Stop monitoring *name* (it left the cluster). Unknown names are
        a no-op so teardown paths can call this unconditionally."""
        self._peers.pop(name, None)

    def peer(self, name: str) -> PeerHealth:
        return self._peers[name]

    def peers(self) -> list[str]:
        return sorted(self._peers)

    def breaker(self, name: str) -> CircuitBreaker:
        return self._peers[name].breaker

    # -- heartbeating ------------------------------------------------------------

    def tick(self) -> dict[str, bool]:
        """Send heartbeats to every peer whose interval elapsed.

        Returns {peer: answered} for the peers probed this tick. Each probe
        is a real unary call (full cost model, retries, breaker) — failure
        detection is not free, which is the point of the interval.
        """
        now = self._clock.now_ns
        probed: dict[str, bool] = {}
        for name in self.peers():
            health = self._peers[name]
            last = health.last_heartbeat_sent_ns
            if last is not None and now - last < self._config.heartbeat_interval_ns:
                continue
            health.last_heartbeat_sent_ns = self._clock.now_ns
            health.heartbeats_sent += 1
            self.counters.inc("heartbeats_sent")
            try:
                health.stub.Heartbeat({"from": self._node})
            except RpcStatusError as exc:
                if exc.code is StatusCode.RESOURCE_EXHAUSTED:
                    # The peer shed our heartbeat under overload — but a
                    # shed is an *answer*: the process is alive. Treating
                    # it as a miss would let saturation masquerade as
                    # death and trigger spurious failover.
                    self.counters.inc("heartbeats_shed")
                    health.last_ack_ns = self._clock.now_ns
                    probed[name] = True
                    continue
                if exc.code in (
                    StatusCode.UNAVAILABLE,
                    StatusCode.DEADLINE_EXCEEDED,
                ):
                    health.heartbeats_missed += 1
                    self.counters.inc("heartbeats_missed")
                    probed[name] = False
                    continue
                raise
            health.last_ack_ns = self._clock.now_ns
            probed[name] = True
        return probed

    def is_suspect(self, name: str) -> bool:
        """True once the peer has gone silent past the suspicion timeout.

        A peer we never heard from is judged from the first probe we sent
        it; a peer we never probed is given the benefit of the doubt. A
        name no longer monitored (it left the cluster) is not suspect —
        suspicion gauges registered for it keep reading 0.
        """
        health = self._peers.get(name)
        if health is None:
            return False
        reference = (
            health.last_ack_ns
            if health.last_ack_ns is not None
            else health.last_heartbeat_sent_ns
        )
        if reference is None:
            return False
        return (
            self._clock.now_ns - reference > self._config.suspicion_timeout_ns
        )

    def suspects(self) -> list[str]:
        return [name for name in self.peers() if self.is_suspect(name)]

    def snapshot(self) -> dict[str, dict]:
        """Per-peer health view (CLI / debugging)."""
        out: dict[str, dict] = {}
        for name in self.peers():
            health = self._peers[name]
            out[name] = {
                "breaker": str(health.breaker.state),
                "suspect": self.is_suspect(name),
                "heartbeats_sent": health.heartbeats_sent,
                "heartbeats_missed": health.heartbeats_missed,
                "last_ack_ns": health.last_ack_ns,
            }
        return out

    def __repr__(self) -> str:
        return f"HealthMonitor({self._node}, peers={self.peers()})"
