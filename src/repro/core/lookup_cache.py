"""Remote-lookup cache (paper future work, implemented).

§V-B: "a caching mechanism for previously requested remote objects could be
implemented. This would increase the performance of repeated requests for
identifiers ... This caching would require caution with tracking object
usage by remote clients for the eviction policy and could result in
corrupted object buffers if not handled carefully."

The cache maps object id -> (home store, descriptor) so a repeated request
skips the gRPC round trip entirely. The "careful handling": home stores
push ``NotifyDeleted`` RPCs on delete/evict, which
:meth:`LookupCache.invalidate` consumes; and entries are only trusted for
*pinned* objects when reference sharing is enabled (otherwise a hit still
revalidates nothing and eviction can invalidate it — the benchmark
``test_lookup_cache`` shows both the win and the hazard).

With elastic placement (repro.placement) two more invalidation channels
exist. Every entry is stamped with the topology *epoch* it was learned
under; :meth:`set_epoch` (called when a new TopologyView installs) makes
older entries lazy misses — a descriptor learned before a join/drain/crash
may point at a migrated-away copy, so it is re-looked-up rather than
trusted. And :meth:`invalidate_node` purges every entry homed on a
departed peer in one O(entries) pass.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.ids import ObjectID
from repro.core.remote import RemoteObjectRecord


class LookupCache:
    """Bounded LRU of remote-object descriptors, epoch-stamped."""

    def __init__(self, max_entries: int = 100_000):
        if max_entries <= 0:
            raise ValueError("cache must hold at least one entry")
        self._max = max_entries
        self._entries: OrderedDict[ObjectID, tuple[RemoteObjectRecord, int]] = (
            OrderedDict()
        )
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def set_epoch(self, epoch: int) -> None:
        """A new topology view installed: entries stamped with an older
        epoch become (lazy) misses. O(1) — stale entries are discarded as
        they are touched, not eagerly scanned."""
        if epoch > self._epoch:
            self._epoch = epoch

    def get(self, object_id: ObjectID) -> RemoteObjectRecord | None:
        item = self._entries.get(object_id)
        if item is None:
            self.misses += 1
            return None
        record, stamped = item
        if stamped < self._epoch:
            # Learned under an older topology; the object may have migrated.
            del self._entries[object_id]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(object_id)
        self.hits += 1
        return record

    def put(self, record: RemoteObjectRecord) -> None:
        self._entries[record.object_id] = (record, self._epoch)
        self._entries.move_to_end(record.object_id)
        while len(self._entries) > self._max:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, object_id: ObjectID) -> bool:
        if object_id in self._entries:
            del self._entries[object_id]
            self.invalidations += 1
            return True
        return False

    def invalidate_node(self, name: str) -> int:
        """Purge every cached descriptor homed on *name* (the peer left the
        cluster or crashed); returns how many entries went."""
        victims = [
            oid
            for oid, (record, _) in self._entries.items()
            if record.home == name
        ]
        for oid in victims:
            del self._entries[oid]
        self.invalidations += len(victims)
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: ObjectID) -> bool:
        return object_id in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
