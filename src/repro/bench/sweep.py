"""Parameter sweeps: crossovers and size scaling.

The headline trade-off between the paper's architecture (Fig 1b: read
remote memory in place) and the scale-out baseline (Fig 1a: replicate,
then read locally) depends on *how often* data is re-read:

* first touch: disaggregation wins big (fabric ≫ LAN);
* every further read: the replica is local (~6.5 GiB/s) while
  disaggregation keeps paying the fabric (~5.75 GiB/s);
* so there is a re-read count k* where total costs cross.

:func:`reread_crossover` measures both systems end-to-end over the real
stores and reports the crossover. :func:`object_size_sweep` scans Table I's
size axis continuously, yielding the data behind Fig 6/7's trends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline import ScaleOutCluster
from repro.common.config import ClusterConfig
from repro.common.units import MiB
from repro.core import Cluster


@dataclass(frozen=True)
class CrossoverPoint:
    rereads: int
    disaggregated_ms: float
    scale_out_ms: float


@dataclass(frozen=True)
class CrossoverResult:
    object_size: int
    points: list[CrossoverPoint]
    crossover_rereads: int | None  # first k where scale-out is cheaper

    def format(self) -> str:
        lines = [
            f"re-read crossover, {self.object_size // MiB} MiB object "
            f"(cumulative simulated ms):",
            f"{'k':>4} {'disaggregated':>14} {'scale-out':>10}",
        ]
        for p in self.points:
            marker = "  <-- crossover" if p.rereads == self.crossover_rereads else ""
            lines.append(
                f"{p.rereads:>4} {p.disaggregated_ms:>14.2f} "
                f"{p.scale_out_ms:>10.2f}{marker}"
            )
        return "\n".join(lines)


def _disaggregated_cost_ms(config: ClusterConfig, size: int, rereads: int) -> float:
    cluster = Cluster(config, n_nodes=2, check_remote_uniqueness=False)
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oid = cluster.new_object_id()
    producer.put_bytes(oid, bytes(size))
    t0 = cluster.clock.now_ns
    buf = consumer.get_one(oid)
    for _ in range(rereads):
        buf.charge_sequential_read()
    consumer.release(oid)
    return (cluster.clock.now_ns - t0) / 1e6


def _scale_out_cost_ms(config: ClusterConfig, size: int, rereads: int) -> float:
    cluster = ScaleOutCluster(config, n_nodes=2)
    producer = cluster.client("node0")
    consumer = cluster.client("node1")
    oid = cluster.new_object_id()
    producer.put_bytes(oid, bytes(size))
    t0 = cluster.clock.now_ns
    buf = consumer.get_one(oid)  # replicates over the LAN
    for _ in range(rereads):
        buf.charge_sequential_read()
    consumer.release(oid)
    return (cluster.clock.now_ns - t0) / 1e6


def reread_crossover(
    object_size: int = 16 * MiB,
    max_rereads: int = 120,
    step: int = 10,
    config: ClusterConfig | None = None,
) -> CrossoverResult:
    """Sweep the re-read count; find where replication starts to pay off."""
    base = config or ClusterConfig()
    capacity = max(64 * MiB, 2 * object_size)
    cfg = base.with_store(capacity_bytes=capacity)
    points: list[CrossoverPoint] = []
    crossover: int | None = None
    ks = sorted(set(list(range(1, max_rereads + 1, step)) + [max_rereads]))
    for k in ks:
        dis = _disaggregated_cost_ms(cfg, object_size, k)
        so = _scale_out_cost_ms(cfg, object_size, k)
        points.append(CrossoverPoint(rereads=k, disaggregated_ms=dis, scale_out_ms=so))
        if crossover is None and so < dis:
            crossover = k
    return CrossoverResult(
        object_size=object_size, points=points, crossover_rereads=crossover
    )


@dataclass(frozen=True)
class SizePoint:
    object_size: int
    local_retrieve_ms: float
    remote_retrieve_ms: float
    local_read_gibps: float
    remote_read_gibps: float


def object_size_sweep(
    sizes: list[int],
    objects_budget_bytes: int = 64 * MiB,
    config: ClusterConfig | None = None,
) -> list[SizePoint]:
    """For each size, commit ``budget/size`` objects and measure retrieval
    latency + read throughput for local and remote consumers — the
    continuous version of Table I's size axis."""
    base = config or ClusterConfig()
    out: list[SizePoint] = []
    for size in sizes:
        n = max(1, objects_budget_bytes // size)
        cfg = base.with_store(capacity_bytes=objects_budget_bytes + 64 * MiB)
        cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False)
        producer = cluster.client("node0")
        ids = cluster.new_object_ids(n)
        for oid in ids:
            buf = producer.create(oid, size)
            buf.charge_sequential_write()
            producer.seal(oid)
            producer.release(oid)
        row = {}
        for label, node in (("local", "node0"), ("remote", "node1")):
            consumer = cluster.client(node)
            t0 = cluster.clock.now_ns
            buffers = consumer.get(ids)
            retrieve_ms = (cluster.clock.now_ns - t0) / 1e6
            t0 = cluster.clock.now_ns
            for buf in buffers:
                buf.charge_sequential_read()
            read_ns = cluster.clock.now_ns - t0
            gibps = (n * size / (1 << 30)) / (read_ns / 1e9)
            row[label] = (retrieve_ms, gibps)
            for oid in ids:
                consumer.release(oid)
        out.append(
            SizePoint(
                object_size=size,
                local_retrieve_ms=row["local"][0],
                remote_retrieve_ms=row["remote"][0],
                local_read_gibps=row["local"][1],
                remote_read_gibps=row["remote"][1],
            )
        )
    return out
