"""The §IV-B microbenchmark: create/seal, retrieval latency, read throughput.

One repetition of one Table I spec:

1. **create phase** — a producer client on the home node creates, writes,
   and seals ``num_objects`` objects of ``object_size`` with random data;
2. **retrieval phase** — a consumer client batch-``get``s all buffers;
   measured "from the time of the request to the reception of the last
   buffer" (Fig 6);
3. **read phase** — the consumer sequentially reads every buffer
   end-to-end, "including access latency" (Fig 7); throughput =
   total bytes / phase time;
4. **cleanup** — releases and deletes everything so the next repetition
   starts from an empty store (objects are fresh each repetition, matching
   the paper's jitter-monitoring protocol).

Both a *local* consumer (same node as the producer) and a *remote* one (the
other node, reading through ThymesisFlow after an RPC lookup) run phases
2-3, giving the paired series of Figs 6 and 7.

Measured read-phase durations carry additive Gaussian measurement noise
(OS scheduling/timer granularity), which is what makes the short
small-object phases of specs 1-3 visibly noisier than specs 4-6 — the
variance structure of Fig 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.bench.specs import TABLE_I, BenchmarkSpec
from repro.bench.workload import make_payloads
from repro.common.clock import Stopwatch
from repro.common.config import ClusterConfig
from repro.common.rng import DeterministicRng
from repro.common.stats import Distribution
from repro.common.units import MiB, gib_per_s
from repro.core.cluster import Cluster


@dataclass(frozen=True)
class MicroBenchConfig:
    """Harness knobs (defaults follow the paper's protocol)."""

    repetitions: int = 100
    # 'auto' copies real bytes for small workloads and switches to
    # charge-only timing above `materialize_limit` total bytes per rep
    # (data-plane correctness is covered by the test suite; the switch
    # keeps the harness's wall-clock cost bounded).
    materialize: str = "auto"  # 'always' | 'never' | 'auto'
    materialize_limit: int = 64 * MiB
    # Per-create remote uniqueness RPC (paper-literal) vs one batched
    # Contains per repetition (the amortised producer path).
    per_create_uniqueness_rpc: bool = False
    verify_contents: bool = True
    n_nodes: int = 2
    remote_consumer_node: int = 1

    def resolve_materialize(self, spec: BenchmarkSpec) -> bool:
        if self.materialize == "always":
            return True
        if self.materialize == "never":
            return False
        if self.materialize == "auto":
            return spec.total_bytes <= self.materialize_limit
        raise ValueError(f"unknown materialize mode {self.materialize!r}")


@dataclass
class PhaseTimings:
    """Distributions over repetitions for one consumer placement."""

    retrieve_ns: Distribution = field(default_factory=Distribution)
    read_ns: Distribution = field(default_factory=Distribution)
    read_gibps: Distribution = field(default_factory=Distribution)


@dataclass
class SpecResult:
    """Everything measured for one Table I spec."""

    spec: BenchmarkSpec
    create_seal_ns: Distribution
    local: PhaseTimings
    remote: PhaseTimings

    @property
    def local_retrieve_ms_mean(self) -> float:
        return self.local.retrieve_ns.mean / 1e6

    @property
    def remote_retrieve_ms_mean(self) -> float:
        return self.remote.retrieve_ns.mean / 1e6


def _cluster_for(spec: BenchmarkSpec, base: ClusterConfig, n_nodes: int,
                 per_create_uniqueness_rpc: bool) -> Cluster:
    # Capacity: the rep's working set plus headroom so the measured phases
    # never trigger eviction (the paper's specs fit comfortably in the
    # IC922s' memory).
    capacity = spec.total_bytes + max(64 * MiB, spec.total_bytes // 4)
    cfg = base.with_store(capacity_bytes=capacity)
    return Cluster(
        cfg,
        n_nodes=n_nodes,
        check_remote_uniqueness=per_create_uniqueness_rpc,
    )


def run_spec(
    spec: BenchmarkSpec,
    bench: MicroBenchConfig | None = None,
    cluster_config: ClusterConfig | None = None,
) -> SpecResult:
    """Run one Table I spec for the configured repetitions."""
    bench = bench or MicroBenchConfig()
    base_cfg = cluster_config or ClusterConfig()
    cluster = _cluster_for(
        spec, base_cfg, bench.n_nodes, bench.per_create_uniqueness_rpc
    )
    materialize = bench.resolve_materialize(spec)
    noise_rng = cluster.rng.spawn("measurement-noise", f"spec{spec.index}")
    noise_std = base_cfg.local_memory.phase_noise_std_ns

    producer = cluster.client("node0", "producer")
    local_consumer = cluster.client("node0", "local-consumer")
    remote_node = f"node{bench.remote_consumer_node}"
    remote_consumer = cluster.client(remote_node, "remote-consumer")
    workload = make_payloads(spec, cluster.rng.spawn("payload", f"spec{spec.index}"))

    result = SpecResult(
        spec=spec,
        create_seal_ns=Distribution(),
        local=PhaseTimings(),
        remote=PhaseTimings(),
    )

    def _noisy(elapsed_ns: int) -> float:
        noise = noise_rng.normal(0.0, noise_std)
        # Clip: measurement noise cannot make a phase appear faster than a
        # large fraction of its true cost (timers are noisy, not negative).
        return max(elapsed_ns + noise, 0.7 * elapsed_ns, 1.0)

    for rep in range(bench.repetitions):
        ids = cluster.new_object_ids(spec.num_objects)
        verify = bench.verify_contents and materialize and rep == 0

        # -- create / write / seal (E4) ------------------------------------
        if not bench.per_create_uniqueness_rpc:
            producer.store.reserve_ids(ids)
        with Stopwatch(cluster.clock) as sw_create:
            for oid in ids:
                buffer = producer.create(oid, spec.object_size_bytes)
                if materialize:
                    buffer.write(workload.payload_view)
                else:
                    buffer.charge_sequential_write()
                producer.seal(oid)
                producer.release(oid)
        result.create_seal_ns.add(sw_create.elapsed_ns)

        # -- local consumer: retrieval (Fig 6) + read (Fig 7) ----------------
        _consume(
            local_consumer, ids, spec, workload, materialize, verify,
            result.local, _noisy, cluster,
        )
        # -- remote consumer ------------------------------------------------
        _consume(
            remote_consumer, ids, spec, workload, materialize, verify,
            result.remote, _noisy, cluster,
        )

        # -- cleanup ---------------------------------------------------------
        for oid in ids:
            producer.store.delete_object(oid)

    return result


def _consume(client, ids, spec, workload, materialize, verify, timings,
             noisy, cluster) -> None:
    with Stopwatch(cluster.clock) as sw_retrieve:
        buffers = client.get(ids)
    timings.retrieve_ns.add(sw_retrieve.elapsed_ns)

    with Stopwatch(cluster.clock) as sw_read:
        for buffer in buffers:
            if materialize:
                buffer.read_into(workload.scratch)
                if verify:
                    if bytes(workload.scratch) != workload.expected_bytes():
                        raise AssertionError(
                            f"corrupted read of {buffer.object_id!r} via "
                            f"{buffer.location}"
                        )
            else:
                buffer.charge_sequential_read()
    read_ns = noisy(sw_read.elapsed_ns)
    timings.read_ns.add(read_ns)
    timings.read_gibps.add(gib_per_s(spec.total_bytes, read_ns))

    for oid in ids:
        client.release(oid)


def run_table(
    bench: MicroBenchConfig | None = None,
    cluster_config: ClusterConfig | None = None,
    specs: tuple[BenchmarkSpec, ...] = TABLE_I,
) -> list[SpecResult]:
    """Run every requested Table I spec; returns results in spec order."""
    return [run_spec(spec, bench, cluster_config) for spec in specs]
