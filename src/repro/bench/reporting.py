"""Paper-style result tables with the paper's numbers alongside.

The paper gives exact anchors for a subset of points; the remaining cells
of its figures are read qualitatively (the text describes the shape). The
formatters print measured values next to every anchor the paper states so
EXPERIMENTS.md can record paper-vs-measured per figure.
"""

from __future__ import annotations

from repro.bench.micro import SpecResult
from repro.bench.specs import TABLE_I
from repro.workload.report import (  # noqa: F401  (write_bench_json re-exported)
    BENCH_SCHEMA_VERSION,
    write_bench_json,
)

# Fig 6 anchors stated in §V-A (milliseconds). None = not stated in text.
PAPER_FIG6_LOCAL_MS: dict[int, float | None] = {
    1: 1.885,  # "1.885 ms for 1000 objects"
    2: None,
    3: None,
    4: None,
    5: None,
    6: 0.075,  # "0.075 ms for 10 objects"
}
PAPER_FIG6_REMOTE_MS: dict[int, float | None] = {
    1: 5.049,  # "5.049 ms for 1000 objects"
    2: None,
    3: None,
    4: 2.624,  # "2.624 ms for 100 objects"
    5: None,
    6: None,
}

# Fig 7: "results stabilize at 6.5 GiB/s for local ... 5.75 GiB/s for
# remote ... in benchmarks 4-6. Benchmarks 1-3 display more variation
# (ranging from 5.5 to 7.1 GiB/s)".
PAPER_FIG7_LOCAL_GIBPS = 6.5
PAPER_FIG7_REMOTE_GIBPS = 5.75
PAPER_FIG7_SMALL_RANGE = (5.5, 7.1)


def format_table1() -> str:
    """Table I exactly as printed in the paper."""
    lines = [
        "TABLE I: Benchmark Specifications",
        f"{'':>3} {'Number of Objects':>18} {'Object Size (kB)':>17}",
    ]
    for spec in TABLE_I:
        lines.append(
            f"{spec.index:>3} {spec.num_objects:>18} {spec.object_size_kb:>17}"
        )
    return "\n".join(lines)


def _fmt_paper(value: float | None) -> str:
    return f"{value:8.3f}" if value is not None else "       —"


def format_fig6(results: list[SpecResult]) -> str:
    """Fig 6: total buffer retrieval latency per benchmark, local vs remote."""
    lines = [
        "Fig 6: Plasma object buffer retrieval latency (ms, mean over reps)",
        f"{'bench':>5} {'n_obj':>6} | {'local meas':>10} {'local paper':>11} | "
        f"{'remote meas':>11} {'remote paper':>12}",
    ]
    for r in results:
        i = r.spec.index
        lines.append(
            f"{i:>5} {r.spec.num_objects:>6} | "
            f"{r.local_retrieve_ms_mean:>10.3f} {_fmt_paper(PAPER_FIG6_LOCAL_MS.get(i)):>11} | "
            f"{r.remote_retrieve_ms_mean:>11.3f} {_fmt_paper(PAPER_FIG6_REMOTE_MS.get(i)):>12}"
        )
    return "\n".join(lines)


def format_fig7(results: list[SpecResult]) -> str:
    """Fig 7: read-throughput distributions (the paper's box plots)."""
    lines = [
        "Fig 7: Plasma object buffer reading throughput (GiB/s)",
        f"  paper: local plateau ~{PAPER_FIG7_LOCAL_GIBPS}, remote plateau "
        f"~{PAPER_FIG7_REMOTE_GIBPS} (specs 4-6); specs 1-3 range "
        f"{PAPER_FIG7_SMALL_RANGE[0]}-{PAPER_FIG7_SMALL_RANGE[1]}",
    ]
    for r in results:
        for label, timings in (("local", r.local), ("remote", r.remote)):
            s = timings.read_gibps.summary()
            lines.append(
                f"  bench {r.spec.index} {label:>6}: {s.format(unit='GiB/s')}"
            )
    return "\n".join(lines)


def _gibps_summary(dist) -> dict:
    s = dist.summary()
    return {
        "count": s.count,
        "median": round(s.median, 4),
        "q1": round(s.q1, 4),
        "q3": round(s.q3, 4),
        "min": round(s.min, 4),
        "max": round(s.max, 4),
    }


def fig6_payload(results: list[SpecResult]) -> dict:
    """BENCH payload for Fig 6 (retrieval latency, measured vs paper).

    Emitted through the same :func:`repro.workload.report.write_bench_json`
    path as the workload scenarios, so the whole perf trajectory shares
    one canonical, byte-stable artifact format.
    """
    return {
        "artifact": "BENCH_fig6_retrieval_latency.json",
        "schema_version": BENCH_SCHEMA_VERSION,
        "figure": "fig6",
        "specs": {
            str(r.spec.index): {
                "num_objects": r.spec.num_objects,
                "object_size_kb": r.spec.object_size_kb,
                "local_ms": round(r.local_retrieve_ms_mean, 4),
                "local_paper_ms": PAPER_FIG6_LOCAL_MS.get(r.spec.index),
                "remote_ms": round(r.remote_retrieve_ms_mean, 4),
                "remote_paper_ms": PAPER_FIG6_REMOTE_MS.get(r.spec.index),
            }
            for r in results
        },
    }


def fig7_payload(results: list[SpecResult]) -> dict:
    """BENCH payload for Fig 7 (read-throughput distributions, GiB/s)."""
    return {
        "artifact": "BENCH_fig7_read_throughput.json",
        "schema_version": BENCH_SCHEMA_VERSION,
        "figure": "fig7",
        "paper": {
            "local_plateau_gibps": PAPER_FIG7_LOCAL_GIBPS,
            "remote_plateau_gibps": PAPER_FIG7_REMOTE_GIBPS,
            "small_range_gibps": list(PAPER_FIG7_SMALL_RANGE),
        },
        "specs": {
            str(r.spec.index): {
                "local_gibps": _gibps_summary(r.local.read_gibps),
                "remote_gibps": _gibps_summary(r.remote.read_gibps),
            }
            for r in results
        },
    }


def format_create_seal(results: list[SpecResult]) -> str:
    """E4: create+write+seal phase timing (measured, no paper anchors)."""
    lines = [
        "Create/write/seal phase (ms per repetition, mean)",
        f"{'bench':>5} {'n_obj':>6} {'obj kB':>7} {'mean ms':>9} {'per-obj us':>11}",
    ]
    for r in results:
        mean_ms = r.create_seal_ns.mean / 1e6
        per_obj_us = r.create_seal_ns.mean / r.spec.num_objects / 1e3
        lines.append(
            f"{r.spec.index:>5} {r.spec.num_objects:>6} "
            f"{r.spec.object_size_kb:>7} {mean_ms:>9.3f} {per_obj_us:>11.3f}"
        )
    return "\n".join(lines)
