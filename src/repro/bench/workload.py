"""Workload generation: objects with random data.

Paper §IV-B: "The benchmarks commit Plasma objects with random data to one
of the Plasma stores ... The data contents of the objects should not
influence the system performance." Payloads are drawn once per spec from
the deterministic RNG and reused across repetitions (contents don't affect
the modelled timing; reusing the buffer keeps the harness's real wall-clock
cost linear in bytes moved, not in RNG draws).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.specs import BenchmarkSpec
from repro.common.rng import DeterministicRng


@dataclass
class WorkloadData:
    """Reusable payload + scratch buffers for one benchmark spec."""

    spec: BenchmarkSpec
    payload: np.ndarray  # uint8, object_size bytes
    scratch: bytearray  # read destination, object_size bytes

    @property
    def payload_view(self) -> memoryview:
        return memoryview(self.payload)  # type: ignore[arg-type]

    def expected_bytes(self) -> bytes:
        return self.payload.tobytes()


def make_payloads(spec: BenchmarkSpec, rng: DeterministicRng) -> WorkloadData:
    """Random payload + scratch buffer sized for *spec*."""
    payload = rng.payload(spec.object_size_bytes)
    return WorkloadData(
        spec=spec, payload=payload, scratch=bytearray(spec.object_size_bytes)
    )


# Access-sequence generators grew into the traffic plane's popularity
# models; the canonical implementations live in repro.workload.popularity
# and are re-exported here unchanged (same signatures, bit-identical draws
# for the same RNG state) for existing callers.
from repro.workload.popularity import (  # noqa: E402,F401  (re-export)
    uniform_access_sequence,
    zipf_access_sequence,
)
