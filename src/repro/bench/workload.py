"""Workload generation: objects with random data.

Paper §IV-B: "The benchmarks commit Plasma objects with random data to one
of the Plasma stores ... The data contents of the objects should not
influence the system performance." Payloads are drawn once per spec from
the deterministic RNG and reused across repetitions (contents don't affect
the modelled timing; reusing the buffer keeps the harness's real wall-clock
cost linear in bytes moved, not in RNG draws).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.specs import BenchmarkSpec
from repro.common.rng import DeterministicRng


@dataclass
class WorkloadData:
    """Reusable payload + scratch buffers for one benchmark spec."""

    spec: BenchmarkSpec
    payload: np.ndarray  # uint8, object_size bytes
    scratch: bytearray  # read destination, object_size bytes

    @property
    def payload_view(self) -> memoryview:
        return memoryview(self.payload)  # type: ignore[arg-type]

    def expected_bytes(self) -> bytes:
        return self.payload.tobytes()


def make_payloads(spec: BenchmarkSpec, rng: DeterministicRng) -> WorkloadData:
    """Random payload + scratch buffer sized for *spec*."""
    payload = rng.payload(spec.object_size_bytes)
    return WorkloadData(
        spec=spec, payload=payload, scratch=bytearray(spec.object_size_bytes)
    )


def zipf_access_sequence(
    rng: DeterministicRng, n_objects: int, n_accesses: int, s: float = 1.1
) -> np.ndarray:
    """Popularity-skewed object indices: P(rank k) ∝ 1/k^s.

    Real big-data object stores see heavily skewed access (a few hot
    partitions, a long cold tail); the lookup-cache study uses this to
    measure hit rates beyond the uniform repeated-batch case.
    Returns ``n_accesses`` indices in ``[0, n_objects)``.
    """
    if n_objects <= 0 or n_accesses <= 0:
        raise ValueError("need positive object and access counts")
    if s <= 0:
        raise ValueError("zipf exponent must be positive")
    ranks = np.arange(1, n_objects + 1, dtype=np.float64)
    weights = ranks ** (-s)
    weights /= weights.sum()
    cumulative = np.cumsum(weights)
    draws = np.frombuffer(
        rng.bytes(n_accesses * 8), dtype=np.uint64
    ).astype(np.float64) / float(2**64)
    return np.searchsorted(cumulative, draws, side="right").astype(np.int64)


def uniform_access_sequence(
    rng: DeterministicRng, n_objects: int, n_accesses: int
) -> np.ndarray:
    """Uniform access indices (the contrast case for the cache study)."""
    if n_objects <= 0 or n_accesses <= 0:
        raise ValueError("need positive object and access counts")
    draws = np.frombuffer(rng.bytes(n_accesses * 8), dtype=np.uint64)
    return (draws % n_objects).astype(np.int64)
