"""Table I: the six microbenchmark specifications.

|   | Number of Objects | Object Size (kB) |
|---|-------------------|------------------|
| 1 | 1000              | 1                |
| 2 | 500               | 10               |
| 3 | 200               | 100              |
| 4 | 100               | 1000             |
| 5 | 50                | 10000            |
| 6 | 10                | 100000           |

Sizes are decimal kB (1 kB = 1000 B), as the paper writes them. "The
benchmarks test the Plasma framework with different orders of magnitude in
object sizes and also vary the number of objects ... to mitigate any
potential influence of caching of smaller objects." (§IV-B)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KB


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table I."""

    index: int
    num_objects: int
    object_size_bytes: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("benchmark indices are 1-based")
        if self.num_objects <= 0 or self.object_size_bytes <= 0:
            raise ValueError("objects and sizes must be positive")

    @property
    def object_size_kb(self) -> int:
        return self.object_size_bytes // KB

    @property
    def total_bytes(self) -> int:
        return self.num_objects * self.object_size_bytes

    def __str__(self) -> str:
        return (
            f"benchmark {self.index}: {self.num_objects} x "
            f"{self.object_size_kb} kB"
        )


TABLE_I: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(1, 1000, 1 * KB),
    BenchmarkSpec(2, 500, 10 * KB),
    BenchmarkSpec(3, 200, 100 * KB),
    BenchmarkSpec(4, 100, 1000 * KB),
    BenchmarkSpec(5, 50, 10_000 * KB),
    BenchmarkSpec(6, 10, 100_000 * KB),
)

# The paper's repetition count per benchmark.
PAPER_REPETITIONS = 100


def spec_by_index(index: int) -> BenchmarkSpec:
    for spec in TABLE_I:
        if spec.index == index:
            return spec
    raise KeyError(f"Table I has no benchmark {index}")
