"""Benchmark harness regenerating every table and figure of the paper.

* :data:`TABLE_I` — the six benchmark specifications (paper Table I).
* :func:`run_spec` / :func:`run_table` — the microbenchmark of §IV-B:
  commit objects with random data to one store, retrieve their buffers from
  local and remote clients, read them sequentially; 100 repetitions,
  single-threaded, measuring create/seal, retrieval latency (Fig 6) and
  read throughput (Fig 7).
* :mod:`repro.bench.reporting` — prints the same rows/series the paper
  reports, with the paper's numbers alongside for comparison.
"""

from repro.bench.specs import BenchmarkSpec, TABLE_I, spec_by_index
from repro.bench.workload import (
    WorkloadData,
    make_payloads,
    uniform_access_sequence,
    zipf_access_sequence,
)
from repro.bench.sweep import (
    CrossoverResult,
    SizePoint,
    object_size_sweep,
    reread_crossover,
)
from repro.bench.micro import (
    MicroBenchConfig,
    PhaseTimings,
    SpecResult,
    run_spec,
    run_table,
)
from repro.bench.reporting import (
    format_table1,
    format_fig6,
    format_fig7,
    PAPER_FIG6_LOCAL_MS,
    PAPER_FIG6_REMOTE_MS,
    PAPER_FIG7_LOCAL_GIBPS,
    PAPER_FIG7_REMOTE_GIBPS,
)

__all__ = [
    "BenchmarkSpec",
    "TABLE_I",
    "spec_by_index",
    "WorkloadData",
    "make_payloads",
    "zipf_access_sequence",
    "uniform_access_sequence",
    "CrossoverResult",
    "SizePoint",
    "reread_crossover",
    "object_size_sweep",
    "MicroBenchConfig",
    "PhaseTimings",
    "SpecResult",
    "run_spec",
    "run_table",
    "format_table1",
    "format_fig6",
    "format_fig7",
    "PAPER_FIG6_LOCAL_MS",
    "PAPER_FIG6_REMOTE_MS",
    "PAPER_FIG7_LOCAL_GIBPS",
    "PAPER_FIG7_REMOTE_GIBPS",
]
