"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``   — version, calibrated model constants, subsystem inventory.
* ``demo``   — the quickstart flow (commit on node0, consume locally and
  remotely, print latencies/throughput).
* ``bench``  — run Table I microbenchmarks and print the Fig 6 / Fig 7 /
  create-seal series with the paper's anchors alongside.
* ``ablation`` — run one of the ablation studies (allocator, sharing,
  cache).
* ``metrics`` — run a replicated workload with the telemetry plane
  enabled and print the cluster-wide Prometheus scrape plus the top-k
  latency families (exact p50/p95/p99 in simulated time); ``--out``
  writes the scrape (or ``--json`` snapshot) to a file instead.
* ``trace`` — run a replicated workload with the span-tracing plane
  enabled, write the Chrome trace-event artifact (open in Perfetto or
  chrome://tracing) plus an optional JSON snapshot, and print the
  critical-path latency attribution: every root operation's observed
  latency decomposed ns-exactly into queue/service/fabric/retry/hedge/
  client components.
* ``chaos``  — run a seeded fault-injection scenario (node crashes, link
  faults, blackholes) against a replicated workload and show the
  deterministic fault timeline plus degraded-mode outcome counts.
* ``recover`` — the end-to-end integrity drill: crash a node and flip a
  bit in its surviving region mid-workload, read through failover, rebuild
  the store by scanning sealed-object headers, then scrub-repair the
  corrupted object from a replica. Runs twice and verifies the replay is
  identical.
* ``topology`` — elastic-placement demo: build a placement-enabled
  cluster, route a batch of creates through the consistent-hash ring, and
  print the ring layout (ownership shares, vnodes, utilization, epoch);
  optionally drain a node and rebalance first.
* ``simtest`` — deterministic simulation testing: seeded random
  workloads + faults checked against a sequential oracle, with
  delta-debugging trace shrinking (``--shrink``), a sweep mode
  (``--seeds N`` / ``--profile``), a byte-identical replay check for a
  single ``--seed``, and a ``--self-check`` mode that plants a known
  bug and proves the harness catches and shrinks it.
* ``workload`` — scenario-driven traffic plane: run a committed scenario
  file (open/closed-loop load, skewed popularity, multi-tenant admission
  control) against a real cluster and emit the standing
  ``BENCH_workload_<scenario>.json`` artifact; ``--list`` enumerates
  scenarios, ``--twice`` proves the artifact is byte-identical across
  runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import ClusterConfig
from repro.common.units import GiB, MiB, format_duration_ns


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    cfg = ClusterConfig()
    print(f"repro {repro.__version__} — memory-disaggregated object store")
    print("calibrated model constants (repro/common/config.py):")
    print(f"  local read bandwidth   : {cfg.local_memory.read_bandwidth_bps / GiB:.2f} GiB/s")
    print(f"  fabric read bandwidth  : {cfg.fabric.read_bandwidth_bps / GiB:.2f} GiB/s")
    print(f"  fabric single access   : {cfg.fabric.added_latency_ns:.0f} ns")
    print(f"  IPC request overhead   : {cfg.ipc.request_overhead_ns / 1e3:.1f} us")
    print(f"  IPC per object         : {cfg.ipc.per_object_ns / 1e3:.2f} us")
    print(f"  gRPC round trip        : {cfg.rpc.round_trip_ns / 1e6:.2f} ms")
    print(f"  default store capacity : {cfg.store.capacity_bytes / MiB:.0f} MiB")
    print("subsystems: memory, allocator(first_fit/dlmalloc/buddy), "
          "thymesisflow, network, rpc, plasma, core, baseline, columnar, "
          "dataset, bench")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import Cluster
    from repro.common.units import gib_per_s

    cluster = Cluster(n_nodes=args.nodes)
    tracer = None
    if args.trace:
        from repro.common.trace import Tracer

        tracer = Tracer(cluster.clock)
        cluster.attach_tracer(tracer)
    producer = cluster.client("node0")
    remote = cluster.client(f"node{args.nodes - 1}")
    oid = cluster.new_object_id()
    payload = bytes(args.size_mib * MiB)
    producer.put_bytes(oid, payload)
    print(f"committed {args.size_mib} MiB object on node0")
    t0 = cluster.clock.now_ns
    buf = remote.get_one(oid)
    print(f"remote retrieval: {format_duration_ns(cluster.clock.now_ns - t0)}")
    t0 = cluster.clock.now_ns
    buf.charge_sequential_read()
    elapsed = cluster.clock.now_ns - t0
    print(
        f"remote sequential read: {format_duration_ns(elapsed)} "
        f"({gib_per_s(len(payload), elapsed):.2f} GiB/s; paper: ~5.75)"
    )
    remote.release(oid)
    if tracer is not None:
        tracer.write_chrome_trace(args.trace)
        print(f"wrote {len(tracer)} trace spans to {args.trace} "
              f"(open in chrome://tracing or Perfetto)")
        print(tracer.format_summary())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import MicroBenchConfig, run_spec, spec_by_index, TABLE_I
    from repro.bench.reporting import (
        format_create_seal,
        format_fig6,
        format_fig7,
        format_table1,
    )

    if args.spec is not None:
        specs = (spec_by_index(args.spec),)
    else:
        specs = TABLE_I
    print(format_table1())
    results = []
    for spec in specs:
        print(f"running {spec} x {args.reps} repetitions ...", file=sys.stderr)
        results.append(run_spec(spec, MicroBenchConfig(repetitions=args.reps)))
    print()
    print(format_fig6(results))
    print()
    print(format_fig7(results))
    print()
    print(format_create_seal(results))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    if args.kind == "allocator":
        from repro.allocator import (
            ALLOCATOR_NAMES,
            create_allocator,
            fragmentation_report,
        )
        from repro.common.errors import OutOfMemoryError
        from repro.common.rng import DeterministicRng

        print("allocator ablation (fragmentation stress, 4 MiB arena):")
        for name in ALLOCATOR_NAMES:
            alloc = create_allocator(name, 4 * MiB)
            rng = DeterministicRng(7).spawn(name)
            live = []
            while True:
                try:
                    live.append(alloc.allocate(64 + rng.integer(0, 8192)))
                except OutOfMemoryError:
                    break
            for a in live[::2]:
                alloc.free(a.offset)
            print("  " + fragmentation_report(name, alloc).format_row())
        return 0

    from repro.common.units import KB
    from repro.core import Cluster

    cfg = ClusterConfig().with_store(capacity_bytes=128 * MiB)

    def run_remote_consumption(cluster) -> float:
        producer = cluster.client("node0")
        consumer = cluster.client("node1")
        ids = cluster.new_object_ids(50)
        payload = bytes(1000 * KB)
        for oid in ids:
            producer.put_bytes(oid, payload)
        t0 = cluster.clock.now_ns
        bufs = consumer.get(ids)
        for buf in bufs:
            buf.charge_sequential_read()
        for oid in ids:
            consumer.release(oid)
        return (cluster.clock.now_ns - t0) / 1e6

    if args.kind == "sharing":
        from repro.baseline import ScaleOutCluster

        print("sharing-strategy ablation (50 x 1000 kB remote consumption):")
        for label, kwargs in (
            ("rpc (paper)", {}),
            ("dmsg", {"sharing": "dmsg"}),
            ("hashmap", {"sharing": "hashmap"}),
            ("hybrid", {"sharing": "hybrid"}),
        ):
            cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False, **kwargs)
            print(f"  {label:<14}: {run_remote_consumption(cluster):8.2f} ms")
        so = ScaleOutCluster(cfg, n_nodes=2)
        print(f"  {'scale-out':<14}: {run_remote_consumption(so):8.2f} ms")
        return 0

    if args.kind == "cache":
        print("lookup-cache ablation (10 rounds x 20 remote objects):")
        for label, kwargs in (
            ("no cache", {}),
            ("cache", {"enable_lookup_cache": True}),
        ):
            cluster = Cluster(cfg, n_nodes=2, check_remote_uniqueness=False, **kwargs)
            producer = cluster.client("node0")
            consumer = cluster.client("node1")
            ids = cluster.new_object_ids(20)
            for oid in ids:
                producer.put_bytes(oid, bytes(10 * KB))
            t0 = cluster.clock.now_ns
            for _ in range(10):
                bufs = consumer.get(ids)
                for buf in bufs:
                    buf.charge_sequential_read()
                for oid in ids:
                    consumer.release(oid)
            print(f"  {label:<10}: {(cluster.clock.now_ns - t0) / 1e6:8.2f} ms")
        return 0

    raise AssertionError(f"unhandled ablation {args.kind!r}")  # pragma: no cover


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.common.units import KB
    from repro.core import Cluster
    from repro.scrub import Scrubber

    if args.nodes < 2:
        print("error: metrics needs --nodes >= 2", file=sys.stderr)
        return 2
    cfg = ClusterConfig(seed=args.seed).with_store(capacity_bytes=256 * MiB)
    cluster = Cluster(
        cfg,
        n_nodes=args.nodes,
        check_remote_uniqueness=False,
        enable_lookup_cache=True,
        metrics=True,
    )
    producer = cluster.client("node0")
    consumer = cluster.client(f"node{args.nodes - 1}")
    ids = cluster.new_object_ids(args.objects)
    payload = bytes(args.size_kb * KB)
    for oid in ids:
        producer.put_bytes(oid, payload, replicas=2)
    for _ in range(args.rounds):
        bufs = consumer.get(ids)
        for buf in bufs:
            buf.charge_sequential_read()
        for oid in ids:
            consumer.release(oid)
        cluster.health_tick()
        cluster.clock.advance(5_000_000)
    # One anti-entropy pass so scrub counters appear in the scrape.
    Scrubber(cluster.store("node0"), replication_target=1).run()
    telemetry = cluster.metrics()
    if args.out is not None:
        if args.json:
            text = json.dumps(telemetry.snapshot(), indent=2, sort_keys=True)
        else:
            text = telemetry.prometheus()
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"wrote {args.out}")
        return 0
    if args.json:
        print(json.dumps(telemetry.snapshot(), indent=2, sort_keys=True))
        return 0
    print(telemetry.prometheus())
    print(f"top {args.top} latency families (by total simulated time):")
    print(telemetry.format_top(args.top))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.common.units import KB
    from repro.core import Cluster
    from repro.obs.spans import SpanConfig

    if args.nodes < 2:
        print("error: trace needs --nodes >= 2", file=sys.stderr)
        return 2
    cfg = ClusterConfig(seed=args.seed).with_store(capacity_bytes=256 * MiB)
    cluster = Cluster(
        cfg,
        n_nodes=args.nodes,
        check_remote_uniqueness=False,
        enable_lookup_cache=True,
        tracing=SpanConfig(sample_rate=args.sample_rate),
    )
    producer = cluster.client("node0")
    consumer = cluster.client(f"node{args.nodes - 1}")
    ids = cluster.new_object_ids(args.objects)
    payload = bytes(args.size_kb * KB)
    for oid in ids:
        producer.put_bytes(oid, payload, replicas=min(2, args.nodes))
    for _ in range(args.rounds):
        bufs = consumer.get(ids)
        for buf in bufs:
            buf.charge_sequential_read()
        for oid in ids:
            consumer.release(oid)

    sink = cluster.spans
    sink.write_chrome_trace(args.out)
    stats = sink.sampling_stats()
    traces = sink.traces()
    print(
        f"traced {stats['roots']} root operation(s): kept "
        f"{stats['kept_head']} head + {stats['kept_tail']} tail, "
        f"{stats['discarded']} discarded (sample rate {stats['sample_rate']:g})"
    )
    # Critical-path attribution over the retained traces: every root's
    # observed latency decomposed into components that sum ns-exactly.
    by_name: dict[str, dict] = {}
    exact = True
    for trace in traces:
        slot = by_name.setdefault(
            trace["name"], {"ops": 0, "observed_ns": 0, "components_ns": {}}
        )
        slot["ops"] += 1
        slot["observed_ns"] += trace["duration_ns"]
        for component, ns in trace["components_ns"].items():
            slot["components_ns"][component] = (
                slot["components_ns"].get(component, 0) + ns
            )
        if sum(trace["components_ns"].values()) != trace["duration_ns"]:
            exact = False
    print(f"latency attribution (components sum exactly: {exact}):")
    for name, slot in sorted(by_name.items()):
        parts = " ".join(
            f"{component}={ns / 1e6:.3f}ms"
            for component, ns in sorted(slot["components_ns"].items())
            if ns
        )
        print(
            f"  {name:<10} x{slot['ops']:<4} "
            f"{slot['observed_ns'] / 1e6:9.3f} ms = {parts}"
        )
    print(f"wrote Chrome trace to {args.out} "
          f"(open in chrome://tracing or Perfetto)")
    if args.snapshot is not None:
        import json

        with open(args.snapshot, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(sink.snapshot(), indent=2, sort_keys=True))
            fh.write("\n")
        print(f"wrote JSON snapshot to {args.snapshot}")
    if args.flight is not None:
        sink.write_flight(args.flight)
        print(f"wrote flight recorder to {args.flight}")
    return 0 if exact else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.chaos import FaultPlan, NodeCrash
    from repro.common.errors import (
        LinkPartitionedError,
        ObjectNotFoundError,
        ObjectUnavailableError,
        RpcStatusError,
    )
    from repro.common.units import KB
    from repro.core import Cluster
    from repro.obs.spans import SpanConfig

    if args.nodes < 2:
        print("error: chaos needs --nodes >= 2", file=sys.stderr)
        return 2
    if not 1 <= args.replicas <= args.nodes:
        print(
            f"error: --replicas must be in [1, --nodes]; "
            f"{args.replicas} copies do not fit on {args.nodes} node(s)",
            file=sys.stderr,
        )
        return 2
    horizon_ns = int(args.horizon_ms * 1e6)
    node_names = [f"node{i}" for i in range(args.nodes)]
    if args.crash_at_ms is not None:
        plan = FaultPlan(
            [NodeCrash(at_ns=int(args.crash_at_ms * 1e6), node="node0")]
        )
    else:
        plan = FaultPlan.random(
            args.seed, node_names, horizon_ns, n_events=args.events
        )
    print("fault plan:")
    for line in plan.describe().splitlines():
        print(f"  {line}")

    def run_once() -> tuple[list[str], dict[str, int]]:
        cfg = ClusterConfig(seed=args.seed).with_store(capacity_bytes=256 * MiB)
        if args.deadline_ms:
            cfg = dataclasses.replace(
                cfg,
                rpc=dataclasses.replace(
                    cfg.rpc, default_deadline_ns=args.deadline_ms * 1e6
                ),
            )
        cluster = Cluster(
            cfg,
            n_nodes=args.nodes,
            check_remote_uniqueness=False,
            fault_plan=plan,
            metrics=True,
            # Flight-recorder-only tracing: no sampled traces, just the
            # bounded per-node span rings — the black box a determinism
            # diff ships with. Tracing never advances the clock, so the
            # timeline/outcome comparison below is unaffected.
            tracing=SpanConfig(sample_rate=0.0, max_traces=0),
        )
        producer = cluster.client("node0")
        consumer = cluster.client(f"node{args.nodes - 1}")
        ids = cluster.new_object_ids(args.objects)
        payload = bytes(args.size_kb * KB)
        for oid in ids:
            producer.put_bytes(oid, payload, replicas=args.replicas)
        outcomes = {"ok": 0, "unavailable": 0, "failed": 0}
        rounds = 5
        for _ in range(rounds):
            for oid in ids:
                try:
                    buf = consumer.get([oid])[0]
                    buf.charge_sequential_read()
                    consumer.release(oid)
                    outcomes["ok"] += 1
                except ObjectUnavailableError:
                    outcomes["unavailable"] += 1
                except (ObjectNotFoundError, RpcStatusError, LinkPartitionedError):
                    outcomes["failed"] += 1
            cluster.health_tick()
            cluster.clock.advance(horizon_ns / rounds)
        timeline = cluster.chaos.timeline()
        snapshot = cluster.health_snapshot()
        # Fault drills must be observable in the scrape, not just logged:
        # surface breaker trips and deadline expiries from the telemetry.
        scrape = cluster.metrics().prometheus()
        telemetry_lines = [
            line
            for line in scrape.splitlines()
            if line.startswith(
                ("repro_rpc_breaker_opens", "repro_rpc_client_deadline_exceeded")
            )
        ]
        flight = cluster.spans.flight_dump()
        return timeline, outcomes, snapshot, telemetry_lines, flight

    timeline, outcomes, snapshot, telemetry_lines, flight = run_once()
    timeline2, outcomes2, _, telemetry_lines2, flight2 = run_once()
    print("applied fault timeline:")
    for line in timeline:
        print(f"  {line}")
    print(f"reads: {outcomes['ok']} ok, {outcomes['unavailable']} unavailable, "
          f"{outcomes['failed']} failed "
          f"(replicas={args.replicas}, deadline={args.deadline_ms} ms)")
    print("peer health at end of run:")
    for node, peers in sorted(snapshot.items()):
        for peer, view in sorted(peers.items()):
            print(f"  {node} -> {peer}: breaker={view['breaker']} "
                  f"suspect={view['suspect']} "
                  f"missed={view['heartbeats_missed']}/{view['heartbeats_sent']}")
    if telemetry_lines:
        print("telemetry (metrics scrape excerpts):")
        for line in telemetry_lines:
            print(f"  {line}")
    deterministic = (
        timeline == timeline2
        and outcomes == outcomes2
        and telemetry_lines == telemetry_lines2
        and flight == flight2
    )
    print(f"replay with same seed identical: {'yes' if deterministic else 'NO'}")
    if not deterministic:
        # A determinism diff is exactly the failure the flight recorder
        # exists for: dump the per-node span rings of both runs so the
        # divergence can be localized to the first differing span.
        import json

        for label, dump in (("run1", flight), ("run2", flight2)):
            path = f"{args.flight_prefix}_{label}.json"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(dump, indent=2, sort_keys=True))
                fh.write("\n")
            print(f"wrote flight recorder to {path}")
    return 0 if deterministic else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.chaos import BitFlip, FaultPlan, NodeCrash
    from repro.common.errors import (
        ObjectNotFoundError,
        ObjectUnavailableError,
        RpcStatusError,
    )
    from repro.common.units import KB
    from repro.core import Cluster
    from repro.scrub import Scrubber

    if args.nodes < 2:
        print("error: recover needs --nodes >= 2", file=sys.stderr)
        return 2
    if not 2 <= args.replicas <= args.nodes:
        print(
            f"error: --replicas must be in [2, --nodes]; recovery without "
            f"a replica cannot repair corruption ({args.replicas} given)",
            file=sys.stderr,
        )
        return 2

    def run_once() -> tuple[list[str], dict[str, int]]:
        cfg = ClusterConfig(seed=args.seed).with_store(capacity_bytes=256 * MiB)
        cluster = Cluster(
            cfg,
            n_nodes=args.nodes,
            check_remote_uniqueness=False,
            enable_lookup_cache=True,
            fault_plan=FaultPlan(),  # events are injected once offsets exist
        )
        producer = cluster.client("node0")
        consumer = cluster.client(f"node{args.nodes - 1}")
        ids = cluster.new_object_ids(args.objects)
        payload = bytes(args.size_kb * KB)
        for oid in ids:
            producer.put_bytes(oid, payload, replicas=args.replicas)
        # Mid-workload faults: node0's store process dies and — the part a
        # crash alone cannot model — a bit silently flips inside the first
        # object's payload bytes in node0's surviving exposed region.
        victim = ids[0]
        descriptor = cluster.store("node0").lookup_descriptor(victim)
        fault_ns = cluster.clock.now_ns + 1_000_000
        cluster.chaos.inject(
            NodeCrash(at_ns=fault_ns, node="node0"),
            BitFlip(
                at_ns=fault_ns,
                node="node0",
                offset=descriptor["offset"] + min(11, descriptor["data_size"] - 1),
                bit=5,
            ),
        )
        cluster.clock.advance(2_000_000)
        cluster.chaos.poll()
        # Degraded reads: node0's metadata plane is gone; lookups fail over
        # to replica holders.
        outcomes = {"ok": 0, "unavailable": 0, "failed": 0}
        for oid in ids:
            try:
                buf = consumer.get([oid])[0]
                buf.charge_sequential_read()
                consumer.release(oid)
                outcomes["ok"] += 1
            except ObjectUnavailableError:
                outcomes["unavailable"] += 1
            except (ObjectNotFoundError, RpcStatusError):
                outcomes["failed"] += 1
        # Restart: a fresh store over the same region rebuilds its table and
        # free list from the sealed-object headers; the bitflipped object is
        # recovered *quarantined* (its payload fails the seal-time CRC).
        report = cluster.recover_node("node0")
        # Anti-entropy: the scrubber repairs the quarantined object from a
        # replica holder and restores the replication factor.
        scrub = Scrubber(
            cluster.store("node0"), replication_target=args.replicas - 1
        ).run()
        repaired = cluster.client("node0", "verifier").get_bytes(victim)
        intact = bytes(repaired) == payload
        trace = list(cluster.chaos.timeline())
        trace.append("recovery: " + report.describe())
        trace.extend("scrub: " + line for line in scrub.describe().splitlines())
        trace.append(f"victim payload intact after repair: {intact}")
        return trace, outcomes

    trace, outcomes = run_once()
    trace2, outcomes2 = run_once()
    print("crash -> recover -> scrub timeline:")
    for line in trace:
        print(f"  {line}")
    print(
        f"degraded reads: {outcomes['ok']} ok, "
        f"{outcomes['unavailable']} unavailable, {outcomes['failed']} failed "
        f"(replicas={args.replicas})"
    )
    deterministic = trace == trace2 and outcomes == outcomes2
    print(f"replay with same seed identical: {'yes' if deterministic else 'NO'}")
    intact = any("intact after repair: True" in line for line in trace)
    return 0 if deterministic and intact else 1


def _cmd_topology(args: argparse.Namespace) -> int:
    import json

    from repro import Cluster

    if args.nodes < 2:
        print("topology demo needs at least 2 nodes", file=sys.stderr)
        return 2
    names = [f"node{i}" for i in range(args.nodes)]
    cluster = Cluster(
        ClusterConfig(seed=args.seed), node_names=names, placement=True
    )
    client = cluster.client("node0")
    payload_size = args.size_kb * 1024
    ids = cluster.new_object_ids(args.objects)
    client.put_batch([(oid, bytes(payload_size)) for oid in ids])

    drained = None
    if args.drain:
        if args.drain not in names:
            print(f"unknown node {args.drain!r}; have {names}", file=sys.stderr)
            return 2
        cluster.drain_node(args.drain)
        report = cluster.rebalancer.run_until_converged()
        drained = {"node": args.drain, "rebalance": report.describe()}

    snap = cluster.topology_snapshot()
    if args.json:
        if drained is not None:
            snap["drained"] = drained
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0

    print(
        f"topology @ epoch {snap['epoch']} — {len(snap['nodes'])} member(s), "
        f"ring imbalance {snap['imbalance']:.3f}, "
        f"misplaced {snap['misplaced_bytes']} B"
    )
    header = (
        f"{'node':<10} {'status':<10} {'weight':>6} {'vnodes':>6} "
        f"{'share':>7} {'util':>6} {'objects':>8} {'used':>12}"
    )
    print(header)
    print("-" * len(header))
    for name, info in sorted(snap["nodes"].items()):
        print(
            f"{name:<10} {info['status']:<10} {info['weight']:>6.2f} "
            f"{info['vnodes']:>6d} {info['ownership_share']:>6.1%} "
            f"{info['utilization']:>5.1%} {info['objects']:>8d} "
            f"{info['used_bytes']:>10d} B"
        )
    if drained is not None:
        print(f"drained {drained['node']}: {drained['rebalance']}")
    return 0


def _cmd_simtest(args: argparse.Namespace) -> int:
    import json

    from repro.simtest.harness import PROFILES, replay_trace, run_seed, run_seeds
    from repro.simtest.selfcheck import run_selfcheck
    from repro.simtest.shrink import emit_pytest, format_trace, shrink_result

    def emit_reproducer(report) -> None:
        """Write the shrunk pytest reproducer plus the flight recorder.

        The minimal trace is replayed once more and the per-node span
        rings of the (still-failing) run land next to the reproducer —
        the crash dump that shows what every node was doing when the
        oracle fired. The replay is deterministic, so the dump is
        byte-identical every time this trace is replayed.
        """
        with open(args.emit, "w", encoding="utf-8") as fh:
            fh.write(emit_pytest(report, expect="clean"))
        print(f"wrote reproducer to {args.emit}")
        replay = replay_trace(report.to_trace())
        if replay.flight is None:
            return
        flight_path = f"{args.emit}.flight.json"
        with open(flight_path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(replay.flight, indent=2, sort_keys=True))
            fh.write("\n")
        print(f"wrote flight recorder to {flight_path}")

    if args.self_check:
        report = run_selfcheck(mutation=args.mutation or "skip_retire")
        print(report.summary())
        if not report.caught:
            return 1
        print(format_trace(report.shrink))
        if args.emit:
            with open(args.emit, "w", encoding="utf-8") as fh:
                fh.write(report.pytest_source)
            print(f"wrote reproducer to {args.emit}")
        return 0 if len(report.shrink.minimal) <= 25 else 1

    n_seeds, n_ops, profile = PROFILES[args.profile]
    if args.seeds is not None:
        n_seeds = args.seeds
    if args.ops is not None:
        n_ops = args.ops

    if args.seed is not None:
        # Single-seed mode: run twice, require byte-identical traces.
        first = run_seed(args.seed, n_ops, mutation=args.mutation,
                         profile=profile)
        second = run_seed(args.seed, n_ops, mutation=args.mutation,
                          profile=profile)
        identical = first.trace_text() == second.trace_text()
        print(first.trace_text(), end="")
        print(f"replay byte-identical: {identical}")
        print(first.report())
        if not first.ok and args.shrink:
            report = shrink_result(first)
            print(format_trace(report))
            if args.emit:
                emit_reproducer(report)
        return 0 if first.ok and identical else 1

    def progress(seed: int, result) -> None:
        if (seed - args.base_seed + 1) % 50 == 0:
            print(
                f"  ... {seed - args.base_seed + 1}/{n_seeds} seeds "
                f"({'clean' if result.ok else 'FAILING'})",
                file=sys.stderr,
            )

    sweep = run_seeds(
        n_seeds,
        n_ops,
        base_seed=args.base_seed,
        mutation=args.mutation,
        profile=profile,
        progress=progress,
    )
    print(sweep.summary())
    if not sweep.ok and args.shrink:
        report = shrink_result(sweep.failures[0])
        print(format_trace(report))
        if args.emit:
            emit_reproducer(report)
    return 0 if sweep.ok else 1


def _cmd_workload(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.workload import load_scenario, run_scenario
    from repro.workload.report import (
        bench_artifact_name,
        dumps_bench,
        trace_artifact_name,
    )
    from repro.workload.scenario import ScenarioError

    if args.list:
        directory = Path(args.dir)
        paths = sorted(
            list(directory.glob("*.json")) + list(directory.glob("*.toml"))
        )
        if not paths:
            print(f"no scenario files under {directory}", file=sys.stderr)
            return 1
        for path in paths:
            try:
                scenario = load_scenario(path)
            except ScenarioError as exc:
                print(f"{path.name}: INVALID ({exc})")
                continue
            arrival = scenario.traffic.arrival
            loop = (
                f"open {arrival.base_rate_ops_per_s:g}/s"
                if arrival.mode == "open"
                else f"closed x{arrival.clients}"
            )
            print(
                f"{scenario.name:<24} {scenario.traffic.ops:>6} ops  "
                f"{scenario.cluster.n_nodes} nodes  "
                f"{len(scenario.tenants)} tenant(s)  "
                f"{scenario.traffic.popularity.model:<8} {loop:<14} "
                f"- {scenario.description}"
            )
        return 0

    if args.scenario is None:
        print("error: give --scenario PATH (or --list)", file=sys.stderr)
        return 2
    try:
        scenario = load_scenario(args.scenario)
    except (ScenarioError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace and (scenario.tracing is None or not scenario.tracing.enabled):
        import dataclasses

        from repro.workload.scenario import TracingSpec

        scenario = dataclasses.replace(scenario, tracing=TracingSpec())
    seed = args.seed if args.seed is not None else scenario.seed

    def run_once() -> tuple[str, str | None]:
        result, payload = run_scenario(scenario, seed)
        trace_text = None
        if args.trace:
            trace_text = (
                json.dumps(result.spans.to_chrome_trace(), sort_keys=True) + "\n"
            )
        return dumps_bench(payload), trace_text

    text, trace_text = run_once()
    if args.twice:
        second, trace_second = run_once()
        if text != second or trace_text != trace_second:
            print("DETERMINISM FAILURE: two runs produced different "
                  "artifacts", file=sys.stderr)
            return 1
    out_path = Path(args.out) / bench_artifact_name(scenario.name)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(text, encoding="utf-8")
    trace_path = None
    if trace_text is not None:
        trace_path = Path(args.out) / trace_artifact_name(scenario.name)
        trace_path.write_text(trace_text, encoding="utf-8")
    payload = json.loads(text)
    sim = payload["sim"]
    if args.json:
        print(text, end="")
    else:
        overall = payload["latency_ns"]["overall"]
        print(
            f"{scenario.name}: {sim['ops_executed']}/{sim['ops_generated']} "
            f"ops in {sim['duration_ns'] / 1e6:.2f} sim-ms "
            f"({sim['ops_per_s']:g} ops/s)"
        )
        if overall.get("count"):
            print(
                f"  latency p50={overall['p50_ns'] / 1e6:.3f} ms "
                f"p95={overall['p95_ns'] / 1e6:.3f} ms "
                f"p99={overall['p99_ns'] / 1e6:.3f} ms"
            )
        for tenant, acct in sorted(payload["tenants"].items()):
            print(
                f"  tenant {tenant}: admitted={acct['admitted']} "
                f"rejected={acct['rejected']} "
                f"(rate {acct['rejection_rate']:.1%}) "
                f"stored={acct['stored_bytes']} B"
            )
        overload = payload.get("overload")
        if overload is not None:
            queue = overload["queue_depth"]
            depth = (
                f"queue p99={queue['p99']}" if queue.get("count") else "queue idle"
            )
            print(
                f"  overload: goodput={overload['goodput_ops_per_s']:g} ops/s "
                f"(in-deadline {overload['in_deadline_ops']}) "
                f"shed rate {overload['shed_rate']:.1%} {depth}"
            )
        attribution = payload.get("latency_attribution")
        if attribution is not None:
            sampling = attribution["sampling"]
            print(
                f"  attribution: exact={attribution['exact']} "
                f"(roots {sampling.get('roots', 0)}, "
                f"kept {sampling.get('kept_head', 0)} head "
                f"+ {sampling.get('kept_tail', 0)} tail)"
            )
            for kind, slot in sorted(attribution["by_kind"].items()):
                parts = " ".join(
                    f"{name}={ns / 1e6:.2f}ms"
                    for name, ns in sorted(slot["components_ns"].items())
                    if ns
                )
                print(
                    f"    {kind:<7} x{slot['ops']:<5} "
                    f"{slot['observed_ns'] / 1e6:8.2f} ms = {parts}"
                )
        if args.twice:
            print("  run-twice artifact byte-identical: yes")
    print(f"wrote {out_path}")
    if trace_path is not None:
        print(f"wrote {trace_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-disaggregated in-memory object store (IPDPS'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and calibrated constants")

    demo = sub.add_parser("demo", help="quickstart flow on a fresh cluster")
    demo.add_argument("--nodes", type=int, default=2)
    demo.add_argument("--size-mib", type=int, default=32)
    demo.add_argument("--trace", metavar="PATH", default=None,
                      help="write a Chrome trace of the run to PATH")

    bench = sub.add_parser("bench", help="Table I microbenchmarks (Fig 6/7)")
    bench.add_argument("--spec", type=int, choices=range(1, 7), default=None,
                       help="run one benchmark spec (default: all six)")
    bench.add_argument("--reps", type=int, default=20)

    ablation = sub.add_parser("ablation", help="run an ablation study")
    ablation.add_argument("kind", choices=("allocator", "sharing", "cache"))

    metrics = sub.add_parser(
        "metrics",
        help="run a replicated workload and print the Prometheus scrape "
             "plus top-k latency families",
    )
    metrics.add_argument("--nodes", type=int, default=3)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--objects", type=int, default=20)
    metrics.add_argument("--size-kb", type=int, default=100)
    metrics.add_argument("--rounds", type=int, default=5)
    metrics.add_argument("--top", type=int, default=8,
                         help="latency families to show in the summary table")
    metrics.add_argument("--json", action="store_true",
                         help="print the JSON snapshot instead of the scrape")
    metrics.add_argument("--out", metavar="PATH", default=None,
                         help="write the scrape (or --json snapshot) to PATH "
                              "instead of stdout")

    trace = sub.add_parser(
        "trace",
        help="run a replicated workload with span tracing and emit the "
             "Chrome trace plus critical-path latency attribution",
    )
    trace.add_argument("--nodes", type=int, default=3)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--objects", type=int, default=12)
    trace.add_argument("--size-kb", type=int, default=100)
    trace.add_argument("--rounds", type=int, default=3)
    trace.add_argument("--sample-rate", type=float, default=1.0,
                       help="head-sampling probability for retained traces "
                            "(errors/slow ops are tail-kept regardless)")
    trace.add_argument("--out", metavar="PATH", default="TRACE_demo.json",
                       help="Chrome trace-event output path")
    trace.add_argument("--snapshot", metavar="PATH", default=None,
                       help="also write the JSON span snapshot to PATH")
    trace.add_argument("--flight", metavar="PATH", default=None,
                       help="also dump the per-node flight-recorder rings "
                            "to PATH")

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection scenario with resilience stats"
    )
    chaos.add_argument("--nodes", type=int, default=2)
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-plan and cluster seed (same seed = same run)")
    chaos.add_argument("--events", type=int, default=4,
                       help="random fault events to schedule")
    chaos.add_argument("--horizon-ms", type=float, default=50.0,
                       help="window the fault plan spans, in simulated ms")
    chaos.add_argument("--crash-at-ms", type=float, default=None,
                       help="replace the random plan with one node0 crash at T ms")
    chaos.add_argument("--objects", type=int, default=20)
    chaos.add_argument("--size-kb", type=int, default=100)
    chaos.add_argument("--replicas", type=int, default=2,
                       help="copies per object (1 = no failover)")
    chaos.add_argument("--deadline-ms", type=float, default=20.0,
                       help="per-call RPC deadline (0 = none)")
    chaos.add_argument("--flight-prefix", metavar="PREFIX",
                       default="FLIGHT_chaos",
                       help="on a determinism diff, dump both runs' "
                            "flight recorders to PREFIX_run{1,2}.json")

    recover = sub.add_parser(
        "recover",
        help="crash + bitflip -> header-scan recovery -> anti-entropy scrub",
    )
    recover.add_argument("--nodes", type=int, default=3)
    recover.add_argument("--seed", type=int, default=7,
                         help="cluster seed (same seed = same run)")
    recover.add_argument("--objects", type=int, default=10)
    recover.add_argument("--size-kb", type=int, default=100)
    recover.add_argument("--replicas", type=int, default=2,
                         help="copies per object (>= 2 so repair has a source)")

    topology = sub.add_parser(
        "topology",
        help="placement demo: ring layout, ownership shares, utilization "
             "and the current epoch on an elastic cluster",
    )
    topology.add_argument("--nodes", type=int, default=4)
    topology.add_argument("--seed", type=int, default=7,
                          help="cluster seed (same seed = same layout)")
    topology.add_argument("--objects", type=int, default=64)
    topology.add_argument("--size-kb", type=int, default=64)
    topology.add_argument("--drain", metavar="NODE", default=None,
                          help="drain NODE and rebalance before printing")
    topology.add_argument("--json", action="store_true",
                          help="print the snapshot as JSON")

    simtest = sub.add_parser(
        "simtest",
        help="deterministic simulation testing: model-checked cluster "
             "fuzzing with trace shrinking",
    )
    simtest.add_argument("--seed", type=int, default=None,
                         help="run one seed twice and require byte-identical "
                              "traces (default: sweep mode)")
    simtest.add_argument("--seeds", type=int, default=None,
                         help="number of seeds to sweep (overrides --profile)")
    simtest.add_argument("--ops", type=int, default=None,
                         help="ops per seed (overrides --profile)")
    simtest.add_argument("--base-seed", type=int, default=0,
                         help="first seed of the sweep")
    simtest.add_argument("--profile",
                         choices=("smoke", "nightly", "concurrency"),
                         default="smoke",
                         help="seed budget preset: smoke=100x200, "
                              "nightly=500x300, concurrency=300x200 on the "
                              "async event-loop RPC workload")
    simtest.add_argument("--shrink", action="store_true",
                         help="delta-debug the first failing trace to a "
                              "minimal reproducer")
    simtest.add_argument("--self-check", action="store_true",
                         help="plant a known mutation and assert the harness "
                              "catches and shrinks it")
    simtest.add_argument("--mutation", default=None,
                         help="apply a named mutation during the run "
                              "(self-check default: skip_retire)")
    simtest.add_argument("--emit", metavar="PATH", default=None,
                         help="write the shrunk reproducer as a pytest file")

    workload = sub.add_parser(
        "workload",
        help="run a scenario file against a real cluster and emit the "
             "standing BENCH_workload_<scenario>.json artifact",
    )
    workload.add_argument("--scenario", metavar="PATH", default=None,
                          help="scenario file (.json, or .toml on "
                               "Python >= 3.11)")
    workload.add_argument("--seed", type=int, default=None,
                          help="override the scenario's seed")
    workload.add_argument("--out", metavar="DIR", default=".",
                          help="directory for the BENCH artifact "
                               "(default: cwd)")
    workload.add_argument("--twice", action="store_true",
                          help="run twice and fail unless the artifact is "
                               "byte-identical")
    workload.add_argument("--trace", action="store_true",
                          help="force span tracing on and write the "
                               "TRACE_workload_<scenario>.json Chrome trace "
                               "next to the BENCH artifact")
    workload.add_argument("--json", action="store_true",
                          help="print the full BENCH payload instead of the "
                               "summary")
    workload.add_argument("--list", action="store_true",
                          help="list scenario files under --dir instead of "
                               "running")
    workload.add_argument("--dir", metavar="DIR",
                          default="benchmarks/scenarios",
                          help="scenario directory for --list")

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "demo": _cmd_demo,
    "bench": _cmd_bench,
    "ablation": _cmd_ablation,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "chaos": _cmd_chaos,
    "recover": _cmd_recover,
    "topology": _cmd_topology,
    "simtest": _cmd_simtest,
    "workload": _cmd_workload,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
