"""Eviction policy.

Plasma evicts least-recently-used *sealed, unreferenced* objects when an
allocation cannot be satisfied. The paper leans on exactly this behaviour —
"In-use objects will not be evicted, because clients might still be reading
from memory and evicting the objects would likely corrupt their data"
(§IV-A2) — and identifies its distributed blind spot (remote clients' usage
is invisible), which the :mod:`repro.core.refshare` extension closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import ObjectID
from repro.plasma.entry import ObjectEntry
from repro.plasma.table import ObjectTable


@dataclass(frozen=True)
class EvictionDecision:
    """Which objects to evict and how many bytes that frees."""

    victims: list[ObjectEntry] = field(default_factory=list)
    freed_bytes: int = 0

    @property
    def victim_ids(self) -> list[ObjectID]:
        return [v.object_id for v in self.victims]


class EvictionPolicy:
    """Base batch-eviction policy.

    ``batch_fraction`` mirrors Plasma's behaviour of freeing a chunk of
    capacity per round rather than the bare minimum, amortising the scan.
    Subclasses choose the victim *ordering*; the safety rule (only sealed,
    unreferenced objects) is enforced by the table's candidate listing and
    is not a policy decision.
    """

    name = "base"

    def __init__(self, capacity_bytes: int, batch_fraction: float = 0.2):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError("batch_fraction must be in (0, 1]")
        self._capacity = capacity_bytes
        self._batch = batch_fraction

    def order(self, candidates: list[ObjectEntry]) -> list[ObjectEntry]:
        """Victim ordering — override per policy."""
        raise NotImplementedError

    def plan(self, table: ObjectTable, required_bytes: int) -> EvictionDecision:
        """Choose victims freeing at least *required_bytes* (or as close as
        the evictable set allows), rounded up to the batch size."""
        if required_bytes <= 0:
            raise ValueError("required_bytes must be positive")
        target = max(required_bytes, int(self._capacity * self._batch))
        victims: list[ObjectEntry] = []
        freed = 0
        for entry in self.order(table.eviction_candidates()):
            if freed >= target:
                break
            victims.append(entry)
            freed += entry.allocation.padded_size
        # If freed < required_bytes, not enough evictable bytes exist for
        # the request itself; report what is achievable and let the store
        # decide whether to fail the create.
        return EvictionDecision(victims=victims, freed_bytes=freed)


class LruEvictionPolicy(EvictionPolicy):
    """Least-recently-used first — Plasma's policy and the store default."""

    name = "lru"

    def order(self, candidates: list[ObjectEntry]) -> list[ObjectEntry]:
        # eviction_candidates() already yields LRU order.
        return candidates


class FifoEvictionPolicy(EvictionPolicy):
    """Oldest object first, regardless of access recency — cheaper
    book-keeping (no touch tracking needed), worse for hot working sets."""

    name = "fifo"

    def order(self, candidates: list[ObjectEntry]) -> list[ObjectEntry]:
        return sorted(candidates, key=lambda e: (e.created_at_ns, e.object_id))


class LargestFirstEvictionPolicy(EvictionPolicy):
    """Largest object first — frees the target in the fewest evictions,
    sacrificing big objects to keep many small ones resident."""

    name = "largest_first"

    def order(self, candidates: list[ObjectEntry]) -> list[ObjectEntry]:
        return sorted(
            candidates, key=lambda e: (-e.allocation.padded_size, e.object_id)
        )


class HeatAwareEvictionPolicy(EvictionPolicy):
    """Coldest object first, by a tiering heat probe.

    When the tiering plane is attached (:mod:`repro.tier`), the store
    upgrades its policy to this one so capacity pressure sacrifices the
    objects the promotion/demotion engine already considers cold — the
    same ordering a demotion sweep would choose, keeping eviction and
    demotion from fighting over victims. Python's stable sort preserves
    the table's LRU order among equally-cold objects, and with no probe
    attached the policy degrades to exactly LRU.
    """

    name = "heat_aware"

    def __init__(self, capacity_bytes: int, batch_fraction: float = 0.2):
        super().__init__(capacity_bytes, batch_fraction)
        # ObjectID -> float, typically a tier HeatTracker's ``heat``;
        # settable after construction because the config path builds
        # policies from (name, capacity, fraction) alone.
        self.heat_probe = None

    def order(self, candidates: list[ObjectEntry]) -> list[ObjectEntry]:
        probe = self.heat_probe
        if probe is None:
            return candidates
        return sorted(candidates, key=lambda e: probe(e.object_id))


EVICTION_POLICIES = {
    cls.name: cls
    for cls in (
        LruEvictionPolicy,
        FifoEvictionPolicy,
        LargestFirstEvictionPolicy,
        HeatAwareEvictionPolicy,
    )
}


def create_eviction_policy(
    name: str, capacity_bytes: int, batch_fraction: float = 0.2
) -> EvictionPolicy:
    """Instantiate a policy by config name ('lru', 'fifo', 'largest_first')."""
    try:
        cls = EVICTION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; choose one of "
            f"{sorted(EVICTION_POLICIES)}"
        ) from None
    return cls(capacity_bytes, batch_fraction)
