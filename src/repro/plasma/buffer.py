"""Object buffers: the handles clients read and write.

A buffer wraps a *source* — either the node's own memory (timed through the
endpoint's cache-aware cost model) or a remote disaggregated window (timed
through the ThymesisFlow link). The distinction is invisible to
applications, which is the framework's point: "the distributed nature can
largely remain hidden to Plasma clients" (paper §IV-A2).

Reading a sealed buffer end-to-end (:meth:`PlasmaBuffer.read_all`,
:meth:`read_into`) is exactly the operation Figure 7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.checksum import crc32c
from repro.common.errors import (
    ObjectCorruptedError,
    ObjectSealedError,
    ObjectStoreError,
    StaleDescriptorError,
)
from repro.common.ids import ObjectID
from repro.memory.layout import ObjectHeader
from repro.thymesisflow.aperture import RemoteRegion
from repro.thymesisflow.endpoint import ThymesisEndpoint


class LocalBufferSource:
    """Buffer bytes living in this node's own memory."""

    def __init__(self, endpoint: ThymesisEndpoint, abs_offset: int):
        self._ep = endpoint
        self._abs = abs_offset

    @property
    def location(self) -> str:
        return f"local:{self._ep.name}"

    @property
    def is_remote(self) -> bool:
        return False

    def view(self, offset: int, size: int) -> memoryview:
        return self._ep.local_view(self._abs + offset, size)

    def timed_read(self, offset: int, size: int, out=None) -> float:
        return self._ep.local_read(self._abs + offset, size, out=out)

    def timed_write(self, offset: int, data) -> float:
        return self._ep.local_write(self._abs + offset, data)

    def charge_write(self, offset: int, size: int) -> float:
        return self._ep.charge_local_write(self._abs + offset, size)


@dataclass
class RemoteReadIntegrity:
    """What a validated fabric read checks against — the descriptor's view
    of the object, plus the hooks to recover from a stale descriptor.

    ``refresh`` is the one-shot re-lookup callback the owning store
    installs: it invalidates the stale cached descriptor, re-Lookups the
    id, and returns a fresh ``(remote_region, payload_offset, integrity)``
    triple (or None if the object is gone for real).
    """

    object_id: bytes  # expected raw 20-byte id
    generation: int  # expected header generation; 0 = unknown, skip check
    header_size: int
    payload_crc: int = 0
    verify_checksum: bool = False
    checksum_ns_per_byte: float = 0.0
    clock: object = None
    refresh: Callable[[], tuple | None] | None = None


class RemoteBufferSource:
    """Buffer bytes living in a remote node's disaggregated region,
    accessed through a mapped aperture.

    With an integrity context attached, every materialising read validates
    the object's in-region header (magic, id, generation, seal flag)
    *before* streaming the payload and re-checks the generation *after* —
    so delete/evict/realloc races at the home store surface as typed
    :class:`StaleDescriptorError` instead of silently reused bytes, with
    one transparent re-lookup-and-retry before the error escapes.
    """

    def __init__(
        self,
        remote: RemoteRegion,
        region_offset: int,
        integrity: RemoteReadIntegrity | None = None,
    ):
        self._remote = remote
        self._off = region_offset
        self._integrity = integrity

    @property
    def location(self) -> str:
        return f"remote:{self._remote.home_name}"

    @property
    def is_remote(self) -> bool:
        return True

    @property
    def integrity(self) -> RemoteReadIntegrity | None:
        return self._integrity

    def view(self, offset: int, size: int) -> memoryview:
        return self._remote.view(self._off + offset, size)

    def timed_read(self, offset: int, size: int, out=None) -> float:
        ig = self._integrity
        if out is None:
            # Charge-only mode (no bytes materialise, nothing to validate);
            # a validating reader still fetches the header with the stream.
            extra = ig.header_size if ig is not None else 0
            return self._remote.charge_read(size + extra)
        if ig is None:
            self._remote.read(self._off + offset, size, out=out)
            return 0.0
        try:
            self._validated_read(offset, size, out)
        except StaleDescriptorError:
            if ig.refresh is None:
                raise
            refreshed = ig.refresh()
            if refreshed is None:
                raise
            self._remote, self._off, self._integrity = refreshed
            # Second failure surfaces to the caller.
            self._validated_read(offset, size, out)
        return 0.0

    def _read_header(self) -> ObjectHeader | None:
        ig = self._integrity
        return ObjectHeader.unpack(
            self._remote.view(self._off - ig.header_size, ig.header_size)
        )

    def _validated_read(self, offset: int, size: int, out) -> None:
        ig = self._integrity
        oid = ObjectID(ig.object_id)
        header = self._read_header()
        if (
            header is None
            or header.object_id != ig.object_id
            or (ig.generation and header.generation != ig.generation)
            or not header.sealed
        ):
            raise StaleDescriptorError(
                f"in-region header for {oid!r} at {self.location} no longer "
                f"matches the descriptor (retired, reallocated, or unsealed)"
            )
        if header.quarantined:
            raise ObjectCorruptedError(
                f"{oid!r} is quarantined at its home store {self.location}"
            )
        mv = memoryview(out)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        mv[:size] = self._remote.view(self._off + offset, size)
        # One charged stream covers header + payload: the header rides the
        # same DMA burst, so validation costs bytes, not an extra round trip.
        self._remote.charge_read(size + ig.header_size)
        # Post-copy re-check: a retire that raced the copy bumped the
        # generation, which means the bytes just streamed may be torn.
        post = self._read_header()
        if (
            post is None
            or post.generation != header.generation
            or not post.sealed
        ):
            raise StaleDescriptorError(
                f"{oid!r} was retired at {self.location} mid-copy; "
                f"the streamed bytes cannot be trusted"
            )
        if ig.verify_checksum and offset == 0 and size == header.data_size:
            if ig.checksum_ns_per_byte and ig.clock is not None:
                ig.clock.advance(ig.checksum_ns_per_byte * size)
            if crc32c(mv[:size]) != header.payload_crc:
                raise ObjectCorruptedError(
                    f"{oid!r} failed its payload checksum after a fabric "
                    f"read from {self.location}"
                )

    def timed_write(self, offset: int, data) -> float:
        self._remote.write(self._off + offset, data)
        return 0.0

    def charge_write(self, offset: int, size: int) -> float:
        # Charge-only remote write: link time without byte movement (and
        # therefore without the Fig 3b staleness side effect).
        return self._remote.aperture.link.charge_stream_write(size)


class PlasmaBuffer:
    """A client's handle to one object's payload.

    Writable until the object is sealed (and only by its creator); read-only
    afterwards. Dropping the handle requires an explicit
    :meth:`~repro.plasma.client.PlasmaClient.release` — exactly Plasma's
    contract, and what the eviction policy's in-use pinning relies on.
    """

    def __init__(
        self,
        object_id: ObjectID,
        source: LocalBufferSource | RemoteBufferSource,
        size: int,
        sealed: bool,
        metadata: bytes = b"",
    ):
        self._object_id = object_id
        self._source = source
        self._size = size
        self._sealed = sealed
        self._metadata = bytes(metadata)
        self._released = False
        # (context, rid) stamped by the issuing client so deferred reads
        # attribute to the Get that produced this handle; None when the
        # cluster runs without correlation.
        self._correlation = None

    def _set_correlation(self, context, rid: str) -> None:
        self._correlation = (context, rid)

    # -- metadata ----------------------------------------------------------------

    @property
    def object_id(self) -> ObjectID:
        return self._object_id

    @property
    def nbytes(self) -> int:
        return self._size

    @property
    def metadata(self) -> bytes:
        """The application metadata attached at create time (Plasma lets a
        producer store a small schema/annotation blob beside the payload)."""
        return self._metadata

    @property
    def is_sealed(self) -> bool:
        return self._sealed

    @property
    def is_remote(self) -> bool:
        return self._source.is_remote

    @property
    def location(self) -> str:
        return self._source.location

    @property
    def is_released(self) -> bool:
        return self._released

    def _check_live(self) -> None:
        if self._released:
            raise ObjectStoreError(f"buffer for {self._object_id!r} was released")

    def _mark_sealed(self) -> None:
        self._sealed = True

    def _mark_released(self) -> None:
        self._released = True

    # -- reads (the Figure 7 path) --------------------------------------------------

    def _timed_read(self, offset: int, size: int, out) -> None:
        """A timed read, re-entering the originating request scope so the
        fabric spans it triggers carry the Get's correlation id."""
        if self._correlation is None:
            self._source.timed_read(offset, size, out=out)
            return
        context, rid = self._correlation
        context.begin(rid)
        try:
            self._source.timed_read(offset, size, out=out)
        finally:
            context.end()

    def read_all(self) -> bytes:
        """Sequentially read the whole payload (timed); returns the bytes."""
        self._check_live()
        out = bytearray(self._size)
        self._timed_read(0, self._size, out)
        return bytes(out)

    def read_into(self, out) -> None:
        """Timed sequential read into a caller buffer (no allocation)."""
        self._check_live()
        mv = memoryview(out)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        if len(mv) < self._size:
            raise ObjectStoreError(
                f"output buffer ({len(mv)} B) smaller than object ({self._size} B)"
            )
        self._timed_read(0, self._size, mv[: self._size])

    def charge_sequential_read(self) -> None:
        """Account the cost of reading the payload without materialising it
        (used by benchmarks that only need timing)."""
        self._check_live()
        self._timed_read(0, self._size, None)

    def view(self) -> memoryview:
        """Untimed zero-copy window (read-only once sealed)."""
        self._check_live()
        mv = self._source.view(0, self._size)
        return mv.toreadonly() if self._sealed else mv

    # -- writes (producer side, pre-seal) ----------------------------------------------

    def write(self, data, offset: int = 0) -> None:
        """Timed write of *data* at *offset*; only before sealing."""
        self._check_live()
        if self._sealed:
            raise ObjectSealedError(
                f"{self._object_id!r} is sealed and therefore immutable"
            )
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        if offset < 0 or offset + len(mv) > self._size:
            raise ObjectStoreError(
                f"write [{offset}, {offset + len(mv)}) exceeds the "
                f"{self._size}-byte object"
            )
        self._source.timed_write(offset, mv)

    def charge_sequential_write(self) -> None:
        """Account the cost of writing the whole payload without moving
        bytes (benchmark charge-only mode)."""
        self._check_live()
        if self._sealed:
            raise ObjectSealedError(
                f"{self._object_id!r} is sealed and therefore immutable"
            )
        self._source.charge_write(0, self._size)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        state = "sealed" if self._sealed else "unsealed"
        return (
            f"PlasmaBuffer({self._object_id!r}, {self._size} B, {state}, "
            f"{self._source.location})"
        )
