"""The mutex-guarded object identifier map.

Paper §IV-A2: "This multithreaded look-up introduces the need for
thread-safety mechanisms as both the Plasma store main thread and gRPC
server thread may attempt to access the local object identifier map
concurrently. Mutex functionality was built in to ensure thread-safety."

:class:`ObjectTable` is exactly that map: every mutation and lookup happens
under a real :class:`threading.RLock`, which both the store's client-facing
methods and its RPC service handlers acquire. Threaded integration tests
hammer the same lock from concurrent callers.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator

from repro.common.errors import (
    ObjectExistsError,
    ObjectInUseError,
    ObjectNotFoundError,
)
from repro.common.ids import ObjectID
from repro.plasma.entry import ObjectEntry, ObjectState


class ObjectTable:
    """id -> :class:`ObjectEntry`, with LRU access sequencing."""

    def __init__(self) -> None:
        self._entries: dict[ObjectID, ObjectEntry] = {}
        self._lock = threading.RLock()
        self._access_seq = 0

    @property
    def lock(self) -> threading.RLock:
        """The table mutex — shared with the store's RPC service."""
        return self._lock

    # -- mutation ------------------------------------------------------------

    def insert(self, entry: ObjectEntry) -> None:
        with self._lock:
            if entry.object_id in self._entries:
                raise ObjectExistsError(f"{entry.object_id!r} already in table")
            self._access_seq += 1
            entry.last_access_seq = self._access_seq
            self._entries[entry.object_id] = entry

    def remove(self, object_id: ObjectID) -> ObjectEntry:
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                raise ObjectNotFoundError(f"{object_id!r} not in table")
            if entry.total_refs > 0:
                raise ObjectInUseError(
                    f"{object_id!r} has {entry.total_refs} live references"
                )
            del self._entries[object_id]
            return entry

    def seal(self, object_id: ObjectID, sealed_at_ns: int) -> ObjectEntry:
        with self._lock:
            entry = self.get(object_id)
            if entry.is_sealed:
                from repro.common.errors import ObjectSealedError

                raise ObjectSealedError(f"{object_id!r} is already sealed")
            entry.state = ObjectState.SEALED
            entry.sealed_at_ns = sealed_at_ns
            return entry

    def add_ref(self, object_id: ObjectID, remote: bool = False) -> ObjectEntry:
        with self._lock:
            entry = self.get(object_id)
            if remote:
                entry.remote_ref_count += 1
            else:
                entry.ref_count += 1
            self._touch(entry)
            return entry

    def release_ref(self, object_id: ObjectID, remote: bool = False) -> ObjectEntry:
        with self._lock:
            entry = self.get(object_id)
            count = entry.remote_ref_count if remote else entry.ref_count
            if count <= 0:
                raise ObjectInUseError(
                    f"release of {object_id!r} without a matching reference"
                )
            if remote:
                entry.remote_ref_count -= 1
            else:
                entry.ref_count -= 1
            return entry

    def _touch(self, entry: ObjectEntry) -> None:
        self._access_seq += 1
        entry.last_access_seq = self._access_seq

    # -- queries ------------------------------------------------------------------

    def get(self, object_id: ObjectID) -> ObjectEntry:
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                raise ObjectNotFoundError(f"{object_id!r} not in table")
            return entry

    def lookup(self, object_id: ObjectID) -> ObjectEntry | None:
        with self._lock:
            return self._entries.get(object_id)

    def contains(self, object_id: ObjectID) -> bool:
        with self._lock:
            return object_id in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[ObjectEntry]:
        with self._lock:
            return iter(list(self._entries.values()))

    def ids(self) -> list[ObjectID]:
        with self._lock:
            return list(self._entries)

    def sealed_bytes(self) -> int:
        with self._lock:
            return sum(e.data_size for e in self._entries.values() if e.is_sealed)

    def eviction_candidates(self) -> list[ObjectEntry]:
        """Evictable entries, least recently accessed first."""
        with self._lock:
            cands = [e for e in self._entries.values() if e.evictable]
            cands.sort(key=lambda e: e.last_access_seq)
            return cands

    def for_each(self, fn: Callable[[ObjectEntry], None]) -> None:
        with self._lock:
            for entry in list(self._entries.values()):
                fn(entry)
