"""A from-scratch reimplementation of the Apache Arrow Plasma object store.

Plasma (paper §II-B) is an in-memory store for immutable objects shared
between processes on one node: producers ``create`` an object, write its
payload, and ``seal`` it; the store makes sealed objects available to every
client as read-only buffers, tracks which objects are in use (reference
counts), and evicts unused sealed objects under memory pressure.

This package reproduces that model:

* :class:`PlasmaStore` — the store process: object table (mutex-guarded,
  as in paper §IV-A2), allocator over a memory region, LRU eviction that
  never touches in-use objects, seal notifications.
* :class:`PlasmaClient` — the client API over the modelled Unix-socket IPC:
  ``create``/``seal``/``get``/``release``/``delete``/``contains`` plus
  ``put_bytes``/``get_bytes`` conveniences.
* :class:`PlasmaBuffer` — the zero-copy, read-only (once sealed) buffer
  handle; reading it is the timed path Figure 7 measures.

The distributed, memory-disaggregated variant — the paper's contribution —
lives in :mod:`repro.core` and builds directly on these classes.
"""

from repro.plasma.entry import ObjectEntry, ObjectState
from repro.plasma.table import ObjectTable
from repro.plasma.buffer import PlasmaBuffer, LocalBufferSource, RemoteBufferSource
from repro.plasma.eviction import (
    EVICTION_POLICIES,
    EvictionDecision,
    EvictionPolicy,
    FifoEvictionPolicy,
    HeatAwareEvictionPolicy,
    LargestFirstEvictionPolicy,
    LruEvictionPolicy,
    create_eviction_policy,
)
from repro.plasma.store import PlasmaStore
from repro.plasma.client import PlasmaClient
from repro.plasma.notifications import NotificationQueue, SealNotification

__all__ = [
    "ObjectEntry",
    "ObjectState",
    "ObjectTable",
    "PlasmaBuffer",
    "LocalBufferSource",
    "RemoteBufferSource",
    "LruEvictionPolicy",
    "FifoEvictionPolicy",
    "HeatAwareEvictionPolicy",
    "LargestFirstEvictionPolicy",
    "EvictionPolicy",
    "EvictionDecision",
    "EVICTION_POLICIES",
    "create_eviction_policy",
    "PlasmaStore",
    "PlasmaClient",
    "NotificationQueue",
    "SealNotification",
]
