"""Object table entries and lifecycle states."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.allocator.base import Allocation
from repro.common.ids import ObjectID


class ObjectState(enum.Enum):
    """Plasma's object lifecycle.

    CREATED objects are writable by their creator only; SEALED objects are
    immutable and visible to every client ("Sealing an object prompts the
    store to make it immutable, such that race conditions cannot occur",
    paper §II-B).
    """

    CREATED = "created"
    SEALED = "sealed"


@dataclass
class ObjectEntry:
    """Book-keeping for one object resident in a store."""

    object_id: ObjectID
    allocation: Allocation
    data_size: int
    metadata: bytes = b""
    state: ObjectState = ObjectState.CREATED
    ref_count: int = 0
    # Reference counts attributed to remote stores' clients (the
    # distributed-usage-sharing extension; see repro.core.refshare).
    remote_ref_count: int = 0
    created_at_ns: int = 0
    sealed_at_ns: int = 0
    last_access_seq: int = 0
    # Store-monotonic integrity generation, stamped into the in-region
    # header at creation and bumped there when the extent is retired. 0
    # means "no header" (integrity_headers disabled): readers then skip
    # generation validation.
    generation: int = 0
    # Offset of the in-region header relative to allocation.offset; the
    # payload starts at allocation.offset + header_size.
    header_size: int = 0
    # Payload CRC32C recorded at seal time (0 until sealed / when headers
    # are disabled).
    payload_crc: int = 0
    # Set by the scrubber when the payload fails its checksum: every read
    # answers ObjectCorruptedError and lookups stop advertising the object.
    quarantined: bool = False

    @property
    def is_sealed(self) -> bool:
        return self.state is ObjectState.SEALED

    @property
    def total_refs(self) -> int:
        return self.ref_count + self.remote_ref_count

    @property
    def evictable(self) -> bool:
        """Only sealed objects nobody references may be evicted — evicting
        an in-use object "would likely corrupt their data" (paper §IV-A2)."""
        return self.is_sealed and self.total_refs == 0

    @property
    def payload_offset(self) -> int:
        """Region-relative offset of the payload bytes (past the header)."""
        return self.allocation.offset + self.header_size

    def describe(self) -> dict:
        """A wire-friendly descriptor (used by RPC lookups).

        ``offset`` is the *payload* offset; fabric readers locate the
        in-region header at ``offset - header_size`` when validating.
        ``generation`` travels with the descriptor so a reader can detect
        that the extent was retired and reused since lookup.
        """
        return {
            "object_id": self.object_id.binary(),
            "offset": self.payload_offset,
            "data_size": self.data_size,
            "metadata": self.metadata,
            "sealed": self.is_sealed,
            "generation": self.generation,
            "header_size": self.header_size,
            "payload_crc": self.payload_crc,
        }
