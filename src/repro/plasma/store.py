"""The Plasma store process.

"The Plasma object store lives as a separate process to which clients of
the store may commit and 'seal' data objects with an object identifier. The
store manages the objects' locations in shared memory and makes them
available to other clients upon sealing." (paper §II-B)

The store composes:

* an allocator (the paper's first-fit replacement by default) over the
  memory region it manages — for the disaggregated variant that region *is*
  the node's exposed ThymesisFlow window;
* the mutex-guarded :class:`~repro.plasma.table.ObjectTable`;
* LRU eviction that refuses to touch in-use objects;
* seal/delete notification fan-out.
"""

from __future__ import annotations

from repro.allocator import create_allocator
from repro.common.clock import SimClock
from repro.common.config import StoreConfig
from repro.common.errors import (
    ObjectExistsError,
    ObjectNotFoundError,
    ObjectNotSealedError,
    OutOfMemoryError,
)
from repro.common.ids import ObjectID
from repro.common.stats import Counter
from repro.memory.host import MemoryRegion
from repro.plasma.buffer import LocalBufferSource, PlasmaBuffer
from repro.plasma.entry import ObjectEntry
from repro.plasma.eviction import create_eviction_policy
from repro.plasma.notifications import NotificationQueue, SealNotification
from repro.plasma.table import ObjectTable
from repro.thymesisflow.endpoint import ThymesisEndpoint


class PlasmaStore:
    """One store instance managing one memory region on one node."""

    def __init__(
        self,
        name: str,
        endpoint: ThymesisEndpoint,
        region: MemoryRegion,
        config: StoreConfig,
        clock: SimClock,
    ):
        if region.memory is not endpoint.memory:
            raise ValueError("store region must live in its endpoint's memory")
        self._name = name
        self._endpoint = endpoint
        self._region = region
        self._config = config
        self._clock = clock
        self._allocator = create_allocator(
            config.allocator, region.size, config.alignment
        )
        self._table = ObjectTable()
        self._eviction = create_eviction_policy(
            config.eviction_policy, region.size, config.eviction_batch_fraction
        )
        self._subscribers: list[NotificationQueue] = []
        self.counters = Counter()
        # Optional simulated-time tracer (set by the cluster builder when
        # tracing is requested); hot paths guard on it being None.
        self.tracer = None

    # -- identity -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def endpoint(self) -> ThymesisEndpoint:
        return self._endpoint

    @property
    def node(self) -> str:
        return self._endpoint.name

    @property
    def region(self) -> MemoryRegion:
        return self._region

    @property
    def table(self) -> ObjectTable:
        return self._table

    @property
    def allocator(self):
        return self._allocator

    @property
    def config(self) -> StoreConfig:
        return self._config

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def capacity_bytes(self) -> int:
        return self._region.size

    @property
    def used_bytes(self) -> int:
        return self._allocator.used_bytes

    # -- object lifecycle ------------------------------------------------------------

    def check_id_available(self, object_id: ObjectID) -> None:
        """Raise :class:`ObjectExistsError` if the id is taken. The
        distributed store widens this check across peers (paper: "on object
        creation, RPC calls are used to ensure the uniqueness of object
        identifiers")."""
        if self._table.contains(object_id):
            raise ObjectExistsError(f"{object_id!r} already exists in {self._name}")

    def create_object(
        self, object_id: ObjectID, data_size: int, metadata: bytes = b""
    ) -> ObjectEntry:
        """Allocate an object; evicts LRU sealed unused objects on pressure."""
        # The uniqueness check runs OUTSIDE the table mutex: for the
        # distributed store it performs blocking Contains RPCs, and holding
        # the local mutex across a call into a peer (whose handler takes its
        # own mutex) would deadlock two concurrently-creating stores. The
        # small check-then-insert window is safe — insertion still fails on
        # a local duplicate.
        self.check_id_available(object_id)
        return self.create_object_unchecked(object_id, data_size, metadata)

    def create_object_unchecked(
        self, object_id: ObjectID, data_size: int, metadata: bytes = b""
    ) -> ObjectEntry:
        """Allocate without the (possibly distributed) uniqueness check —
        for callers that already reserved the id in a batch. Local
        duplicates still fail at table insertion."""
        if data_size <= 0:
            raise ValueError("object size must be positive")
        with self._table.lock:
            allocation = self._allocate_with_eviction(data_size)
            entry = ObjectEntry(
                object_id=object_id,
                allocation=allocation,
                data_size=data_size,
                metadata=bytes(metadata),
                created_at_ns=self._clock.now_ns,
            )
            self._table.insert(entry)
        self.counters.inc("objects_created")
        self.counters.inc("bytes_created", data_size)
        return entry

    def _allocate_with_eviction(self, data_size: int):
        try:
            return self._allocator.allocate(data_size)
        except OutOfMemoryError:
            pass
        # Memory pressure: evict a batch of LRU sealed unused objects.
        decision = self._eviction.plan(self._table, required_bytes=data_size)
        for victim in decision.victims:
            self._evict_entry(victim)
        try:
            return self._allocator.allocate(data_size)
        except OutOfMemoryError:
            # Even after eviction the request does not fit (all remaining
            # objects in use, or fragmentation).
            raise

    def _evict_entry(self, entry: ObjectEntry) -> None:
        self._table.remove(entry.object_id)
        self._allocator.free(entry.allocation.offset)
        self.counters.inc("objects_evicted")
        self.counters.inc("bytes_evicted", entry.allocation.padded_size)
        self._notify(
            SealNotification(entry.object_id, entry.data_size, deleted=True)
        )

    def seal_object(self, object_id: ObjectID) -> ObjectEntry:
        """Make the object immutable and announce it."""
        entry = self._table.seal(object_id, sealed_at_ns=self._clock.now_ns)
        self.counters.inc("objects_sealed")
        self._notify(SealNotification(entry.object_id, entry.data_size))
        return entry

    def delete_object(self, object_id: ObjectID) -> None:
        """Explicitly remove a sealed, unreferenced object."""
        with self._table.lock:
            entry = self._table.get(object_id)
            if not entry.is_sealed:
                raise ObjectNotSealedError(
                    f"{object_id!r} cannot be deleted before sealing"
                )
            self._table.remove(object_id)
            self._allocator.free(entry.allocation.offset)
        self.counters.inc("objects_deleted")
        self._notify(SealNotification(entry.object_id, entry.data_size, deleted=True))

    def evict(self, nbytes: int) -> int:
        """Force-evict at least *nbytes* if possible; returns freed bytes."""
        with self._table.lock:
            decision = self._eviction.plan(self._table, required_bytes=nbytes)
            for victim in decision.victims:
                self._evict_entry(victim)
            return decision.freed_bytes

    # -- lookups ---------------------------------------------------------------------

    def contains(self, object_id: ObjectID) -> bool:
        return self._table.contains(object_id)

    def get_sealed_entry(self, object_id: ObjectID) -> ObjectEntry:
        """The entry, which must exist and be sealed (reads of unsealed
        objects are races Plasma prevents by construction)."""
        entry = self._table.lookup(object_id)
        if entry is None:
            raise ObjectNotFoundError(f"{object_id!r} not found in {self._name}")
        if not entry.is_sealed:
            raise ObjectNotSealedError(f"{object_id!r} exists but is not sealed")
        return entry

    def lookup_descriptor(self, object_id: ObjectID) -> dict | None:
        """Wire-friendly descriptor of a *sealed* object, or None.

        This is the payload a peer store's RPC Lookup returns: enough for
        the peer to address the bytes through its aperture (offset within
        the exposed region + size).
        """
        with self._table.lock:
            entry = self._table.lookup(object_id)
            if entry is None or not entry.is_sealed:
                return None
            return entry.describe()

    # -- references ---------------------------------------------------------------------

    def add_ref(self, object_id: ObjectID, remote: bool = False) -> None:
        self._table.add_ref(object_id, remote=remote)

    def release_ref(self, object_id: ObjectID, remote: bool = False) -> None:
        self._table.release_ref(object_id, remote=remote)

    # -- buffers ----------------------------------------------------------------------

    def local_buffer(self, entry: ObjectEntry) -> PlasmaBuffer:
        """A buffer handle for a locally stored object."""
        abs_offset = self._region.absolute(entry.allocation.offset)
        source = LocalBufferSource(self._endpoint, abs_offset)
        return PlasmaBuffer(
            entry.object_id,
            source,
            entry.data_size,
            sealed=entry.is_sealed,
            metadata=entry.metadata,
        )

    # -- notifications ------------------------------------------------------------------

    def subscribe(self) -> NotificationQueue:
        queue = NotificationQueue()
        self._subscribers.append(queue)
        return queue

    def _notify(self, note: SealNotification) -> None:
        for queue in self._subscribers:
            queue._push(note)  # noqa: SLF001 — store is the queue's producer

    # -- introspection ---------------------------------------------------------------------

    def object_count(self) -> int:
        return len(self._table)

    def describe_all(self) -> list[dict]:
        out: list[dict] = []
        self._table.for_each(lambda e: out.append(e.describe()))
        return out

    def __repr__(self) -> str:
        return (
            f"PlasmaStore({self._name}, node={self.node}, "
            f"{self.used_bytes}/{self.capacity_bytes} B, "
            f"{self.object_count()} objects)"
        )
