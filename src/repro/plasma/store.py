"""The Plasma store process.

"The Plasma object store lives as a separate process to which clients of
the store may commit and 'seal' data objects with an object identifier. The
store manages the objects' locations in shared memory and makes them
available to other clients upon sealing." (paper §II-B)

The store composes:

* an allocator (the paper's first-fit replacement by default) over the
  memory region it manages — for the disaggregated variant that region *is*
  the node's exposed ThymesisFlow window;
* the mutex-guarded :class:`~repro.plasma.table.ObjectTable`;
* LRU eviction that refuses to touch in-use objects;
* seal/delete notification fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocator import create_allocator
from repro.allocator.base import align_up
from repro.common.checksum import crc32c
from repro.common.clock import SimClock
from repro.common.config import StoreConfig
from repro.common.errors import (
    AllocationError,
    ObjectCorruptedError,
    ObjectExistsError,
    ObjectNotFoundError,
    ObjectNotSealedError,
    ObjectStoreError,
    OutOfMemoryError,
)
from repro.common.ids import ObjectID
from repro.obs.metrics import CounterGroup
from repro.memory.host import MemoryRegion
from repro.memory.layout import (
    FLAG_QUARANTINED,
    FLAG_SEALED,
    HEADER_MAGIC,
    HEADER_SIZE,
    MAX_METADATA_BYTES,
    ObjectHeader,
)
from repro.plasma.buffer import LocalBufferSource, PlasmaBuffer
from repro.plasma.entry import ObjectEntry, ObjectState
from repro.plasma.eviction import create_eviction_policy
from repro.plasma.notifications import NotificationQueue, SealNotification
from repro.plasma.table import ObjectTable
from repro.thymesisflow.endpoint import ThymesisEndpoint


@dataclass(frozen=True)
class RecoveryReport:
    """What a region-scan restart recovery found."""

    candidates: int  # aligned offsets whose first bytes matched the magic
    recovered: int  # sealed objects re-registered in the table
    quarantined: int  # recovered, but payload/metadata failed its checksum
    skipped: int  # candidates rejected (bad CRC, unsealed/retired, dup, ...)
    bytes_recovered: int  # payload bytes of recovered objects
    max_generation: int  # highest generation observed anywhere in the scan

    def describe(self) -> str:
        return (
            f"{self.recovered} objects recovered "
            f"({self.bytes_recovered} payload bytes, "
            f"{self.quarantined} quarantined) from {self.candidates} header "
            f"candidates; {self.skipped} rejected; generation resumes past "
            f"{self.max_generation}"
        )


class PlasmaStore:
    """One store instance managing one memory region on one node."""

    def __init__(
        self,
        name: str,
        endpoint: ThymesisEndpoint,
        region: MemoryRegion,
        config: StoreConfig,
        clock: SimClock,
    ):
        if region.memory is not endpoint.memory:
            raise ValueError("store region must live in its endpoint's memory")
        self._name = name
        self._endpoint = endpoint
        self._region = region
        self._config = config
        self._clock = clock
        self._allocator = create_allocator(
            config.allocator, region.size, config.alignment
        )
        self._table = ObjectTable()
        self._eviction = create_eviction_policy(
            config.eviction_policy, region.size, config.eviction_batch_fraction
        )
        self._subscribers: list[NotificationQueue] = []
        # Integrity: every extent is prefixed by a fixed in-region header
        # (one alignment quantum) and stamped with a store-monotonic
        # generation; see repro.memory.layout.
        self._header_size = HEADER_SIZE if config.integrity_headers else 0
        self._next_generation = 1
        self.counters = CounterGroup()
        # Optional simulated-time tracer (set by the cluster builder when
        # tracing is requested); hot paths guard on it being None.
        self.tracer = None
        # Optional span sink (repro.obs.spans), set by the cluster builder
        # when distributed tracing is requested.
        self.spans = None
        # Optional per-operation correlation context (see repro.obs); set
        # by the cluster builder alongside the tracer.
        self.correlation = None
        # Pre-resolved latency-histogram children; None until
        # attach_metrics, so the disabled hot path is one `is None` check.
        self._m_create = None
        self._m_seal = None

    # -- observability -----------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Bind this store's counters/latency/allocator gauges to *registry*.

        Safe to call again after a restart-recovery rebuilt the store: the
        group binding and gauge callbacks are replaced in place.
        """
        if not getattr(registry, "enabled", True):
            return
        registry.register_group(
            self.counters,
            "plasma",
            route={"scrub_": "scrub_", "lookup_cache_": "cache_"},
            store=self._name,
        )
        self._m_create = registry.histogram(
            "plasma_create_latency_ns",
            "Simulated time to allocate an object (incl. any eviction).",
            labels=("store",),
        ).labels(store=self._name)
        self._m_seal = registry.histogram(
            "plasma_seal_latency_ns",
            "Simulated time to seal an object (checksum + header write).",
            labels=("store",),
        ).labels(store=self._name)
        utilization = registry.gauge(
            "allocator_utilization",
            "Fraction of region capacity currently allocated.",
            labels=("store", "allocator"),
        )
        ext_frag = registry.gauge(
            "allocator_external_fragmentation",
            "1 - largest_free/free_bytes, sampled at collect time.",
            labels=("store", "allocator"),
        )
        int_frag = registry.gauge(
            "allocator_internal_fragmentation",
            "Padding overhead within allocated blocks.",
            labels=("store", "allocator"),
        )
        labels = {"store": self._name, "allocator": self._config.allocator}
        utilization.labels(**labels).set_function(
            lambda: self.used_bytes / max(1, self.capacity_bytes)
        )
        ext_frag.labels(**labels).set_function(
            lambda: self._fragmentation().external_fragmentation
        )
        int_frag.labels(**labels).set_function(
            lambda: self._fragmentation().internal_fragmentation
        )

    def _fragmentation(self):
        from repro.allocator.metrics import fragmentation_report

        return fragmentation_report(self._config.allocator, self._allocator)

    # -- identity -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def endpoint(self) -> ThymesisEndpoint:
        return self._endpoint

    @property
    def node(self) -> str:
        return self._endpoint.name

    @property
    def region(self) -> MemoryRegion:
        return self._region

    @property
    def table(self) -> ObjectTable:
        return self._table

    @property
    def allocator(self):
        return self._allocator

    @property
    def config(self) -> StoreConfig:
        return self._config

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def capacity_bytes(self) -> int:
        return self._region.size

    @property
    def used_bytes(self) -> int:
        return self._allocator.used_bytes

    @property
    def header_size(self) -> int:
        """Per-object in-region header bytes (0 when integrity is off)."""
        return self._header_size

    # -- object lifecycle ------------------------------------------------------------

    def check_id_available(self, object_id: ObjectID) -> None:
        """Raise :class:`ObjectExistsError` if the id is taken. The
        distributed store widens this check across peers (paper: "on object
        creation, RPC calls are used to ensure the uniqueness of object
        identifiers")."""
        if self._table.contains(object_id):
            raise ObjectExistsError(f"{object_id!r} already exists in {self._name}")

    def create_object(
        self, object_id: ObjectID, data_size: int, metadata: bytes = b""
    ) -> ObjectEntry:
        """Allocate an object; evicts LRU sealed unused objects on pressure."""
        # The uniqueness check runs OUTSIDE the table mutex: for the
        # distributed store it performs blocking Contains RPCs, and holding
        # the local mutex across a call into a peer (whose handler takes its
        # own mutex) would deadlock two concurrently-creating stores. The
        # small check-then-insert window is safe — insertion still fails on
        # a local duplicate.
        self.check_id_available(object_id)
        return self.create_object_unchecked(object_id, data_size, metadata)

    def create_object_unchecked(
        self, object_id: ObjectID, data_size: int, metadata: bytes = b""
    ) -> ObjectEntry:
        """Allocate without the (possibly distributed) uniqueness check —
        for callers that already reserved the id in a batch. Local
        duplicates still fail at table insertion."""
        if self._m_create is None:
            return self._create_unchecked_inner(object_id, data_size, metadata)
        start_ns = self._clock.now_ns
        entry = self._create_unchecked_inner(object_id, data_size, metadata)
        self._m_create.observe(self._clock.now_ns - start_ns)
        return entry

    def _create_unchecked_inner(
        self, object_id: ObjectID, data_size: int, metadata: bytes = b""
    ) -> ObjectEntry:
        if data_size <= 0:
            raise ValueError("object size must be positive")
        metadata = bytes(metadata)
        if self._header_size and len(metadata) > MAX_METADATA_BYTES:
            raise ValueError(
                f"metadata of {len(metadata)} bytes exceeds the "
                f"{MAX_METADATA_BYTES}-byte header field"
            )
        # Extent layout: [header][payload][metadata]; metadata is persisted
        # into the region at seal time so a restart can recover it.
        total_size = self._header_size + data_size + len(metadata)
        with self._table.lock:
            allocation = self._allocate_with_eviction(total_size)
            generation = 0
            if self._header_size:
                generation = self._next_generation
                self._next_generation += 1
            entry = ObjectEntry(
                object_id=object_id,
                allocation=allocation,
                data_size=data_size,
                metadata=metadata,
                created_at_ns=self._clock.now_ns,
                generation=generation,
                header_size=self._header_size,
            )
            self._table.insert(entry)
            if self._header_size:
                # Unsealed header: fabric readers that race the producer
                # see "not sealed" and fail typed rather than reading a
                # torn payload. Header writes are untimed bookkeeping (the
                # store process touches its own region).
                self._write_header(entry, flags=0)
        self.counters.inc("objects_created")
        self.counters.inc("bytes_created", data_size)
        return entry

    def _write_header(
        self, entry: ObjectEntry, flags: int, generation: int | None = None
    ) -> None:
        header = ObjectHeader(
            object_id=entry.object_id.binary(),
            generation=entry.generation if generation is None else generation,
            data_size=entry.data_size,
            meta_size=len(entry.metadata),
            flags=flags,
            payload_crc=entry.payload_crc,
            meta_crc=crc32c(entry.metadata) if entry.metadata else 0,
            sealed_at_s=int(entry.sealed_at_ns // 1_000_000_000),
        )
        self._region.write(entry.allocation.offset, header.pack())

    def _retire_header(self, entry: ObjectEntry) -> None:
        """Bump the in-region generation and clear the seal flag *before*
        the extent returns to the allocator: a concurrent fabric reader
        holding a descriptor then deterministically observes a stale header
        (typed StaleDescriptorError) instead of silently reading bytes the
        allocator has reused."""
        if not entry.header_size:
            return
        retired_generation = self._next_generation
        self._next_generation += 1
        self._write_header(entry, flags=0, generation=retired_generation)

    def _allocate_with_eviction(self, data_size: int):
        try:
            return self._allocator.allocate(data_size)
        except OutOfMemoryError:
            pass
        # Memory pressure: evict a batch of LRU sealed unused objects.
        decision = self._eviction.plan(self._table, required_bytes=data_size)
        for victim in decision.victims:
            self._evict_entry(victim)
        try:
            return self._allocator.allocate(data_size)
        except OutOfMemoryError:
            # Even after eviction the request does not fit (all remaining
            # objects in use, or fragmentation).
            raise

    def _evict_entry(self, entry: ObjectEntry) -> None:
        self._table.remove(entry.object_id)
        self._retire_header(entry)
        self._allocator.free(entry.allocation.offset)
        self.counters.inc("objects_evicted")
        self.counters.inc("bytes_evicted", entry.allocation.padded_size)
        self._notify(
            SealNotification(entry.object_id, entry.data_size, deleted=True)
        )

    def seal_object(self, object_id: ObjectID) -> ObjectEntry:
        """Make the object immutable and announce it."""
        if self._m_seal is None:
            return self._seal_inner(object_id)
        start_ns = self._clock.now_ns
        entry = self._seal_inner(object_id)
        self._m_seal.observe(self._clock.now_ns - start_ns)
        return entry

    def _seal_inner(self, object_id: ObjectID) -> ObjectEntry:
        with self._table.lock:
            entry = self._table.seal(object_id, sealed_at_ns=self._clock.now_ns)
            if entry.header_size:
                # Persist metadata behind the payload, checksum the payload,
                # and only then flip the seal flag in the region — the
                # header stays "unsealed" until the extent is fully
                # consistent, so a racing fabric reader fails typed.
                if entry.metadata:
                    self._region.write(
                        entry.payload_offset + entry.data_size, entry.metadata
                    )
                entry.payload_crc = crc32c(
                    self._region.view(entry.payload_offset, entry.data_size)
                )
                self._write_header(entry, flags=FLAG_SEALED)
        self.counters.inc("objects_sealed")
        self._notify(SealNotification(entry.object_id, entry.data_size))
        return entry

    def delete_object(self, object_id: ObjectID) -> None:
        """Explicitly remove a sealed, unreferenced object."""
        with self._table.lock:
            entry = self._table.get(object_id)
            if not entry.is_sealed:
                raise ObjectNotSealedError(
                    f"{object_id!r} cannot be deleted before sealing"
                )
            self._table.remove(object_id)
            self._retire_header(entry)
            self._allocator.free(entry.allocation.offset)
        self.counters.inc("objects_deleted")
        self._notify(SealNotification(entry.object_id, entry.data_size, deleted=True))

    def evict(self, nbytes: int) -> int:
        """Force-evict at least *nbytes* if possible; returns freed bytes."""
        with self._table.lock:
            decision = self._eviction.plan(self._table, required_bytes=nbytes)
            for victim in decision.victims:
                self._evict_entry(victim)
            return decision.freed_bytes

    # -- lookups ---------------------------------------------------------------------

    def contains(self, object_id: ObjectID) -> bool:
        return self._table.contains(object_id)

    def get_sealed_entry(self, object_id: ObjectID) -> ObjectEntry:
        """The entry, which must exist and be sealed (reads of unsealed
        objects are races Plasma prevents by construction)."""
        entry = self._table.lookup(object_id)
        if entry is None:
            raise ObjectNotFoundError(f"{object_id!r} not found in {self._name}")
        if not entry.is_sealed:
            raise ObjectNotSealedError(f"{object_id!r} exists but is not sealed")
        if entry.quarantined:
            raise ObjectCorruptedError(
                f"{object_id!r} is quarantined in {self._name}: its payload "
                f"failed checksum verification"
            )
        return entry

    def lookup_descriptor(self, object_id: ObjectID) -> dict | None:
        """Wire-friendly descriptor of a *sealed* object, or None.

        This is the payload a peer store's RPC Lookup returns: enough for
        the peer to address the bytes through its aperture (offset within
        the exposed region + size).
        """
        with self._table.lock:
            entry = self._table.lookup(object_id)
            if entry is None or not entry.is_sealed or entry.quarantined:
                return None
            return entry.describe()

    # -- references ---------------------------------------------------------------------

    def add_ref(self, object_id: ObjectID, remote: bool = False) -> None:
        self._table.add_ref(object_id, remote=remote)

    def release_ref(self, object_id: ObjectID, remote: bool = False) -> None:
        self._table.release_ref(object_id, remote=remote)

    # -- buffers ----------------------------------------------------------------------

    def local_buffer(self, entry: ObjectEntry) -> PlasmaBuffer:
        """A buffer handle for a locally stored object (payload bytes only;
        the in-region header sits just before the buffer)."""
        abs_offset = self._region.absolute(entry.payload_offset)
        source = LocalBufferSource(self._endpoint, abs_offset)
        return PlasmaBuffer(
            entry.object_id,
            source,
            entry.data_size,
            sealed=entry.is_sealed,
            metadata=entry.metadata,
        )

    # -- integrity: scrub / quarantine / repair ------------------------------------------

    def verify_object(self, entry: ObjectEntry) -> str | None:
        """Check one sealed object's in-region bytes against its seal-time
        integrity metadata. Returns None when intact, else a short reason
        (the scrubber's detection primitive; untimed local work)."""
        if not entry.header_size or not entry.is_sealed:
            return None
        raw = self._region.read(entry.allocation.offset, HEADER_SIZE)
        header = ObjectHeader.unpack(raw)
        if header is None:
            return "header unreadable (bad magic or header CRC)"
        if header.object_id != entry.object_id.binary():
            return "header object id mismatch"
        if header.generation != entry.generation:
            return "header generation mismatch"
        if not header.sealed:
            return "seal flag lost"
        payload = self._region.view(entry.payload_offset, entry.data_size)
        if crc32c(payload) != entry.payload_crc:
            return "payload checksum mismatch"
        if entry.metadata:
            meta = self._region.read(
                entry.payload_offset + entry.data_size, len(entry.metadata)
            )
            if crc32c(meta) != crc32c(entry.metadata):
                return "metadata checksum mismatch"
        return None

    def quarantine_object(self, object_id: ObjectID) -> ObjectEntry:
        """Mark a corrupt object: reads answer ObjectCorruptedError and
        lookups stop advertising it, but the extent stays registered so a
        repair can write good bytes back in place."""
        with self._table.lock:
            entry = self._table.get(object_id)
            entry.quarantined = True
            if entry.header_size:
                self._write_header(entry, flags=FLAG_SEALED | FLAG_QUARANTINED)
        self.counters.inc("objects_quarantined")
        return entry

    def repair_object(self, object_id: ObjectID, data) -> ObjectEntry:
        """Overwrite a (typically quarantined) object's payload with known
        good bytes, re-seal its header, and lift the quarantine."""
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        with self._table.lock:
            entry = self._table.get(object_id)
            if len(mv) != entry.data_size:
                raise ObjectStoreError(
                    f"repair payload is {len(mv)} bytes; "
                    f"{object_id!r} holds {entry.data_size}"
                )
            self._region.write(entry.payload_offset, mv)
            if entry.metadata:
                self._region.write(
                    entry.payload_offset + entry.data_size, entry.metadata
                )
            entry.payload_crc = crc32c(
                self._region.view(entry.payload_offset, entry.data_size)
            )
            entry.quarantined = False
            if entry.header_size:
                self._write_header(entry, flags=FLAG_SEALED)
        self.counters.inc("objects_repaired")
        return entry

    # -- restart recovery ----------------------------------------------------------------

    def recover_from_region(self) -> RecoveryReport:
        """Rebuild the object table and the allocator free list by scanning
        the region for sealed-object headers.

        This is the restart path: the exposed (disaggregated) region
        outlives the store process, so a fresh store constructed over the
        same region can re-register every sealed extent. Unsealed and
        retired headers are treated as free space — exactly the semantics
        the retire-before-free protocol guarantees. Objects whose payload or
        metadata fails its checksum are recovered *quarantined* so the
        scrubber can repair them from replicas instead of losing them.
        """
        if not self._header_size:
            raise ObjectStoreError(
                "recovery requires integrity_headers: without in-region "
                "headers there is nothing to scan"
            )
        if len(self._table):
            raise ObjectStoreError(
                f"recover_from_region needs an empty store; {self._name} "
                f"already holds {len(self._table)} objects"
            )
        align = self._config.alignment
        # Headers only ever start at allocation offsets, which are aligned —
        # so the scan inspects one 4-byte magic probe per alignment quantum,
        # vectorised over the whole region in one numpy pass.
        data = np.frombuffer(self._region.readonly_view(), dtype=np.uint8)
        nrows = self._region.size // align
        rows = data[: nrows * align].reshape(nrows, align)
        magic = np.frombuffer(HEADER_MAGIC, dtype=np.uint8)
        hits = np.nonzero((rows[:, : len(magic)] == magic).all(axis=1))[0]

        candidates = [int(row) * align for row in hits]
        recovered = quarantined = skipped = 0
        bytes_recovered = 0
        max_generation = 0
        cursor = 0  # end of the last accepted extent
        with self._table.lock:
            for offset in candidates:
                if offset < cursor:
                    # Inside an accepted extent: payload bytes that happen
                    # to contain the magic, not a real header.
                    continue
                if offset + HEADER_SIZE > self._region.size:
                    skipped += 1
                    continue
                header = ObjectHeader.unpack(
                    self._region.read(offset, HEADER_SIZE)
                )
                if header is None:
                    skipped += 1
                    continue
                max_generation = max(max_generation, header.generation)
                if not header.sealed:
                    skipped += 1  # retired or mid-write extent = free space
                    continue
                extent = align_up(header.extent_bytes, align)
                if offset + extent > self._region.size:
                    skipped += 1
                    continue
                try:
                    allocation = self._allocator.reserve(
                        offset, header.extent_bytes
                    )
                except AllocationError:
                    skipped += 1
                    continue
                metadata = self._region.read(
                    offset + HEADER_SIZE + header.data_size, header.meta_size
                )
                meta_ok = (
                    crc32c(metadata) == header.meta_crc
                    if header.meta_size
                    else True
                )
                payload_ok = (
                    crc32c(self._region.view(offset + HEADER_SIZE, header.data_size))
                    == header.payload_crc
                )
                corrupt = header.quarantined or not (meta_ok and payload_ok)
                entry = ObjectEntry(
                    object_id=ObjectID(header.object_id),
                    allocation=allocation,
                    data_size=header.data_size,
                    metadata=metadata,
                    state=ObjectState.SEALED,
                    created_at_ns=header.sealed_at_s * 1_000_000_000,
                    sealed_at_ns=header.sealed_at_s * 1_000_000_000,
                    generation=header.generation,
                    header_size=HEADER_SIZE,
                    payload_crc=header.payload_crc,
                    quarantined=corrupt,
                )
                try:
                    self._table.insert(entry)
                except ObjectExistsError:
                    self._allocator.free(allocation.offset)
                    skipped += 1
                    continue
                cursor = offset + extent
                recovered += 1
                bytes_recovered += header.data_size
                if corrupt:
                    quarantined += 1
            self._next_generation = max_generation + 1
        self.counters.inc("objects_recovered", recovered)
        self.counters.inc("objects_recovered_quarantined", quarantined)
        return RecoveryReport(
            candidates=len(candidates),
            recovered=recovered,
            quarantined=quarantined,
            skipped=skipped,
            bytes_recovered=bytes_recovered,
            max_generation=max_generation,
        )

    # -- notifications ------------------------------------------------------------------

    def subscribe(self) -> NotificationQueue:
        queue = NotificationQueue()
        self._subscribers.append(queue)
        return queue

    def _notify(self, note: SealNotification) -> None:
        for queue in self._subscribers:
            queue._push(note)  # noqa: SLF001 — store is the queue's producer

    # -- introspection ---------------------------------------------------------------------

    def object_count(self) -> int:
        return len(self._table)

    def describe_all(self) -> list[dict]:
        out: list[dict] = []
        self._table.for_each(lambda e: out.append(e.describe()))
        return out

    def __repr__(self) -> str:
        return (
            f"PlasmaStore({self._name}, node={self.node}, "
            f"{self.used_bytes}/{self.capacity_bytes} B, "
            f"{self.object_count()} objects)"
        )
