"""Seal/delete notifications.

Real Plasma lets clients subscribe to a notification socket that announces
every sealed object — the mechanism big-data pipelines use to chain
producers and consumers. The examples build on this, so the reimplementation
carries it: a store fan-outs :class:`SealNotification` records to every
subscribed :class:`NotificationQueue`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.ids import ObjectID


@dataclass(frozen=True)
class SealNotification:
    """One announcement: an object became available (or disappeared)."""

    object_id: ObjectID
    data_size: int
    deleted: bool = False


class NotificationQueue:
    """A subscriber's FIFO of pending notifications."""

    def __init__(self) -> None:
        self._queue: deque[SealNotification] = deque()

    def _push(self, note: SealNotification) -> None:
        self._queue.append(note)

    def pop(self) -> SealNotification | None:
        """Next pending notification, or None."""
        return self._queue.popleft() if self._queue else None

    def drain(self) -> list[SealNotification]:
        out = list(self._queue)
        self._queue.clear()
        return out

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
