"""The Plasma client API.

Clients talk to their node-local store over the modelled Unix-domain-socket
IPC; every public method charges that channel, so client-observed latencies
include the IPC costs Figure 6 measures. The API mirrors Arrow Plasma's
(`create`/`seal`/`get`/`release`/`delete`/`contains` plus byte-level
conveniences).
"""

from __future__ import annotations

from repro.common.errors import ObjectStoreError
from repro.common.ids import ObjectID
from repro.obs.metrics import CounterGroup
from repro.network.ipc import IpcChannel
from repro.plasma.buffer import PlasmaBuffer
from repro.plasma.store import PlasmaStore


class PlasmaClient:
    """A client connected to one (node-local) store."""

    def __init__(self, name: str, store: PlasmaStore, ipc: IpcChannel):
        self._name = name
        self._store = store
        self._ipc = ipc
        # Buffers this client holds references for, by id; get() may hold
        # several handles to the same object.
        self._held: dict[ObjectID, list[PlasmaBuffer]] = {}
        self.counters = CounterGroup()

    @property
    def name(self) -> str:
        return self._name

    @property
    def store(self) -> PlasmaStore:
        return self._store

    # -- producer path ------------------------------------------------------------

    def create(
        self, object_id: ObjectID, data_size: int, metadata: bytes = b""
    ) -> PlasmaBuffer:
        """Allocate an object and return its writable buffer. The client
        holds a reference until :meth:`release` (or :meth:`seal` +
        :meth:`release`)."""
        self._ipc.charge_request(nobjects=1, nbytes=len(metadata))
        entry = self._store.create_object(object_id, data_size, metadata)
        self._store.add_ref(object_id)
        buffer = self._store.local_buffer(entry)
        self._held.setdefault(object_id, []).append(buffer)
        self.counters.inc("creates")
        return buffer

    def seal(self, object_id: ObjectID) -> None:
        """Seal the object: immutable from here on, visible to everyone."""
        self._ipc.charge_request(nobjects=1)
        self._store.seal_object(object_id)
        for buffer in self._held.get(object_id, ()):
            buffer._mark_sealed()  # noqa: SLF001 — client owns its handles
        self.counters.inc("seals")

    def put_bytes(self, object_id: ObjectID, data, metadata: bytes = b"") -> ObjectID:
        """create + write + seal + release in one call; returns the id."""
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        buffer = self.create(object_id, len(mv), metadata)
        buffer.write(mv)
        self.seal(object_id)
        self.release(object_id)
        return object_id

    # -- consumer path ---------------------------------------------------------------

    def get(
        self, object_ids: list[ObjectID], allow_missing: bool = False
    ) -> list[PlasmaBuffer]:
        """Retrieve sealed objects' buffers — the operation Figure 6 times
        "from the time of the request to the reception of the last buffer".

        One batched IPC request covers all ids (handles travel together).
        With ``allow_missing=True`` the call mirrors Plasma's expired-timeout
        behaviour: unknown or unsealed ids yield ``None`` at their position
        instead of raising, and no reference is taken for them.
        """
        if not object_ids:
            return []
        self._ipc.charge_request(nobjects=len(object_ids))
        buffers: list[PlasmaBuffer] = []
        from repro.common.errors import ObjectNotFoundError, ObjectNotSealedError

        for oid in object_ids:
            try:
                entry = self._store.get_sealed_entry(oid)
            except (ObjectNotFoundError, ObjectNotSealedError):
                if allow_missing:
                    buffers.append(None)
                    continue
                raise
            self._store.add_ref(oid)
            buffer = self._store.local_buffer(entry)
            self._held.setdefault(oid, []).append(buffer)
            buffers.append(buffer)
        self.counters.inc("gets", len(object_ids))
        return buffers

    def get_one(self, object_id: ObjectID) -> PlasmaBuffer:
        return self.get([object_id])[0]

    def get_bytes(self, object_id: ObjectID) -> bytes:
        """get + sequential read + release; returns the payload."""
        buffer = self.get_one(object_id)
        try:
            return buffer.read_all()
        finally:
            self.release(object_id)

    def contains(self, object_id: ObjectID) -> bool:
        self._ipc.charge_request(nobjects=1)
        return self._store.contains(object_id)

    # -- reference management -----------------------------------------------------------

    def release(self, object_id: ObjectID) -> None:
        """Drop one of this client's references to *object_id*."""
        held = self._held.get(object_id)
        if not held:
            raise ObjectStoreError(
                f"client {self._name} holds no buffer for {object_id!r}"
            )
        self._ipc.charge_request(nobjects=1)
        buffer = held.pop()
        buffer._mark_released()  # noqa: SLF001
        if not held:
            del self._held[object_id]
        self._release_store_ref(object_id)
        self.counters.inc("releases")

    def _release_store_ref(self, object_id: ObjectID) -> None:
        self._store.release_ref(object_id)

    def release_all(self) -> None:
        for oid in list(self._held):
            while oid in self._held:
                self.release(oid)

    def held_ids(self) -> list[ObjectID]:
        return list(self._held)

    # -- deletion --------------------------------------------------------------------------

    def delete(self, object_id: ObjectID) -> None:
        self._ipc.charge_request(nobjects=1)
        self._store.delete_object(object_id)
        self.counters.inc("deletes")

    def __repr__(self) -> str:
        return f"PlasmaClient({self._name} -> {self._store.name})"
