"""Physical memory of a simulated node.

:class:`HostMemory` owns a real ``bytearray``; every object the stores serve
lives in one of these. :class:`MemoryRegion` is a bounds-checked window into
a host memory — the unit handed to allocators ("the memory-mapped local
disaggregated memory region" of paper §IV-A1) and to object buffers.

All access is via ``memoryview`` so reads are zero-copy where the consumer
allows it, mirroring how real Plasma hands clients read-only views of shared
memory rather than copies.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import FabricError


class HostMemory:
    """The byte-addressable DRAM of one node.

    Backed by ``np.zeros`` rather than a ``bytearray``: NumPy allocates via
    calloc, so multi-GiB node memories are virtual until touched — standing
    up a simulated rack costs no real RAM or zero-fill time for pages the
    workload never writes.

    ``node`` is a purely informational label used in error messages and
    fabric bookkeeping.
    """

    __slots__ = ("_arr", "_buf", "_node", "_capacity")

    def __init__(self, capacity: int, node: str = "?"):
        if capacity <= 0:
            raise ValueError("memory capacity must be positive")
        self._capacity = capacity
        self._arr = np.zeros(capacity, dtype=np.uint8)
        self._buf = memoryview(self._arr)  # format 'B', writable
        self._node = node

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def node(self) -> str:
        return self._node

    def _check(self, offset: int, size: int) -> None:
        if size < 0:
            raise ValueError("negative size")
        if offset < 0 or offset + size > self._capacity:
            raise FabricError(
                f"access [{offset}, {offset + size}) out of bounds for "
                f"{self._capacity}-byte memory of node {self._node}"
            )

    def view(self, offset: int, size: int) -> memoryview:
        """A writable zero-copy window. Callers needing read-only views wrap
        with ``.toreadonly()`` (see :meth:`readonly_view`)."""
        self._check(offset, size)
        return memoryview(self._buf)[offset : offset + size]

    def readonly_view(self, offset: int, size: int) -> memoryview:
        return self.view(offset, size).toreadonly()

    def write(self, offset: int, data) -> int:
        """Copy *data* (any buffer) into memory at *offset*; returns bytes
        written."""
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        self._check(offset, len(mv))
        self._buf[offset : offset + len(mv)] = mv
        return len(mv)

    def read(self, offset: int, size: int) -> bytes:
        """Copy *size* bytes out of memory (use :meth:`view` to avoid the
        copy)."""
        self._check(offset, size)
        return bytes(self._buf[offset : offset + size])

    def region(self, offset: int, size: int) -> "MemoryRegion":
        self._check(offset, size)
        return MemoryRegion(self, offset, size)

    def whole(self) -> "MemoryRegion":
        return MemoryRegion(self, 0, self._capacity)


class MemoryRegion:
    """A ``[base, base+size)`` window of a :class:`HostMemory`.

    Offsets passed to region methods are *region-relative*; the region does
    the translation and bounds checking. Sub-regions compose (a buffer region
    inside the disaggregated region inside host memory).
    """

    __slots__ = ("_mem", "_base", "_size")

    def __init__(self, mem: HostMemory, base: int, size: int):
        if size <= 0:
            raise ValueError("region size must be positive")
        mem._check(base, size)
        self._mem = mem
        self._base = base
        self._size = size

    @property
    def memory(self) -> HostMemory:
        return self._mem

    @property
    def base(self) -> int:
        """Absolute offset of this region within its host memory."""
        return self._base

    @property
    def size(self) -> int:
        return self._size

    def _translate(self, offset: int, size: int) -> int:
        if size < 0:
            raise ValueError("negative size")
        if offset < 0 or offset + size > self._size:
            raise FabricError(
                f"access [{offset}, {offset + size}) out of bounds for "
                f"{self._size}-byte region at base {self._base} "
                f"(node {self._mem.node})"
            )
        return self._base + offset

    def view(self, offset: int = 0, size: int | None = None) -> memoryview:
        size = self._size - offset if size is None else size
        abs_off = self._translate(offset, size)
        return self._mem.view(abs_off, size)

    def readonly_view(self, offset: int = 0, size: int | None = None) -> memoryview:
        return self.view(offset, size).toreadonly()

    def write(self, offset: int, data) -> int:
        mv = memoryview(data)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        abs_off = self._translate(offset, len(mv))
        return self._mem.write(abs_off, mv)

    def read(self, offset: int, size: int) -> bytes:
        abs_off = self._translate(offset, size)
        return self._mem.read(abs_off, size)

    def subregion(self, offset: int, size: int) -> "MemoryRegion":
        abs_off = self._translate(offset, size)
        return MemoryRegion(self._mem, abs_off, size)

    def absolute(self, offset: int) -> int:
        """Translate a region-relative offset to a host-memory offset."""
        return self._translate(offset, 0)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"MemoryRegion(node={self._mem.node}, base={self._base}, "
            f"size={self._size})"
        )
