"""In-region sealed-object header layout.

Every object a store places in its (disaggregated, remotely readable)
region is prefixed with one fixed 64-byte header written into the region
itself — the alignment quantum of the paper's first-fit allocator, so
headers never change an extent's padding class. The extent layout is::

    [ header : 64 B ][ payload : data_size ][ metadata : meta_size ]
    ^ allocation.offset                                             ^ padded

Putting the header *in the region* (not in the store's process memory) is
what buys crash safety and remote validation at once:

* a fabric reader holding a descriptor can check magic, object id,
  generation and the seal flag *before* streaming the payload, and verify
  the payload checksum after — a delete/evict/realloc race surfaces as a
  typed error instead of silently reused bytes;
* a restarted store process can rebuild its object table and free list by
  scanning the region, because the region (exposed ThymesisFlow window)
  survives the process.

Wire format (little-endian, 64 bytes)::

    off  size  field
    0    4     magic            b"DOBJ"
    4    2     version          (currently 1)
    6    2     flags            bit0 SEALED, bit1 QUARANTINED
    8    8     generation       u64, store-monotonic; bumped on retire
    16   20    object id        the full 20-byte Plasma id
    36   8     data_size        u64 payload bytes
    44   2     meta_size        u16 metadata bytes (stored after payload)
    46   2     reserved         zero
    48   4     payload crc32c   checksum of the payload bytes
    52   4     metadata crc32c  checksum of the metadata bytes
    56   4     sealed_at_s      u32 coarse seal timestamp (whole sim secs)
    60   4     header crc32c    checksum of bytes [0, 60)

A header is only *trusted* (by recovery scans and validated reads) when its
magic, version and header CRC all check out — a payload byte pattern that
happens to contain the magic is rejected with probability 1 - 2^-32.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common.checksum import crc32c
from repro.common.ids import ID_NBYTES

HEADER_SIZE = 64
HEADER_MAGIC = b"DOBJ"
HEADER_VERSION = 1

FLAG_SEALED = 0x1
FLAG_QUARANTINED = 0x2

MAX_METADATA_BYTES = 0xFFFF

_PACK = struct.Struct("<4sHHQ20sQHHIII")  # bytes [0, 60); header crc follows
assert _PACK.size == 60


@dataclass
class ObjectHeader:
    """The decoded form of one in-region header."""

    object_id: bytes  # raw 20 bytes
    generation: int
    data_size: int
    meta_size: int = 0
    flags: int = 0
    payload_crc: int = 0
    meta_crc: int = 0
    sealed_at_s: int = 0
    version: int = HEADER_VERSION

    @property
    def sealed(self) -> bool:
        return bool(self.flags & FLAG_SEALED)

    @property
    def quarantined(self) -> bool:
        return bool(self.flags & FLAG_QUARANTINED)

    @property
    def extent_bytes(self) -> int:
        """Unpadded bytes the extent occupies (header + payload + meta)."""
        return HEADER_SIZE + self.data_size + self.meta_size

    def pack(self) -> bytes:
        if len(self.object_id) != ID_NBYTES:
            raise ValueError(f"object id must be {ID_NBYTES} bytes")
        if not 0 <= self.meta_size <= MAX_METADATA_BYTES:
            raise ValueError(
                f"metadata of {self.meta_size} bytes exceeds the "
                f"{MAX_METADATA_BYTES}-byte header field"
            )
        body = _PACK.pack(
            HEADER_MAGIC,
            self.version,
            self.flags,
            self.generation,
            self.object_id,
            self.data_size,
            self.meta_size,
            0,
            self.payload_crc,
            self.meta_crc,
            self.sealed_at_s,
        )
        return body + struct.pack("<I", crc32c(body))

    @classmethod
    def unpack(cls, raw) -> "ObjectHeader | None":
        """Decode 64 header bytes; None if the bytes are not a trustworthy
        header (wrong magic/version or header-CRC mismatch)."""
        raw = bytes(raw[:HEADER_SIZE])
        if len(raw) < HEADER_SIZE or raw[:4] != HEADER_MAGIC:
            return None
        body, (stored_crc,) = raw[:60], struct.unpack("<I", raw[60:64])
        if crc32c(body) != stored_crc:
            return None
        (
            _magic,
            version,
            flags,
            generation,
            object_id,
            data_size,
            meta_size,
            _reserved,
            payload_crc,
            meta_crc,
            sealed_at_s,
        ) = _PACK.unpack(body)
        if version != HEADER_VERSION:
            return None
        return cls(
            object_id=object_id,
            generation=generation,
            data_size=data_size,
            meta_size=meta_size,
            flags=flags,
            payload_crc=payload_crc,
            meta_crc=meta_crc,
            sealed_at_s=sealed_at_s,
            version=version,
        )
