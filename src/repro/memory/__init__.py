"""Host-memory substrate.

Real byte storage for every simulated node (:class:`HostMemory`), windowed
access (:class:`MemoryRegion`), an interval-set utility used across the
memory and cache layers, and the cache-coherency model that reproduces the
asymmetric ThymesisFlow semantics of the paper's Figure 3
(:class:`CacheModel`).
"""

from repro.memory.intervals import Interval, IntervalSet
from repro.memory.host import HostMemory, MemoryRegion
from repro.memory.cache import CacheModel, CacheAccess

__all__ = [
    "Interval",
    "IntervalSet",
    "HostMemory",
    "MemoryRegion",
    "CacheModel",
    "CacheAccess",
]
